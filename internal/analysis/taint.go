package analysis

// taint.go is the wave-4 interprocedural value-taint/provenance engine.
// A taint marks a value whose bits (or whose ordering) depend on
// something outside the deterministic seed tree:
//
//	clock       — wall-clock reads (time.Now, Since, timers)
//	env         — process environment (os.Getenv, LookupEnv, ...)
//	global-rand — the unseeded math/rand globals or ad-hoc rand.New
//	map-order   — values observed through map iteration order
//
// The engine computes, per package, a may-taint relation over objects
// and expressions:
//
//   - Intraprocedurally each function body is swept with a ForwardMay
//     pass over its CFG (cfg.go/dataflow.go): assignments, range
//     bindings, struct-field writes and channel sends propagate taint
//     from right to left; there are no kills (may-taint), so the pass
//     converges in one sweep per loop nesting level.
//   - Interprocedurally the package call graph (callgraph.go) carries
//     two bounded summaries to a fixpoint: Returns (calling fn yields a
//     tainted value regardless of arguments — fn wraps time.Now, say)
//     and ParamFlows (argument i may flow into fn's return value, the
//     per-parameter summary detflow threads call chains through).
//     Both are context-insensitive and capped by the function count,
//     mirroring PropagateUp.
//
// Witness chains are bounded like call-graph witnesses: a taint carries
// "jitter → time.Now"-style provenance up to maxWitnessChain hops, so
// diagnostics can show the path without recursion blowing the string up.
//
// Precision limits, deliberate: function-typed values and method values
// are not tracked through calls (same escape hatch as the call graph);
// a tainted write to one field coarsely taints the whole struct object;
// map-order taints the `range` bindings of a map operand even when the
// consumer sorts afterwards — the sorted-after pattern is the audited
// //accu:allow detflow site, exactly as maporder handles it
// syntactically.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// TaintKind names one nondeterminism source class.
type TaintKind string

const (
	TaintClock      TaintKind = "clock"
	TaintEnv        TaintKind = "env"
	TaintGlobalRand TaintKind = "global-rand"
	TaintMapOrder   TaintKind = "map-order"
)

// A Taint is one provenance record: the source class plus a bounded
// witness chain from the tainted value back to the source expression.
type Taint struct {
	Kind TaintKind
	// Witness is the provenance chain, source-first is the LAST element:
	// "d → jitter → time.Now".
	Witness string
	// Pos is the source position that introduced the taint.
	Pos token.Pos
}

// extend prefixes one hop onto the witness chain, bounded.
func (t *Taint) extend(hop string) *Taint {
	w := t.Witness
	if countHops(w) >= maxWitnessChain {
		w = hop
	} else {
		w = hop + " ← " + w
	}
	return &Taint{Kind: t.Kind, Witness: w, Pos: t.Pos}
}

func countHops(w string) int {
	return strings.Count(w, " ← ")
}

// A TaintEngine holds the package-level taint state: per-object taints
// and the two interprocedural summaries.
type TaintEngine struct {
	pass *Pass
	cg   *CallGraph

	// objs is the may-taint table over the package's named objects
	// (locals, params, package vars). First writer wins, so witnesses
	// are stable across fixpoint sweeps.
	objs map[types.Object]*Taint

	// returns marks functions whose call result is tainted regardless
	// of arguments (the body roots a source into a return value).
	returns map[*types.Func]*Taint

	// paramFlows[fn][i] means argument i may flow into fn's return
	// value, so a tainted argument taints the call result.
	paramFlows map[*types.Func]map[int]bool
}

// NewTaintEngine computes the package's taint state to a bounded
// fixpoint over the call graph.
func NewTaintEngine(pass *Pass, cg *CallGraph) *TaintEngine {
	e := &TaintEngine{
		pass:       pass,
		cg:         cg,
		objs:       make(map[types.Object]*Taint),
		returns:    make(map[*types.Func]*Taint),
		paramFlows: make(map[*types.Func]map[int]bool),
	}
	// Interprocedural fixpoint: each sweep re-runs every body's
	// intraprocedural pass against the current summaries, then refreshes
	// the summaries from the bodies' return expressions. Summaries only
	// grow, so the sweep count is bounded by the function count.
	for sweep := 0; sweep <= len(cg.Funcs()); sweep++ {
		changed := false
		for _, fn := range cg.Funcs() {
			decl := cg.DeclOf(fn)
			if decl == nil || decl.Body == nil {
				continue
			}
			if e.sweepBody(fn, decl) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return e
}

// ObjTaint returns the taint recorded for an object, or nil.
func (e *TaintEngine) ObjTaint(obj types.Object) *Taint { return e.objs[obj] }

// sweepBody runs one intraprocedural pass over fn's body and refreshes
// fn's summaries; it reports whether anything changed.
func (e *TaintEngine) sweepBody(fn *types.Func, decl *ast.FuncDecl) bool {
	changed := e.propagateBody(decl.Body)

	// Returns summary: any return expression tainted regardless of
	// parameters → calling fn taints the result.
	// ParamFlows summary: a return expression tainted only because a
	// parameter is (pretend-taint each param in turn? too quadratic) —
	// instead: a return expression that *mentions* parameter i flows it
	// to the caller. This over-approximates (the mention may be dead in
	// the value), matching the engine's may-taint discipline.
	sig := fn.Type().(*types.Signature)
	params := make(map[types.Object]int, sig.Params().Len())
	for i := 0; i < sig.Params().Len(); i++ {
		params[sig.Params().At(i)] = i
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if t := e.ExprTaint(res); t != nil && e.returns[fn] == nil {
				e.returns[fn] = t.extend(funcDisplayName(fn))
				changed = true
			}
			for obj, i := range params {
				if exprMentions(e.pass, res, obj) && !e.paramFlows[fn][i] {
					if e.paramFlows[fn] == nil {
						e.paramFlows[fn] = make(map[int]bool)
					}
					e.paramFlows[fn][i] = true
					changed = true
				}
			}
		}
		return true
	})
	// Named result parameters: an assignment to a named result inside
	// the body roots through the plain object table; a bare return then
	// returns those objects. Treat a tainted named result as a tainted
	// return.
	if res := sig.Results(); e.returns[fn] == nil && res != nil {
		for i := 0; i < res.Len(); i++ {
			if t := e.objs[res.At(i)]; t != nil {
				e.returns[fn] = t.extend(funcDisplayName(fn))
				changed = true
				break
			}
		}
	}
	return changed
}

// propagateBody runs the CFG ForwardMay gen-only pass over one body,
// including nested function literals (each under its own CFG); it
// reports whether the object table grew.
func (e *TaintEngine) propagateBody(body *ast.BlockStmt) bool {
	before := len(e.objs)
	var bodies []*ast.BlockStmt
	bodies = append(bodies, body)
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			bodies = append(bodies, lit.Body)
		}
		return true
	})
	for _, b := range bodies {
		// Range bindings are handled by direct walk: the CFG's range head
		// carries only the operand expression, not the RangeStmt, and the
		// object table is flow-insensitive anyway.
		ast.Inspect(b, func(n ast.Node) bool {
			if r, ok := n.(*ast.RangeStmt); ok {
				e.transferRange(r, nil)
			}
			return true
		})
		cfg := NewCFG(b)
		// The fact set carries tainted objects for ForwardMay's fixpoint
		// bookkeeping; the payload table e.objs is shared and first-
		// writer-wins, so re-running transfer across sweeps is stable.
		transfer := func(n ast.Node, facts Facts) {
			walkBlockNode(n, false, func(m ast.Node) bool {
				e.transferNode(m, facts)
				return true
			})
		}
		cfg.ForwardMay(transfer)
	}
	return len(e.objs) != before
}

// taintObj records obj as tainted (first writer wins) and mirrors it
// into the local fact set.
func (e *TaintEngine) taintObj(obj types.Object, t *Taint, facts Facts) {
	if obj == nil || t == nil {
		return
	}
	if _, ok := e.objs[obj]; !ok {
		e.objs[obj] = t
	}
	if facts != nil {
		if _, ok := facts[obj]; !ok {
			facts[obj] = t.Pos
		}
	}
}

// transferNode applies one node's gen effects to the taint state.
func (e *TaintEngine) transferNode(n ast.Node, facts Facts) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		e.transferAssign(n.Lhs, n.Rhs, facts)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					e.transferAssign(lhs, vs.Values, facts)
				}
			}
		}
	case *ast.RangeStmt:
		e.transferRange(n, facts)
	case *ast.SendStmt:
		// A tainted value sent over a channel taints the channel: any
		// later receive observes tainted bits.
		if t := e.ExprTaint(n.Value); t != nil {
			if obj := exprBaseObject(e.pass, n.Chan); obj != nil {
				e.taintObj(obj, t.extend("chan "+obj.Name()), facts)
			}
		}
	}
}

// transferAssign propagates rhs taint onto lhs objects. A tainted
// field write (x.f = rhs) coarsely taints the base object x.
func (e *TaintEngine) transferAssign(lhs, rhs []ast.Expr, facts Facts) {
	taintLHS := func(l ast.Expr, t *Taint) {
		if t == nil {
			return
		}
		switch l := ast.Unparen(l).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				return
			}
			if obj := identObj(e.pass, l); obj != nil {
				e.taintObj(obj, t.extend(l.Name), facts)
			}
		case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			if obj := exprBaseObject(e.pass, l); obj != nil {
				e.taintObj(obj, t.extend(obj.Name()), facts)
			}
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			taintLHS(lhs[i], e.ExprTaint(rhs[i]))
		}
		return
	}
	// Multi-value form (x, y := f()): a tainted producer taints every
	// binding — the engine does not track result positions.
	if len(rhs) == 1 {
		t := e.ExprTaint(rhs[0])
		for _, l := range lhs {
			taintLHS(l, t)
		}
	}
}

// transferRange taints range bindings: over a map, the bindings carry
// map-order taint; over any tainted operand, they inherit its taint.
func (e *TaintEngine) transferRange(n *ast.RangeStmt, facts Facts) {
	var t *Taint
	if tv, ok := e.pass.Info.Types[n.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			t = &Taint{Kind: TaintMapOrder, Witness: "range over map " + exprText(n.X), Pos: n.X.Pos()}
		}
	}
	if t == nil {
		t = e.ExprTaint(n.X)
	}
	if t == nil {
		return
	}
	for _, b := range []ast.Expr{n.Key, n.Value} {
		if b == nil {
			continue
		}
		if id, ok := ast.Unparen(b).(*ast.Ident); ok && id.Name != "_" {
			if obj := identObj(e.pass, id); obj != nil {
				e.taintObj(obj, t.extend(id.Name), facts)
			}
		}
	}
}

// ExprTaint reports whether the expression's value may be tainted,
// with provenance; nil when clean. It recognizes intrinsic sources,
// tainted objects (directly or as the base of a selector/index/deref),
// tainted channel receives, and calls through the Returns/ParamFlows
// summaries.
func (e *TaintEngine) ExprTaint(expr ast.Expr) *Taint {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.objs[identObj(e.pass, x)]
	case *ast.SelectorExpr:
		// A field or method read off a tainted base is tainted; a
		// package-qualified name is handled by the call case.
		if obj := exprBaseObject(e.pass, x); obj != nil {
			return e.objs[obj]
		}
		return nil
	case *ast.IndexExpr:
		if t := e.ExprTaint(x.X); t != nil {
			return t
		}
		return e.ExprTaint(x.Index)
	case *ast.StarExpr:
		return e.ExprTaint(x.X)
	case *ast.UnaryExpr:
		// <-ch observes whatever was sent; a tainted channel taints the
		// receive. Other unary ops propagate operand taint.
		return e.ExprTaint(x.X)
	case *ast.BinaryExpr:
		if t := e.ExprTaint(x.X); t != nil {
			return t
		}
		return e.ExprTaint(x.Y)
	case *ast.CallExpr:
		return e.callTaint(x)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if t := e.ExprTaint(el); t != nil {
				return t
			}
		}
		return nil
	case *ast.SliceExpr:
		return e.ExprTaint(x.X)
	case *ast.TypeAssertExpr:
		return e.ExprTaint(x.X)
	case *ast.FuncLit:
		return nil
	}
	return nil
}

// callTaint resolves a call expression's result taint: an intrinsic
// source, a Returns-summarized in-package callee, a tainted argument
// flowing through a ParamFlows-summarized parameter, or a conversion of
// a tainted operand.
func (e *TaintEngine) callTaint(call *ast.CallExpr) *Taint {
	if t := sourceCall(e.pass, call); t != nil {
		return t
	}
	// Type conversions (T(x)) keep the operand's taint.
	if fun, ok := e.pass.Info.Types[call.Fun]; ok && fun.IsType() && len(call.Args) == 1 {
		return e.ExprTaint(call.Args[0])
	}
	f := calleeFunc(e.pass, call)
	if f == nil {
		// Builtins: len/cap of a tainted value stays tainted enough for
		// provenance purposes; append propagates element taint.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "append", "len", "cap", "min", "max":
				for _, a := range call.Args {
					if t := e.ExprTaint(a); t != nil {
						return t
					}
				}
			}
		}
		return nil
	}
	if t := e.returns[f]; t != nil {
		return t
	}
	if flows := e.paramFlows[f]; flows != nil {
		for i, arg := range call.Args {
			if flows[i] {
				if t := e.ExprTaint(arg); t != nil {
					return t.extend(funcDisplayName(f))
				}
			}
		}
	}
	// A method call on a tainted receiver yields tainted data (the
	// receiver's state embeds the source) — recursively, so chains like
	// time.Now().UnixNano() resolve without an intermediate variable.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			if t := e.ExprTaint(sel.X); t != nil {
				return t.extend(funcDisplayName(f))
			}
		}
	}
	return nil
}

// sourceCall recognizes the intrinsic taint sources: wall-clock reads,
// environment reads, and the global math/rand surface.
func sourceCall(pass *Pass, call *ast.CallExpr) *Taint {
	f := calleeFunc(pass, call)
	if f == nil || f.Pkg() == nil {
		return nil
	}
	name := f.Pkg().Path() + "." + f.Name()
	if sig, ok := f.Type().(*types.Signature); !ok || sig.Recv() != nil {
		// Methods: a Rand method on an ad-hoc generator is caught when
		// the generator object itself is tainted by rand.New.
		return nil
	}
	switch f.Pkg().Path() {
	case "time":
		if clockFuncs[f.Name()] {
			return &Taint{Kind: TaintClock, Witness: name, Pos: call.Pos()}
		}
	case "os":
		if envFuncs[f.Name()] {
			return &Taint{Kind: TaintEnv, Witness: name, Pos: call.Pos()}
		}
	case "math/rand", "math/rand/v2":
		// Every package-level function draws from the shared global
		// generator; rand.New's result is an ad-hoc generator the seed
		// tree does not govern.
		return &Taint{Kind: TaintGlobalRand, Witness: name, Pos: call.Pos()}
	}
	return nil
}

// exprBaseObject walks to the base identifier's object of a selector /
// index / deref / slice chain; nil when the base is not a plain object
// (a call result, say).
func exprBaseObject(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return identObj(pass, x)
		case *ast.SelectorExpr:
			// Package-qualified selector: the base "object" would be the
			// package name, never a value — stop.
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := pass.Info.Uses[id].(*types.PkgName); isPkg {
					return nil
				}
			}
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		case *ast.UnaryExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

// exprMentions reports whether expr references obj anywhere.
func exprMentions(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// exprText renders a short display form of an expression for witnesses.
func exprText(expr ast.Expr) string {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "(...)"
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	return "expr"
}
