package osn

import (
	"errors"
	"fmt"
)

// ErrDuplicateInBatch is returned when a batch contains the same user
// twice.
var ErrDuplicateInBatch = errors.New("osn: duplicate user in batch")

// RequestBatch sends friend requests to all users simultaneously: the
// attacker observes no response until the whole batch is out, so cautious
// users decide on the PRE-BATCH mutual-friend counts (the parallel
// batching model of Li–Smith–Thai, ICDCS 2017, which the paper cites as
// [4]). Outcomes are returned in input order; each Outcome.Gain is the
// marginal benefit in application order, and their sum is the total batch
// gain (the total is order-independent — it depends only on the final
// friend set).
func (st *State) RequestBatch(users []int) ([]Outcome, error) {
	// Validate and decide acceptance against the pre-batch state.
	seen := make(map[int]struct{}, len(users))
	outs := make([]Outcome, len(users))
	for i, u := range users {
		if u < 0 || u >= st.inst.N() {
			return nil, fmt.Errorf("%w: %d", ErrBadUser, u)
		}
		if st.requested[u] {
			return nil, fmt.Errorf("%w: %d", ErrAlreadyRequested, u)
		}
		if _, dup := seen[u]; dup {
			return nil, fmt.Errorf("%w: %d", ErrDuplicateInBatch, u)
		}
		seen[u] = struct{}{}
		outs[i] = Outcome{User: u, Cautious: st.inst.kind[u] == Cautious}
		switch st.inst.kind[u] {
		case Reckless:
			outs[i].Accepted = st.real.accepts[u]
		case Cautious:
			outs[i].Accepted = st.real.AcceptsCautious(u, int(st.mutual[u]) >= st.inst.theta[u])
		}
	}

	// Apply: mark requests, then fold accepted users into the state.
	for i, u := range users {
		st.requested[u] = true
		st.requests++
		if !outs[i].Accepted {
			continue
		}
		gain := st.inst.bFriend[u]
		if st.mutual[u] > 0 {
			gain -= st.inst.bFof[u]
			st.fofCount--
		}
		st.friend[u] = true
		st.numFriends++
		if outs[i].Cautious {
			st.cautiousFriends++
		}
		base := st.inst.g.AdjBase(u)
		for j, v := range st.inst.g.Neighbors(u) {
			if !st.real.edgeExists[base+j] {
				continue
			}
			if st.mutual[v] == 0 && !st.friend[v] {
				gain += st.inst.bFof[v]
				st.fofCount++
			}
			st.mutual[v]++
		}
		st.benefit += gain
		outs[i].Gain = gain
	}
	return outs, nil
}
