package accu_test

import (
	"testing"

	accu "github.com/accu-sim/accu"
)

// TestSoakLargerScale exercises the full pipeline at 10× the usual test
// scale on every preset — a guard against issues that only appear on
// bigger graphs (generator degeneration, cautious-selection exhaustion,
// accounting drift).
func TestSoakLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for _, name := range accu.PresetNames() {
		t.Run(name, func(t *testing.T) {
			preset, err := accu.PresetByName(name)
			if err != nil {
				t.Fatal(err)
			}
			generator, err := preset.Generator(0.1)
			if err != nil {
				t.Fatal(err)
			}
			g, err := generator.Generate(accu.NewSeed(91, 92))
			if err != nil {
				t.Fatal(err)
			}
			wantN := int(float64(preset.RefNodes) * 0.1)
			if g.N() < wantN*9/10 {
				t.Fatalf("N = %d, want ≈ %d", g.N(), wantN)
			}
			setup := accu.DefaultSetup()
			setup.NumCautious = 20
			inst, err := setup.Build(g, accu.NewSeed(93, 94))
			if err != nil {
				t.Fatal(err)
			}
			re := inst.SampleRealization(accu.NewSeed(95, 96))
			abm, err := accu.NewABM(accu.DefaultWeights())
			if err != nil {
				t.Fatal(err)
			}
			res, err := accu.Run(abm, re, 150)
			if err != nil {
				t.Fatal(err)
			}
			if res.Benefit <= 0 || len(res.Steps) != 150 {
				t.Fatalf("result: benefit=%v steps=%d", res.Benefit, len(res.Steps))
			}
			// The journal replays to the identical outcome at scale.
			st, err := res.Journal.Replay(re)
			if err != nil {
				t.Fatal(err)
			}
			if st.Benefit() != res.Benefit {
				t.Fatalf("replay drift: %v vs %v", st.Benefit(), res.Benefit)
			}
		})
	}
}
