package analysis

import (
	"go/ast"
	"go/types"
)

// Deterministic-package scope for the accuvet suite, as module-relative
// import-path suffixes.
var (
	// strictPackages hold the record path: everything they compute must
	// be a pure function of the rng.Seed tree. No wall clock, no global
	// randomness, no environment reads.
	strictPackages = []string{
		"internal/core",
		"internal/osn",
		"internal/gen",
		"internal/theory",
	}

	// timingPackages run or observe the record path but are allowed to
	// read the clock for spans and profiles. Global randomness and
	// environment reads remain forbidden.
	timingPackages = []string{
		"internal/obs",
		"internal/prof",
		"internal/sim",
		// Fault injection stalls on the clock by design; its randomness
		// still flows through the seed tree.
		"internal/sim/fault",
	}

	// rngPackage is the one place allowed to construct generators.
	rngPackage = "internal/rng"
)

// clockFuncs are the time-package functions that read the wall clock or
// schedule against it. Pure constructors (time.Date, time.Unix,
// time.ParseDuration) stay legal everywhere.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// envFuncs are the os-package functions that make behaviour depend on the
// process environment.
var envFuncs = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true, "ExpandEnv": true,
}

// Detrand returns the determinism analyzer: in the strict packages it
// forbids wall-clock reads, the global math/rand generators, ad-hoc
// generator construction and environment reads; in the timing packages
// the clock is allowed (obs spans, profiles) but randomness and
// environment discipline still apply. internal/rng itself is exempt — it
// is the sanctioned constructor.
func Detrand() *Analyzer {
	a := &Analyzer{
		Name: "detrand",
		Doc: "forbid nondeterminism sources (time, global rand, env) in the " +
			"record-path packages; all randomness must flow through internal/rng",
	}
	a.Run = func(pass *Pass) error {
		strict := pkgPathIn(pass.Path, strictPackages)
		timing := pkgPathIn(pass.Path, timingPackages)
		if (!strict && !timing) || pkgPathIs(pass.Path, rngPackage) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					// Methods (e.g. (*rand.Rand).IntN on an explicitly
					// seeded generator) are the sanctioned pattern.
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if strict && clockFuncs[fn.Name()] {
						pass.Reportf(id.Pos(),
							"time.%s reads the clock in deterministic package %s; timing belongs in the obs/prof layers",
							fn.Name(), pass.Path)
					}
				case "os":
					if envFuncs[fn.Name()] {
						pass.Reportf(id.Pos(),
							"os.%s makes %s depend on the process environment; thread configuration through explicit parameters",
							fn.Name(), pass.Path)
					}
				case "math/rand", "math/rand/v2":
					if fn.Name() == "New" {
						pass.Reportf(id.Pos(),
							"rand.New constructs an ad-hoc generator in %s; construct generators only via rng.Seed.Rand",
							pass.Path)
					} else {
						pass.Reportf(id.Pos(),
							"%s.%s bypasses the internal/rng seed tree in %s; all randomness must derive from an rng.Seed",
							fn.Pkg().Path(), fn.Name(), pass.Path)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}
