package graph

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// path builds a path graph 0-1-2-...-(n-1).
func path(t *testing.T, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(t, b, i, i+1)
	}
	return b.Freeze()
}

func mustAdd(t *testing.T, b *Builder, u, v int) {
	t.Helper()
	ok, err := b.AddEdge(u, v)
	if err != nil {
		t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
	}
	if !ok {
		t.Fatalf("AddEdge(%d,%d): duplicate", u, v)
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	if b.N() != 4 || b.M() != 0 {
		t.Fatalf("fresh builder: N=%d M=%d", b.N(), b.M())
	}
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	if b.M() != 2 {
		t.Fatalf("M = %d, want 2", b.M())
	}
	if !b.HasEdge(0, 1) || !b.HasEdge(1, 0) {
		t.Error("edge (0,1) missing or not symmetric")
	}
	if b.HasEdge(0, 2) {
		t.Error("phantom edge (0,2)")
	}
	if b.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d, want 2", b.Degree(1))
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	ok, err := b.AddEdge(1, 1)
	if err != nil || ok {
		t.Fatalf("self loop: ok=%v err=%v, want silently ignored", ok, err)
	}
	if b.M() != 0 {
		t.Error("self loop counted as edge")
	}
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	b := NewBuilder(3)
	mustAdd(t, b, 0, 1)
	for _, pair := range [][2]int{{0, 1}, {1, 0}} {
		ok, err := b.AddEdge(pair[0], pair[1])
		if err != nil || ok {
			t.Fatalf("duplicate (%d,%d): ok=%v err=%v", pair[0], pair[1], ok, err)
		}
	}
	if b.M() != 1 {
		t.Errorf("M = %d, want 1", b.M())
	}
}

func TestBuilderRangeError(t *testing.T) {
	b := NewBuilder(3)
	for _, pair := range [][2]int{{-1, 0}, {0, 3}, {5, 5}} {
		if _, err := b.AddEdge(pair[0], pair[1]); !errors.Is(err, ErrNodeRange) {
			t.Errorf("AddEdge(%d,%d): err=%v, want ErrNodeRange", pair[0], pair[1], err)
		}
	}
}

func TestNewBuilderNegativeN(t *testing.T) {
	b := NewBuilder(-5)
	if b.N() != 0 {
		t.Errorf("N = %d, want 0", b.N())
	}
	g := b.Freeze()
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("frozen empty: N=%d M=%d", g.N(), g.M())
	}
}

func TestFreezeSortedRows(t *testing.T) {
	b := NewBuilder(5)
	mustAdd(t, b, 0, 3)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 0, 4)
	mustAdd(t, b, 0, 2)
	g := b.Freeze()
	row := g.Neighbors(0)
	want := []int32{1, 2, 3, 4}
	if len(row) != len(want) {
		t.Fatalf("row = %v", row)
	}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
}

func TestFreezeBuilderStillUsable(t *testing.T) {
	b := NewBuilder(3)
	mustAdd(t, b, 0, 1)
	g1 := b.Freeze()
	mustAdd(t, b, 1, 2)
	g2 := b.Freeze()
	if g1.M() != 1 || g2.M() != 2 {
		t.Errorf("snapshots not independent: M1=%d M2=%d", g1.M(), g2.M())
	}
	if g1.HasEdge(1, 2) {
		t.Error("old snapshot sees new edge")
	}
}

func TestGraphHasEdge(t *testing.T) {
	g := path(t, 5)
	if !g.HasEdge(2, 3) || !g.HasEdge(3, 2) {
		t.Error("path edge missing")
	}
	if g.HasEdge(0, 2) || g.HasEdge(2, 2) || g.HasEdge(-1, 0) || g.HasEdge(0, 99) {
		t.Error("phantom edge reported")
	}
}

func TestMutualCount(t *testing.T) {
	// Star plus triangle: 0 connected to 1,2,3; 1 connected to 2.
	b := NewBuilder(4)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 0, 2)
	mustAdd(t, b, 0, 3)
	mustAdd(t, b, 1, 2)
	g := b.Freeze()
	if got := g.MutualCount(1, 2); got != 1 { // share node 0
		t.Errorf("MutualCount(1,2) = %d, want 1", got)
	}
	if got := g.MutualCount(0, 1); got != 1 { // share node 2
		t.Errorf("MutualCount(0,1) = %d, want 1", got)
	}
	if got := g.MutualCount(1, 3); got != 1 { // share node 0
		t.Errorf("MutualCount(1,3) = %d, want 1", got)
	}
	if got := g.MutualCount(2, 3); got != 1 {
		t.Errorf("MutualCount(2,3) = %d, want 1", got)
	}
}

func TestMutualCountMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	const n = 60
	b := NewBuilder(n)
	for i := 0; i < 300; i++ {
		_, _ = b.AddEdge(r.IntN(n), r.IntN(n))
	}
	g := b.Freeze()
	for trial := 0; trial < 200; trial++ {
		u, v := r.IntN(n), r.IntN(n)
		brute := 0
		for w := 0; w < n; w++ {
			if g.HasEdge(u, w) && g.HasEdge(v, w) {
				brute++
			}
		}
		if got := g.MutualCount(u, v); got != brute {
			t.Fatalf("MutualCount(%d,%d) = %d, brute = %d", u, v, got, brute)
		}
	}
}

func TestEachEdgeAndEdges(t *testing.T) {
	g := path(t, 4)
	edges := g.Edges()
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Errorf("edge %v not canonical", e)
		}
	}
	// Early stop.
	calls := 0
	g.EachEdge(func(u, v int) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("EachEdge early stop: %d calls", calls)
	}
}

func TestEdgeCanonical(t *testing.T) {
	if (Edge{U: 3, V: 1}).Canonical() != (Edge{U: 1, V: 3}) {
		t.Error("Canonical failed to order")
	}
	if (Edge{U: 1, V: 3}).Canonical() != (Edge{U: 1, V: 3}) {
		t.Error("Canonical changed ordered edge")
	}
}

func TestNeighborsOutOfRange(t *testing.T) {
	g := path(t, 3)
	if g.Neighbors(-1) != nil || g.Neighbors(3) != nil {
		t.Error("out-of-range Neighbors not nil")
	}
	if g.Degree(-1) != 0 || g.Degree(3) != 0 {
		t.Error("out-of-range Degree not 0")
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(t, 5)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	mustAdd(t, b, 0, 1)
	g := b.Freeze()
	dist := g.BFS(0)
	if dist[2] != -1 || dist[3] != -1 {
		t.Errorf("unreachable distances: %v", dist)
	}
	distBad := g.BFS(-1)
	for i, d := range distBad {
		if d != -1 {
			t.Errorf("BFS(-1): dist[%d]=%d", i, d)
		}
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 3, 4)
	g := b.Freeze()
	labels, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3 (labels %v)", count, labels)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("component {0,1,2} split")
	}
	if labels[3] != labels[4] {
		t.Error("component {3,4} split")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("singleton 5 merged")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(7)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 2, 3)
	mustAdd(t, b, 3, 4)
	mustAdd(t, b, 4, 5)
	g := b.Freeze()
	lc := g.LargestComponent()
	want := []int{2, 3, 4, 5}
	if len(lc) != len(want) {
		t.Fatalf("largest = %v, want %v", lc, want)
	}
	for i := range want {
		if lc[i] != want[i] {
			t.Fatalf("largest = %v, want %v", lc, want)
		}
	}
}

func TestTwoHopNeighbors(t *testing.T) {
	g := path(t, 5)
	th := g.TwoHopNeighbors(2)
	want := []int{0, 4}
	if len(th) != 2 || th[0] != want[0] || th[1] != want[1] {
		t.Errorf("TwoHop(2) = %v, want %v", th, want)
	}
	if g.TwoHopNeighbors(-1) != nil {
		t.Error("out-of-range TwoHop not nil")
	}
	// A direct neighbor reachable in 2 hops must NOT appear.
	b := NewBuilder(3)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 0, 2)
	tri := b.Freeze()
	if got := tri.TwoHopNeighbors(0); len(got) != 0 {
		t.Errorf("triangle TwoHop(0) = %v, want empty", got)
	}
}

func TestGraphPropertySymmetry(t *testing.T) {
	r := rand.New(rand.NewPCG(21, 22))
	f := func(seed uint32) bool {
		n := int(seed%50) + 2
		b := NewBuilder(n)
		for i := 0; i < n*2; i++ {
			_, _ = b.AddEdge(r.IntN(n), r.IntN(n))
		}
		g := b.Freeze()
		// Symmetry: HasEdge(u,v) == HasEdge(v,u); degree sum == 2M.
		sum := 0
		for u := 0; u < n; u++ {
			sum += g.Degree(u)
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(int(v), u) {
					return false
				}
			}
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
