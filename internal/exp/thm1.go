package exp

import (
	"context"
	"fmt"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/stats"
	"github.com/accu-sim/accu/internal/theory"
)

// thm1Case is one tiny enumerable ACCU instance for Theorem 1
// verification.
type thm1Case struct {
	name  string
	build func() (*osn.Instance, error)
	k     int
}

// thm1Cases covers the paper's structural motifs: a single cautious user
// with a threshold chain, a shared-friend pair of cautious users
// (Lemma 5's regime), probabilistic acceptance, and probabilistic edges.
func thm1Cases() []thm1Case {
	mk := func(n int, edges [][2]int, mutate func(*osn.Params)) func() (*osn.Instance, error) {
		return func() (*osn.Instance, error) {
			b := graph.NewBuilder(n)
			for _, e := range edges {
				if _, err := b.AddEdge(e[0], e[1]); err != nil {
					return nil, err
				}
			}
			g := b.Freeze()
			p := osn.Params{
				Kind:       make([]osn.Kind, n),
				AcceptProb: make([]float64, n),
				Theta:      make([]int, n),
				BFriend:    make([]float64, n),
				BFof:       make([]float64, n),
			}
			for i := 0; i < n; i++ {
				p.Kind[i] = osn.Reckless
				p.AcceptProb[i] = 1
				p.BFriend[i] = 2
				p.BFof[i] = 1
			}
			mutate(&p)
			return osn.NewInstance(g, p)
		}
	}
	cautious := func(p *osn.Params, v, theta int) {
		p.Kind[v] = osn.Cautious
		p.AcceptProb[v] = 0
		p.Theta[v] = theta
		p.BFriend[v] = 50
	}
	return []thm1Case{
		{
			name: "threshold-2-star",
			k:    3,
			build: mk(4, [][2]int{{0, 3}, {1, 3}, {0, 1}, {1, 2}}, func(p *osn.Params) {
				cautious(p, 3, 2)
			}),
		},
		{
			name: "probabilistic-acceptance",
			k:    3,
			build: mk(4, [][2]int{{0, 3}, {1, 3}, {1, 2}}, func(p *osn.Params) {
				cautious(p, 3, 1)
				p.AcceptProb[0] = 0.5
				p.AcceptProb[2] = 0.7
			}),
		},
		{
			name: "shared-friend-two-cautious",
			k:    3,
			build: mk(5, [][2]int{{0, 3}, {0, 4}, {1, 3}, {2, 4}}, func(p *osn.Params) {
				cautious(p, 3, 2)
				cautious(p, 4, 2)
			}),
		},
	}
}

// Theorem1 verifies the 1 − e^{−λ} guarantee on enumerable instances:
// for each case it computes the exhaustive adaptive submodular ratio λ,
// the optimal adaptive value, the exact-greedy value (w_I = 0), and
// checks greedy ≥ (1 − e^{−λ})·OPT.
func Theorem1(ctx context.Context, cfg Config) (*Report, error) {
	header := []string{"instance", "k", "lambda", "bound", "greedy", "optimal", "ratio", "holds"}
	var rows [][]string
	var notes []string
	for _, tc := range thm1Cases() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		inst, err := tc.build()
		if err != nil {
			return nil, fmt.Errorf("exp: thm1 %s: %w", tc.name, err)
		}
		lambda, err := theory.AdaptiveSubmodularRatio(inst)
		if err != nil {
			return nil, fmt.Errorf("exp: thm1 %s: %w", tc.name, err)
		}
		opt, err := theory.OptimalValue(inst, tc.k)
		if err != nil {
			return nil, fmt.Errorf("exp: thm1 %s: %w", tc.name, err)
		}
		gre, err := theory.GreedyValue(inst, tc.k)
		if err != nil {
			return nil, fmt.Errorf("exp: thm1 %s: %w", tc.name, err)
		}
		bound := theory.Bound(lambda)
		holds := gre+1e-9 >= bound*opt
		ratio := 0.0
		if opt > 0 {
			ratio = gre / opt
		}
		rows = append(rows, []string{
			tc.name,
			fmt.Sprintf("%d", tc.k),
			fmt.Sprintf("%.4f", lambda),
			fmt.Sprintf("%.4f", bound),
			fmt.Sprintf("%.3f", gre),
			fmt.Sprintf("%.3f", opt),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%v", holds),
		})
		if !holds {
			notes = append(notes, fmt.Sprintf("%s: BOUND VIOLATED (greedy %.3f < %.3f)", tc.name, gre, bound*opt))
		}
	}
	w, err := theory.NonSubmodularWitness()
	if err != nil {
		return nil, err
	}
	notes = append(notes, fmt.Sprintf("Fig.1 witness: Δ(v1|∅)=%.1f < Δ(v1|ω2)=%.1f — not adaptive submodular", w.DeltaEarly, w.DeltaLate))
	gamma, _, err := theory.CurvatureWitness()
	if err != nil {
		return nil, err
	}
	notes = append(notes, fmt.Sprintf("curvature witness: Γ = %v (unbounded, §III-B)", gamma))

	tables := []stats.Table{{Header: header, Rows: rows}}
	return newReport("thm1", "Theorem 1 verification: greedy ≥ (1 − e^{−λ})·OPT on enumerable instances", tables, notes), nil
}
