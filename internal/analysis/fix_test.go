package analysis_test

// Golden tests for the autofix pipeline: each fixture is copied to a
// temp dir, analyzed, fixed in place, and compared byte-for-byte against
// the expected rewrite. Every test then re-runs the analyzer on the
// fixed tree (idempotency: the second -fix pass must be a no-op) and
// checks the output still gofmts to itself.

import (
	"bytes"
	"go/format"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

// copyFixture clones a fixture directory into a temp dir so ApplyFixes
// can rewrite it without touching testdata.
func copyFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	names, err := filepath.Glob(filepath.Join(src, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("copyFixture %s: %v (found %d files)", src, err, len(names))
	}
	for _, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(name)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runFix analyzes dir and applies the machine-applicable fixes.
func runFix(t *testing.T, a *analysis.Analyzer, dir string) *analysis.FixResult {
	t.Helper()
	fset, _, diags := analysistest.Diagnostics(t, a, analysistest.Fixture{
		Dir:        dir,
		ImportPath: "example.test/internal/sim",
	})
	res, err := analysis.ApplyFixes(fset, diags)
	if err != nil {
		t.Fatalf("ApplyFixes: %v", err)
	}
	return res
}

// checkFixedFile asserts the rewritten fixture matches the golden text
// and is gofmt-clean.
func checkFixedFile(t *testing.T, dir, want string) {
	t.Helper()
	got, err := os.ReadFile(filepath.Join(dir, "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("fixed file mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	formatted, err := format.Source(got)
	if err != nil {
		t.Fatalf("fixed file does not parse: %v", err)
	}
	if !bytes.Equal(formatted, got) {
		t.Errorf("fixed file is not gofmt-clean:\n%s", got)
	}
}

func TestFixTimerLeakGolden(t *testing.T) {
	dir := copyFixture(t, "testdata/src/fixgolden_tick")
	res := runFix(t, analysis.TimerLeak(), dir)
	if res.Applied != 1 || res.Skipped != 0 || len(res.Files) != 1 {
		t.Fatalf("first pass: applied=%d skipped=%d files=%v, want 1/0/1 file", res.Applied, res.Skipped, res.Files)
	}
	checkFixedFile(t, dir, `// Package sim is the timerleak autofix golden fixture: one time.Tick
// call whose machine-applicable fix rewrites it to time.NewTicker(d).C.
package sim

import "time"

func poll(stop chan struct{}) {
	for {
		select {
		case <-time.NewTicker(5 * time.Millisecond).C:
		case <-stop:
			return
		}
	}
}
`)

	// Idempotency: the fix resolved the finding, so a second pass has
	// nothing to do.
	res = runFix(t, analysis.TimerLeak(), dir)
	if res.Applied != 0 || len(res.Files) != 0 {
		t.Fatalf("second pass not a no-op: applied=%d files=%v", res.Applied, res.Files)
	}
}

func TestFixWireTagGolden(t *testing.T) {
	dir := copyFixture(t, "testdata/src/fixgolden_wire")
	res := runFix(t, analysis.WireTag(), dir)
	if res.Applied != 2 || res.Skipped != 0 || len(res.Files) != 1 {
		t.Fatalf("first pass: applied=%d skipped=%d files=%v, want 2/0/1 file", res.Applied, res.Skipped, res.Files)
	}
	checkFixedFile(t, dir, `// Package sim is the wiretag autofix golden fixture: a marked wire
// struct with one untagged field and one unkeyed composite literal,
// both carrying machine-applicable fixes.
package sim

//accu:wire
type Header struct {
	Cells int    `+"`json:\"cells\"`"+`
	Crc   uint32 `+"`json:\"Crc\"`"+`
}

func mk() Header {
	return Header{Cells: 3, Crc: 9}
}
`)

	res = runFix(t, analysis.WireTag(), dir)
	if res.Applied != 0 || len(res.Files) != 0 {
		t.Fatalf("second pass not a no-op: applied=%d files=%v", res.Applied, res.Files)
	}
}

// TestFixAllowInsert covers the -fix -suggest composition: inserting an
// //accu:allow directive above the finding suppresses it on the next
// run.
func TestFixAllowInsert(t *testing.T) {
	dir := copyFixture(t, "testdata/src/fixgolden_tick")
	fset, _, diags := analysistest.Diagnostics(t, analysis.TimerLeak(), analysistest.Fixture{
		Dir:        dir,
		ImportPath: "example.test/internal/sim",
	})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1", len(diags))
	}
	src, err := os.ReadFile(filepath.Join(dir, "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	fix, ok := analysis.AllowInsertFix(fset, src, diags[0].Pos, "timerleak")
	if !ok {
		t.Fatal("AllowInsertFix failed to build")
	}
	synthetic := []analysis.Diagnostic{{
		Pos:            diags[0].Pos,
		Analyzer:       "timerleak",
		Message:        "insert //accu:allow",
		SuggestedFixes: []analysis.SuggestedFix{fix},
	}}
	res, err := analysis.ApplyFixes(fset, synthetic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || len(res.Files) != 1 {
		t.Fatalf("allow insert: applied=%d files=%v", res.Applied, res.Files)
	}

	fixed, err := os.ReadFile(filepath.Join(dir, "fixture.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(fixed, []byte("//accu:allow timerleak -- TODO: justify this intentional violation")) {
		t.Fatalf("directive not inserted:\n%s", fixed)
	}
	_, _, after := analysistest.Diagnostics(t, analysis.TimerLeak(), analysistest.Fixture{
		Dir:        dir,
		ImportPath: "example.test/internal/sim",
	})
	if len(after) != 0 {
		t.Fatalf("finding not suppressed after allow insert: %v", after)
	}
}

// TestApplyFixesOverlap pins the conflict rule: of two fixes editing the
// same span, exactly one applies and the other is counted skipped.
func TestApplyFixesOverlap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.go")
	if err := os.WriteFile(path, []byte("package p\n\nvar x = 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	base := fset.AddFile(path, -1, 32).Pos(0)
	span := func(start, end int, text string) analysis.SuggestedFix {
		return analysis.SuggestedFix{
			Message:           "edit",
			MachineApplicable: true,
			Edits:             []analysis.TextEdit{{Pos: base + token.Pos(start), End: base + token.Pos(end), NewText: text}},
		}
	}
	diags := []analysis.Diagnostic{
		{Pos: base, Analyzer: "t", Message: "m1", SuggestedFixes: []analysis.SuggestedFix{span(19, 20, "2")}},
		{Pos: base, Analyzer: "t", Message: "m2", SuggestedFixes: []analysis.SuggestedFix{span(19, 20, "3")}},
	}
	res, err := analysis.ApplyFixes(fset, diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 1 || res.Skipped != 1 {
		t.Fatalf("applied=%d skipped=%d, want 1/1", res.Applied, res.Skipped)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "package p\n\nvar x = 2\n" {
		t.Fatalf("got %q", got)
	}
}
