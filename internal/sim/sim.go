// Package sim runs the Monte-Carlo experiment protocol of §IV-A: a grid
// of (sample network × repetition) cells, each executing every policy
// under comparison against the same sampled realization, fanned out over
// a bounded worker pool with deterministic per-cell seeding.
//
// Scheduling is cell-granular: workers consume (network, run) cells from
// a shared queue, so a Networks=1, Runs=30 protocol — the "one real
// dataset, many repetitions" shape — parallelizes just as well as a wide
// network grid. Each network's immutable Instance is generated once
// behind a once-per-network gate and shared by every worker; all
// randomness still derives from per-cell seed splits, so the record
// stream is bit-identical at any worker count.
//
// The engine is fault-tolerant: a Checkpointer (see CellJournal) makes
// completed cells durable and lets an interrupted grid resume without
// recomputation, ContinueOnError degrades gracefully around failed cells
// instead of discarding the whole grid, and CellTimeout/Retries bound
// and re-attempt transient failures. Because every cell reseeds from its
// (network, run) coordinates alone, none of these mechanisms perturb the
// record stream of the surviving cells.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// Builder dresses a generated graph into an ACCU instance. osn.Setup is
// the canonical implementation; fault-injection wrappers
// (internal/sim/fault) and custom experiment dressings satisfy it too.
type Builder interface {
	// Build constructs the instance for one sample network. It must be
	// deterministic in (g, seed).
	Build(g *graph.Graph, seed rng.Seed) (*osn.Instance, error)
}

// Protocol describes one Monte-Carlo experiment.
type Protocol struct {
	// Gen produces sample networks (one per Networks index).
	Gen gen.Generator
	// Setup dresses each network into an ACCU instance. osn.Setup
	// satisfies this directly.
	Setup Builder
	// Networks is the number of sample networks (paper: 100).
	Networks int
	// Runs is the number of algorithm executions per network (paper: 30).
	Runs int
	// K is the friend-request budget per run.
	K int
	// BatchSize > 1 switches to the parallel-batching attack model
	// (requests go out BatchSize at a time with no observations inside a
	// batch); 0 or 1 is the paper's fully adaptive one-at-a-time model.
	// Batching requires every policy to implement core.BatchSelector.
	BatchSize int
	// Seed is the root seed; every cell derives its own stream from it.
	Seed rng.Seed
	// Workers bounds the worker pool; 0 means GOMAXPROCS. An explicit
	// value is honored up to the (network, run) cell count — see
	// ResolveWorkers for the clamp rule; a clamp is surfaced via the
	// sim.workers / sim.workers_requested / sim.workers_clamped metrics
	// rather than silently shrinking the pool to Networks as earlier
	// versions did.
	Workers int
	// Metrics, when non-nil, receives engine instrumentation: per-cell
	// and per-network wall time, worker busy time and utilisation, and —
	// via Instance.Instrument — the osn environment counters. ABM policy
	// counters are separate; see core.WithMetrics.
	Metrics *obs.Registry
	// OnProgress, when non-nil, is invoked serially (same goroutine as
	// collect, no locking needed) after every collected cell record, so
	// long experiments can report liveness. Cells cancelled mid-flight,
	// failed cells and checkpoint-skipped cells are not reported; Done
	// reaches Total only on a full, error-free, non-resumed run. On a
	// resumed run Progress.Resumed carries the already-durable record
	// count, so Done + Resumed tracks grid-wide completion.
	OnProgress func(Progress)

	// Checkpoint, when non-nil, makes the grid durable: every completed
	// cell is committed after its records are delivered, and cells the
	// checkpoint already holds are skipped on start (surfaced via the
	// sim.cells_skipped counter). Skipped cells' records are NOT
	// re-delivered to collect — replay them first via CellJournal.Replay.
	// Because each cell reseeds from its (network, run) coordinates
	// alone, a resumed grid's merged record set is bit-identical to an
	// uninterrupted run's.
	Checkpoint Checkpointer
	// ContinueOnError degrades gracefully: a cell that fails (after
	// Retries re-attempts) is recorded as a *CellError and counted in
	// sim.cell_failures while the rest of the grid keeps going; Run then
	// returns a *FailureSummary joining every cell failure. Without it
	// the first cell failure aborts the grid, as before. Checkpoint
	// Commit errors always abort: records that cannot be made durable
	// would silently re-run on resume.
	ContinueOnError bool
	// MaxFailures bounds ContinueOnError's tolerance: once more than
	// MaxFailures cells have failed the run aborts with the joined
	// failures. 0 means no budget (unlimited).
	MaxFailures int
	// CellTimeout bounds the wall time of one cell attempt (0 = none).
	// Policies are pure compute and cannot be interrupted, so a
	// timed-out attempt is abandoned with its scratch state; the cell is
	// retried or failed with ErrCellTimeout.
	CellTimeout time.Duration
	// Retries re-attempts a failed or timed-out cell up to Retries extra
	// times. Every attempt a > 0 re-derives the cell's seed branch via
	// SplitN("retry", a) — never reusing a consumed stream — so retried
	// grids stay fully deterministic.
	Retries int
}

// Progress is one OnProgress notification.
type Progress struct {
	// Done is the number of cells completed so far; Total the grid size
	// Networks × Runs × len(factories).
	Done, Total int
	// Resumed is the number of records already durable in the checkpoint
	// when this run started (skipped cells × policy roster); 0 on a fresh
	// run. Done counts only this run's deliveries, so grid-wide completion
	// is Done + Resumed out of Total.
	Resumed int
	// Policy is the completed cell's policy name.
	Policy string
	// Network and Run locate the completed cell in the Monte-Carlo grid.
	Network, Run int
}

// Validate checks the protocol is runnable.
func (p Protocol) Validate() error {
	switch {
	case p.Gen == nil:
		return errors.New("sim: nil generator")
	case p.Setup == nil:
		return errors.New("sim: nil setup")
	case p.Networks <= 0:
		return fmt.Errorf("sim: Networks = %d, must be positive", p.Networks)
	case p.Runs <= 0:
		return fmt.Errorf("sim: Runs = %d, must be positive", p.Runs)
	case p.K <= 0:
		return fmt.Errorf("sim: K = %d, must be positive", p.K)
	case p.BatchSize < 0:
		return fmt.Errorf("sim: BatchSize = %d, must be >= 0", p.BatchSize)
	case p.Workers < 0:
		return fmt.Errorf("sim: Workers = %d, must be >= 0", p.Workers)
	case p.MaxFailures < 0:
		return fmt.Errorf("sim: MaxFailures = %d, must be >= 0", p.MaxFailures)
	case p.CellTimeout < 0:
		return fmt.Errorf("sim: CellTimeout = %v, must be >= 0", p.CellTimeout)
	case p.Retries < 0:
		return fmt.Errorf("sim: Retries = %d, must be >= 0", p.Retries)
	}
	return nil
}

// PolicyFactory constructs a fresh policy for each run (policies carry
// per-attack state). The run seed is deterministic per cell, feeding
// randomized policies such as Random.
type PolicyFactory struct {
	// Name labels the policy in records (useful before Init).
	Name string
	// New builds the policy for one run.
	New func(runSeed rng.Seed) (core.Policy, error)
}

// ABMFactory builds an ABM policy factory with the given weights. opts
// (e.g. core.WithMetrics) are applied to every policy instance built.
func ABMFactory(w Weights, opts ...core.Option) (PolicyFactory, error) {
	if err := w.Validate(); err != nil {
		return PolicyFactory{}, err
	}
	return PolicyFactory{
		Name: w.PolicyName(),
		New: func(rng.Seed) (core.Policy, error) {
			return core.NewABM(w, opts...)
		},
	}, nil
}

// Weights aliases core.Weights for caller convenience.
type Weights = core.Weights

// DefaultFactories returns the §IV policy roster: ABM with the given
// weights plus the MaxDegree, PageRank and Random baselines. opts are
// applied to the ABM policy only.
func DefaultFactories(w Weights, opts ...core.Option) ([]PolicyFactory, error) {
	abm, err := ABMFactory(w, opts...)
	if err != nil {
		return nil, err
	}
	return []PolicyFactory{
		abm,
		{Name: "maxdegree", New: func(rng.Seed) (core.Policy, error) { return core.NewMaxDegree(), nil }},
		{Name: "pagerank", New: func(rng.Seed) (core.Policy, error) { return core.NewPageRank(), nil }},
		{Name: "random", New: func(s rng.Seed) (core.Policy, error) { return core.NewRandom(s), nil }},
	}, nil
}

// Record is the outcome of one (policy, network, run) cell. It rides
// inside every CellLine, so it is journal/upload wire format too.
//
//accu:wire
type Record struct {
	// Policy is the factory name.
	Policy string `json:"Policy"`
	// Network and Run locate the Monte-Carlo cell.
	Network int `json:"Network"`
	Run     int `json:"Run"`
	// Result is the full attack trace.
	Result *core.Result `json:"Result"`
}

// engineMetrics holds the runner's instruments, resolved once per Run so
// the per-cell hot path records through plain pointers (all nil — and
// therefore no-ops — when Protocol.Metrics is unset).
type engineMetrics struct {
	cellNS     *obs.Histogram // one policy execution (core.Run/RunBatched)
	networkNS  *obs.Histogram // generate + setup of one network instance
	cells      *obs.Counter   // records delivered to the collector
	workerBusy *obs.Counter   // summed worker busy nanoseconds
	wallNS     *obs.Histogram // wall time, one observation per Run call
	workers    *obs.Gauge     // resolved pool size
	// workersRequested/workersClamped surface the clamp rule: the gauge
	// holds the caller's explicit Workers request, the counter increments
	// once per Run whose request exceeded the cell count. A clamp is a
	// note, never an error.
	workersRequested *obs.Gauge
	workersClamped   *obs.Counter
	// utilizationPct observes each Run's pool utilisation — this run's
	// busy time over wall × workers — in percent (100 = fully busy).
	utilizationPct *obs.Histogram
	// Fault-tolerance counters: cells that failed after exhausting their
	// retries (ContinueOnError), cells skipped because the checkpoint
	// already holds them, re-attempts of failed/timed-out cells, and
	// attempts abandoned at CellTimeout.
	cellFailures *obs.Counter
	cellsSkipped *obs.Counter
	cellRetries  *obs.Counter
	cellTimeouts *obs.Counter
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		cellNS:           reg.Histogram("sim.cell_ns"),
		networkNS:        reg.Histogram("sim.network_ns"),
		cells:            reg.Counter("sim.cells"),
		workerBusy:       reg.Counter("sim.worker_busy_ns"),
		wallNS:           reg.Histogram("sim.wall_ns"),
		workers:          reg.Gauge("sim.workers"),
		workersRequested: reg.Gauge("sim.workers_requested"),
		workersClamped:   reg.Counter("sim.workers_clamped"),
		utilizationPct:   reg.Histogram("sim.worker_utilization_pct"),
		cellFailures:     reg.Counter("sim.cell_failures"),
		cellsSkipped:     reg.Counter("sim.cells_skipped"),
		cellRetries:      reg.Counter("sim.cell_retries"),
		cellTimeouts:     reg.Counter("sim.cell_timeouts"),
	}
}

// ResolveWorkers reports the worker pool size Run will use for this
// protocol and whether an explicit Workers request was clamped. The pool
// is bounded by the number of (network, run) cells — the scheduler's unit
// of parallelism — never by Networks alone, so single-network protocols
// with many repetitions use every worker they ask for.
func (p Protocol) ResolveWorkers() (workers int, clamped bool) {
	workers = p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cells := p.Networks * p.Runs; cells > 0 && workers > cells {
		return cells, p.Workers > cells
	}
	return workers, false
}

// Run executes the protocol. Every policy in factories attacks the same
// realization within a cell, so policies are compared on identical ground
// truth. collect is invoked serially (no locking needed by the caller)
// but in nondeterministic cell order; the per-cell randomness itself is
// fully deterministic in Protocol.Seed — the collected record set is
// bit-identical at any worker count. Run stops at the first error or
// when ctx is cancelled (a worker error always wins over the context
// cancellation it triggers) unless ContinueOnError is set, in which case
// failed cells are skipped and summarized in a trailing *FailureSummary.
func Run(ctx context.Context, p Protocol, factories []PolicyFactory, collect func(Record)) error {
	e, err := newEngine(p, factories)
	if err != nil {
		return err
	}
	return e.run(ctx, collect)
}

// engine is the per-Run scheduler state: the memoized network slots, the
// checkpoint skip set and the failure ledger.
type engine struct {
	p         Protocol
	factories []PolicyFactory
	em        engineMetrics
	workers   int
	nets      []netSlot
	skip      []bool // cells the checkpoint already holds
	resumed   int    // records the checkpoint already holds (skipped cells × factories)

	mu       sync.Mutex
	failures []*CellError // failed cells under ContinueOnError
}

// newEngine validates the protocol and prepares the grid: the checkpoint
// is consulted once, and each network slot learns how many of its cells
// are actually scheduled so release accounting stays exact under resume.
func newEngine(p Protocol, factories []PolicyFactory) (*engine, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(factories) == 0 {
		return nil, errors.New("sim: no policy factories")
	}
	workers, clamped := p.ResolveWorkers()
	em := newEngineMetrics(p.Metrics)
	em.workers.Set(float64(workers))
	if p.Workers > 0 {
		em.workersRequested.Set(float64(p.Workers))
	}
	if clamped {
		em.workersClamped.Inc()
	}
	e := &engine{
		p:         p,
		factories: factories,
		em:        em,
		workers:   workers,
		nets:      make([]netSlot, p.Networks),
		skip:      make([]bool, p.Networks*p.Runs),
	}
	for c := range e.skip {
		i, j := c/p.Runs, c%p.Runs
		if p.Checkpoint != nil && p.Checkpoint.Done(CellKey{Network: i, Run: j}) {
			e.skip[c] = true
			e.resumed += len(factories)
			em.cellsSkipped.Inc()
			continue
		}
		e.nets[i].remaining.Add(1)
	}
	return e, nil
}

// run drives the worker pool over the scheduled cells and collects.
func (e *engine) run(ctx context.Context, collect func(Record)) error {
	// One registry may span several Run calls (an experiment per dataset),
	// so utilisation is computed from this run's busy-time delta.
	busyBefore := e.em.workerBusy.Value()
	start := time.Now()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// firstErr captures the first fatal worker failure. It is published
	// before cancel() and read after the worker pool drains, so every
	// exit path below prefers it over the secondary ctx.Err() the
	// failure causes.
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}

	cellIdx := make(chan int)
	records := make(chan Record)

	var wg sync.WaitGroup
	wg.Add(e.workers)
	for w := 0; w < e.workers; w++ {
		go func() {
			defer wg.Done()
			wk := &worker{scratch: newScratch(len(e.factories))}
			for c := range cellIdx {
				busyStart := time.Now()
				err := e.runCell(ctx, wk, c, records)
				e.em.workerBusy.Add(int64(time.Since(busyStart)))
				if err == nil {
					continue
				}
				var ce *CellError
				if e.p.ContinueOnError && errors.As(err, &ce) {
					if e.recordFailure(ce) {
						continue
					}
					fail(e.budgetExhausted())
					return
				}
				fail(err)
				return
			}
		}()
	}

	// Feed scheduled cell indices in network-major order (all runs of
	// network 0, then network 1, ...) so a draining pool touches as few
	// instances as possible at once; close records when all workers are
	// done.
	go func() {
		defer close(cellIdx)
		for c := 0; c < e.p.Networks*e.p.Runs; c++ {
			if e.skip[c] {
				continue
			}
			select {
			case cellIdx <- c:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(records)
	}()

	done, total := 0, e.p.Networks*e.p.Runs*len(e.factories)
	for rec := range records {
		collect(rec)
		done++
		if e.p.OnProgress != nil {
			e.p.OnProgress(Progress{Done: done, Total: total, Resumed: e.resumed, Policy: rec.Policy, Network: rec.Network, Run: rec.Run})
		}
	}

	// The pool has drained (records closed), so no cell will release its
	// network slot anymore. A cancelled grid leaves the slots of its
	// never-scheduled cells pinned; unpin them all so an abandoned run
	// cannot hold instances live through the engine. Abandoned timed-out
	// attempts observe the nil slot and fail fast (errInstanceReleased).
	for i := range e.nets {
		e.nets[i].inst.Store(nil)
	}

	wall := time.Since(start)
	e.em.wallNS.Observe(int64(wall))
	if wall > 0 && e.workers > 0 {
		busy := e.em.workerBusy.Value() - busyBefore
		e.em.utilizationPct.Observe(int64(100 * float64(busy) / (float64(wall) * float64(e.workers))))
	}
	// The records channel closed, so the pool has drained and firstErr —
	// written before any cancel() — is stable: prefer it on every path.
	if firstErr != nil {
		return firstErr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return e.failureSummary()
}

// recordFailure registers one failed cell under ContinueOnError and
// reports whether the grid may keep going (failure budget not yet
// exhausted).
func (e *engine) recordFailure(ce *CellError) bool {
	e.em.cellFailures.Inc()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.failures = append(e.failures, ce)
	return e.p.MaxFailures <= 0 || len(e.failures) <= e.p.MaxFailures
}

// budgetExhausted builds the fatal error for a blown failure budget.
func (e *engine) budgetExhausted() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return fmt.Errorf("sim: failure budget exhausted (%d cells failed, MaxFailures = %d): %w",
		len(e.failures), e.p.MaxFailures, errors.Join(joinCellErrors(e.failures)...))
}

// failureSummary returns the trailing *FailureSummary of a completed
// ContinueOnError run, or nil if every cell succeeded.
func (e *engine) failureSummary() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.failures) == 0 {
		return nil
	}
	return &FailureSummary{
		Cells:    e.p.Networks * e.p.Runs,
		Failures: append([]*CellError(nil), e.failures...),
	}
}

// netSlot memoizes one network's immutable instance behind a build-once
// gate, and drops it once every scheduled cell of the network has
// released so long grids do not pin all Networks instances in memory at
// once. The instance pointer is atomic because a timed-out, abandoned
// attempt may still read the slot while the final release unpins it.
type netSlot struct {
	once sync.Once
	inst atomic.Pointer[osn.Instance]
	err  error
	// remaining counts the scheduled cells of this network still owed a
	// release; at zero the memoized instance is unpinned.
	remaining atomic.Int32
}

// get returns the network's instance, building it on first use. Callers
// racing the builder block on the once-gate instead of regenerating. A
// nil, nil return means the slot was already released (only reachable by
// an abandoned attempt racing the last release).
func (s *netSlot) get(p Protocol, i int, netSeed rng.Seed, em engineMetrics) (*osn.Instance, error) {
	s.once.Do(func() {
		defer obs.StartSpan(em.networkNS).End()
		g, err := p.Gen.Generate(netSeed)
		if err != nil {
			s.err = fmt.Errorf("sim: generate network %d: %w", i, err)
			return
		}
		inst, err := p.Setup.Build(g, netSeed.Split("setup"))
		if err != nil {
			s.err = fmt.Errorf("sim: setup network %d: %w", i, err)
			return
		}
		inst.Instrument(p.Metrics)
		s.inst.Store(inst)
	})
	return s.inst.Load(), s.err
}

// release marks one scheduled cell of the network finished — success,
// failure and cancellation alike; after the last one the memoized
// instance is unpinned (in-flight references keep it alive). Callers
// invoke it exactly once per cell, via defer, so no early-return path
// can leak the instance for the rest of the grid.
func (s *netSlot) release() {
	if s.remaining.Add(-1) == 0 {
		s.inst.Store(nil)
	}
}

// worker holds one pool goroutine's reusable scratch. The indirection
// exists for CellTimeout: an abandoned (timed-out) attempt keeps the old
// scratch exclusively while the worker re-arms with a fresh one, so a
// leaked attempt never shares mutable state with subsequent cells.
type worker struct {
	scratch *scratch
}

// scratch is the pooled attack state (core.Runner) and, for policies
// implementing core.Reusable, the policy instances themselves — their
// Init re-slices internal buffers, so reuse turns three-plus O(N)
// allocations per cell into reseeds.
type scratch struct {
	runner core.Runner
	pols   []core.Reusable
}

func newScratch(nfactories int) *scratch {
	return &scratch{pols: make([]core.Reusable, nfactories)}
}

// policy returns factory fi's policy for a cell seeded by seed, reusing a
// cached Reusable instance when one exists.
func (sc *scratch) policy(f PolicyFactory, fi int, seed rng.Seed) (core.Policy, error) {
	if cached := sc.pols[fi]; cached != nil {
		cached.Reseed(seed)
		return cached, nil
	}
	//accu:allow seedflow -- exclusive branch: reuse path returned above
	pol, err := f.New(seed)
	if err != nil {
		return nil, fmt.Errorf("sim: build policy %s: %w", f.Name, err)
	}
	if r, ok := pol.(core.Reusable); ok {
		sc.pols[fi] = r
	}
	return pol, nil
}

// runCell executes cell c = network·Runs + run through the retry loop,
// delivers its records and commits it to the checkpoint. Records are
// delivered only for fully successful cells, so a failed cell never
// leaks a partial policy roster into the collector. The network slot is
// released exactly once per cell on every path — success, failure, retry
// exhaustion and cancellation alike.
func (e *engine) runCell(ctx context.Context, wk *worker, c int, records chan<- Record) error {
	i, j := c/e.p.Runs, c%e.p.Runs
	defer e.nets[i].release()
	var (
		attempts []error
		lastPol  string
	)
	for attempt := 0; attempt <= e.p.Retries; attempt++ {
		if ctx.Err() != nil {
			return nil // cooperative cancellation, not a cell failure
		}
		recs, pol, err := e.runAttempt(ctx, wk, i, j, attempt)
		if err == nil {
			return e.deliver(ctx, recs, i, j, records)
		}
		// Only a cancellation the attempt itself observed is cooperative;
		// a genuine cell error that races an external cancellation still
		// counts (the worker-error-wins contract).
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			return nil
		}
		attempts = append(attempts, err)
		lastPol = pol
		if attempt < e.p.Retries {
			e.em.cellRetries.Inc()
		}
	}
	return &CellError{Policy: lastPol, Network: i, Run: j, Err: errors.Join(attempts...)}
}

// deliver streams one completed cell's records to the collector and,
// once all of them are out, commits the cell to the checkpoint. The
// sim.cells counter increments only after a record is actually received,
// so cancelled cells are never counted-but-uncollected.
func (e *engine) deliver(ctx context.Context, recs []Record, i, j int, records chan<- Record) error {
	for _, rec := range recs {
		select {
		case records <- rec:
			e.em.cells.Inc()
		case <-ctx.Done():
			return nil
		}
	}
	if e.p.Checkpoint != nil {
		if err := e.p.Checkpoint.Commit(CellKey{Network: i, Run: j}, recs); err != nil {
			return fmt.Errorf("sim: checkpoint cell network %d run %d: %w", i, j, err)
		}
	}
	return nil
}

// runAttempt executes one cell attempt, bounded by Protocol.CellTimeout
// when set. Policies are pure compute and cannot be interrupted, so a
// timed-out attempt is abandoned together with the worker's scratch;
// the replacement scratch keeps later cells isolated from the leaked
// goroutine.
func (e *engine) runAttempt(ctx context.Context, wk *worker, i, j, attempt int) ([]Record, string, error) {
	if e.p.CellTimeout <= 0 {
		return e.attemptCell(wk.scratch, i, j, attempt)
	}
	type outcome struct {
		recs []Record
		pol  string
		err  error
	}
	sc := wk.scratch
	ch := make(chan outcome, 1)
	go func() {
		//accu:allow scratchescape -- ownership transfer, not sharing: on timeout or cancel the worker abandons this attempt and re-arms with a fresh scratch below, so this goroutine is the scratch's sole owner for its remaining lifetime
		recs, pol, err := e.attemptCell(sc, i, j, attempt)
		ch <- outcome{recs: recs, pol: pol, err: err}
	}()
	timer := time.NewTimer(e.p.CellTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.recs, o.pol, o.err
	case <-timer.C:
		wk.scratch = newScratch(len(e.factories))
		e.em.cellTimeouts.Inc()
		return nil, "", fmt.Errorf("sim: network %d run %d attempt %d: %w after %v",
			i, j, attempt, ErrCellTimeout, e.p.CellTimeout)
	case <-ctx.Done():
		wk.scratch = newScratch(len(e.factories))
		return nil, "", ctx.Err()
	}
}

// attemptCell computes every policy record of cell (i, j) for one
// attempt: sample the cell's realization and attack it with every
// policy. Attempt 0 derives seeds exactly as the historical scheduler
// did (network split, then run split, then realization/policy splits),
// which is what keeps the record stream byte-identical across worker
// counts, scheduler versions and resumes; attempt a > 0 re-derives a
// fresh branch via SplitN("retry", a) so retries never replay a consumed
// stream. The failing factory's name accompanies the error when the
// failure is attributable to one policy.
func (e *engine) attemptCell(sc *scratch, i, j, attempt int) ([]Record, string, error) {
	netSeed := e.p.Seed.SplitN("network", i)
	inst, err := e.nets[i].get(e.p, i, netSeed, e.em)
	if err != nil {
		return nil, "", err
	}
	if inst == nil {
		return nil, "", errInstanceReleased
	}
	runSeed := netSeed.SplitN("run", j)
	if attempt > 0 {
		runSeed = runSeed.SplitN("retry", attempt)
	}
	re := inst.SampleRealization(runSeed.Split("realization"))
	recs := make([]Record, 0, len(e.factories))
	for fi, f := range e.factories {
		pol, err := sc.policy(f, fi, runSeed.SplitN("policy", fi))
		if err != nil {
			return nil, f.Name, err
		}
		cell := obs.StartSpan(e.em.cellNS)
		var res *core.Result
		if e.p.BatchSize > 1 {
			bp, ok := pol.(core.BatchSelector)
			if !ok {
				return nil, f.Name, fmt.Errorf("sim: policy %s does not support batching", f.Name)
			}
			res, err = sc.runner.RunBatched(bp, re, e.p.K, e.p.BatchSize)
		} else {
			res, err = sc.runner.Run(pol, re, e.p.K)
		}
		cell.End()
		if err != nil {
			return nil, f.Name, fmt.Errorf("sim: run %s on network %d run %d: %w", f.Name, i, j, err)
		}
		recs = append(recs, Record{Policy: f.Name, Network: i, Run: j, Result: res})
	}
	return recs, "", nil
}
