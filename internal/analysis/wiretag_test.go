package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestWireTag(t *testing.T) {
	analysistest.Run(t, analysis.WireTag(), analysistest.Fixture{
		Dir:        "testdata/src/wiretag_sim",
		ImportPath: "example.test/internal/sim",
	})
}
