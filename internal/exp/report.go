package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/stats"
)

// Report is the output of one experiment: structured tables (for JSON
// export and plotting), their plain-text rendering, and free-form shape
// notes for EXPERIMENTS.md.
type Report struct {
	// ID is the experiment key ("fig2", "table1", ...).
	ID string `json:"id"`
	// Title describes the paper artifact being reproduced.
	Title string `json:"title"`
	// Tables holds the structured results, one per section.
	Tables []stats.Table `json:"tables"`
	// Rendered is the plain-text table/series output.
	Rendered string `json:"-"`
	// Notes lists observed qualitative shapes (who wins, crossovers).
	Notes []string `json:"notes,omitempty"`
	// MetricsSnapshot holds the engine/environment/policy metrics
	// captured after the experiment when Config.Metrics was set.
	MetricsSnapshot *obs.Snapshot `json:"metrics,omitempty"`
}

// Metrics returns the metrics snapshot captured for this report, or nil
// when the experiment ran without a registry.
func (r *Report) Metrics() *obs.Snapshot { return r.MetricsSnapshot }

// newReport assembles a report, deriving the text rendering from the
// structured tables.
func newReport(id, title string, tables []stats.Table, notes []string) *Report {
	var sb strings.Builder
	for i, t := range tables {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(t.Render())
	}
	return &Report{ID: id, Title: title, Tables: tables, Rendered: sb.String(), Notes: notes}
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n\n", r.ID, r.Title)
	sb.WriteString(r.Rendered)
	if len(r.Notes) > 0 {
		sb.WriteString("\nNotes:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&sb, "  - %s\n", n)
		}
	}
	return sb.String()
}

// Runner executes one experiment.
type Runner func(ctx context.Context, cfg Config) (*Report, error)

// Registry maps experiment ids to runners, covering every table and
// figure of §IV plus the Theorem 1 verification.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1":      Table1,
		"fig2":        Fig2,
		"fig3":        Fig3,
		"fig4":        Fig4,
		"fig5":        Fig5,
		"fig6":        Fig6,
		"fig7":        Fig7,
		"thm1":        Theorem1,
		"ext-soft":    ExtSoft,
		"ext-batch":   ExtBatch,
		"ext-defense": ExtDefense,
		"ext-multi":   ExtMulti,
		"claims":      Claims,
	}
}

// IDs returns the registry keys in stable order.
func IDs() []string {
	reg := Registry()
	ids := make([]string, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
