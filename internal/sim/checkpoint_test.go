package sim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/obs"
)

// marshalRecords serializes a record set in (policy, network, run) order
// so two collections can be compared byte for byte regardless of
// scheduling.
func marshalRecords(t *testing.T, recs []Record) []byte {
	t.Helper()
	sorted := append([]Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Policy != b.Policy {
			return a.Policy < b.Policy
		}
		if a.Network != b.Network {
			return a.Network < b.Network
		}
		return a.Run < b.Run
	})
	out, err := json.Marshal(sorted)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestCellJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := OpenCellJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	committed := []CellLine{
		{CellKey: CellKey{Network: 0, Run: 0}, Records: []Record{{Policy: "a", Network: 0, Run: 0, Result: &core.Result{Benefit: 1}}}},
		{CellKey: CellKey{Network: 1, Run: 2}, Records: []Record{{Policy: "a", Network: 1, Run: 2, Result: &core.Result{Benefit: 7}}}},
	}
	for _, cl := range committed {
		if err := j.Commit(cl.CellKey, cl.Records); err != nil {
			t.Fatal(err)
		}
	}
	if !j.Done(CellKey{Network: 1, Run: 2}) || j.Done(CellKey{Network: 1, Run: 3}) {
		t.Error("Done wrong for committed/uncommitted cells")
	}
	// Re-committing a done cell is a no-op, not a duplicate line.
	if err := j.Commit(committed[0].CellKey, committed[0].Records); err != nil {
		t.Fatal(err)
	}
	if got := j.Cells(); got != 2 {
		t.Errorf("Cells() = %d, want 2", got)
	}
	// Commit does not retain records: nothing to replay this session.
	replayed := 0
	j.Replay(func(Record) { replayed++ })
	if replayed != 0 {
		t.Errorf("fresh journal replayed %d records, want 0", replayed)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenCellJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Cells(); got != 2 {
		t.Errorf("resumed Cells() = %d, want 2", got)
	}
	for _, cl := range committed {
		if !r.Done(cl.CellKey) {
			t.Errorf("resumed journal lost cell %+v", cl.CellKey)
		}
	}
	var recs []Record
	r.Replay(func(rec Record) { recs = append(recs, rec) })
	if len(recs) != 2 || recs[0].Result.Benefit != 1 || recs[1].Result.Benefit != 7 {
		t.Errorf("replayed records = %+v", recs)
	}
}

func TestCellJournalRefusesExistingWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := OpenCellJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenCellJournal(path, false); !errors.Is(err, fs.ErrExist) {
		t.Errorf("reopen without resume: err = %v, want fs.ErrExist", err)
	}
	// resume=true with no existing file simply creates one.
	fresh := filepath.Join(t.TempDir(), "new.jsonl")
	r, err := OpenCellJournal(fresh, true)
	if err != nil {
		t.Fatalf("resume on missing file: %v", err)
	}
	if r.Cells() != 0 {
		t.Errorf("fresh resumed journal holds %d cells", r.Cells())
	}
	r.Close()
}

func TestCellJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := OpenCellJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(CellKey{Network: 0, Run: 0}, []Record{{Policy: "a"}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(CellKey{Network: 0, Run: 1}, []Record{{Policy: "a"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	// Simulate a crash mid-append: a torn trailing line without newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"network":9,"run":9,"rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r, err := OpenCellJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Cells(); got != 2 {
		t.Errorf("Cells() = %d after torn tail, want 2", got)
	}
	if r.Done(CellKey{Network: 9, Run: 9}) {
		t.Error("torn cell reported done")
	}
	// The journal must be re-appendable on a clean line boundary.
	if err := r.Commit(CellKey{Network: 2, Run: 0}, []Record{{Policy: "a"}}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3:\n%s", len(lines), data)
	}
	for _, line := range lines {
		var cl CellLine
		if err := json.Unmarshal(line, &cl); err != nil {
			t.Errorf("unparseable line after truncate+append: %q", line)
		}
	}
}

func TestCellJournalDropsCorruptLineAndTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	good, _ := json.Marshal(CellLine{CellKey: CellKey{Network: 0, Run: 0}})
	after, _ := json.Marshal(CellLine{CellKey: CellKey{Network: 0, Run: 1}})
	content := append(append(append(append(good, '\n'), []byte("{corrupt}\n")...), after...), '\n')
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCellJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Everything from the corrupt line on is dropped — only the prefix is
	// trustworthy once the append-only invariant is broken.
	if r.Cells() != 1 || !r.Done(CellKey{Network: 0, Run: 0}) || r.Done(CellKey{Network: 0, Run: 1}) {
		t.Errorf("Cells() = %d, done(0,0)=%v done(0,1)=%v; want only the prefix cell",
			r.Cells(), r.Done(CellKey{Network: 0, Run: 0}), r.Done(CellKey{Network: 0, Run: 1}))
	}
	// The discarded-but-valid cell behind the corrupt line is counted, not
	// silently re-run.
	if got := r.Dropped(); got != 1 {
		t.Errorf("Dropped() = %d, want 1", got)
	}
}

// TestCellJournalCountsDroppedCells pins the corrupt-middle-line
// accounting: truncate-forward recovery keeps its semantics (everything
// from the corrupt line on is dropped) but the valid cells it discards
// are counted — deduplicated, and excluding both the corrupt line itself
// and a torn trailing line.
func TestCellJournalCountsDroppedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	line := func(network, run int) []byte {
		b, err := json.Marshal(CellLine{CellKey: CellKey{Network: network, Run: run}, Records: []Record{{Policy: "a", Network: network, Run: run}}})
		if err != nil {
			t.Fatal(err)
		}
		return append(b, '\n')
	}
	var content []byte
	content = append(content, line(0, 0)...)
	content = append(content, line(0, 1)...)
	content = append(content, []byte("{corrupt}\n")...)
	content = append(content, line(0, 2)...)
	content = append(content, line(0, 3)...)
	content = append(content, line(0, 1)...)  // duplicate of a kept cell: not lost work
	content = append(content, line(0, 3)...)  // duplicate of a dropped cell: counted once
	content = append(content, []byte(`{"network":0,"run":4,"rec`)...) // torn tail: not counted
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := OpenCellJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Cells(); got != 2 {
		t.Errorf("Cells() = %d, want the 2 cells before the corrupt line", got)
	}
	if got := r.Dropped(); got != 2 {
		t.Errorf("Dropped() = %d, want 2 (cells (0,2) and (0,3), deduped, torn tail excluded)", got)
	}
	// The journal is truncated at the corrupt line and re-appendable: the
	// dropped cells can simply be committed again.
	if err := r.Commit(CellKey{Network: 0, Run: 2}, []Record{{Policy: "a", Network: 0, Run: 2}}); err != nil {
		t.Fatal(err)
	}
	if r.Cells() != 3 {
		t.Errorf("Cells() = %d after recommitting a dropped cell, want 3", r.Cells())
	}
}

// TestCellJournalSyncEvery exercises the sync-on-commit path: with
// SyncEvery(1) every commit fsyncs (observable only as "still correct"),
// duplicates do not reset the cadence, and the journal round-trips.
func TestCellJournalSyncEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := OpenCellJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	j.SyncEvery(1)
	for run := 0; run < 3; run++ {
		if err := j.Commit(CellKey{Network: 0, Run: run}, []Record{{Policy: "a", Network: 0, Run: run}}); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate commit: no write, no sync, no error.
	if err := j.Commit(CellKey{Network: 0, Run: 0}, nil); err != nil {
		t.Fatal(err)
	}
	// Without Close, the cells must already be durable on disk: reopening
	// the raw file sees every committed line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(data, []byte("\n")); got != 3 {
		t.Errorf("journal holds %d lines before Close, want 3", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenCellJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Cells() != 3 || r.Dropped() != 0 {
		t.Errorf("Cells() = %d Dropped() = %d, want 3 and 0", r.Cells(), r.Dropped())
	}
}

// TestRunCheckpointKillAndResume pins the resume-determinism contract:
// kill a checkpointed grid mid-run, reopen the journal, and the union of
// replayed and freshly computed records is byte-identical to an
// uninterrupted run — at any worker count, killed at any point.
func TestRunCheckpointKillAndResume(t *testing.T) {
	p := testProtocol()
	p.Networks = 3
	p.Runs = 4
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	var baseline []Record
	if err := Run(context.Background(), p, factories, func(r Record) { baseline = append(baseline, r) }); err != nil {
		t.Fatal(err)
	}
	want := marshalRecords(t, baseline)

	for _, workers := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "cells.jsonl")
		j, err := OpenCellJournal(path, false)
		if err != nil {
			t.Fatal(err)
		}
		pp := p
		pp.Workers = workers
		pp.Checkpoint = j
		ctx, cancel := context.WithCancel(context.Background())
		killed := 0
		err = Run(ctx, pp, factories, func(Record) {
			killed++
			if killed == 9 { // mid-grid, mid-cell
				cancel()
			}
		})
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: killed run: %v", workers, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}

		r, err := OpenCellJournal(path, true)
		if err != nil {
			t.Fatal(err)
		}
		checkpointed := r.Cells()
		if checkpointed == 0 || checkpointed == p.Networks*p.Runs {
			t.Fatalf("workers=%d: %d of %d cells checkpointed; kill point not mid-grid",
				workers, checkpointed, p.Networks*p.Runs)
		}
		reg := obs.New()
		pp.Metrics = reg
		pp.Checkpoint = r
		var merged []Record
		collect := func(rec Record) { merged = append(merged, rec) }
		r.Replay(collect)
		if err := Run(context.Background(), pp, factories, collect); err != nil {
			t.Fatalf("workers=%d: resumed run: %v", workers, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
		if got := marshalRecords(t, merged); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: resumed record set differs from uninterrupted run", workers)
		}
		if got := reg.Counter("sim.cells_skipped").Value(); got != int64(checkpointed) {
			t.Errorf("workers=%d: sim.cells_skipped = %d, want %d", workers, got, checkpointed)
		}
		// The resumed engine only counts freshly computed records.
		fresh := int64(len(merged)) - int64(checkpointed*len(factories))
		if got := reg.Counter("sim.cells").Value(); got != fresh {
			t.Errorf("workers=%d: sim.cells = %d, want %d fresh records", workers, got, fresh)
		}
	}
}

// TestRunCheckpointFullyResumedGrid resumes a journal that already holds
// every cell: Run computes nothing, delivers nothing, and still succeeds.
func TestRunCheckpointFullyResumedGrid(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := OpenCellJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	p.Checkpoint = j
	var first []Record
	if err := Run(context.Background(), p, factories, func(r Record) { first = append(first, r) }); err != nil {
		t.Fatal(err)
	}
	j.Close()

	r, err := OpenCellJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	p.Checkpoint = r
	var replayed []Record
	r.Replay(func(rec Record) { replayed = append(replayed, rec) })
	live := 0
	if err := Run(context.Background(), p, factories, func(Record) { live++ }); err != nil {
		t.Fatal(err)
	}
	if live != 0 {
		t.Errorf("fully resumed grid recomputed %d records", live)
	}
	if !bytes.Equal(marshalRecords(t, replayed), marshalRecords(t, first)) {
		t.Error("replayed records differ from the original run")
	}
}

// failingCheckpointer commits successfully n times, then fails.
type failingCheckpointer struct {
	n   int
	err error
}

func (c *failingCheckpointer) Done(CellKey) bool { return false }

func (c *failingCheckpointer) Commit(CellKey, []Record) error {
	if c.n == 0 {
		return c.err
	}
	c.n--
	return nil
}

// TestRunCheckpointCommitErrorIsFatal pins the durability contract: a
// failing Commit aborts the run even under ContinueOnError, because a
// cell that cannot be made durable would silently re-run on resume.
func TestRunCheckpointCommitErrorIsFatal(t *testing.T) {
	p := testProtocol()
	p.ContinueOnError = true
	sentinel := errors.New("disk full")
	p.Checkpoint = &failingCheckpointer{n: 2, err: sentinel}
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	err = Run(context.Background(), p, factories, func(Record) {})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the checkpoint error", err)
	}
}
