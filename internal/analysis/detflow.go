package analysis

import (
	"go/ast"
	"go/types"
)

// Detflow returns the flow-based determinism analyzer, the wave-4
// successor to detrand: instead of banning nondeterminism sources
// outright, it tracks their values through the taint engine (taint.go)
// and reports only when one reaches a deterministic sink — a digest,
// sketch or summary input whose bytes the resume/merge invariants pin.
//
// This is what makes the timing packages checkable at all: detrand must
// allow time.Now there (obs spans, profiles, lease TTLs), so a clock
// read that leaks into a RecordDigest went unflagged before this wave.
// Detflow closes that hole: in both the strict and timing packages, a
// value derived from the clock, the environment, the global math/rand
// generators, or map iteration order must never feed
//
//	(sim.RecordDigest).Collect   — the bit-identity record-set digest
//	(sim.Summary).Collect        — the mergeable result summary
//	(stats.Sketch).Add           — the byte-identical quantile sketch
//	(stats.Welford).Add          — the streaming moments accumulator
//	(stats.Series).Add           — the checkpoint-curve accumulator
//
// Diagnostics carry the bounded witness chain ("d ← jitter ← time.Now")
// so the provenance is readable without re-deriving the flow by hand.
// Sorted-after-range map reads and other intentional flows are the
// audited exception: //accu:allow detflow -- <why>.
func Detflow() *Analyzer {
	a := &Analyzer{
		Name: "detflow",
		Doc: "track clock/env/global-rand/map-order values interprocedurally " +
			"and flag any that reach digest, sketch or summary inputs in the " +
			"deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !pkgPathIn(pass.Path, strictPackages) && !pkgPathIn(pass.Path, timingPackages) &&
			!pkgPathIs(pass.Path, "internal/stats") {
			return nil
		}
		cg := NewCallGraph(pass.Pkg, pass.Info, pass.Files)
		eng := NewTaintEngine(pass, cg)
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sink, ok := detSink(pass, call)
				if !ok {
					return true
				}
				for _, arg := range call.Args {
					if t := eng.ExprTaint(arg); t != nil {
						pass.Reportf(arg.Pos(),
							"%s-tainted value reaches deterministic sink %s (flow: %s); derive it from the seed tree or annotate the audited exception",
							t.Kind, sink, t.Witness)
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// detSinkMethods maps module package suffix → receiver named type →
// method names whose inputs are pinned by the determinism invariants.
var detSinkMethods = map[string]map[string]map[string]bool{
	"internal/sim": {
		"RecordDigest": {"Collect": true},
		"Summary":      {"Collect": true},
	},
	"internal/stats": {
		"Sketch":  {"Add": true},
		"Welford": {"Add": true},
		"Series":  {"Add": true},
	},
}

// detSink reports whether call invokes a deterministic sink, with a
// display name for the diagnostic.
func detSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(pass, call)
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := namedRecvName(sig.Recv().Type())
	for suffix, types := range detSinkMethods {
		if pkgPathIs(f.Pkg().Path(), suffix) && types[recv][f.Name()] {
			return "(" + recv + ")." + f.Name(), true
		}
	}
	return "", false
}
