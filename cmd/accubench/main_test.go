package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with args and returns stdout contents.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	tmp := filepath.Join(t.TempDir(), "out.txt")
	f, err := os.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	runErr := run(args, f)
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tmp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestListFlag(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig2", "fig7", "thm1"} {
		if !strings.Contains(out, id) {
			t.Errorf("missing %q in list output:\n%s", id, out)
		}
	}
}

func TestNoExperiment(t *testing.T) {
	if _, err := capture(t, nil); err == nil {
		t.Error("no experiment: want error")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := capture(t, []string{"figX"}); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestBadFlag(t *testing.T) {
	if _, err := capture(t, []string{"-scale", "nope", "table1"}); err == nil {
		t.Error("bad flag: want error")
	}
}

func TestRunTable1(t *testing.T) {
	out, err := capture(t, []string{
		"-scale", "0.02", "-networks", "1", "-runs", "1",
		"-cautious", "5", "-datasets", "slashdot", "table1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "slashdot") || !strings.Contains(out, "77360") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunThm1(t *testing.T) {
	out, err := capture(t, []string{"thm1"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Theorem 1") || strings.Contains(out, "VIOLATED") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	out, err := capture(t, []string{
		"-scale", "0.02", "-networks", "1", "-runs", "1", "-k", "20",
		"-cautious", "5", "-datasets", "slashdot", "table1", "fig2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "== table1") || !strings.Contains(out, "== fig2") {
		t.Errorf("output:\n%s", out)
	}
}

func TestJSONReports(t *testing.T) {
	out, err := capture(t, []string{"-json", "thm1"})
	if err != nil {
		t.Fatal(err)
	}
	var reports []struct {
		ID     string `json:"id"`
		Title  string `json:"title"`
		Tables []struct {
			Header []string   `json:"header"`
			Rows   [][]string `json:"rows"`
		} `json:"tables"`
		Notes []string `json:"notes"`
	}
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(reports) != 1 || reports[0].ID != "thm1" {
		t.Fatalf("reports = %+v", reports)
	}
	if len(reports[0].Tables) == 0 || len(reports[0].Tables[0].Rows) != 3 {
		t.Errorf("tables = %+v", reports[0].Tables)
	}
}
