package sim

import (
	"context"
	"testing"

	"github.com/accu-sim/accu/internal/core"
)

func TestSummaryAggregates(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary([]int{5, 10, 15})
	if err := Run(context.Background(), p, factories, sum.Collect); err != nil {
		t.Fatal(err)
	}
	if len(sum.Policies()) != len(factories) {
		t.Fatalf("policies = %v", sum.Policies())
	}
	cells := int64(p.Networks * p.Runs)
	for _, name := range sum.Policies() {
		fb := sum.FinalBenefit(name)
		if fb.Count() != cells {
			t.Errorf("%s: count = %d, want %d", name, fb.Count(), cells)
		}
		if fb.Mean() <= 0 {
			t.Errorf("%s: mean benefit %v", name, fb.Mean())
		}
		if cf := sum.CautiousFriends(name); cf.Count() != cells {
			t.Errorf("%s: cautious count = %d", name, cf.Count())
		}
		curve := sum.Curve(name)
		if curve == nil || curve.Len() != 3 {
			t.Fatalf("%s: curve missing", name)
		}
		// Curves are monotone in k and end at the final benefit.
		means := curve.Means()
		for i := 1; i < len(means); i++ {
			if means[i]+1e-9 < means[i-1] {
				t.Errorf("%s: curve not monotone: %v", name, means)
			}
		}
		if means[len(means)-1] != fb.Mean() {
			t.Errorf("%s: final checkpoint %v != final benefit %v", name, means[len(means)-1], fb.Mean())
		}
	}
	if len(sum.Curves()) != len(factories) {
		t.Errorf("curves = %d", len(sum.Curves()))
	}
}

func TestSummaryMerge(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := []int{5, 10, 15}

	// Reference: one summary over the whole run.
	whole := NewSummary(checkpoints)
	if err := Run(context.Background(), p, factories, whole.Collect); err != nil {
		t.Fatal(err)
	}

	// Split the same record stream across two partial summaries by cell
	// parity, then merge — the reduction the dist coordinator performs.
	parts := []*Summary{NewSummary(checkpoints), NewSummary(checkpoints)}
	if err := Run(context.Background(), p, factories, func(rec Record) {
		parts[(rec.Network*p.Runs+rec.Run)%2].Collect(rec)
	}); err != nil {
		t.Fatal(err)
	}
	merged := NewSummary(checkpoints)
	for _, part := range parts {
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := merged.Policies(), whole.Policies(); len(got) != len(want) {
		t.Fatalf("policies = %v, want %v", got, want)
	}
	for _, name := range whole.Policies() {
		wf, mf := whole.FinalBenefit(name), merged.FinalBenefit(name)
		if mf == nil || mf.Count() != wf.Count() {
			t.Fatalf("%s: merged count = %v, want %d", name, mf, wf.Count())
		}
		if diff := mf.Mean() - wf.Mean(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: merged mean %v, want %v", name, mf.Mean(), wf.Mean())
		}
		wc, mc := whole.Curve(name), merged.Curve(name)
		if mc == nil || mc.Len() != wc.Len() {
			t.Fatalf("%s: merged curve %v", name, mc)
		}
		wm, mm := wc.Means(), mc.Means()
		for i := range wm {
			if diff := mm[i] - wm[i]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: curve[%d] = %v, want %v", name, i, mm[i], wm[i])
			}
		}
	}

	// Curve presence must match on both sides.
	if err := NewSummary(nil).Merge(whole); err == nil {
		t.Error("merging curved into curveless summary should fail")
	}
	bare := NewSummary(nil)
	if err := Run(context.Background(), p, factories, bare.Collect); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(bare); err == nil {
		t.Error("merging curveless into curved summary should fail")
	}

	// Merging into an empty summary adopts policies and curves wholesale.
	empty := NewSummary(checkpoints)
	if err := empty.Merge(whole); err != nil {
		t.Fatal(err)
	}
	for _, name := range whole.Policies() {
		if empty.FinalBenefit(name).Count() != whole.FinalBenefit(name).Count() {
			t.Errorf("%s: adopted count mismatch", name)
		}
	}
}

func TestSummaryWithoutCheckpoints(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary(nil)
	if err := Run(context.Background(), p, factories, sum.Collect); err != nil {
		t.Fatal(err)
	}
	for _, name := range sum.Policies() {
		if sum.Curve(name) != nil {
			t.Errorf("%s: unexpected curve", name)
		}
		if sum.FinalBenefit(name).Count() == 0 {
			t.Errorf("%s: no records", name)
		}
	}
	if got := sum.Curves(); len(got) != 0 {
		t.Errorf("curves = %v", got)
	}
	if sum.FinalBenefit("nope") != nil {
		t.Error("unknown policy should return nil")
	}
}
