package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// sketchBytes marshals a sketch's snapshot — the byte-identity the
// determinism contract is stated over.
func sketchBytes(t *testing.T, s *Sketch) string {
	t.Helper()
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSketchEmpty(t *testing.T) {
	s := NewSketch()
	if s.Count() != 0 {
		t.Errorf("count = %d", s.Count())
	}
	if !math.IsNaN(s.Quantile(0.5)) || !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Error("empty sketch should answer NaN")
	}
	snap := s.Snapshot()
	if snap.Min != 0 || snap.Max != 0 || snap.P50 != 0 {
		t.Errorf("empty snapshot carries NaN-unsafe values: %+v", snap)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("empty snapshot not marshalable: %v", err)
	}
}

func TestSketchSingleValue(t *testing.T) {
	s := NewSketch()
	s.Add(42.5)
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 42.5 {
			t.Errorf("Quantile(%v) = %v, want exactly 42.5 (clamped to min==max)", q, got)
		}
	}
	if s.Min() != 42.5 || s.Max() != 42.5 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSketchInvalidQuantile(t *testing.T) {
	s := NewSketch()
	s.Add(1)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(s.Quantile(q)) {
			t.Errorf("Quantile(%v) should be NaN", q)
		}
	}
}

func TestSketchIgnoresNaNInf(t *testing.T) {
	s := NewSketch()
	s.Add(math.NaN())
	s.Add(math.Inf(1))
	s.Add(math.Inf(-1))
	if s.Count() != 0 {
		t.Errorf("NaN/Inf counted: %d", s.Count())
	}
	s.Add(3)
	if s.Count() != 1 || s.Quantile(0.5) != 3 {
		t.Errorf("count=%d q50=%v", s.Count(), s.Quantile(0.5))
	}
}

func TestSketchNewSketchWithValidation(t *testing.T) {
	for _, tc := range []struct {
		alpha float64
		maxC  int
	}{{0, 64}, {1, 64}, {-0.1, 64}, {0.01, 7}, {0.01, 0}} {
		if _, err := NewSketchWith(tc.alpha, tc.maxC); err == nil {
			t.Errorf("NewSketchWith(%v, %d): want error", tc.alpha, tc.maxC)
		}
	}
}

// TestSketchQuantileAccuracy pins the relative-error guarantee against
// exact quantiles of the sorted sample, across signs and zeros.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 0, 5000)
	// Room for every base bucket of the log-spread sample, so the test
	// pins the level-0 accuracy statement.
	s, err := NewSketchWith(DefaultSketchAlpha, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		var x float64
		switch i % 10 {
		case 0:
			x = 0
		case 1:
			x = -math.Exp(rng.Float64()*8 - 4) // negative, log-spread
		default:
			x = math.Exp(rng.Float64()*10 - 2) // positive, log-spread
		}
		xs = append(xs, x)
		s.Add(x)
	}
	sort.Float64s(xs)
	if s.Level() != 0 {
		t.Fatalf("level = %d; accuracy statement below assumes base resolution", s.Level())
	}
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q * float64(len(xs))))
		if rank < 1 {
			rank = 1
		}
		exact := xs[rank-1]
		got := s.Quantile(q)
		tol := 2*DefaultSketchAlpha*math.Abs(exact) + 1e-12
		if math.Abs(got-exact) > tol {
			t.Errorf("Quantile(%v) = %v, exact %v (|err| %v > tol %v)", q, got, exact, math.Abs(got-exact), tol)
		}
	}
	if got := s.Quantile(0); got != xs[0] {
		t.Errorf("Quantile(0) = %v, want exact min %v", got, xs[0])
	}
	if got := s.Quantile(1); got != xs[len(xs)-1] {
		t.Errorf("Quantile(1) = %v, want exact max %v", got, xs[len(xs)-1])
	}
}

// TestSketchMergeMatchesSingleStream is the core mergeability property:
// partitioning a stream arbitrarily, sketching the parts independently
// and merging in a shuffled order must yield byte-identical state to
// one sketch that saw every observation directly.
func TestSketchMergeMatchesSingleStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			switch rng.Intn(8) {
			case 0:
				xs[i] = 0
			case 1:
				xs[i] = -rng.ExpFloat64() * 100
			default:
				xs[i] = rng.ExpFloat64() * 1000
			}
		}
		single := NewSketch()
		for _, x := range xs {
			single.Add(x)
		}

		parts := 1 + rng.Intn(6)
		sketches := make([]*Sketch, parts)
		for i := range sketches {
			sketches[i] = NewSketch()
		}
		for _, x := range xs {
			sketches[rng.Intn(parts)].Add(x)
		}
		rng.Shuffle(parts, func(i, j int) { sketches[i], sketches[j] = sketches[j], sketches[i] })
		merged := NewSketch()
		for _, part := range sketches {
			if err := merged.Merge(part); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := sketchBytes(t, merged), sketchBytes(t, single); got != want {
			t.Fatalf("trial %d: merged snapshot differs from single-stream\nmerged: %s\nsingle: %s", trial, got, want)
		}
	}
}

// TestSketchMergeAssociativeOrderInsensitive checks (a⊕b)⊕c == a⊕(b⊕c)
// == (c⊕a)⊕b at the byte level.
func TestSketchMergeAssociativeOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mk := func(n int) *Sketch {
		s := NewSketch()
		for i := 0; i < n; i++ {
			s.Add(rng.NormFloat64() * 50)
		}
		return s
	}
	a, b, c := mk(100), mk(3), mk(750)
	fold := func(parts ...*Sketch) string {
		out := NewSketch()
		for _, p := range parts {
			if err := out.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		return sketchBytes(t, out)
	}
	left := fold(a, b, c)
	ab := NewSketch()
	if err := ab.Merge(a); err != nil {
		t.Fatal(err)
	}
	if err := ab.Merge(b); err != nil {
		t.Fatal(err)
	}
	bc := NewSketch()
	if err := bc.Merge(b); err != nil {
		t.Fatal(err)
	}
	if err := bc.Merge(c); err != nil {
		t.Fatal(err)
	}
	right := fold(a, bc)
	rotated := fold(c, a, b)
	grouped := fold(ab, c)
	if left != right || left != rotated || left != grouped {
		t.Fatalf("merge not associative/order-insensitive:\n(a b)c: %s\na(bc):  %s\n(c a)b: %s", left, right, rotated)
	}
	// Merging must not mutate its argument.
	before := sketchBytes(t, b)
	s := NewSketch()
	if err := s.Merge(b); err != nil {
		t.Fatal(err)
	}
	if sketchBytes(t, b) != before {
		t.Error("Merge mutated its argument")
	}
}

// TestSketchCoarsening drives the sketch past its centroid bound and
// checks the canonical-level contract survives: bounded memory, exact
// counts, and partition-order-independent bytes even across levels.
func TestSketchCoarsening(t *testing.T) {
	const maxC = 16
	mk := func() *Sketch {
		s, err := NewSketchWith(0.01, maxC)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	n := 20000
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(17))
	for i := range vals {
		vals[i] = math.Exp(rng.Float64()*20 - 10) // forces far more than 16 base buckets
	}
	single := mk()
	for _, v := range vals {
		single.Add(v)
	}
	if single.Centroids() > maxC {
		t.Errorf("centroids = %d > bound %d", single.Centroids(), maxC)
	}
	if single.Level() == 0 {
		t.Error("expected coarsening to engage")
	}
	if single.Count() != int64(n) {
		t.Errorf("count = %d", single.Count())
	}

	// A fine sketch (few values, level 0) merged with a coarse one, in
	// both orders, against the single stream.
	fine, coarseFirst := mk(), mk()
	cut := 10
	for _, v := range vals[:cut] {
		fine.Add(v)
	}
	coarse := mk()
	for _, v := range vals[cut:] {
		coarse.Add(v)
	}
	if err := coarseFirst.Merge(coarse); err != nil {
		t.Fatal(err)
	}
	if err := coarseFirst.Merge(fine); err != nil {
		t.Fatal(err)
	}
	fineFirst := mk()
	if err := fineFirst.Merge(fine); err != nil {
		t.Fatal(err)
	}
	if err := fineFirst.Merge(coarse); err != nil {
		t.Fatal(err)
	}
	want := sketchBytes(t, single)
	if got := sketchBytes(t, coarseFirst); got != want {
		t.Errorf("coarse-then-fine differs from single stream")
	}
	if got := sketchBytes(t, fineFirst); got != want {
		t.Errorf("fine-then-coarse differs from single stream")
	}
}

func TestSketchMergeIncompatible(t *testing.T) {
	a := NewSketch()
	b, err := NewSketchWith(0.01, DefaultMaxCentroids)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Error("merging different alpha should fail")
	}
	c, err := NewSketchWith(DefaultSketchAlpha, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(1)
	if err := a.Merge(c); err == nil {
		t.Error("merging different maxCentroids should fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil should no-op: %v", err)
	}
}

func TestSketchSnapshotRoundTrip(t *testing.T) {
	s := NewSketch()
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 1000; i++ {
		s.Add(rng.NormFloat64() * 10)
	}
	s.Add(0)
	snap := s.Snapshot()
	back, err := SketchFromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := sketchBytes(t, back), sketchBytes(t, s); got != want {
		t.Errorf("round trip changed state:\n%s\n%s", got, want)
	}
	// The restored sketch must keep merging correctly.
	other := NewSketch()
	other.Add(5)
	if err := back.Merge(other); err != nil {
		t.Fatal(err)
	}
	if back.Count() != s.Count()+1 {
		t.Errorf("post-round-trip merge count = %d", back.Count())
	}
}

func TestSketchFromSnapshotRejectsCorrupt(t *testing.T) {
	s := NewSketch()
	s.Add(1)
	s.Add(-2)
	good := s.Snapshot()

	bad := good
	bad.Count = 99
	if _, err := SketchFromSnapshot(bad); err == nil {
		t.Error("count mismatch accepted")
	}
	bad = good
	bad.Pos = append([]SketchCentroid(nil), good.Pos...)
	bad.Pos[0].Count = -1
	if _, err := SketchFromSnapshot(bad); err == nil {
		t.Error("negative bucket count accepted")
	}
	bad = good
	bad.Pos = append(append([]SketchCentroid(nil), good.Pos...), good.Pos[0])
	if _, err := SketchFromSnapshot(bad); err == nil {
		t.Error("duplicate bucket accepted")
	}
	bad = good
	bad.Alpha = 0
	if _, err := SketchFromSnapshot(bad); err == nil {
		t.Error("invalid alpha accepted")
	}
}

// TestWelfordMergeMultiWayMatchesSequential extends the pairwise merge
// property to arbitrary partitions and merge orders, the shape the dist
// coordinator actually produces: mean and variance of the merged
// accumulator must match the single-stream accumulator to within float
// round-off, and the count exactly.
func TestWelfordMergeMultiWayMatchesSequential(t *testing.T) {
	f := func(xs []float64, assign []uint8, shuffle uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		var seq Welford
		for _, x := range xs {
			seq.Add(x)
		}
		const parts = 4
		var ws [parts]Welford
		for i, x := range xs {
			p := 0
			if i < len(assign) {
				p = int(assign[i]) % parts
			}
			ws[p].Add(x)
		}
		order := []int{0, 1, 2, 3}
		r := rand.New(rand.NewSource(int64(shuffle)))
		r.Shuffle(parts, func(i, j int) { order[i], order[j] = order[j], order[i] })
		var merged Welford
		for _, p := range order {
			merged.Merge(ws[p])
		}
		if merged.Count() != seq.Count() {
			return false
		}
		scale := 1.0
		for _, x := range xs {
			scale = math.Max(scale, math.Abs(x))
		}
		return math.Abs(merged.Mean()-seq.Mean()) <= 1e-9*scale &&
			math.Abs(merged.Variance()-seq.Variance()) <= 1e-9*scale*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
