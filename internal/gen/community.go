package gen

import (
	"fmt"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/rng"
)

// Collaboration generates a DBLP-like collaboration network: nodes are
// partitioned into communities whose sizes follow a power law; within a
// community nodes are densely wired (papers ≈ small cliques), and a
// fraction of nodes act as bridges joining a second community. The
// result reproduces the traits the paper's DBLP discussion relies on —
// many medium-high-degree nodes (prolific authors) instead of a few
// extreme hubs, and strong local clustering.
type Collaboration struct {
	N int // number of nodes
	// MeanCommunity is the mean community size (power-law sizes with
	// exponent ~2.5 truncated to [3, 10*MeanCommunity]).
	MeanCommunity int
	// PIntra is the within-community link probability.
	PIntra float64
	// PBridge is the probability that a node joins a second community.
	PBridge float64
}

var _ Generator = Collaboration{}

// Name implements Generator.
func (g Collaboration) Name() string {
	return fmt.Sprintf("collab(n=%d,mc=%d,pi=%.2f,pb=%.2f)", g.N, g.MeanCommunity, g.PIntra, g.PBridge)
}

// Generate implements Generator.
func (g Collaboration) Generate(seed rng.Seed) (*graph.Graph, error) {
	if g.N < 1 || g.MeanCommunity < 2 || g.PIntra <= 0 || g.PIntra > 1 || g.PBridge < 0 || g.PBridge > 1 {
		return nil, fmt.Errorf("%w: collab %+v", ErrBadParam, g)
	}
	r := seed.Rand()

	// Carve the node range into communities with power-law sizes.
	var communities [][]int32
	next := 0
	maxSize := 10 * g.MeanCommunity
	for next < g.N {
		size, err := sampleCommunitySize(r, g.MeanCommunity, maxSize)
		if err != nil {
			return nil, err
		}
		if next+size > g.N {
			size = g.N - next
		}
		members := make([]int32, size)
		for i := range members {
			members[i] = int32(next + i)
		}
		communities = append(communities, members)
		next += size
	}

	// Bridge nodes join one extra, uniformly random community.
	for u := 0; u < g.N; u++ {
		if rng.Bernoulli(r, g.PBridge) {
			c := r.IntN(len(communities))
			communities[c] = append(communities[c], int32(u))
		}
	}

	b := graph.NewBuilder(g.N)
	for _, members := range communities {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				if members[i] == members[j] {
					continue
				}
				if rng.Bernoulli(r, g.PIntra) {
					if _, err := b.AddEdge(int(members[i]), int(members[j])); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return b.Freeze(), nil
}

// sampleCommunitySize draws one power-law community size in [3, maxSize]
// with mean roughly meanSize.
func sampleCommunitySize(r interface{ Float64() float64 }, meanSize, maxSize int) (int, error) {
	// A Pareto-ish draw: size = 3 + floor(meanSize * (u^{-0.5} - 1) / 2),
	// clipped. Mean is on the order of meanSize for typical values.
	u := r.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	size := 3 + int(float64(meanSize)*(1/(u+0.35)-1)/2)
	if size < 3 {
		size = 3
	}
	if size > maxSize {
		size = maxSize
	}
	return size, nil
}
