package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestLockedIO(t *testing.T) {
	analysistest.Run(t, analysis.LockedIO(), analysistest.Fixture{
		Dir:        "testdata/src/lockedio_serv",
		ImportPath: "example.test/internal/serv",
		Deps: map[string]string{
			// The stub carries sim.CellJournal so the in-module
			// cross-package blocking root resolves without sim's ASTs.
			"example.test/internal/sim": "testdata/src/simjournal_stub",
		},
	})
}
