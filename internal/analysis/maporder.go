package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder returns the map-iteration analyzer: inside the strict
// deterministic packages it flags `range` over a map whose body has
// order-dependent effects — appending to a slice, consuming a
// *rand.Rand, updating an obs instrument, or writing records. Go
// randomizes map iteration order, so any of these leaks nondeterminism
// into the record stream in a way the race detector cannot see.
//
// Iterations whose results are order-normalized afterwards (e.g. key
// collection followed by sort.Strings) are legitimate; suppress those
// sites with an //accu:allow maporder directive carrying the reason.
func MapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc: "flag map iteration with order-dependent effects (slice appends, " +
			"rand draws, obs updates, record writes) in deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !pkgPathIn(pass.Path, strictPackages) {
			return nil
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				tv, ok := pass.Info.Types[rs.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if hazard := mapBodyHazard(pass, rs.Body); hazard != "" {
					pass.Reportf(rs.For,
						"map iteration order is random, but this loop body %s; iterate a sorted or insertion-ordered view instead",
						hazard)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// mapBodyHazard reports the first order-dependent effect found in the
// body of a map-range loop, or "" if the body looks order-insensitive.
func mapBodyHazard(pass *Pass, body *ast.BlockStmt) string {
	var hazard string
	ast.Inspect(body, func(n ast.Node) bool {
		if hazard != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if b, ok := pass.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
				hazard = "appends to a slice"
			}
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[fun]
			if !ok {
				return true
			}
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return true
			}
			switch {
			case receiverPkgPath(m) == "math/rand" || receiverPkgPath(m) == "math/rand/v2":
				hazard = fmt.Sprintf("consumes random numbers (%s.%s)", receiverTypeName(m), m.Name())
			case strings.HasSuffix(receiverPkgPath(m), "internal/obs") || receiverPkgPath(m) == "obs":
				hazard = fmt.Sprintf("updates obs instrument %s.%s in map order", receiverTypeName(m), m.Name())
			case strings.HasPrefix(m.Name(), "Record") || strings.HasPrefix(m.Name(), "Write"):
				hazard = fmt.Sprintf("writes records via %s", m.Name())
			}
		}
		return hazard == ""
	})
	return hazard
}

// receiverPkgPath returns the declaring package path of a method's
// receiver type, or "" when unavailable.
func receiverPkgPath(m *types.Func) string {
	if m.Pkg() == nil {
		return ""
	}
	return m.Pkg().Path()
}

// receiverTypeName returns the bare receiver type name of a method.
func receiverTypeName(m *types.Func) string {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
