package sim

import (
	"context"
	"testing"

	"github.com/accu-sim/accu/internal/core"
)

func TestSummaryAggregates(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary([]int{5, 10, 15})
	if err := Run(context.Background(), p, factories, sum.Collect); err != nil {
		t.Fatal(err)
	}
	if len(sum.Policies()) != len(factories) {
		t.Fatalf("policies = %v", sum.Policies())
	}
	cells := int64(p.Networks * p.Runs)
	for _, name := range sum.Policies() {
		fb := sum.FinalBenefit(name)
		if fb.Count() != cells {
			t.Errorf("%s: count = %d, want %d", name, fb.Count(), cells)
		}
		if fb.Mean() <= 0 {
			t.Errorf("%s: mean benefit %v", name, fb.Mean())
		}
		if cf := sum.CautiousFriends(name); cf.Count() != cells {
			t.Errorf("%s: cautious count = %d", name, cf.Count())
		}
		curve := sum.Curve(name)
		if curve == nil || curve.Len() != 3 {
			t.Fatalf("%s: curve missing", name)
		}
		// Curves are monotone in k and end at the final benefit.
		means := curve.Means()
		for i := 1; i < len(means); i++ {
			if means[i]+1e-9 < means[i-1] {
				t.Errorf("%s: curve not monotone: %v", name, means)
			}
		}
		if means[len(means)-1] != fb.Mean() {
			t.Errorf("%s: final checkpoint %v != final benefit %v", name, means[len(means)-1], fb.Mean())
		}
	}
	if len(sum.Curves()) != len(factories) {
		t.Errorf("curves = %d", len(sum.Curves()))
	}
}

func TestSummaryWithoutCheckpoints(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary(nil)
	if err := Run(context.Background(), p, factories, sum.Collect); err != nil {
		t.Fatal(err)
	}
	for _, name := range sum.Policies() {
		if sum.Curve(name) != nil {
			t.Errorf("%s: unexpected curve", name)
		}
		if sum.FinalBenefit(name).Count() == 0 {
			t.Errorf("%s: no records", name)
		}
	}
	if got := sum.Curves(); len(got) != 0 {
		t.Errorf("curves = %v", got)
	}
	if sum.FinalBenefit("nope") != nil {
		t.Error("unknown policy should return nil")
	}
}
