package gen

import (
	"errors"
	"testing"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/rng"
)

func seed(i uint64) rng.Seed { return rng.NewSeed(i, i+1) }

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi{N: 100, M: 250}.Generate(seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 || g.M() != 250 {
		t.Fatalf("N=%d M=%d, want 100/250", g.N(), g.M())
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	cases := []ErdosRenyi{
		{N: -1, M: 0},
		{N: 3, M: -1},
		{N: 3, M: 4}, // > n(n-1)/2
	}
	for _, c := range cases {
		if _, err := c.Generate(seed(2)); !errors.Is(err, ErrBadParam) {
			t.Errorf("%+v: err=%v, want ErrBadParam", c, err)
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	gen := ErdosRenyi{N: 50, M: 100}
	g1, err := gen.Generate(seed(3))
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Generate(seed(3))
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g1, g2)
}

func assertSameGraph(t *testing.T, g1, g2 *graph.Graph) {
	t.Helper()
	if g1.N() != g2.N() || g1.M() != g2.M() {
		t.Fatalf("shape differs: %d/%d vs %d/%d", g1.N(), g1.M(), g2.N(), g2.M())
	}
	g1.EachEdge(func(u, v int) bool {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) missing in second graph", u, v)
		}
		return true
	})
}

func TestBarabasiAlbertShape(t *testing.T) {
	g, err := BarabasiAlbert{N: 500, MAttach: 3}.Generate(seed(4))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	// Seed clique (4 nodes, 6 edges) + 496 nodes × 3 edges.
	wantM := 6 + 496*3
	if g.M() != wantM {
		t.Fatalf("M = %d, want %d", g.M(), wantM)
	}
	// Every non-seed node has degree >= mAttach.
	for u := 4; u < 500; u++ {
		if g.Degree(u) < 3 {
			t.Fatalf("node %d degree %d < 3", u, g.Degree(u))
		}
	}
	// BA must be connected.
	if _, count := g.Components(); count != 1 {
		t.Errorf("BA graph has %d components", count)
	}
}

func TestBarabasiAlbertHubs(t *testing.T) {
	g, err := BarabasiAlbert{N: 2000, MAttach: 2}.Generate(seed(5))
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeDegreeStats(10, 100)
	// Preferential attachment should create hubs far above the mean.
	if float64(st.Max) < 5*st.Mean {
		t.Errorf("no hubs: max=%d mean=%.1f", st.Max, st.Mean)
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	cases := []BarabasiAlbert{
		{N: 0, MAttach: 1},
		{N: 10, MAttach: 0},
		{N: 5, MAttach: 5},
	}
	for _, c := range cases {
		if _, err := c.Generate(seed(6)); !errors.Is(err, ErrBadParam) {
			t.Errorf("%+v: err=%v, want ErrBadParam", c, err)
		}
	}
}

func TestHolmeKimClustering(t *testing.T) {
	hk, err := HolmeKim{N: 1500, MAttach: 4, PTriad: 0.9}.Generate(seed(7))
	if err != nil {
		t.Fatal(err)
	}
	ba, err := BarabasiAlbert{N: 1500, MAttach: 4}.Generate(seed(7))
	if err != nil {
		t.Fatal(err)
	}
	chk := hk.AverageClustering(400)
	cba := ba.AverageClustering(400)
	if chk <= cba {
		t.Errorf("Holme–Kim clustering %.4f not above BA %.4f", chk, cba)
	}
}

func TestHolmeKimErrors(t *testing.T) {
	if _, err := (HolmeKim{N: 10, MAttach: 2, PTriad: 1.5}).Generate(seed(8)); !errors.Is(err, ErrBadParam) {
		t.Errorf("pTriad>1: err=%v", err)
	}
	if _, err := (HolmeKim{N: 10, MAttach: 2, PTriad: -0.1}).Generate(seed(8)); !errors.Is(err, ErrBadParam) {
		t.Errorf("pTriad<0: err=%v", err)
	}
}

func TestPowerLawConfigShape(t *testing.T) {
	g, err := PowerLawConfig{N: 3000, MinDeg: 3, MaxDeg: 200, Gamma: 2.3}.Generate(seed(9))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3000 {
		t.Fatalf("N = %d", g.N())
	}
	st := g.ComputeDegreeStats(10, 100)
	if st.Max > 220 {
		t.Errorf("max degree %d exceeds cutoff", st.Max)
	}
	if st.Mean < 2 {
		t.Errorf("mean degree %.2f too low — erasure destroyed the graph", st.Mean)
	}
}

func TestPowerLawConfigErrors(t *testing.T) {
	if _, err := (PowerLawConfig{N: 0, MinDeg: 1, MaxDeg: 5, Gamma: 2}).Generate(seed(10)); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := (PowerLawConfig{N: 10, MinDeg: 1, MaxDeg: 5, Gamma: 0.5}).Generate(seed(10)); err == nil {
		t.Error("gamma<1: want error")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g, err := WattsStrogatz{N: 200, K: 6, Beta: 0.1}.Generate(seed(11))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 200 {
		t.Fatalf("N = %d", g.N())
	}
	// Edge count close to N*K/2 (rewiring can only drop duplicates).
	if g.M() < 500 || g.M() > 600 {
		t.Errorf("M = %d, want ≈ 600", g.M())
	}
	// Low beta keeps high clustering.
	if c := g.AverageClustering(0); c < 0.3 {
		t.Errorf("clustering %.3f too low for beta=0.1", c)
	}
}

func TestWattsStrogatzErrors(t *testing.T) {
	cases := []WattsStrogatz{
		{N: 2, K: 2, Beta: 0},
		{N: 10, K: 3, Beta: 0},  // odd K
		{N: 10, K: 10, Beta: 0}, // K >= N
		{N: 10, K: 2, Beta: 2},
	}
	for _, c := range cases {
		if _, err := c.Generate(seed(12)); !errors.Is(err, ErrBadParam) {
			t.Errorf("%+v: err=%v, want ErrBadParam", c, err)
		}
	}
}

func TestCollaborationShape(t *testing.T) {
	g, err := Collaboration{N: 5000, MeanCommunity: 14, PIntra: 0.85, PBridge: 0.35}.Generate(seed(13))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5000 {
		t.Fatalf("N = %d", g.N())
	}
	// Collaboration graphs are highly clustered.
	if c := g.AverageClustering(500); c < 0.3 {
		t.Errorf("clustering %.3f too low for a collaboration graph", c)
	}
}

func TestCollaborationErrors(t *testing.T) {
	cases := []Collaboration{
		{N: 0, MeanCommunity: 5, PIntra: 0.5},
		{N: 10, MeanCommunity: 1, PIntra: 0.5},
		{N: 10, MeanCommunity: 5, PIntra: 0},
		{N: 10, MeanCommunity: 5, PIntra: 0.5, PBridge: 1.5},
	}
	for _, c := range cases {
		if _, err := c.Generate(seed(14)); !errors.Is(err, ErrBadParam) {
			t.Errorf("%+v: err=%v, want ErrBadParam", c, err)
		}
	}
}

func TestPresetLookup(t *testing.T) {
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Key != name {
			t.Errorf("key mismatch: %q vs %q", p.Key, name)
		}
	}
	if _, err := PresetByName("FACEBOOK"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := PresetByName("orkut"); err == nil {
		t.Error("unknown preset: want error")
	}
}

func TestPresetScaleValidation(t *testing.T) {
	p, err := PresetByName("facebook")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0, -1, 1.5} {
		if _, err := p.Generator(s); err == nil {
			t.Errorf("scale %v: want error", s)
		}
	}
}

// TestPresetCalibration checks that each preset at a small scale hits the
// target edge density within tolerance. Density (mean degree), not raw
// count, is the scale-invariant property.
func TestPresetCalibration(t *testing.T) {
	const scale = 0.04
	for _, name := range PresetNames() {
		t.Run(name, func(t *testing.T) {
			p, err := PresetByName(name)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := p.Generator(scale)
			if err != nil {
				t.Fatal(err)
			}
			g, err := gen.Generate(seed(15))
			if err != nil {
				t.Fatal(err)
			}
			wantMean := 2 * float64(p.RefEdges) / float64(p.RefNodes)
			gotMean := 2 * float64(g.M()) / float64(g.N())
			if gotMean < wantMean*0.5 || gotMean > wantMean*1.6 {
				t.Errorf("mean degree %.1f, want ≈ %.1f (±60%%)", gotMean, wantMean)
			}
		})
	}
}

func TestPresetDegreeBandPopulated(t *testing.T) {
	// Cautious users are drawn from the degree band [10, 100]; every
	// preset must have enough such nodes even at small scale.
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := p.Generator(0.04)
		if err != nil {
			t.Fatal(err)
		}
		g, err := gen.Generate(seed(16))
		if err != nil {
			t.Fatal(err)
		}
		band := g.NodesInDegreeBand(10, 100)
		if len(band) < 20 {
			t.Errorf("%s: only %d nodes in degree band [10,100]", name, len(band))
		}
	}
}
