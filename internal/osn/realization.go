package osn

import (
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/rng"
)

// Realization is one ground-truth draw Φ of the instance's randomness:
// which potential edges actually exist and which reckless users would
// accept a friend request (§II-B). Cautious users carry no random state —
// their acceptance is a deterministic function of the attacker's friends.
// A Realization is immutable and safe to share.
type Realization struct {
	inst       *Instance
	edgeExists []bool // aligned with CSR slots, symmetric
	accepts    []bool // reckless users only
	// acceptsLow/acceptsHigh pre-draw the two possible coin flips of a
	// cautious user under the generalized §III-B model: acceptsLow is
	// consulted when the request arrives below threshold (probability
	// QLow), acceptsHigh at/above threshold (probability QHigh). Under
	// the paper's deterministic model these are constants false/true.
	acceptsLow  []bool
	acceptsHigh []bool
}

// SampleRealization draws a realization: each potential edge (u, v)
// exists independently with probability p(u, v) and each reckless user u
// accepts with probability q(u).
func (in *Instance) SampleRealization(seed rng.Seed) *Realization {
	defer obs.StartSpan(in.mSampleNS).End()
	r := seed.Split("osn-realization").Rand()
	re := &Realization{
		inst:        in,
		edgeExists:  make([]bool, in.g.AdjSize()),
		accepts:     make([]bool, in.N()),
		acceptsLow:  make([]bool, in.N()),
		acceptsHigh: make([]bool, in.N()),
	}
	in.g.EachEdge(func(u, v int) bool {
		if rng.Bernoulli(r, in.edgeProb[in.g.IndexOf(u, v)]) {
			re.edgeExists[in.g.IndexOf(u, v)] = true
			re.edgeExists[in.g.IndexOf(v, u)] = true
		}
		return true
	})
	for u := 0; u < in.N(); u++ {
		switch in.kind[u] {
		case Reckless:
			re.accepts[u] = rng.Bernoulli(r, in.acceptProb[u])
		case Cautious:
			re.acceptsLow[u] = rng.Bernoulli(r, in.qLow[u])
			re.acceptsHigh[u] = rng.Bernoulli(r, in.qHigh[u])
		}
	}
	return re
}

// FixedRealization builds a deterministic realization from explicit
// predicates, used by the theory package and tests. edgeExists is
// consulted once per undirected edge with u < v; accepts is consulted for
// reckless users only. Cautious users follow their model deterministically
// (acceptsLow iff QLow >= 1, acceptsHigh iff QHigh >= 1... i.e. the
// certain outcomes); use FixedRealizationCautious to pin their coins.
func (in *Instance) FixedRealization(edgeExists func(u, v int) bool, accepts func(u int) bool) *Realization {
	return in.FixedRealizationCautious(edgeExists, accepts, nil, nil)
}

// FixedRealizationCautious additionally pins the two cautious coin flips:
// low(u) is the below-threshold outcome, high(u) the at/above-threshold
// outcome. nil funcs resolve to the certain outcome (accept iff the
// corresponding probability is 1).
func (in *Instance) FixedRealizationCautious(edgeExists func(u, v int) bool, accepts func(u int) bool, low, high func(u int) bool) *Realization {
	re := &Realization{
		inst:        in,
		edgeExists:  make([]bool, in.g.AdjSize()),
		accepts:     make([]bool, in.N()),
		acceptsLow:  make([]bool, in.N()),
		acceptsHigh: make([]bool, in.N()),
	}
	in.g.EachEdge(func(u, v int) bool {
		if edgeExists == nil || edgeExists(u, v) {
			re.edgeExists[in.g.IndexOf(u, v)] = true
			re.edgeExists[in.g.IndexOf(v, u)] = true
		}
		return true
	})
	for u := 0; u < in.N(); u++ {
		switch in.kind[u] {
		case Reckless:
			re.accepts[u] = accepts == nil || accepts(u)
		case Cautious:
			if low != nil {
				re.acceptsLow[u] = low(u)
			} else {
				re.acceptsLow[u] = in.qLow[u] >= 1
			}
			if high != nil {
				re.acceptsHigh[u] = high(u)
			} else {
				re.acceptsHigh[u] = in.qHigh[u] >= 1
			}
		}
	}
	return re
}

// Instance returns the instance this realization was drawn from.
func (re *Realization) Instance() *Instance { return re.inst }

// EdgeExistsSlot reports whether the potential edge at the given CSR slot
// exists under this realization.
func (re *Realization) EdgeExistsSlot(slot int) bool { return re.edgeExists[slot] }

// EdgeExists reports whether the potential edge (u, v) exists. Absent
// potential edges report false.
func (re *Realization) EdgeExists(u, v int) bool {
	i := re.inst.g.IndexOf(u, v)
	return i >= 0 && re.edgeExists[i]
}

// Accepts reports whether reckless user u would accept a friend request.
// For cautious users it always reports false — their acceptance depends
// on the attack state; see AcceptsCautious.
func (re *Realization) Accepts(u int) bool { return re.accepts[u] }

// AcceptsCautious reports a cautious user's pre-drawn coin for the given
// threshold condition: the below-threshold coin if aboveThreshold is
// false, the at/above-threshold coin otherwise.
func (re *Realization) AcceptsCautious(u int, aboveThreshold bool) bool {
	if aboveThreshold {
		return re.acceptsHigh[u]
	}
	return re.acceptsLow[u]
}

// RealizedDegree counts the realized edges incident to u.
func (re *Realization) RealizedDegree(u int) int {
	base := re.inst.g.AdjBase(u)
	d := 0
	for i := 0; i < re.inst.g.Degree(u); i++ {
		if re.edgeExists[base+i] {
			d++
		}
	}
	return d
}
