package exp

import (
	"context"
	"fmt"
	"sort"

	"github.com/accu-sim/accu/internal/defense"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
	"github.com/accu-sim/accu/internal/stats"
)

// ExtDefense is an extension experiment that exercises the paper's stated
// motivation — revealing the key users to protect. It measures per-user
// vulnerability under repeated ABM attacks, then compares three hardening
// budgets of equal size (convert b reckless users to cautious):
// vulnerability-guided (most-compromised first), degree-based (highest
// degree first) and random, reporting the attacker's residual benefit.
func ExtDefense(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	dataset := fig45Dataset(cfg)
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, err
	}
	sample, err := g.Generate(cfg.Seed.Split("extdefense-net"))
	if err != nil {
		return nil, err
	}
	inst, err := cfg.setup().Build(sample, cfg.Seed.Split("extdefense-setup"))
	if err != nil {
		return nil, err
	}

	runs := cfg.Networks * cfg.Runs // one network, all repetitions on it
	seed := cfg.Seed.Split("extdefense")
	baseline, err := defense.Analyze(ctx, inst, defense.ABMAttacker(), runs, cfg.K, seed)
	if err != nil {
		return nil, err
	}

	budget := inst.NumCautious() // protect as many users as V_C again
	recklessOnly := func(users []int) []int {
		out := make([]int, 0, budget)
		for _, u := range users {
			if inst.Kind(u) == osn.Reckless {
				out = append(out, u)
			}
			if len(out) == budget {
				break
			}
		}
		return out
	}

	// Strategy 1: most-compromised users first.
	var byVuln []int
	for _, st := range baseline.TopCompromised(inst.N()) {
		byVuln = append(byVuln, st.User)
	}
	// Strategy 2: highest degree first.
	byDegree := make([]int, inst.N())
	for i := range byDegree {
		byDegree[i] = i
	}
	sort.SliceStable(byDegree, func(i, j int) bool {
		return sample.Degree(byDegree[i]) > sample.Degree(byDegree[j])
	})
	// Strategy 3: highest coreness first (k-core membership is a robust
	// centrality for attack surfaces).
	cores := sample.CoreNumbers()
	byCore := make([]int, inst.N())
	for i := range byCore {
		byCore[i] = i
	}
	sort.SliceStable(byCore, func(i, j int) bool {
		return cores[byCore[i]] > cores[byCore[j]]
	})
	// Strategy 4: random.
	byRandom := make([]int, inst.N())
	for i := range byRandom {
		byRandom[i] = i
	}
	rng.Shuffle(seed.Split("random-order").Rand(), byRandom)

	header := []string{"strategy", "hardened", "attacker-benefit", "reduction", "protected-compromise"}
	rows := [][]string{{
		"none (baseline)", "0",
		fmt.Sprintf("%.1f", baseline.MeanBenefit), "0.0%", "-",
	}}
	strategies := []struct {
		name  string
		order []int
	}{
		{"vulnerability-guided", byVuln},
		{"degree-based", byDegree},
		{"kcore-based", byCore},
		{"random", byRandom},
	}
	results := make(map[string]float64, len(strategies))
	for _, s := range strategies {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		targets := recklessOnly(s.order)
		hardened, err := defense.Harden(inst, targets, 0.3)
		if err != nil {
			return nil, fmt.Errorf("exp: extdefense %s: %w", s.name, err)
		}
		//accu:allow seedflow -- paired design: every strategy replays the same realizations
		after, err := defense.Analyze(ctx, hardened, defense.ABMAttacker(), runs, cfg.K, seed)
		if err != nil {
			return nil, fmt.Errorf("exp: extdefense %s: %w", s.name, err)
		}
		var protectedRate float64
		for _, u := range targets {
			protectedRate += after.CompromiseRate(u)
		}
		if len(targets) > 0 {
			protectedRate /= float64(len(targets))
		}
		results[s.name] = after.MeanBenefit
		rows = append(rows, []string{
			s.name,
			fmt.Sprintf("%d", len(targets)),
			fmt.Sprintf("%.1f", after.MeanBenefit),
			fmt.Sprintf("%.1f%%", 100*(1-after.MeanBenefit/baseline.MeanBenefit)),
			fmt.Sprintf("%.0f%%", 100*protectedRate),
		})
	}

	notes := []string{
		fmt.Sprintf("dataset %s, %d attack runs, k=%d, hardening budget %d users", dataset, runs, cfg.K, budget),
	}
	if results["vulnerability-guided"] <= results["random"] {
		notes = append(notes, "vulnerability-guided hardening beats random — measuring the attack tells defenders whom to protect")
	}
	tables := []stats.Table{{Header: header, Rows: rows}}
	return newReport("ext-defense", "Extension: hardening the most-vulnerable users against ABM", tables, notes), nil
}
