// Command simbench measures the Monte-Carlo cell scheduler's throughput
// and writes the results as machine-readable JSON (BENCH_sim.json), so
// the scheduler's performance trajectory can be diffed across commits.
//
// For every (grid shape × worker count) combination it reports cells/sec
// (a cell is one policy execution), heap allocations per cell, and the
// engine's own worker-utilisation reading. The default shapes pin the
// two interesting regimes: Networks=1 (the "one real dataset, many
// repetitions" configuration the pre-cell-scheduler engine serialized
// onto a single worker) and Networks=16 (a wide grid).
//
// Usage:
//
//	simbench                      # defaults, writes BENCH_sim.json
//	simbench -quick -out out.json # CI smoke sizing
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	accu "github.com/accu-sim/accu"
	"github.com/accu-sim/accu/internal/sim/fault"
)

// shape is one Monte-Carlo grid configuration to measure.
type shape struct {
	Networks, Runs int
}

// result is the measurement of one (shape, workers) combination.
type result struct {
	Networks        int     `json:"networks"`
	Runs            int     `json:"runs"`
	Policies        int     `json:"policies"`
	K               int     `json:"k"`
	Workers         int     `json:"workers"`
	ResolvedWorkers int     `json:"resolvedWorkers"`
	// Oversubscribed flags a worker count above GOMAXPROCS: the workers
	// time-slice one set of cores, so the row measures scheduling overhead,
	// not parallel speedup. Such rows must not be read as scaling data.
	Oversubscribed bool `json:"oversubscribed,omitempty"`
	Cells           int     `json:"cells"`
	FailedCells     int     `json:"failedCells,omitempty"`
	Seconds         float64 `json:"seconds"`
	CellsPerSec     float64 `json:"cellsPerSec"`
	AllocsPerCell   float64 `json:"allocsPerCell"`
	UtilizationPct  int64   `json:"utilizationPct"`
}

// output is the full benchmark report.
type output struct {
	Preset    string  `json:"preset"`
	Scale     float64 `json:"scale"`
	GoVersion string  `json:"goVersion"`
	// NumCPU and GoMaxProcs record the machine the numbers came from;
	// throughput rows are only comparable between reports with the same
	// values.
	NumCPU     int      `json:"numCpu"`
	GoMaxProcs int      `json:"goMaxProcs"`
	Generated  string   `json:"generated"`
	Results    []result `json:"results"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set.
type config struct {
	preset   string
	scale    float64
	k        int
	cautious int
	seed     uint64
	out      string
	shapes   []shape
	workers  []int
	chaos    bool
	strict   bool
}

// parseFlags resolves the command line into a config.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("simbench", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "slashdot", "dataset preset to generate")
		scale    = fs.Float64("scale", 0.02, "network scale factor in (0, 1]")
		k        = fs.Int("k", 30, "friend-request budget per cell")
		cautious = fs.Int("cautious", 10, "cautious users per network")
		seed     = fs.Uint64("seed", 20191243, "root random seed")
		out      = fs.String("out", "BENCH_sim.json", "output file")
		shapes   = fs.String("shapes", "1x30,16x2", "comma-separated networksxruns grid shapes")
		workers  = fs.String("workers", "1,4,8", "comma-separated worker counts")
		quick    = fs.Bool("quick", false, "CI smoke sizing (tiny grids, overrides -shapes)")
		chaos    = fs.Bool("chaos", false, "inject seeded faults (failing/stalling cells) and run with continue-on-error + retries")
		strict   = fs.Bool("strict", false, "refuse worker counts above GOMAXPROCS instead of annotating them")
	)
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	c := config{preset: *preset, scale: *scale, k: *k, cautious: *cautious, seed: *seed, out: *out, chaos: *chaos, strict: *strict}
	if *quick {
		*shapes = "1x6,4x2"
		c.k = 10
	}
	for _, s := range strings.Split(*shapes, ",") {
		nx, rx, ok := strings.Cut(strings.TrimSpace(s), "x")
		n, err1 := strconv.Atoi(nx)
		r, err2 := strconv.Atoi(rx)
		if !ok || err1 != nil || err2 != nil || n <= 0 || r <= 0 {
			return config{}, fmt.Errorf("bad shape %q (want e.g. 1x30)", s)
		}
		c.shapes = append(c.shapes, shape{Networks: n, Runs: r})
	}
	for _, s := range strings.Split(*workers, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w <= 0 {
			return config{}, fmt.Errorf("bad worker count %q", s)
		}
		c.workers = append(c.workers, w)
	}
	return c, nil
}

func run(args []string, logw *os.File) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}

	preset, err := accu.PresetByName(cfg.preset)
	if err != nil {
		return err
	}
	generator, err := preset.Generator(cfg.scale)
	if err != nil {
		return err
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = cfg.cautious
	factories, err := accu.DefaultFactories(accu.DefaultWeights())
	if err != nil {
		return err
	}
	if cfg.chaos {
		// Seeded fault injection: a few percent of networks refuse to
		// generate, a tenth of policy cells fail at init, a few stall
		// briefly. The grid must still complete (ContinueOnError) and
		// transient policy faults get one reseeded retry.
		generator = fault.Generator{Inner: generator, Rates: fault.Rates{Fail: 0.02}}
		for i := range factories {
			factories[i] = fault.Factory(factories[i], fault.Rates{
				Fail:     0.10,
				Stall:    0.05,
				StallFor: 2 * time.Millisecond,
			})
		}
	}

	maxProcs := runtime.GOMAXPROCS(0)
	if cfg.strict {
		for _, w := range cfg.workers {
			if w > maxProcs {
				return fmt.Errorf("workers=%d exceeds GOMAXPROCS=%d: the row would measure time-slicing, not parallelism (drop -strict to annotate instead)", w, maxProcs)
			}
		}
	}

	out := output{
		Preset:     cfg.preset,
		Scale:      cfg.scale,
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: maxProcs,
		Generated:  time.Now().UTC().Format(time.RFC3339),
	}
	for _, sh := range cfg.shapes {
		for _, workers := range cfg.workers {
			protocol := accu.Protocol{
				Gen:      generator,
				Setup:    setup,
				Networks: sh.Networks,
				Runs:     sh.Runs,
				K:        cfg.k,
				Seed:     accu.NewSeed(cfg.seed, cfg.seed^0x9e3779b97f4a7c15),
				Workers:  workers,
				Metrics:  accu.NewMetrics(),
			}
			if cfg.chaos {
				protocol.ContinueOnError = true
				protocol.Retries = 1
			}
			r, err := measure(protocol, factories)
			if err != nil {
				return fmt.Errorf("networks=%d runs=%d workers=%d: %w", sh.Networks, sh.Runs, workers, err)
			}
			if workers > maxProcs {
				r.Oversubscribed = true
				fmt.Fprintf(os.Stderr, "simbench: WARNING: workers=%d > GOMAXPROCS=%d — row annotated oversubscribed; its throughput measures time-slicing, not parallel scaling\n",
					workers, maxProcs)
			}
			fmt.Fprintf(logw, "networks=%-3d runs=%-3d workers=%-2d (resolved %d): %8.1f cells/sec, %7.1f allocs/cell, util %d%%, %d failed cells\n",
				r.Networks, r.Runs, r.Workers, r.ResolvedWorkers, r.CellsPerSec, r.AllocsPerCell, r.UtilizationPct, r.FailedCells)
			out.Results = append(out.Results, r)
		}
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.out, data, 0o644); err != nil {
		return fmt.Errorf("write %s: %w", cfg.out, err)
	}
	fmt.Fprintf(logw, "wrote %s\n", cfg.out)
	return nil
}

// measure runs one protocol and derives the throughput numbers from wall
// time, allocation counters and the engine's own metrics.
func measure(p accu.Protocol, factories []accu.PolicyFactory) (result, error) {
	resolved, _ := p.ResolveWorkers()
	cells := 0
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := accu.MonteCarlo(context.Background(), p, factories, func(accu.Record) { cells++ })
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	failed := 0
	var fsum *accu.FailureSummary
	if p.ContinueOnError && errors.As(err, &fsum) {
		// Chaos mode: degraded-but-complete is the expected outcome.
		failed = len(fsum.Failures)
		err = nil
	}
	if err != nil {
		return result{}, err
	}
	secs := wall.Seconds()
	r := result{
		Networks:        p.Networks,
		Runs:            p.Runs,
		Policies:        len(factories),
		K:               p.K,
		Workers:         p.Workers,
		ResolvedWorkers: resolved,
		Cells:           cells,
		FailedCells:     failed,
		Seconds:         secs,
		UtilizationPct:  p.Metrics.Histogram("sim.worker_utilization_pct").Max(),
	}
	if secs > 0 {
		r.CellsPerSec = float64(cells) / secs
	}
	if cells > 0 {
		r.AllocsPerCell = float64(after.Mallocs-before.Mallocs) / float64(cells)
	}
	return r, nil
}
