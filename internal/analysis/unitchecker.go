package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// VetConfig is the JSON description of one compilation unit that the go
// command hands to a -vettool. The field set mirrors the contract
// implemented by golang.org/x/tools unitchecker, which is the de-facto
// specification of the protocol.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string // import path -> canonical package path
	PackageFile               map[string]string // package path -> export data file
	Standard                  map[string]bool
	PackageVetx               map[string]string // package path -> facts file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// VetUnit analyzes the single compilation unit described by the .cfg
// file, per the `go vet -vettool` protocol, and returns its findings.
//
// The go command merges a package's in-package test files into the same
// unit as its production files, so the unit is type-checked whole but
// only non-test files are analyzed: tests legitimately read the clock,
// build ad-hoc generators and use short metric names. External-test
// units (_test packages) therefore analyze to nothing.
//
// The suite exchanges no cross-unit facts, so the facts output file (if
// requested) is written empty; go vet only needs it to exist for its
// build cache.
func VetUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, *token.FileSet, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, nil, fmt.Errorf("analysis: cannot decode vet config %s: %v", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, nil, err
		}
	}
	fset := token.NewFileSet()
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return nil, fset, nil
	}

	var files, prodFiles []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, fset, nil
			}
			return nil, nil, err
		}
		files = append(files, f)
		if !strings.HasSuffix(name, "_test.go") {
			prodFiles = append(prodFiles, f)
		}
	}
	if len(prodFiles) == 0 {
		return nil, fset, nil
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("analysis: can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})

	pkg, err := TypeCheck(fset, imp, cfg.ImportPath, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, fset, nil
		}
		return nil, nil, err
	}
	// Analyzers see only the production files; the test files were
	// needed for type-checking the merged unit.
	pkg.Files = prodFiles
	diags, err := RunAnalyzers(pkg, analyzers)
	return diags, fset, err
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
