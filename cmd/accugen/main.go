// Command accugen generates a synthetic stand-in network for one of the
// paper's Table I datasets and prints its statistics, optionally dumping
// the edge list for external tools.
//
// Usage:
//
//	accugen -preset twitter -scale 0.05 [-out edges.txt] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	accu "github.com/accu-sim/accu"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accugen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accugen", flag.ContinueOnError)
	var (
		preset  = fs.String("preset", "facebook", "dataset preset to generate")
		inPath  = fs.String("in", "", "inspect this SNAP-style edge-list file instead of generating")
		scale   = fs.Float64("scale", 0.05, "scale factor in (0, 1]")
		seed    = fs.Uint64("seed", 1, "random seed")
		outPath = fs.String("out", "", "write the edge list to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *accu.Graph
	if *inPath != "" {
		fixed, err := accu.LoadEdgeList(*inPath)
		if err != nil {
			return err
		}
		g = fixed.G
		fmt.Fprintf(out, "source:      %s\n", *inPath)
		fmt.Fprintf(out, "loaded:      %d nodes, %d edges\n", g.N(), g.M())
	} else {
		p, err := accu.PresetByName(*preset)
		if err != nil {
			return err
		}
		generator, err := p.Generator(*scale)
		if err != nil {
			return err
		}
		g, err = generator.Generate(accu.NewSeed(*seed, *seed+1))
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "preset:      %s (%s)\n", p.Key, p.Kind)
		fmt.Fprintf(out, "reference:   %d nodes, %d edges\n", p.RefNodes, p.RefEdges)
		fmt.Fprintf(out, "generated:   %d nodes, %d edges (scale %.3f)\n", g.N(), g.M(), *scale)
	}

	st := g.ComputeDegreeStats(10, 100)
	fmt.Fprintf(out, "degree:      min %d, median %.0f, mean %.1f, p90 %d, p99 %d, max %d\n",
		st.Min, st.Median, st.Mean, st.P90, st.P99, st.Max)
	fmt.Fprintf(out, "band[10,100]: %d nodes (cautious-user candidates)\n", st.InBand)
	_, comps := g.Components()
	fmt.Fprintf(out, "components:  %d\n", comps)
	fmt.Fprintf(out, "clustering:  %.4f (sampled)\n", g.AverageClustering(2000))
	fmt.Fprintf(out, "assortativity: %.4f\n", g.DegreeAssortativity())
	fmt.Fprintf(out, "degeneracy:  %d (max k-core)\n", g.Degeneracy())

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return fmt.Errorf("create %s: %w", *outPath, err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		if err := accu.WriteEdgeList(f, g); err != nil {
			return err
		}
		fmt.Fprintf(out, "edge list:   written to %s\n", *outPath)
	}
	return nil
}
