package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
)

// Baseline ratcheting — how a new analyzer wave lands without blocking
// CI on day one. A baseline records the findings a tree is known to
// carry; `accuvet -baseline` subtracts them and fails only on NEW
// findings. Entries are line-number-free on purpose: a fingerprint is
// (file, analyzer, message, count), so reflowing a file or adding
// imports does not invalidate the baseline, while a genuinely new
// finding — or a second instance of a known one — still fails the
// build. Fixing a baselined finding leaves a stale entry behind;
// `-write-baseline` re-snapshots, and review of that diff is the
// ratchet (counts may only go down).

// BaselineEntry identifies a tolerated finding class within one file.
// Count is how many findings with this exact (file, analyzer, message)
// the baseline absorbs; extra instances surface as new.
type BaselineEntry struct {
	File     string `json:"file"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Count    int    `json:"count"`
}

// Baseline is the committed snapshot of tolerated findings.
type Baseline struct {
	// Version guards the file format; readers reject unknown versions
	// rather than silently mis-filtering.
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

const baselineVersion = 1

// NewBaseline snapshots diags (suppressed ones excluded — //accu:allow
// already absorbs those) into a baseline keyed on repo-relative paths.
func NewBaseline(fset *token.FileSet, diags []Diagnostic) *Baseline {
	counts := make(map[BaselineEntry]int)
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		pos := fset.Position(d.Pos)
		counts[BaselineEntry{File: sarifURI(pos.Filename), Analyzer: d.Analyzer, Message: d.Message}]++
	}
	b := &Baseline{Version: baselineVersion, Findings: make([]BaselineEntry, 0, len(counts))}
	for e, n := range counts {
		e.Count = n
		b.Findings = append(b.Findings, e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	return b
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline — the zero state of the ratchet — not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{Version: baselineVersion}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// Filter returns the diagnostics the baseline does not absorb: for each
// (file, analyzer, message) key, the first Count instances are dropped
// and the rest pass through in their original order. Suppressed
// diagnostics pass through untouched (they never consume budget).
func (b *Baseline) Filter(fset *token.FileSet, diags []Diagnostic) []Diagnostic {
	budget := make(map[BaselineEntry]int, len(b.Findings))
	for _, e := range b.Findings {
		key := e
		key.Count = 0
		budget[key] += e.Count
	}
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			pos := fset.Position(d.Pos)
			key := BaselineEntry{File: sarifURI(pos.Filename), Analyzer: d.Analyzer, Message: d.Message}
			if budget[key] > 0 {
				budget[key]--
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// Total returns the number of findings the baseline absorbs (the sum of
// entry counts) — the quantity the ratchet drives toward zero.
func (b *Baseline) Total() int {
	n := 0
	for _, e := range b.Findings {
		n += e.Count
	}
	return n
}

// BaselineDiff is the ratchet report for one run against a baseline.
type BaselineDiff struct {
	// New counts unsuppressed findings the baseline does not absorb —
	// the ones that fail the build.
	New int
	// Fixed counts baseline budget left unconsumed: tolerated findings
	// that no longer occur. Nonzero Fixed means the baseline can shrink;
	// re-snapshot with -write-baseline to bank the progress.
	Fixed int
	// Suppressed counts findings an //accu:allow directive covers in
	// this run; they never touch baseline budget.
	Suppressed int
}

// Diff replays Filter's budget accounting but keeps the totals instead
// of the survivors, so the driver can narrate the ratchet (new / fixed /
// suppressed) rather than only pass/fail.
func (b *Baseline) Diff(fset *token.FileSet, diags []Diagnostic) BaselineDiff {
	budget := make(map[BaselineEntry]int, len(b.Findings))
	for _, e := range b.Findings {
		key := e
		key.Count = 0
		budget[key] += e.Count
	}
	var d BaselineDiff
	for _, diag := range diags {
		if diag.Suppressed {
			d.Suppressed++
			continue
		}
		pos := fset.Position(diag.Pos)
		key := BaselineEntry{File: sarifURI(pos.Filename), Analyzer: diag.Analyzer, Message: diag.Message}
		if budget[key] > 0 {
			budget[key]--
			continue
		}
		d.New++
	}
	for _, left := range budget {
		d.Fixed += left
	}
	return d
}

// Write renders the baseline as stable, indented JSON suitable for
// committing.
func (b *Baseline) Write(w io.Writer) error {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(b)
}
