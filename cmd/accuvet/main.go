// Command accuvet is the project's static-analysis suite: four analyzers
// (detrand, maporder, seedflow, metricname) that turn the simulator's
// determinism invariants into compile-time properties. See DESIGN.md
// "Determinism invariants & static enforcement".
//
// It runs in two modes:
//
//	accuvet ./...                      # standalone, whole-repo analysis
//	go vet -vettool=$(which accuvet) ./...   # as a vet tool, per unit
//
// Standalone mode loads packages through the go command and additionally
// checks metric-name/kind collisions across package boundaries; vettool
// mode follows the -V=full / -flags / unit.cfg protocol the go command
// expects and inherits vet's build caching.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"github.com/accu-sim/accu/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the checker and returns the process exit code: 0 clean,
// 1 findings, 2 usage or internal failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("accuvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		vFlag     = fs.String("V", "", "print version and exit (-V=full, for the go command)")
		flagsFlag = fs.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
		listFlag  = fs.Bool("list", false, "list analyzers and exit")
		jsonFlag  = fs.Bool("json", false, "emit findings as JSON (standalone mode)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: accuvet [packages]   (default ./...)\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which accuvet) [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *vFlag != "":
		return printVersion(*vFlag, stdout, stderr)
	case *flagsFlag:
		// The go command interrogates supported flags before passing any
		// through; accuvet exposes none beyond the protocol set.
		fmt.Fprintln(stdout, "[]")
		return 0
	case *listFlag:
		for _, a := range analysis.NewSuite() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnitMode(rest[0], stderr)
	}
	return standaloneMode(rest, stdout, stderr, *jsonFlag)
}

// vetUnitMode analyzes one compilation unit under the go vet protocol.
func vetUnitMode(cfg string, stderr io.Writer) int {
	diags, fset, err := analysis.VetUnit(cfg, analysis.NewSuite())
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	return printPlain(stderr, fset, diags)
}

// standaloneMode loads the patterns from source and analyzes every
// matched package with one shared suite, so cross-package invariants
// (metricname's kind table) see the whole tree.
func standaloneMode(patterns []string, stdout, stderr io.Writer, asJSON bool) int {
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	suite := analysis.NewSuite()
	var all []analysis.Diagnostic
	var fset *token.FileSet
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, suite)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		all = append(all, diags...)
		fset = pkg.Fset
	}
	if asJSON {
		type finding struct {
			Pos      string `json:"pos"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]finding, 0, len(all))
		for _, d := range all {
			out = append(out, finding{Pos: fset.Position(d.Pos).String(), Analyzer: d.Analyzer, Message: d.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		if len(all) > 0 {
			return 1
		}
		return 0
	}
	return printPlain(stderr, fset, all)
}

// printPlain writes findings in the file:line:col form vet users expect
// and returns the exit code.
func printPlain(w io.Writer, fset *token.FileSet, diags []analysis.Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// printVersion implements the -V=full handshake: the go command hashes
// the reported line into its build cache key, so the line must identify
// this exact executable.
func printVersion(v string, stdout, stderr io.Writer) int {
	if v != "full" {
		fmt.Fprintf(stderr, "accuvet: unsupported flag value: -V=%s (use -V=full)\n", v)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel accuvet buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}
