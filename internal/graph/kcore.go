package graph

// CoreNumbers computes the k-core decomposition: coreness[u] is the
// largest k such that u belongs to a subgraph in which every node has
// degree >= k. Implemented with the linear-time bucket peeling of
// Batagelj–Zaveršnik (2003).
func (g *Graph) CoreNumbers() []int {
	n := g.n
	coreness := make([]int, n)
	if n == 0 {
		return coreness
	}
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	bin := make([]int, maxDeg+2)
	for _, d := range deg {
		bin[d]++
	}
	start := 0
	for d := 0; d <= maxDeg; d++ {
		count := bin[d]
		bin[d] = start
		start += count
	}
	pos := make([]int, n)  // position of node in vert
	vert := make([]int, n) // nodes sorted by current degree
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = u
		bin[deg[u]]++
	}
	// Restore bin starts.
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	// Peel in degree order.
	for i := 0; i < n; i++ {
		u := vert[i]
		coreness[u] = deg[u]
		for _, v32 := range g.Neighbors(u) {
			v := int(v32)
			if deg[v] <= deg[u] {
				continue
			}
			// Swap v to the front of its degree bucket, then shrink it.
			dv := deg[v]
			pv := pos[v]
			pw := bin[dv]
			w := vert[pw]
			if v != w {
				pos[v], pos[w] = pw, pv
				vert[pv], vert[pw] = w, v
			}
			bin[dv]++
			deg[v]--
		}
	}
	return coreness
}

// Degeneracy returns the graph degeneracy: the maximum core number.
func (g *Graph) Degeneracy() int {
	best := 0
	for _, c := range g.CoreNumbers() {
		if c > best {
			best = c
		}
	}
	return best
}
