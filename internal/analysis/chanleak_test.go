package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestChanLeak(t *testing.T) {
	analysistest.Run(t, analysis.ChanLeak(), analysistest.Fixture{
		Dir:        "testdata/src/chanleak_sim",
		ImportPath: "example.test/internal/sim",
	})
}
