package exp

import (
	"context"
	"fmt"
	"math"

	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
	"github.com/accu-sim/accu/internal/theory"
)

// softGrid is the (qLow, qHigh) sweep of the generalized §III-B
// acceptance model. (0, 1) is the paper's deterministic model.
var softGrid = []struct{ qLow, qHigh float64 }{
	{0, 1}, {0.05, 1}, {0.1, 1}, {0.2, 1}, {0.2, 0.8}, {0.5, 0.9},
}

// ExtSoft is an extension experiment beyond the paper's figures: it
// quantifies how the generalized cautious acceptance model of §III-B
// (accept with qLow below threshold, qHigh at/above) changes the attack,
// and reports the curvature parameter δ = qHigh/qLow with its
// 1 − (1 − 1/(δk))^k guarantee — the bound the paper shows degenerates to
// 0 as qLow → 0, motivating the adaptive submodular ratio.
func ExtSoft(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	dataset := fig45Dataset(cfg)
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, err
	}
	abm, err := sim.ABMFactory(cfg.Weights, cfg.abmOptions()...)
	if err != nil {
		return nil, err
	}

	header := []string{"qLow", "qHigh", "delta", "curvature-bound", "benefit", "cautious-friends"}
	var rows [][]string
	for _, cell := range softGrid {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		setup := cfg.setup()
		setup.QLowCautious = cell.qLow
		setup.QHighCautious = cell.qHigh

		var benefit, cautious stats.Welford
		name := fmt.Sprintf("extsoft-%v-%v", cell.qLow, cell.qHigh)
		protocol := cfg.protocol(g, setup, cfg.Seed.Split(name))
		err := cfg.run(ctx, name, protocol, []sim.PolicyFactory{abm}, func(rec sim.Record) {
			benefit.Add(rec.Result.Benefit)
			cautious.Add(float64(rec.Result.CautiousFriends))
		})
		if err != nil {
			return nil, fmt.Errorf("exp: extsoft (%v, %v): %w", cell.qLow, cell.qHigh, err)
		}

		delta := math.Inf(1)
		if cell.qLow > 0 {
			delta = cell.qHigh / cell.qLow
		}
		deltaStr := "inf"
		if !math.IsInf(delta, 1) {
			deltaStr = fmt.Sprintf("%.1f", delta)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", cell.qLow),
			fmt.Sprintf("%.2f", cell.qHigh),
			deltaStr,
			fmt.Sprintf("%.4f", theory.CurvatureBound(delta, cfg.K)),
			fmt.Sprintf("%.1f ±%.1f", benefit.Mean(), benefit.CI95()),
			fmt.Sprintf("%.2f ±%.2f", cautious.Mean(), cautious.CI95()),
		})
	}

	notes := []string{
		"qLow=0 (the paper's deterministic model) has unbounded δ: the curvature bound collapses to 0 and only the adaptive submodular ratio gives a guarantee",
		fmt.Sprintf("dataset %s, k=%d: positive qLow lets the attacker crack cautious users without courting their friends first", dataset, cfg.K),
	}
	tables := []stats.Table{{Header: header, Rows: rows}}
	return newReport("ext-soft", fmt.Sprintf("Extension: generalized cautious acceptance (qLow/qHigh sweep, %s)", dataset), tables, notes), nil
}
