// Package fault provides seeded fault-injection wrappers for the
// Monte-Carlo engine's collaborators: network generators, instance
// builders and policy factories that fail or stall at deterministic,
// seed-derived rates. They exist to exercise the engine's fault
// tolerance — ContinueOnError, CellTimeout, Retries, checkpointing — in
// tests and in cmd/simbench's -chaos mode.
//
// Every injection decision derives from the seed the wrapped call
// receives, split under a "fault" label, so a faulted grid is exactly as
// reproducible as a healthy one: the same protocol seed yields the same
// failures in the same cells at any worker count, and the wrapped
// component still consumes its original seed stream — cells a wrapper
// leaves alone are bit-identical to an unwrapped run.
//
// The package sits outside the deterministic record path (it may read
// the clock to stall), which is why it lives beside — not inside —
// internal/sim.
package fault

import (
	"errors"
	"fmt"
	"time"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
	"github.com/accu-sim/accu/internal/sim"
)

// ErrInjected is the sentinel wrapped by every injected failure; detect
// injected (as opposed to organic) failures with errors.Is.
var ErrInjected = errors.New("fault: injected failure")

// Rates configures one wrapper's misbehaviour. The zero value injects
// nothing.
type Rates struct {
	// Fail is the probability in [0, 1] that a call fails with an error
	// wrapping ErrInjected.
	Fail float64
	// Stall is the probability in [0, 1] that a call sleeps for StallFor
	// before proceeding (and before failing, if both fire) — transient
	// slowness for exercising Protocol.CellTimeout.
	Stall float64
	// StallFor is the stall duration (default 50ms when Stall fires with
	// a zero StallFor).
	StallFor time.Duration
	// Metrics, when non-nil, counts injections under fault.failures and
	// fault.stalls so tests and chaos runs can reconcile injected counts
	// against the engine's sim.cell_failures.
	Metrics *obs.Registry
}

// decide draws the injection decision for one call from seed. The seed
// must already be split under a fault-specific label by the caller so
// the wrapped component's own stream stays untouched.
func (r Rates) decide(seed rng.Seed) (fail, stall bool) {
	rnd := seed.Rand()
	fail = rnd.Float64() < r.Fail
	stall = rnd.Float64() < r.Stall
	if r.Metrics != nil {
		if fail {
			r.Metrics.Counter("fault.failures").Inc()
		}
		if stall {
			r.Metrics.Counter("fault.stalls").Inc()
		}
	}
	return fail, stall
}

// sleep stalls for the configured duration.
func (r Rates) sleep() {
	d := r.StallFor
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	time.Sleep(d)
}

// Generator wraps a gen.Generator with injected faults. The inner
// generator receives the original seed, so non-faulted networks are
// identical to an unwrapped run's.
type Generator struct {
	Inner gen.Generator
	Rates Rates
}

var _ gen.Generator = Generator{}

// Name implements gen.Generator.
func (g Generator) Name() string { return "fault(" + g.Inner.Name() + ")" }

// Generate implements gen.Generator.
func (g Generator) Generate(seed rng.Seed) (*graph.Graph, error) {
	fail, stall := g.Rates.decide(seed.Split("fault.generate"))
	if stall {
		g.Rates.sleep()
	}
	if fail {
		return nil, fmt.Errorf("fault: generate %s: %w", g.Inner.Name(), ErrInjected)
	}
	return g.Inner.Generate(seed)
}

// Builder wraps a sim.Builder (e.g. osn.Setup) with injected faults.
type Builder struct {
	Inner sim.Builder
	Rates Rates
}

var _ sim.Builder = Builder{}

// Build implements sim.Builder.
func (b Builder) Build(g *graph.Graph, seed rng.Seed) (*osn.Instance, error) {
	fail, stall := b.Rates.decide(seed.Split("fault.build"))
	if stall {
		b.Rates.sleep()
	}
	if fail {
		return nil, fmt.Errorf("fault: build instance: %w", ErrInjected)
	}
	return b.Inner.Build(g, seed)
}

// Factory wraps a policy factory so a seeded fraction of cells fail or
// stall when the policy initializes. The decision derives from the
// per-cell factory seed — the engine re-derives that seed on every retry
// attempt, so a transiently faulted cell can succeed on retry while
// staying deterministic.
func Factory(f sim.PolicyFactory, r Rates) sim.PolicyFactory {
	return sim.PolicyFactory{
		Name: f.Name,
		New: func(seed rng.Seed) (core.Policy, error) {
			fail, stall := r.decide(seed.Split("fault.policy"))
			pol, err := f.New(seed)
			if err != nil {
				return nil, err
			}
			return &policy{Policy: pol, fail: fail, stall: stall, rates: r}, nil
		},
	}
}

// policy defers its injected fault to Init so the failure surfaces as a
// run error inside the cell, after the realization is sampled — the
// engine path a mid-grid fault actually exercises. It deliberately does
// not implement core.Reusable: caching would freeze one cell's fault
// decision across the whole grid.
type policy struct {
	core.Policy
	fail, stall bool
	rates       Rates
}

// Init implements core.Policy.
func (p *policy) Init(st *osn.State) error {
	if p.stall {
		p.rates.sleep()
	}
	if p.fail {
		return fmt.Errorf("fault: policy %s init: %w", p.Policy.Name(), ErrInjected)
	}
	return p.Policy.Init(st)
}
