package core

import (
	"fmt"

	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// ABM is the Adaptive Benefit Maximization greedy of Algorithm 1: at each
// step it requests the user with the highest potential P(u|ω).
//
// By default ABM re-scores lazily: a candidate's potential can only change
// when an accepted request touches its two-hop neighborhood, so after each
// acceptance only that dirty set is re-evaluated (stale heap entries are
// version-checked on pop). WithFullRescan restores the naive
// recompute-everything behaviour for ablation benchmarks; both variants
// select identical sequences.
type ABM struct {
	weights    Weights
	fullRescan bool

	scores  []float64
	version []int32
	pq      potentialHeap

	// dirtyStamp/epoch dedupe the dirty set without allocating: a node
	// is already queued this round iff its stamp equals the epoch.
	dirtyStamp []int32
	epoch      int32

	// Instruments resolved once by WithMetrics; nil (no-op) by default.
	// See DESIGN.md "Reading a metrics dump" for what each one means.
	mHeapPops    *obs.Counter   // heap entries popped in SelectNext
	mStaleSkips  *obs.Counter   // popped entries discarded as stale/requested
	mRescores    *obs.Counter   // potential re-evaluations
	mDirtySize   *obs.Histogram // dirty-set size per acceptance
	mCompactions *obs.Counter   // stale-entry heap compactions
}

// Option configures an ABM policy.
type Option func(*ABM)

// WithFullRescan disables lazy re-scoring (ablation baseline).
func WithFullRescan() Option {
	return func(a *ABM) { a.fullRescan = true }
}

// WithMetrics records the policy's work counters — heap pops, stale-entry
// skips, rescores and per-acceptance dirty-set sizes — into the given
// registry. The instruments are shared and atomic, so many concurrent
// attacks may report into one registry; a nil registry leaves the policy
// uninstrumented (the counters stay no-ops).
func WithMetrics(reg *obs.Registry) Option {
	return func(a *ABM) {
		a.mHeapPops = reg.Counter("abm.heap_pops")
		a.mStaleSkips = reg.Counter("abm.stale_skips")
		a.mRescores = reg.Counter("abm.rescores")
		a.mDirtySize = reg.Histogram("abm.dirty_size")
		a.mCompactions = reg.Counter("abm.heap_compactions")
	}
}

// NewABM builds an ABM policy with the given potential weights.
func NewABM(w Weights, opts ...Option) (*ABM, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	a := &ABM{weights: w}
	for _, o := range opts {
		o(a)
	}
	return a, nil
}

// NewPureGreedy returns ABM with w_D=1, w_I=0 — the classical adaptive
// greedy of the earlier crawling papers, which the theoretical guarantee
// of Theorem 1 covers.
func NewPureGreedy() *ABM {
	a, err := NewABM(Weights{WD: 1, WI: 0})
	if err != nil {
		// Weights{1, 0} is statically valid.
		panic(fmt.Sprintf("core: pure greedy construction: %v", err))
	}
	return a
}

var _ Policy = (*ABM)(nil)

// Name implements Policy.
func (a *ABM) Name() string { return a.weights.PolicyName() }

// Reseed implements Reusable: ABM ignores its construction seed, and Init
// re-slices every per-attack buffer, so reuse needs no reset work.
func (a *ABM) Reseed(rng.Seed) {}

// Weights returns the potential weights.
func (a *ABM) Weights() Weights { return a.weights }

// Init implements Policy: score every user and build the heap. A reused
// instance (scheduler-level pooling via Reusable) re-slices its previous
// buffers instead of reallocating.
func (a *ABM) Init(st *osn.State) error {
	n := st.Instance().N()
	if cap(a.scores) < n {
		a.scores = make([]float64, n)
	} else {
		a.scores = a.scores[:n] // fully overwritten below
	}
	a.version = resetInt32s(a.version, n)
	a.dirtyStamp = resetInt32s(a.dirtyStamp, n)
	a.epoch = 0
	a.pq = a.pq[:0]
	if cap(a.pq) < n {
		a.pq = make(potentialHeap, 0, n)
	}
	for u := 0; u < n; u++ {
		a.scores[u] = Potential(st, u, a.weights)
		a.pq = append(a.pq, heapEntry{score: a.scores[u], user: int32(u)})
	}
	a.pq.init()
	return nil
}

// resetInt32s returns a zeroed int32 slice of length n, reusing s's
// backing array when it is large enough.
func resetInt32s(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// SelectNext implements Policy: pop the freshest highest-potential
// candidate.
func (a *ABM) SelectNext(st *osn.State) (int, bool) {
	for a.pq.Len() > 0 {
		e := a.pq.pop()
		a.mHeapPops.Inc()
		u := int(e.user)
		if st.Requested(u) || e.version != a.version[u] {
			a.mStaleSkips.Inc()
			continue
		}
		return u, true
	}
	return 0, false
}

// Observe implements Policy: after an acceptance, re-score the candidates
// whose potential may have changed.
func (a *ABM) Observe(st *osn.State, out osn.Outcome) {
	if !out.Accepted {
		return
	}
	if a.fullRescan {
		n := 0
		for u := range a.scores {
			if !st.Requested(u) {
				a.rescore(st, u)
				n++
			}
		}
		a.mDirtySize.Observe(int64(n))
		a.maybeCompact(st)
		return
	}

	// Dirty set: potential neighbors of the new friend (posterior edge
	// beliefs and the friend-exclusion changed), plus every realized
	// neighbor v (mutual count / FOF status changed) and v's potential
	// neighbors (their P_D / P_I terms involving v changed). Deduped
	// with an epoch stamp to avoid per-acceptance allocation.
	g := st.Instance().Graph()
	re := st.Realization()
	a.epoch++
	dirty := 0
	touch := func(v int) {
		if a.dirtyStamp[v] == a.epoch {
			return
		}
		a.dirtyStamp[v] = a.epoch
		dirty++
		if !st.Requested(v) {
			a.rescore(st, v)
		}
	}
	base := g.AdjBase(out.User)
	for i, v := range g.Neighbors(out.User) {
		touch(int(v))
		if !re.EdgeExistsSlot(base + i) {
			continue
		}
		for _, x := range g.Neighbors(int(v)) {
			touch(int(x))
		}
	}
	a.mDirtySize.Observe(int64(dirty))
	a.maybeCompact(st)
}

// compactSlack keeps tiny instances from compacting on every acceptance.
const compactSlack = 64

// maybeCompact drops stale heap entries once they outnumber live
// candidates ~2:1. Every rescore that changes a score strands the
// previous entry in the heap, so a long high-churn attack would otherwise
// grow the heap without bound; compaction restores |heap| <= live
// candidates in O(|heap|), amortized O(1) per stranded entry. Selection
// is unaffected: stale entries are skipped on pop anyway, and the fresh
// entries form a total order on (score, user id), so rebuilding the heap
// preserves the pop sequence exactly.
func (a *ABM) maybeCompact(st *osn.State) {
	live := st.Instance().N() - st.Requests()
	if len(a.pq) <= 3*live+compactSlack {
		return
	}
	keep := a.pq[:0]
	for _, e := range a.pq {
		u := int(e.user)
		if e.version == a.version[u] && !st.Requested(u) {
			keep = append(keep, e)
		}
	}
	a.pq = keep
	a.pq.init()
	a.mCompactions.Inc()
}

// rescore recomputes u's potential and pushes a fresh heap entry.
func (a *ABM) rescore(st *osn.State, u int) {
	a.mRescores.Inc()
	s := Potential(st, u, a.weights)
	if s == a.scores[u] {
		return
	}
	a.scores[u] = s
	a.version[u]++
	a.pq.push(heapEntry{score: s, user: int32(u), version: a.version[u]})
}
