// Package sim is the wiretag autofix golden fixture: a marked wire
// struct with one untagged field and one unkeyed composite literal,
// both carrying machine-applicable fixes.
package sim

//accu:wire
type Header struct {
	Cells int `json:"cells"`
	Crc   uint32
}

func mk() Header {
	return Header{3, 9}
}
