package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrCmp returns the sentinel-comparison analyzer: comparing an error
// against a module-declared sentinel with == or != (or a switch case)
// is wrong wherever the value may have passed through fmt.Errorf("%w")
// wrapping or errors.Join — both produce a new value that compares
// unequal to the sentinel it carries. The engine wraps cell errors with
// context (cell coordinates, attempt counts) and aggregates them with
// errors.Join in the failure summary, so any sentinel that crosses a
// package boundary must be tested with errors.Is.
//
// Scope is module sentinels only: comparisons against stdlib sentinels
// (io.EOF and friends have documented ==-compatibility contracts) and
// against nil are left alone.
func ErrCmp() *Analyzer {
	a := &Analyzer{
		Name: "errcmp",
		Doc: "require errors.Is for comparisons against module error sentinels; " +
			"== breaks once the value is wrapped with %w or errors.Join",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					if v, other := sentinelComparison(pass, n.X, n.Y); v != nil {
						reportErrCmp(pass, n.Pos(), v, other)
					}
				case *ast.SwitchStmt:
					checkErrSwitch(pass, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkErrSwitch flags `switch err { case ErrFoo: ... }` — each case
// clause is an implicit == against the tag.
func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isErrorType(exprType(pass, sw.Tag)) {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := moduleErrSentinel(pass, e); v != nil {
				reportErrCmp(pass, e.Pos(), v, sw.Tag)
			}
		}
	}
}

func reportErrCmp(pass *Pass, pos token.Pos, sentinel *types.Var, other ast.Expr) {
	pass.Reportf(pos,
		"error compared to sentinel %s with ==; use errors.Is(%s, %s) — the value may be wrapped with %%w or errors.Join",
		sentinel.Name(), types.ExprString(ast.Unparen(other)), sentinel.Name())
}

// sentinelComparison recognizes a binary comparison where exactly one
// side is a module error sentinel and the other is an error-typed value
// that isn't nil or itself a sentinel. (sentinel == sentinel is a
// tautology someone wrote on purpose; nil checks are fine.)
func sentinelComparison(pass *Pass, x, y ast.Expr) (*types.Var, ast.Expr) {
	sx, sy := moduleErrSentinel(pass, x), moduleErrSentinel(pass, y)
	switch {
	case sx != nil && sy == nil:
		if isErrorValue(pass, y) {
			return sx, y
		}
	case sy != nil && sx == nil:
		if isErrorValue(pass, x) {
			return sy, x
		}
	}
	return nil, nil
}

// moduleErrSentinel resolves e to a package-level error variable
// declared in this module — not the stdlib, whose sentinels carry
// documented ==-comparability guarantees.
func moduleErrSentinel(pass *Pass, e ast.Expr) *types.Var {
	var v *types.Var
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ = pass.Info.Uses[e].(*types.Var)
	case *ast.SelectorExpr:
		v, _ = pass.Info.Uses[e.Sel].(*types.Var)
	}
	if v == nil || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	if !moduleLocalPath(v.Pkg().Path()) {
		return nil
	}
	return v
}

// moduleLocalPath distinguishes module packages from the standard
// library: module paths start with a dotted host element, std paths
// never do. Test fixtures use example.test/... paths and match too.
func moduleLocalPath(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return strings.Contains(first, ".")
}

// isErrorValue reports whether e is an error-typed expression other than
// the nil literal.
func isErrorValue(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return isErrorType(tv.Type)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements the built-in error interface
// and is itself an interface (a concrete *MyError compared by == is an
// identity check, not a sentinel test).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return false
	}
	return types.Implements(t, errorIface)
}
