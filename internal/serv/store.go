package serv

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// store is the on-disk layout of the service:
//
//	<dir>/jobs/<id>.json          one job document, rewritten atomically
//	                              on every state transition
//	<dir>/checkpoints/<id>.jsonl  the job's sim.CellJournal
//
// The job documents carry the queue (state, priority, seq, attempts); the
// cell journals carry the durable per-cell progress. Together they make a
// restarted server resume exactly where the previous process — cleanly
// drained or SIGKILLed mid-cell — left off.
type store struct {
	dir string
}

// openStore creates the directory layout.
func openStore(dir string) (*store, error) {
	for _, sub := range []string{"jobs", "checkpoints"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serv: create store: %w", err)
		}
	}
	return &store{dir: dir}, nil
}

// jobPath returns the document path of one job.
func (s *store) jobPath(id string) string {
	return filepath.Join(s.dir, "jobs", id+".json")
}

// CheckpointPath returns the cell-journal path of one job.
func (s *store) checkpointPath(id string) string {
	return filepath.Join(s.dir, "checkpoints", id+".jsonl")
}

// saveJob atomically rewrites a job document (temp file + rename), so a
// crash mid-write can never leave a torn document behind.
func (s *store) saveJob(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("serv: marshal job %s: %w", j.ID, err)
	}
	data = append(data, '\n')
	path := s.jobPath(j.ID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("serv: write job %s: %w", j.ID, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("serv: commit job %s: %w", j.ID, err)
	}
	return nil
}

// loadJobs reads every job document in the store. Unparseable documents
// fail the load — silently dropping a job would orphan its checkpoint
// and quota slot.
func (s *store) loadJobs() ([]Job, error) {
	entries, err := os.ReadDir(filepath.Join(s.dir, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serv: read store: %w", err)
	}
	var jobs []Job
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, "jobs", name))
		if err != nil {
			return nil, fmt.Errorf("serv: read job %s: %w", name, err)
		}
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			return nil, fmt.Errorf("serv: parse job %s: %w", name, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

// checkpointExists reports whether the job already has a cell journal —
// the resume-vs-fresh decision when (re)starting an execution.
func (s *store) checkpointExists(id string) bool {
	_, err := os.Stat(s.checkpointPath(id))
	return err == nil
}
