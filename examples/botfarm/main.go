// Botfarm: the operational trade-offs of scaling an attack up — parallel
// batching (send many requests before reading responses, paper ref. [4])
// and collaborative multi-bot operation (split the budget across
// identities, paper ref. [5]) — measured against the fully adaptive
// single-bot baseline on the same ground truth.
package main

import (
	"fmt"
	"log"

	accu "github.com/accu-sim/accu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("botfarm: ")

	preset, err := accu.PresetByName("twitter")
	if err != nil {
		log.Fatal(err)
	}
	generator, err := preset.Generator(0.03)
	if err != nil {
		log.Fatal(err)
	}
	g, err := generator.Generate(accu.NewSeed(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 10
	inst, err := setup.Build(g, accu.NewSeed(3, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d cautious, budget k=80\n\n", g.N(), inst.NumCautious())

	const k = 80
	w := accu.DefaultWeights()

	// All scenarios attack the same realization: differences below are
	// purely strategic, not luck.
	re := inst.SampleRealization(accu.NewSeed(5, 6))

	fmt.Println("one bot, fully adaptive (the paper's attacker):")
	abm, err := accu.NewABM(w)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := accu.Run(abm, re, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  benefit %.1f, cautious friends %d\n\n", seq.Benefit, seq.CautiousFriends)

	fmt.Println("one bot, batched requests (faster wall-clock, less feedback):")
	for _, batch := range []int{5, 20} {
		abm, err := accu.NewABM(w)
		if err != nil {
			log.Fatal(err)
		}
		res, err := accu.RunBatched(abm, re, k, batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  batch=%-3d benefit %.1f (%.1f%% of adaptive), cautious friends %d\n",
			batch, res.Benefit, 100*res.Benefit/seq.Benefit, res.CautiousFriends)
	}
	fmt.Println()

	fmt.Println("bot farm, shared budget (harder to block, weaker per identity):")
	for _, bots := range []int{2, 4, 8} {
		res, err := accu.RunMulti(re, bots, k, w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  bots=%-3d  benefit %.1f (%.1f%% of adaptive), cautious friends %d\n",
			bots, res.Benefit, 100*res.Benefit/seq.Benefit, res.CautiousFriends)
	}
	fmt.Println("\ncautious thresholds are per-identity: a farm cracks fewer cautious users —")
	fmt.Println("the paper's acceptance model doubles as a defense against multi-identity attacks.")
}
