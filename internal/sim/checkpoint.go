package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// CellKey identifies one (network, run) cell of the Monte-Carlo grid.
type CellKey struct {
	Network int `json:"network"`
	Run     int `json:"run"`
}

// Checkpointer persists completed cells so an interrupted grid can
// resume without recomputation. The engine consults Done once per cell
// before scheduling and calls Commit after a cell's records have been
// delivered; Commit is invoked concurrently from worker goroutines, so
// implementations must serialize internally. A Commit error aborts the
// run even under ContinueOnError — records that cannot be made durable
// would silently re-run on resume.
type Checkpointer interface {
	// Done reports whether the cell is already durably recorded.
	Done(key CellKey) bool
	// Commit durably records one completed cell with its records.
	Commit(key CellKey, recs []Record) error
}

// cellLine is one journal line: a completed cell with its records.
type cellLine struct {
	CellKey
	Records []Record `json:"records"`
}

// CellJournal is the append-only JSONL Checkpointer: one line per
// completed cell, written in full before the cell is considered durable.
// A torn trailing line (crash mid-append) is truncated away on resume,
// so the journal is always re-appendable. Because every cell reseeds
// from its (network, run) coordinates alone, the union of a journal's
// replayed records and a resumed Run's records is bit-identical to an
// uninterrupted run at any worker count.
type CellJournal struct {
	mu    sync.Mutex
	f     *os.File
	done  map[CellKey]bool
	lines []cellLine // cells loaded at resume, in journal order (for Replay)
}

var _ Checkpointer = (*CellJournal)(nil)

// OpenCellJournal opens the journal at path. With resume=false the file
// must not already exist (guarding against accidentally mixing two
// experiments into one journal); with resume=true an existing journal is
// loaded — its completed cells answer Done and feed Replay — and a
// missing one is simply created.
func OpenCellJournal(path string, resume bool) (*CellJournal, error) {
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if !resume && errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("sim: checkpoint %s already exists; resume it or remove it: %w", path, err)
		}
		return nil, fmt.Errorf("sim: open checkpoint: %w", err)
	}
	j := &CellJournal{f: f, done: make(map[CellKey]bool)}
	if resume {
		if err := j.load(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sim: load checkpoint %s: %w", path, err)
		}
	}
	return j, nil
}

// load parses the journal's existing lines and positions the file for
// appending. Parsing stops at the first torn or corrupt line, which is
// truncated away together with everything after it — those cells simply
// re-run.
func (j *CellJournal) load() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn trailing line
		}
		line := data[off : off+nl]
		if len(bytes.TrimSpace(line)) > 0 {
			var cl cellLine
			if err := json.Unmarshal(line, &cl); err != nil {
				break // corrupt line: drop it and everything after
			}
			if !j.done[cl.CellKey] {
				j.done[cl.CellKey] = true
				j.lines = append(j.lines, cl)
			}
		}
		off += nl + 1
	}
	if off < len(data) {
		if err := j.f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("truncate torn tail: %w", err)
		}
	}
	_, err = j.f.Seek(int64(off), io.SeekStart)
	return err
}

// Done implements Checkpointer.
func (j *CellJournal) Done(key CellKey) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[key]
}

// Commit implements Checkpointer: the cell is appended as one JSONL line
// in a single write. Committed records are not retained in memory — only
// resumed cells are, for Replay.
func (j *CellJournal) Commit(key CellKey, recs []Record) error {
	line, err := json.Marshal(cellLine{CellKey: key, Records: recs})
	if err != nil {
		return fmt.Errorf("marshal cell: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[key] {
		return nil
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("append cell: %w", err)
	}
	j.done[key] = true
	return nil
}

// Cells returns the number of completed cells the journal holds (loaded
// plus committed this session).
func (j *CellJournal) Cells() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Replay feeds every record loaded at resume to collect, in journal
// (append) order. Call it before Run when resuming so aggregation sees
// the already-completed cells; Run itself never re-delivers checkpointed
// records. Cells committed after opening are not replayed — the caller's
// collect already saw them live.
func (j *CellJournal) Replay(collect func(Record)) {
	j.mu.Lock()
	lines := j.lines
	j.mu.Unlock()
	for _, cl := range lines {
		for _, rec := range cl.Records {
			collect(rec)
		}
	}
}

// Sync flushes the journal to stable storage (fsync).
func (j *CellJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *CellJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
