// Fixture for the errcmp analyzer: module error sentinels must be tested
// with errors.Is, because the engine wraps with %w and errors.Join.
package sim

import (
	"errors"
	"fmt"
	"io"
)

// ErrCellTimeout mirrors the engine's exported sentinel.
var ErrCellTimeout = errors.New("sim: cell timeout")

// errReleased mirrors an unexported sentinel.
var errReleased = errors.New("sim: instance released")

func attempt() error {
	return fmt.Errorf("attempt 3: %w", ErrCellTimeout)
}

func badEqual(err error) bool {
	return err == ErrCellTimeout // want `use errors\.Is\(err, ErrCellTimeout\)`
}

func badNotEqual(err error) bool {
	return err != errReleased // want `use errors\.Is\(err, errReleased\)`
}

func badReversed(err error) bool {
	return ErrCellTimeout == err // want `use errors\.Is\(err, ErrCellTimeout\)`
}

func badSwitch(err error) string {
	switch err {
	case ErrCellTimeout: // want `use errors\.Is\(err, ErrCellTimeout\)`
		return "timeout"
	default:
		return "other"
	}
}

func goodIs(err error) bool {
	return errors.Is(err, ErrCellTimeout)
}

func nilCheckFine(err error) bool {
	return err == nil
}

// stdlib sentinels carry documented ==-comparability contracts.
func stdlibFine(err error) bool {
	return err == io.EOF
}

// comparing two sentinels is an identity test someone wrote on purpose.
func sentinelPairFine() bool {
	return ErrCellTimeout == errReleased
}

func allowedEqual(err error) bool {
	//accu:allow errcmp -- fixture: err is produced in this function and never wrapped
	return err == ErrCellTimeout
}
