package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestCtxCancel(t *testing.T) {
	analysistest.Run(t, analysis.CtxCancel(), analysistest.Fixture{
		Dir:        "testdata/src/ctxcancel_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}
