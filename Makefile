GO ?= go

.PHONY: all build test race lint vet accuvet vet-fix fix fuzz-smoke bench serve service-e2e clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

# lint runs the standard vet suite plus accuvet, the project's own
# analyzer suite (determinism, seed discipline, metric naming) — once
# through `go vet -vettool` exactly as CI does, and once standalone so
# metricname can see duplicate registrations across packages.
# staticcheck runs too when it is on PATH (CI pins its version).
lint: vet accuvet
	@command -v staticcheck >/dev/null 2>&1 && staticcheck ./... || \
		echo "staticcheck not installed; skipping (CI runs it pinned)"

vet:
	$(GO) vet ./...

# The standalone pass mirrors CI: findings already recorded in the
# committed .accuvet-baseline.json are subtracted (only new findings
# fail), and the full verdict lands in bin/accuvet.sarif for inspection
# or code-scanning upload. Refresh the snapshot after triaging a wave:
#   ./bin/accuvet -write-baseline .accuvet-baseline.json ./...
accuvet:
	$(GO) build -o bin/accuvet ./cmd/accuvet
	$(GO) vet -vettool=$(CURDIR)/bin/accuvet ./...
	./bin/accuvet -sarif bin/accuvet.sarif -baseline .accuvet-baseline.json -wire-lock .accuwire.lock.json ./...

# vet-fix prints every accuvet finding — including ones already covered
# by an //accu:allow directive, marked "(allowed)" — together with the
# exact suppression comment to paste above a site that is intentional.
# Exit status matches plain accuvet: 1 only while live findings remain.
vet-fix:
	$(GO) build -o bin/accuvet ./cmd/accuvet
	./bin/accuvet -suggest ./...

# fix applies the machine-applicable suggested fixes in place (json wire
# tags, keyed wire literals, time.Tick -> time.NewTicker(d).C), atomically
# per fix and gofmt-gated per file. Running it twice is a no-op. After a
# wire-struct change, refresh the committed schema lockfile:
#   ./bin/accuvet -write-wire-lock .accuwire.lock.json ./...
fix:
	$(GO) build -o bin/accuvet ./cmd/accuvet
	./bin/accuvet -fix ./...

# fuzz-smoke runs each native fuzz target briefly against its committed
# corpus plus fresh mutations — the decoder surfaces (store block
# decoder, cell-journal resume) the analyzers cannot reach.
fuzz-smoke:
	$(GO) test ./internal/stats -run '^$$' -fuzz FuzzDecodeBlock -fuzztime 10s
	$(GO) test ./internal/sim -run '^$$' -fuzz FuzzCellJournalReplay -fuzztime 10s

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# serve runs the accuserv job service on its default local address with a
# throwaway data directory under bin/.
serve:
	$(GO) run ./cmd/accuserv -data bin/accuserv-data

# service-e2e is the full crash/resume contract test: SIGKILL the server
# mid-grid, restart, and require a bit-identical result digest.
service-e2e:
	bash scripts/service_e2e.sh

clean:
	rm -rf bin
