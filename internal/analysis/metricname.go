package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"github.com/accu-sim/accu/internal/obs"
)

// registryMethods maps obs.Registry lookup methods to the instrument
// kind they register. StartSpan and Time record into histograms.
var registryMethods = map[string]string{
	"Counter":   "counter",
	"Gauge":     "gauge",
	"Histogram": "histogram",
	"StartSpan": "histogram",
	"Time":      "histogram",
}

// metricUse remembers where a metric name was first registered and as
// what kind, for cross-package duplicate detection.
type metricUse struct {
	kind string
	pos  token.Position
}

// MetricNames returns the metric-name analyzer: every constant string
// reaching an obs.Registry lookup (Counter, Gauge, Histogram, StartSpan,
// Time) must match obs.NamePattern, and one name must resolve to one
// instrument kind everywhere in the tree — the same name reaching both
// Counter and Histogram is a collision that would silently shear a
// metrics dump.
//
// The returned analyzer carries the cross-package duplicate table, so
// each checker run (and each test) must construct a fresh instance via
// NewSuite or MetricNames. Non-constant names cannot be checked here;
// obs.TestRegistryNames guards those at run time.
func MetricNames() *Analyzer {
	seen := make(map[string]metricUse)
	a := &Analyzer{
		Name: "metricname",
		Doc: "require constant metric names reaching obs.Registry to match " +
			obs.NamePattern + " and to keep one kind per name repo-wide",
	}
	a.Run = func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				sel, ok := pass.Info.Selections[fun]
				if !ok {
					return true
				}
				m, ok := sel.Obj().(*types.Func)
				if !ok {
					return true
				}
				kind, ok := registryMethods[m.Name()]
				if !ok || !isObsRegistryMethod(m) || len(call.Args) == 0 {
					return true
				}
				tv, ok := pass.Info.Types[call.Args[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					return true // dynamic name; covered by the runtime guard
				}
				name := constant.StringVal(tv.Value)
				if !obs.ValidName(name) {
					pass.Reportf(call.Args[0].Pos(),
						"metric name %q does not match %s (dot-separated lowercase snake_case, subsystem first)",
						name, obs.NamePattern)
					return true
				}
				if prev, dup := seen[name]; dup && prev.kind != kind {
					pass.Reportf(call.Args[0].Pos(),
						"metric %q used as %s here but registered as %s at %s; one name must keep one kind",
						name, kind, prev.kind, prev.pos)
				} else if !dup {
					seen[name] = metricUse{kind: kind, pos: pass.Fset.Position(call.Args[0].Pos())}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isObsRegistryMethod reports whether m is a method of the obs Registry
// type (matched by declaring package path so test fixtures with a stub
// obs package are recognized too).
func isObsRegistryMethod(m *types.Func) bool {
	pkg := receiverPkgPath(m)
	if !(strings.HasSuffix(pkg, "internal/obs") || pkg == "obs") {
		return false
	}
	return receiverTypeName(m) == "Registry"
}
