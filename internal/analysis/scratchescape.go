package analysis

import (
	"go/ast"
	"go/types"
)

// scratchPackages are where per-worker scratch state lives and where the
// ownership discipline is enforced. Outside these, the scratch types
// don't appear (or appear as opaque values the discipline doesn't cover).
var scratchPackages = []string{
	"internal/sim",
	"internal/core",
}

// scratchOwnerTypes names concrete pooled types that are per-worker
// scratch even though they don't implement core.Reusable themselves:
// the Runner's pooled attack state and the state buffers it recycles.
var scratchOwnerTypes = map[string]map[string]bool{
	"internal/core": {"Runner": true},
	"internal/osn":  {"State": true},
}

// ScratchEscape returns the scratch-ownership analyzer for the parallel
// engine. Per-worker scratch — anything implementing core.Reusable
// (pooled policies with reusable buffers) or holding pooled attack state
// (core.Runner, osn.State) — is owned by exactly one worker goroutine at
// a time. Handing such a value to another goroutine, sending it on a
// channel, or parking it in a package-level variable or a foreign
// struct's field breaks that ownership: two workers end up mutating one
// buffer, which the race detector only catches if the schedules collide.
//
// Flagged escapes:
//   - a scratch-typed free variable captured by (or passed to) a `go`
//     statement's function,
//   - a scratch value sent on a channel,
//   - a scratch value stored in a package-level variable or a field of a
//     type declared outside the scratch packages.
//
// Intentional transfers (a worker abandoning a timed-out attempt and
// re-arming with fresh scratch) are the audited exception: annotate with
// //accu:allow scratchescape -- <why>.
func ScratchEscape() *Analyzer {
	a := &Analyzer{
		Name: "scratchescape",
		Doc: "forbid per-worker scratch (core.Reusable policies, pooled attack " +
			"state) from escaping its worker via goroutines, channels or shared variables",
	}
	a.Run = func(pass *Pass) error {
		if !pkgPathIn(pass.Path, scratchPackages) {
			return nil
		}
		reusable := findReusableInterface(pass)
		sc := &scratchClassifier{reusable: reusable, memo: make(map[types.Type]bool)}
		if reusable == nil && !hasScratchOwnerImport(pass) {
			// Neither the interface nor the named owner types are
			// visible; nothing in this package can be classified.
			return nil
		}

		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					checkGoStmt(pass, sc, n)
				case *ast.SendStmt:
					if t := exprType(pass, n.Value); t != nil && sc.isScratch(t) {
						pass.Reportf(n.Value.Pos(),
							"per-worker scratch of type %s is sent on a channel; the receiver shares the worker's buffers",
							typeStr(pass, t))
					}
				case *ast.AssignStmt:
					checkScratchStores(pass, sc, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// checkGoStmt flags scratch values that cross into a spawned goroutine,
// either as call arguments or as free variables captured by a function
// literal. Variables declared inside the literal belong to the new
// goroutine and are fine.
func checkGoStmt(pass *Pass, sc *scratchClassifier, g *ast.GoStmt) {
	for _, arg := range g.Call.Args {
		if t := exprType(pass, arg); t != nil && sc.isScratch(t) {
			pass.Reportf(arg.Pos(),
				"per-worker scratch of type %s is passed to a goroutine; the spawned goroutine shares the worker's buffers",
				typeStr(pass, t))
		}
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	// Objects declared inside the literal (including its params) are
	// owned by the new goroutine; everything else it mentions is free.
	local := make(map[types.Object]bool)
	ast.Inspect(lit, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	reported := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || local[obj] || reported[obj] || obj.IsField() {
			return true
		}
		if sc.isScratch(obj.Type()) {
			reported[obj] = true
			pass.Reportf(id.Pos(),
				"goroutine captures per-worker scratch %s (type %s); the spawned goroutine shares the worker's buffers",
				obj.Name(), typeStr(pass, obj.Type()))
		}
		return true
	})
}

// checkScratchStores flags assignments that park scratch where another
// goroutine can reach it: package-level variables, or fields of types
// declared outside the scratch packages (those cross the API boundary
// and outlive the worker's ownership window).
func checkScratchStores(pass *Pass, sc *scratchClassifier, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, lhs := range n.Lhs {
		t := exprType(pass, n.Rhs[i])
		if t == nil || !sc.isScratch(t) {
			continue
		}
		switch dst := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			v, ok := pass.Info.Uses[dst].(*types.Var)
			if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				pass.Reportf(lhs.Pos(),
					"per-worker scratch of type %s is stored in package-level variable %s; any goroutine can now reach it",
					typeStr(pass, t), v.Name())
			}
		case *ast.SelectorExpr:
			sel, ok := pass.Info.Selections[dst]
			if !ok {
				continue
			}
			field, ok := sel.Obj().(*types.Var)
			if !ok || field.Pkg() == nil {
				continue
			}
			if !pkgPathIn(field.Pkg().Path(), scratchPackages) {
				pass.Reportf(lhs.Pos(),
					"per-worker scratch of type %s is stored in field %s of package %s; it outlives the worker's ownership",
					typeStr(pass, t), field.Name(), field.Pkg().Path())
			}
		}
	}
}

// scratchClassifier decides whether a type is (or transitively holds)
// per-worker scratch.
type scratchClassifier struct {
	reusable *types.Interface
	memo     map[types.Type]bool
}

func (sc *scratchClassifier) isScratch(t types.Type) bool {
	return sc.classify(t, make(map[types.Type]bool), 0)
}

func (sc *scratchClassifier) classify(t types.Type, seen map[types.Type]bool, depth int) bool {
	t = types.Unalias(t)
	if depth > 8 || seen[t] {
		return false
	}
	seen[t] = true
	if v, ok := sc.memo[t]; ok {
		return v
	}

	res := sc.classifyUncached(t, seen, depth)
	// Memoize only top-level verdicts; mid-recursion results depend on
	// the cycle guard and would be unsafe to reuse.
	if depth == 0 {
		sc.memo[t] = res
	}
	return res
}

func (sc *scratchClassifier) classifyUncached(t types.Type, seen map[types.Type]bool, depth int) bool {
	// Pointers to scratch carry the same aliasing hazard as the value.
	if p, ok := t.(*types.Pointer); ok {
		return sc.classify(p.Elem(), seen, depth+1)
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			for pkg, names := range scratchOwnerTypes {
				if pkgPathIs(obj.Pkg().Path(), pkg) && names[obj.Name()] {
					return true
				}
			}
		}
		if sc.reusable != nil && concreteImplements(t, sc.reusable) {
			return true
		}
		return sc.classify(named.Underlying(), seen, depth+1)
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		// An interface value may hold scratch exactly when the
		// Reusable contract is part of its method set.
		return sc.reusable != nil && types.Implements(t, sc.reusable)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if sc.classify(u.Field(i).Type(), seen, depth+1) {
				return true
			}
		}
	case *types.Slice:
		return sc.classify(u.Elem(), seen, depth+1)
	case *types.Array:
		// Zero-length arrays (atomic.Pointer's [0]*T alignment trick)
		// hold nothing.
		if u.Len() > 0 {
			return sc.classify(u.Elem(), seen, depth+1)
		}
	case *types.Map:
		return sc.classify(u.Key(), seen, depth+1) || sc.classify(u.Elem(), seen, depth+1)
	case *types.Chan:
		return sc.classify(u.Elem(), seen, depth+1)
	}
	return false
}

// concreteImplements reports whether t or *t satisfies iface — pointer
// receivers included, the common shape for Reusable implementations.
func concreteImplements(t types.Type, iface *types.Interface) bool {
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// findReusableInterface locates core.Reusable in this package or its
// imports. Returns nil when the interface isn't visible here.
func findReusableInterface(pass *Pass) *types.Interface {
	lookup := func(pkg *types.Package) *types.Interface {
		if pkg == nil || !pkgPathIs(pkg.Path(), "internal/core") {
			return nil
		}
		obj, ok := pkg.Scope().Lookup("Reusable").(*types.TypeName)
		if !ok {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	if iface := lookup(pass.Pkg); iface != nil {
		return iface
	}
	for _, imp := range pass.Pkg.Imports() {
		if iface := lookup(imp); iface != nil {
			return iface
		}
	}
	return nil
}

// hasScratchOwnerImport reports whether any named owner type's package is
// visible from this one.
func hasScratchOwnerImport(pass *Pass) bool {
	check := func(pkg *types.Package) bool {
		for suffix := range scratchOwnerTypes {
			if pkgPathIs(pkg.Path(), suffix) {
				return true
			}
		}
		return false
	}
	if check(pass.Pkg) {
		return true
	}
	for _, imp := range pass.Pkg.Imports() {
		if check(imp) {
			return true
		}
	}
	return false
}

// exprType returns the static type of e, or nil.
func exprType(pass *Pass, e ast.Expr) types.Type {
	if tv, ok := pass.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return nil
}

// typeStr renders t relative to the package under analysis.
func typeStr(pass *Pass, t types.Type) string {
	return types.TypeString(t, types.RelativeTo(pass.Pkg))
}
