package rng

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
)

// ErrEmptyWeights is returned when a distribution is constructed from an
// empty or all-zero weight vector.
var ErrEmptyWeights = errors.New("rng: weights are empty or sum to zero")

// Alias is a Walker alias table for O(1) sampling from a fixed discrete
// distribution. Construction is O(n).
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table from non-negative weights. Weights need
// not be normalized.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, ErrEmptyWeights
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("rng: weight %d is invalid (%v)", i, w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, ErrEmptyWeights
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	// Scaled probabilities; partition into small (<1) and large (>=1).
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]

		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are all probability 1.
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1
	}
	return a, nil
}

// Len reports the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }

// Sample draws one outcome index.
func (a *Alias) Sample(r *rand.Rand) int {
	i := r.IntN(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// PowerLawDegrees samples n integer degrees from a discrete power law
// P(d) ∝ d^(-gamma) on [minDeg, maxDeg], using inverse transform sampling
// on the continuous approximation, rounded down. The returned sequence sum
// is forced even (one sample is incremented if needed) so it can feed a
// configuration model.
func PowerLawDegrees(r *rand.Rand, n, minDeg, maxDeg int, gamma float64) ([]int, error) {
	switch {
	case n <= 0:
		return nil, fmt.Errorf("rng: n must be positive, got %d", n)
	case minDeg < 1:
		return nil, fmt.Errorf("rng: minDeg must be >= 1, got %d", minDeg)
	case maxDeg < minDeg:
		return nil, fmt.Errorf("rng: maxDeg %d < minDeg %d", maxDeg, minDeg)
	case gamma <= 1:
		return nil, fmt.Errorf("rng: gamma must be > 1, got %v", gamma)
	}
	degs := make([]int, n)
	lo := math.Pow(float64(minDeg), 1-gamma)
	hi := math.Pow(float64(maxDeg)+1, 1-gamma)
	sum := 0
	for i := range degs {
		u := r.Float64()
		x := math.Pow(lo+u*(hi-lo), 1/(1-gamma))
		d := int(x)
		if d < minDeg {
			d = minDeg
		}
		if d > maxDeg {
			d = maxDeg
		}
		degs[i] = d
		sum += d
	}
	if sum%2 != 0 {
		degs[0]++
	}
	return degs, nil
}

// Shuffle permutes the slice in place.
func Shuffle[T any](r *rand.Rand, xs []T) {
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// SampleWithoutReplacement draws k distinct values from [0, n) uniformly.
// It uses Floyd's algorithm: O(k) expected time and memory.
func SampleWithoutReplacement(r *rand.Rand, n, k int) ([]int, error) {
	if k < 0 || k > n {
		return nil, fmt.Errorf("rng: cannot sample %d from %d", k, n)
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.IntN(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	Shuffle(r, out)
	return out, nil
}

// Bernoulli reports true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}
