// Package core implements the paper's contribution: the Adaptive Benefit
// Maximization (ABM) greedy of Algorithm 1 with its two-part potential
// function, the baseline policies compared against in §IV (MaxDegree,
// PageRank, Random), and the attack runner that executes a policy for a
// budget of k friend requests while recording the per-request trace used
// by Figures 2–5.
package core

import (
	"errors"
	"fmt"

	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// Policy is an adaptive attack strategy π: given the current partial
// realization it picks the next friend-request target.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Init is called once per attack with the fresh state. Policies keep
	// per-attack caches here; a Policy instance is used for one attack
	// at a time.
	Init(st *osn.State) error
	// SelectNext returns the next user to send a request to, or ok=false
	// when no candidate remains. The returned user must not have been
	// requested before.
	SelectNext(st *osn.State) (user int, ok bool)
	// Observe notifies the policy of a request outcome so it can update
	// its internal caches.
	Observe(st *osn.State, out osn.Outcome)
}

// Reusable is an optional Policy extension for schedulers that execute
// many attacks per worker goroutine. Reseed must restore the policy to
// the state a fresh construction with the given seed would have — Init is
// still called before the next attack, so implementations only need to
// reset seed-derived state while keeping buffer capacity for reuse.
// Policies that ignore their construction seed implement it as a no-op.
type Reusable interface {
	Policy
	// Reseed prepares the instance for a new attack under seed.
	Reseed(seed rng.Seed)
}

// ErrNoBudget is returned when Run is called with a non-positive budget.
var ErrNoBudget = errors.New("core: request budget must be positive")

// Step records one friend request of an executed attack.
type Step struct {
	// User is the request target.
	User int
	// Accepted reports the request outcome.
	Accepted bool
	// Cautious reports whether the target is a cautious user.
	Cautious bool
	// Gain is the realized marginal benefit of this request.
	Gain float64
	// BenefitAfter is the cumulative benefit after this request.
	BenefitAfter float64
	// CautiousFriendsAfter is the number of cautious friends after this
	// request.
	CautiousFriendsAfter int
}

// Result is the trace of one executed attack.
type Result struct {
	// Policy is the executing policy's name.
	Policy string
	// Steps holds one record per request sent, in order.
	Steps []Step
	// Benefit is the final collected benefit.
	Benefit float64
	// Friends and CautiousFriends are the final friend counts.
	Friends         int
	CautiousFriends int
	// Journal records the request sequence for replay/audit
	// (osn.Journal.Replay against the same realization reproduces the
	// attack exactly).
	Journal *osn.Journal
}

// Runner executes attacks while pooling the per-attack osn.State buffers
// across calls: a worker goroutine that owns a Runner pays the three O(N)
// state allocations once instead of once per cell. The zero value is
// ready to use; a Runner is single-goroutine (one per worker). Results
// never alias the pooled state, so they stay valid across calls.
type Runner struct {
	st *osn.State
}

// state returns a fresh-equivalent attack state for re, reusing the
// pooled buffers when possible. A nil receiver degrades to plain
// allocation so package-level Run can share the execution path.
func (r *Runner) state(re *osn.Realization) *osn.State {
	if r == nil {
		return osn.NewState(re)
	}
	if r.st == nil {
		r.st = osn.NewState(re)
	} else {
		r.st.Reset(re)
	}
	return r.st
}

// Run executes the policy against the realization for up to k requests
// and returns the trace. The attack stops early if the policy runs out of
// candidates.
func Run(p Policy, re *osn.Realization, k int) (*Result, error) {
	return (*Runner)(nil).Run(p, re, k)
}

// Run executes one attack, reusing the runner's pooled state.
func (r *Runner) Run(p Policy, re *osn.Realization, k int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoBudget, k)
	}
	st := r.state(re)
	if err := p.Init(st); err != nil {
		return nil, fmt.Errorf("core: init %s: %w", p.Name(), err)
	}
	res := &Result{Policy: p.Name(), Steps: make([]Step, 0, k), Journal: &osn.Journal{}}
	for i := 0; i < k; i++ {
		u, ok := p.SelectNext(st)
		if !ok {
			break
		}
		out, err := st.Request(u)
		if err != nil {
			return nil, fmt.Errorf("core: %s selected invalid user %d: %w", p.Name(), u, err)
		}
		res.Journal.Record(u)
		p.Observe(st, out)
		res.Steps = append(res.Steps, Step{
			User:                 u,
			Accepted:             out.Accepted,
			Cautious:             out.Cautious,
			Gain:                 out.Gain,
			BenefitAfter:         st.Benefit(),
			CautiousFriendsAfter: st.CautiousFriends(),
		})
	}
	res.Benefit = st.Benefit()
	res.Friends = st.Friends()
	res.CautiousFriends = st.CautiousFriends()
	return res, nil
}
