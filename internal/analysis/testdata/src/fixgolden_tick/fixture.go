// Package sim is the timerleak autofix golden fixture: one time.Tick
// call whose machine-applicable fix rewrites it to time.NewTicker(d).C.
package sim

import "time"

func poll(stop chan struct{}) {
	for {
		select {
		case <-time.Tick(5 * time.Millisecond):
		case <-stop:
			return
		}
	}
}
