package gen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/graph"
)

func TestFixedGenerator(t *testing.T) {
	b := graph.NewBuilder(3)
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Freeze()
	f := Fixed{G: g, Label: "toy"}
	if f.Name() != "fixed(toy)" {
		t.Errorf("name = %q", f.Name())
	}
	got, err := f.Generate(seed(1))
	if err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Error("fixed generator returned a different graph")
	}
	// Same graph for every seed.
	got2, err := f.Generate(seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if got2 != g {
		t.Error("fixed generator not seed-invariant")
	}
}

func TestFixedNilGraph(t *testing.T) {
	if _, err := (Fixed{}).Generate(seed(3)); err == nil {
		t.Error("nil graph: want error")
	}
}

func TestFixedUnlabeledName(t *testing.T) {
	b := graph.NewBuilder(2)
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	f := Fixed{G: b.Freeze()}
	if !strings.Contains(f.Name(), "n=2") {
		t.Errorf("name = %q", f.Name())
	}
}

func TestLoadEdgeList(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.txt")
	if err := os.WriteFile(path, []byte("# test\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.G.N() != 3 || f.G.M() != 2 {
		t.Errorf("loaded N=%d M=%d", f.G.N(), f.G.M())
	}
	if f.Name() != "fixed(edges.txt)" {
		t.Errorf("name = %q", f.Name())
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	if _, err := LoadEdgeList("/nonexistent/edges.txt"); err == nil {
		t.Error("missing file: want error")
	}
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("not numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEdgeList(path); err == nil {
		t.Error("bad content: want error")
	}
}
