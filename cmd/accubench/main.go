// Command accubench regenerates the paper's tables and figures.
//
// Usage:
//
//	accubench [flags] <experiment>...
//	accubench -list
//	accubench all                 # run every experiment
//
// Experiments: table1, fig2 ... fig7, thm1, ext-soft, ext-batch,
// ext-multi, ext-defense, and claims (the executable checklist of the
// paper's qualitative claims). Use -list for the full roster.
//
// The default configuration is laptop-scale; pass -scale 1 -networks 100
// -runs 30 -k 500 -cautious 100 for the paper's full protocol.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	accu "github.com/accu-sim/accu"
	"github.com/accu-sim/accu/internal/prof"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accubench:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("accubench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		asJSON   = fs.Bool("json", false, "emit reports as a JSON array instead of text")
		verbose  = fs.Bool("v", false, "log experiment progress and timings to stderr")
		scale    = fs.Float64("scale", 0.03, "network scale factor in (0, 1]")
		networks = fs.Int("networks", 2, "sample networks per experiment (paper: 100)")
		runs     = fs.Int("runs", 3, "runs per network (paper: 30)")
		k        = fs.Int("k", 0, "friend-request budget (0 = derive from scale; paper: 500)")
		cautious = fs.Int("cautious", 0, "cautious users per network (0 = derive; paper: 100)")
		datasets = fs.String("datasets", "", "comma-separated preset names (default: all four)")
		wd       = fs.Float64("wd", 0.5, "ABM direct-benefit weight w_D")
		wi       = fs.Float64("wi", 0.5, "ABM indirect-benefit weight w_I")
		seed     = fs.Uint64("seed", 20191243, "root random seed")
		workers  = fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")

		checkpoint = fs.String("checkpoint", "", "journal completed Monte-Carlo cells to this directory (one JSONL file per protocol)")
		resume     = fs.Bool("resume", false, "reopen journals in the -checkpoint directory and compute only missing cells")
		keepGoing  = fs.Bool("keep-going", false, "continue past failed Monte-Carlo cells and report them as warnings")

		metrics    = fs.Bool("metrics", false, "collect engine metrics and print a table after each report")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(prof.Options{CPUProfile: *cpuprofile, MemProfile: *memprofile, PprofAddr: *pprofAddr})
	if err != nil {
		return err
	}
	defer stopProf()
	if *list {
		for _, id := range accu.Experiments() {
			fmt.Fprintln(out, id)
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		return fmt.Errorf("no experiment given (try -list, or: accubench all)")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = accu.Experiments()
	}

	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *checkpoint != "" {
		if err := os.MkdirAll(*checkpoint, 0o755); err != nil {
			return fmt.Errorf("create checkpoint directory: %w", err)
		}
	}

	cfg := accu.ExperimentConfig{
		Scale:         *scale,
		Networks:      *networks,
		Runs:          *runs,
		K:             *k,
		NumCautious:   *cautious,
		Weights:       accu.Weights{WD: *wd, WI: *wi},
		Seed:          accu.NewSeed(*seed, *seed^0x9e3779b97f4a7c15),
		Workers:       *workers,
		CheckpointDir: *checkpoint,
		Resume:        *resume,
		KeepGoing:     *keepGoing,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	// The pool is sized per (network, run) cell; surface a clamp up front
	// instead of silently running with fewer workers than asked.
	probe := accu.Protocol{Networks: *networks, Runs: *runs, Workers: *workers}
	if resolved, clamped := probe.ResolveWorkers(); clamped {
		fmt.Fprintf(os.Stderr, "accubench: -workers %d exceeds the %d networks × %d runs cell grid; running with %d workers\n",
			*workers, *networks, *runs, resolved)
	}
	progressing := false
	if *verbose {
		cfg.OnProgress = func(p accu.Progress) {
			fmt.Fprintf(os.Stderr, "\raccubench: %d/%d cells (%s net %d run %d)   ", p.Done, p.Total, p.Policy, p.Network, p.Run)
			progressing = p.Done < p.Total
		}
	}
	endProgress := func() {
		if progressing {
			fmt.Fprintln(os.Stderr)
			progressing = false
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reports []*accu.Report
	for _, id := range ids {
		if *metrics {
			// Fresh registry per experiment so each report's snapshot
			// covers exactly its own runs.
			cfg.Metrics = accu.NewMetrics()
		}
		start := time.Now()
		if *verbose {
			fmt.Fprintf(os.Stderr, "accubench: running %s...\n", id)
		}
		rep, err := accu.RunExperiment(ctx, id, cfg)
		endProgress()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "accubench: %s done in %v\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *asJSON {
			reports = append(reports, rep)
			continue
		}
		fmt.Fprintln(out, rep.String())
		if snap := rep.Metrics(); !snap.Empty() {
			fmt.Fprintf(out, "-- %s metrics --\n%s\n", id, snap.Render())
		}
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return fmt.Errorf("encode reports: %w", err)
		}
	}
	return nil
}
