package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestMetricNames(t *testing.T) {
	analysistest.Run(t, analysis.MetricNames(), analysistest.Fixture{
		Dir:        "testdata/src/metricname_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}

// TestMetricNamesFreshState: each MetricNames instance carries its own
// duplicate table, so two runs over the same fixture must behave
// identically (a shared table would report spurious cross-run
// collisions).
func TestMetricNamesFreshState(t *testing.T) {
	for i := 0; i < 2; i++ {
		analysistest.Run(t, analysis.MetricNames(), analysistest.Fixture{
			Dir:        "testdata/src/metricname_sim",
			ImportPath: "example.test/internal/sim",
			Deps:       stubDeps,
		})
	}
}
