package sim

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/stats"
)

// sketchJSON serializes a sketch snapshot for byte-level comparison.
func sketchJSON(t *testing.T, sk *stats.Sketch) string {
	t.Helper()
	b, err := json.Marshal(sk.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestSummaryAggregates(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary([]int{5, 10, 15})
	if err := Run(context.Background(), p, factories, sum.Collect); err != nil {
		t.Fatal(err)
	}
	if len(sum.Policies()) != len(factories) {
		t.Fatalf("policies = %v", sum.Policies())
	}
	cells := int64(p.Networks * p.Runs)
	for _, name := range sum.Policies() {
		fb := sum.FinalBenefit(name)
		if fb.Count() != cells {
			t.Errorf("%s: count = %d, want %d", name, fb.Count(), cells)
		}
		if fb.Mean() <= 0 {
			t.Errorf("%s: mean benefit %v", name, fb.Mean())
		}
		if cf := sum.CautiousFriends(name); cf.Count() != cells {
			t.Errorf("%s: cautious count = %d", name, cf.Count())
		}
		curve := sum.Curve(name)
		if curve == nil || curve.Len() != 3 {
			t.Fatalf("%s: curve missing", name)
		}
		// Curves are monotone in k and end at the final benefit.
		means := curve.Means()
		for i := 1; i < len(means); i++ {
			if means[i]+1e-9 < means[i-1] {
				t.Errorf("%s: curve not monotone: %v", name, means)
			}
		}
		if means[len(means)-1] != fb.Mean() {
			t.Errorf("%s: final checkpoint %v != final benefit %v", name, means[len(means)-1], fb.Mean())
		}
	}
	if len(sum.Curves()) != len(factories) {
		t.Errorf("curves = %d", len(sum.Curves()))
	}
}

func TestSummaryMerge(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := []int{5, 10, 15}

	// Reference: one summary over the whole run.
	whole := NewSummary(checkpoints)
	if err := Run(context.Background(), p, factories, whole.Collect); err != nil {
		t.Fatal(err)
	}

	// Split the same record stream across two partial summaries by cell
	// parity, then merge — the reduction the dist coordinator performs.
	parts := []*Summary{NewSummary(checkpoints), NewSummary(checkpoints)}
	if err := Run(context.Background(), p, factories, func(rec Record) {
		parts[(rec.Network*p.Runs+rec.Run)%2].Collect(rec)
	}); err != nil {
		t.Fatal(err)
	}
	merged := NewSummary(checkpoints)
	for _, part := range parts {
		if err := merged.Merge(part); err != nil {
			t.Fatal(err)
		}
	}

	if got, want := merged.Policies(), whole.Policies(); len(got) != len(want) {
		t.Fatalf("policies = %v, want %v", got, want)
	}
	for _, name := range whole.Policies() {
		wf, mf := whole.FinalBenefit(name), merged.FinalBenefit(name)
		if mf == nil || mf.Count() != wf.Count() {
			t.Fatalf("%s: merged count = %v, want %d", name, mf, wf.Count())
		}
		if diff := mf.Mean() - wf.Mean(); diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s: merged mean %v, want %v", name, mf.Mean(), wf.Mean())
		}
		wc, mc := whole.Curve(name), merged.Curve(name)
		if mc == nil || mc.Len() != wc.Len() {
			t.Fatalf("%s: merged curve %v", name, mc)
		}
		wm, mm := wc.Means(), mc.Means()
		for i := range wm {
			if diff := mm[i] - wm[i]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s: curve[%d] = %v, want %v", name, i, mm[i], wm[i])
			}
		}

		// Sketch snapshots, unlike the Welford fields above, must be
		// BYTE-identical between the single-stream and merged summaries —
		// the reproducibility contract accudist's e2e check relies on.
		if got, want := sketchJSON(t, merged.FinalBenefitSketch(name)), sketchJSON(t, whole.FinalBenefitSketch(name)); got != want {
			t.Errorf("%s: final-benefit sketch diverged under merge:\n got %s\nwant %s", name, got, want)
		}
		if got, want := sketchJSON(t, merged.CautiousFriendsSketch(name)), sketchJSON(t, whole.CautiousFriendsSketch(name)); got != want {
			t.Errorf("%s: cautious-friends sketch diverged under merge", name)
		}
		wsnap, msnap := wc.Snapshot(), mc.Snapshot()
		if len(msnap.Sketches) != len(wsnap.Sketches) || len(wsnap.Sketches) != wc.Len() {
			t.Fatalf("%s: curve sketch count = %d, want %d", name, len(msnap.Sketches), wc.Len())
		}
		for i := range wsnap.Sketches {
			got, _ := json.Marshal(msnap.Sketches[i])
			want, _ := json.Marshal(wsnap.Sketches[i])
			if string(got) != string(want) {
				t.Errorf("%s: curve sketch[%d] diverged under merge", name, i)
			}
		}
	}

	// Curve presence must match on both sides.
	if err := NewSummary(nil).Merge(whole); err == nil {
		t.Error("merging curved into curveless summary should fail")
	}
	bare := NewSummary(nil)
	if err := Run(context.Background(), p, factories, bare.Collect); err != nil {
		t.Fatal(err)
	}
	if err := merged.Merge(bare); err == nil {
		t.Error("merging curveless into curved summary should fail")
	}

	// Merging into an empty summary adopts policies and curves wholesale.
	empty := NewSummary(checkpoints)
	if err := empty.Merge(whole); err != nil {
		t.Fatal(err)
	}
	for _, name := range whole.Policies() {
		if empty.FinalBenefit(name).Count() != whole.FinalBenefit(name).Count() {
			t.Errorf("%s: adopted count mismatch", name)
		}
	}
}

// TestSummaryCheckpointZero is the regression test for the
// benefitAtStep panic: a checkpoint at request 0 used to index
// steps[-1] whenever the trace was non-empty. No requests have been
// sent at checkpoint 0, so it must read 0.
func TestSummaryCheckpointZero(t *testing.T) {
	sum := NewSummary([]int{0, 2})
	sum.Collect(Record{
		Policy: "abm",
		Result: &core.Result{
			Steps: []core.Step{
				{BenefitAfter: 1.5},
				{BenefitAfter: 3.0},
			},
			Benefit: 3.0,
		},
	})
	curve := sum.Curve("abm")
	if curve == nil || curve.Len() != 2 {
		t.Fatalf("curve = %v", curve)
	}
	means := curve.Means()
	if means[0] != 0 {
		t.Errorf("benefit at checkpoint 0 = %v, want 0", means[0])
	}
	if means[1] != 3.0 {
		t.Errorf("benefit at checkpoint 2 = %v, want 3", means[1])
	}

	// Direct unit coverage of the guard, including negative checkpoints
	// and short/empty traces.
	steps := []core.Step{{BenefitAfter: 2}, {BenefitAfter: 5}}
	for _, tc := range []struct {
		steps []core.Step
		c     int
		want  float64
	}{
		{steps, 0, 0},
		{steps, -1, 0},
		{steps, 1, 2},
		{steps, 2, 5},
		{steps, 99, 5},
		{nil, 0, 0},
		{nil, 3, 0},
	} {
		if got := benefitAtStep(tc.steps, tc.c); got != tc.want {
			t.Errorf("benefitAtStep(len %d, %d) = %v, want %v", len(tc.steps), tc.c, got, tc.want)
		}
	}
}

func TestSummaryWithoutCheckpoints(t *testing.T) {
	p := testProtocol()
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	sum := NewSummary(nil)
	if err := Run(context.Background(), p, factories, sum.Collect); err != nil {
		t.Fatal(err)
	}
	for _, name := range sum.Policies() {
		if sum.Curve(name) != nil {
			t.Errorf("%s: unexpected curve", name)
		}
		if sum.FinalBenefit(name).Count() == 0 {
			t.Errorf("%s: no records", name)
		}
	}
	if got := sum.Curves(); len(got) != 0 {
		t.Errorf("curves = %v", got)
	}
	if sum.FinalBenefit("nope") != nil {
		t.Error("unknown policy should return nil")
	}
}
