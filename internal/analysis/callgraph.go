package analysis

// callgraph.go is the wave-3 interprocedural layer: a package-local
// static call graph built from the typed AST, on which analyzers build
// bounded context-insensitive summaries ("does this helper close the
// body it is handed", "does this function transitively block").
//
// Scope and soundness limits, deliberately chosen:
//
//   - Nodes are the package's own function and method declarations with
//     bodies. Callees outside the package have no node — analyzers that
//     care about stdlib effects (os.WriteFile, time.Sleep) recognize
//     those at the call site and use the graph only to propagate the
//     effect through in-package helpers.
//   - Edges are static: direct calls to package-level functions, method
//     calls resolved through the receiver's named type, and interface
//     method calls resolved to every in-package concrete type whose
//     method set satisfies the interface (the context-insensitive
//     over-approximation). Calls through function-typed variables and
//     method values are NOT edges — a summary never sees them, which is
//     the documented unsoundness escape for callback-heavy code.
//   - Calls made inside nested function literals are attributed to the
//     enclosing declaration, with the edge marked Async when the
//     literal (or call) sits under a `go` statement and Deferred when
//     under a `defer`. A deferred call still runs inside the caller's
//     activation, so summaries usually include it; an async call does
//     not block its spawner, so e.g. lockedio excludes Async edges.
//
// Summaries built on the graph must be bounded: PropagateUp caps both
// the sweep count and the witness chain length, so recursion (a cycle in
// the graph) converges instead of diverging.

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// A CallEdge is one static call from a package function to another.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Site   *ast.CallExpr
	// Kind is "direct" (package-level function), "method" (resolved
	// through a named receiver type) or "interface" (resolved to an
	// in-package implementation of the interface method).
	Kind string
	// Async marks a call under a `go` statement: it runs concurrently
	// with the caller, not inside its activation.
	Async bool
	// Deferred marks a call under a `defer` statement: it runs at the
	// caller's exit, still inside its activation.
	Deferred bool
}

// A CallGraph is the package-local static call graph of one type-checked
// package.
type CallGraph struct {
	pkg   *types.Package
	decls map[*types.Func]*ast.FuncDecl
	edges map[*types.Func][]CallEdge
	// funcs is every declared function in source order — the stable
	// iteration order for String and PropagateUp.
	funcs []*types.Func
}

// NewCallGraph builds the call graph of one package from its typed AST.
func NewCallGraph(pkg *types.Package, info *types.Info, files []*ast.File) *CallGraph {
	g := &CallGraph{
		pkg:   pkg,
		decls: make(map[*types.Func]*ast.FuncDecl),
		edges: make(map[*types.Func][]CallEdge),
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			g.funcs = append(g.funcs, fn)
		}
	}
	// Concrete method index for interface resolution: every in-package
	// named type's method name -> *types.Func; pointer receivers are
	// covered by checking satisfaction against *T below.
	impls := g.implIndex()
	for _, fn := range g.funcs {
		g.addEdges(fn, g.decls[fn].Body, info, impls, false, false)
	}
	return g
}

// implIndex maps method name -> candidate concrete methods declared in
// this package, for interface-call resolution.
func (g *CallGraph) implIndex() map[string][]*types.Func {
	impls := make(map[string][]*types.Func)
	for fn := range g.decls {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			impls[fn.Name()] = append(impls[fn.Name()], fn)
		}
	}
	return impls
}

// addEdges walks one statement tree collecting call edges for caller,
// tracking go/defer context. Function literals are flattened into the
// enclosing declaration (their calls carry the context flags).
func (g *CallGraph) addEdges(caller *types.Func, n ast.Node, info *types.Info, impls map[string][]*types.Func, async, deferred bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			g.addEdges(caller, n.Call, info, impls, true, deferred)
			return false
		case *ast.DeferStmt:
			g.addEdges(caller, n.Call, info, impls, async, true)
			return false
		case *ast.CallExpr:
			for _, e := range g.resolve(n, info, impls) {
				e.Caller, e.Async, e.Deferred = caller, async, deferred
				g.edges[caller] = append(g.edges[caller], e)
			}
		}
		return true
	})
}

// resolve returns the in-package callees of one call expression with
// their edge kinds (Caller and context flags are filled by the caller).
func (g *CallGraph) resolve(call *ast.CallExpr, info *types.Info, impls map[string][]*types.Func) []CallEdge {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && g.decls[fn] != nil {
			return []CallEdge{{Callee: fn, Site: call, Kind: "direct"}}
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if !ok {
			// Package-qualified call (pkg.F): never in-package.
			return nil
		}
		m, ok := sel.Obj().(*types.Func)
		if !ok {
			return nil
		}
		if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
			return g.resolveInterface(m, iface, call, impls)
		}
		if g.decls[m] != nil {
			return []CallEdge{{Callee: m, Site: call, Kind: "method"}}
		}
	}
	return nil
}

// resolveInterface finds every in-package concrete method that can be
// the dynamic target of an interface method call: the receiver's type
// (or its pointer) must satisfy the interface and the method name match.
func (g *CallGraph) resolveInterface(m *types.Func, iface *types.Interface, call *ast.CallExpr, impls map[string][]*types.Func) []CallEdge {
	var edges []CallEdge
	for _, cand := range impls[m.Name()] {
		recv := cand.Type().(*types.Signature).Recv().Type()
		// Satisfaction is checked against *T: the pointer method set is
		// the superset, so both value- and pointer-receiver impls match.
		t := recv
		if p, ok := recv.(*types.Pointer); ok {
			t = p.Elem()
		}
		if types.Implements(types.NewPointer(t), iface) {
			edges = append(edges, CallEdge{Callee: cand, Site: call, Kind: "interface"})
		}
	}
	// Deterministic order for golden tests and stable diagnostics.
	sort.Slice(edges, func(i, j int) bool {
		return funcDisplayName(edges[i].Callee) < funcDisplayName(edges[j].Callee)
	})
	return edges
}

// DeclOf returns the syntax of an in-package function, or nil.
func (g *CallGraph) DeclOf(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Funcs returns the package's declared functions in source order.
func (g *CallGraph) Funcs() []*types.Func { return g.funcs }

// Edges returns caller's outgoing edges in call-site order.
func (g *CallGraph) Edges(caller *types.Func) []CallEdge { return g.edges[caller] }

// StaticCallee resolves a call expression to its single static
// in-package callee: a direct call or a concrete method call. Interface
// calls (several possible targets) and out-of-package callees return
// nil — use Callees for the full set.
func (g *CallGraph) StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok && g.decls[fn] != nil {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
			if m, ok := sel.Obj().(*types.Func); ok && g.decls[m] != nil {
				return m
			}
		}
	}
	return nil
}

// maxWitnessChain bounds how many in-package hops a propagated summary
// witness records — and, together with the sweep cap in PropagateUp,
// keeps summaries bounded on recursive call graphs.
const maxWitnessChain = 8

// PropagateUp computes the transitive "may reach a seeded function"
// summary: starting from seed (function -> witness describing its
// intrinsic effect, e.g. "os.WriteFile"), every caller whose edges —
// filtered by include (nil keeps all) — reach a seeded or summarized
// function is marked with a witness chain ("saveJob → os.WriteFile").
// The fixpoint is bounded by the function count and witness chains by
// maxWitnessChain, so recursion converges.
func (g *CallGraph) PropagateUp(seed map[*types.Func]string, include func(CallEdge) bool) map[*types.Func]string {
	out := make(map[*types.Func]string, len(seed))
	for fn, w := range seed {
		out[fn] = w
	}
	for sweep := 0; sweep <= len(g.funcs); sweep++ {
		changed := false
		for _, caller := range g.funcs {
			if _, done := out[caller]; done {
				continue
			}
			for _, e := range g.edges[caller] {
				if include != nil && !include(e) {
					continue
				}
				w, ok := out[e.Callee]
				if !ok {
					continue
				}
				if strings.Count(w, " → ") >= maxWitnessChain {
					w = funcDisplayName(e.Callee)
				} else {
					w = funcDisplayName(e.Callee) + " → " + w
				}
				out[caller] = w
				changed = true
				break
			}
		}
		if !changed {
			break
		}
	}
	return out
}

// ParamSummary computes which parameters of in-package functions satisfy
// a property, propagated bottom-up through call sites: a parameter is
// marked when intrinsic says its own body establishes the property
// (e.g. "this body closes p"), or when it is passed — in a form argIs
// accepts — to an already-marked parameter of an in-package callee. argIs
// decides whether an argument expression denotes the parameter (nil
// means a plain identifier reference); analyzers widen it for derived
// forms such as `p.Body`. Receivers are not summarized — only ordinary
// parameters — and variadic calls match positionally, both documented
// precision limits. The fixpoint is bounded by the function count.
func (g *CallGraph) ParamSummary(info *types.Info, intrinsic func(fn *types.Func, decl *ast.FuncDecl, p *types.Var) bool, argIs func(arg ast.Expr, p *types.Var) bool) map[*types.Func]map[int]bool {
	if argIs == nil {
		argIs = func(arg ast.Expr, p *types.Var) bool {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			return ok && info.Uses[id] == p
		}
	}
	marked := make(map[*types.Func]map[int]bool)
	mark := func(fn *types.Func, i int) {
		if marked[fn] == nil {
			marked[fn] = make(map[int]bool)
		}
		marked[fn][i] = true
	}
	paramsOf := func(fn *types.Func) *types.Tuple { return fn.Type().(*types.Signature).Params() }

	for _, fn := range g.funcs {
		ps := paramsOf(fn)
		for i := 0; i < ps.Len(); i++ {
			if intrinsic(fn, g.decls[fn], ps.At(i)) {
				mark(fn, i)
			}
		}
	}
	for sweep := 0; sweep <= len(g.funcs); sweep++ {
		changed := false
		for _, fn := range g.funcs {
			ps := paramsOf(fn)
			for i := 0; i < ps.Len(); i++ {
				if marked[fn][i] {
					continue
				}
				p := ps.At(i)
				for _, e := range g.edges[fn] {
					for j, arg := range e.Site.Args {
						if marked[e.Callee][j] && argIs(arg, p) {
							mark(fn, i)
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	return marked
}

// calleeFunc resolves the function or method a call expression invokes,
// in-package or not; nil for builtins, conversions and dynamic calls
// through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[fun]; ok {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		if f, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isPackageFunc reports whether f is a package-level function (no
// receiver) — distinguishing e.g. time.After from time.Time.After.
func isPackageFunc(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// isNamed reports whether t is the named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// namedRecvName returns the receiver's named-type name (through one
// pointer), or "" when the receiver is unnamed.
func namedRecvName(t types.Type) string {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// funcDisplayName renders a function for witnesses and golden output:
// "F" for functions, "(T).M" / "(*T).M" for methods.
func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		if named, ok := p.Elem().(*types.Named); ok {
			return fmt.Sprintf("(*%s).%s", named.Obj().Name(), fn.Name())
		}
	}
	if named, ok := recv.(*types.Named); ok {
		return fmt.Sprintf("(%s).%s", named.Obj().Name(), fn.Name())
	}
	return fn.Name()
}

// String renders the graph in the compact form the golden tests pin: one
// line per edge, "caller -> callee [kind]" with " go"/" defer" suffixes
// for async/deferred context, callers in source order and edges in
// call-site order.
func (g *CallGraph) String() string {
	var sb strings.Builder
	for _, caller := range g.funcs {
		for _, e := range g.edges[caller] {
			fmt.Fprintf(&sb, "%s -> %s [%s]", funcDisplayName(caller), funcDisplayName(e.Callee), e.Kind)
			if e.Async {
				sb.WriteString(" go")
			}
			if e.Deferred {
				sb.WriteString(" defer")
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
