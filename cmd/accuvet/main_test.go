package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
)

// TestRepoIsClean is the lint smoke test: the suite must run clean over
// this repository, exactly as `make lint` / CI invoke it.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"github.com/accu-sim/accu/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("accuvet exit %d on clean repo:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSyntheticViolationFails builds a throwaway module containing a
// deterministic-package clock read and asserts the checker fails on it.
func TestSyntheticViolationFails(t *testing.T) {
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "time.Now reads the clock") || !strings.Contains(out, "[detrand]") {
		t.Fatalf("missing detrand finding in output:\n%s", out)
	}
}

// TestListAnalyzers: -list names all nineteen analyzers.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	names := []string{
		"detrand", "maporder", "seedflow", "metricname",
		"lockbalance", "atomicmix", "ctxcancel", "scratchescape", "errcmp",
		"httpbody", "respwrite", "lockedio", "ctxflow", "timerleak",
		"detflow", "errdrop", "fsyncack", "wiretag", "chanleak",
	}
	for _, name := range names {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("missing analyzer %q in -list output:\n%s", name, stdout.String())
		}
	}
	if got := strings.Count(strings.TrimRight(stdout.String(), "\n"), "\n") + 1; got != len(names) {
		t.Errorf("-list printed %d analyzers, want %d:\n%s", got, len(names), stdout.String())
	}
}

// TestVetProtocolFlags: the go command interrogates -flags before
// passing anything through; the answer must be valid JSON (accuvet
// exposes no extra flags, so an empty array).
func TestVetProtocolFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("-flags output = %q, want []", got)
	}
}

// TestJSONOutput: findings serialize as JSON with positions.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "github.com/accu-sim/accu/internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean package JSON = %q, want []", got)
	}
}

// TestSuggestMode builds a throwaway module with one live violation and
// one already-allowed violation: -suggest prints both (the allowed one
// marked), suggests the //accu:allow syntax for the live one, and exits
// 1 because a live finding remains.
func TestSuggestMode(t *testing.T) {
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }

// Boot is the audited exception.
func Boot() int64 {
	//accu:allow detrand -- startup banner only, never recorded
	return time.Now().UnixNano()
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-suggest", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one live finding)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, fragment := range []string{
		"//accu:allow detrand",
		"to suppress",
		"(allowed)",
	} {
		if !strings.Contains(out, fragment) {
			t.Errorf("missing %q in -suggest output:\n%s", fragment, out)
		}
	}

	// Exit-code consistency: the plain run sees only the live finding
	// and must agree with -suggest's verdict.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("plain run exit = %d, want 1", code)
	}
}

// writeViolationModule lays out a throwaway module with one detrand
// violation in a deterministic package and chdirs into it.
func writeViolationModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	return dir
}

// TestBaselineRatchet drives the full ratchet cycle on a throwaway
// module: a live finding fails the plain run, -write-baseline snapshots
// it, -baseline then passes, and a second (new) violation fails again
// with only the new finding reported.
func TestBaselineRatchet(t *testing.T) {
	dir := writeViolationModule(t)
	base := filepath.Join(dir, "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("pre-baseline exit = %d, want 1\n%s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-write-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d: %s", code, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("baselined run exit = %d, want 0 (finding should be absorbed):\n%s", code, stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "0 new, 0 fixed, 0 suppressed") {
		t.Errorf("missing ratchet summary in baselined run stderr:\n%s", out)
	}

	// A new violation — same analyzer, different site/message — must
	// still fail: the baseline fingerprint is (file, analyzer, message).
	extra := filepath.Join(dir, "internal", "core", "worse.go")
	if err := os.WriteFile(extra, []byte(`package core

import "time"

// Elapsed also reads the clock.
func Elapsed() time.Time { return time.Now() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-baseline", base, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("new-finding exit = %d, want 1\n%s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "worse.go") {
		t.Errorf("new finding missing from output:\n%s", out)
	}
	if strings.Contains(out, "bad.go") {
		t.Errorf("baselined finding leaked into output:\n%s", out)
	}
	if !strings.Contains(out, "1 new, 0 fixed") {
		t.Errorf("ratchet summary should count the new finding:\n%s", out)
	}
}

// TestWriteBaselineShrinkGuard: re-snapshotting over a baseline with
// fewer findings (here: a run over a subset of packages) is refused
// without -force, so partial runs cannot wipe ratchet state.
func TestWriteBaselineShrinkGuard(t *testing.T) {
	dir := writeViolationModule(t)
	base := filepath.Join(dir, "baseline.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-baseline", base, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline exit = %d: %s", code, stderr.String())
	}
	before, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	// Fix the violation: the next snapshot would shrink from 1 to 0.
	bad := filepath.Join(dir, "internal", "core", "bad.go")
	if err := os.WriteFile(bad, []byte("package core\n\n// Stamp is fixed.\nfunc Stamp() int64 { return 0 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-write-baseline", base, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("shrinking -write-baseline exit = %d, want 2 (refused)\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "refusing to shrink baseline") {
		t.Errorf("missing refusal message:\n%s", stderr.String())
	}
	after, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("refused write still modified the baseline file")
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-write-baseline", base, "-force", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-baseline -force exit = %d: %s", code, stderr.String())
	}
	var b analysis.Baseline
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatal(err)
	}
	if b.Total() != 0 {
		t.Errorf("forced baseline absorbs %d findings, want 0", b.Total())
	}
}

// writeTickModule lays out a throwaway module with a time.Tick call —
// the finding whose fix is machine-applicable — and chdirs into it.
func writeTickModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(pkg, "tick.go"): `package sim

import "time"

// Poll wakes on a leaked ticker.
func Poll(stop chan struct{}) {
	for {
		select {
		case <-time.Tick(time.Second):
		case <-stop:
			return
		}
	}
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	return dir
}

// TestFixMode: -fix rewrites time.Tick to time.NewTicker(d).C, leaves
// the tree finding-free, and a second -fix run is a no-op.
func TestFixMode(t *testing.T) {
	dir := writeTickModule(t)
	tick := filepath.Join(dir, "internal", "sim", "tick.go")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix exit = %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "applied 1 fix(es)") {
		t.Errorf("missing fix summary:\n%s", stderr.String())
	}
	data, err := os.ReadFile(tick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "time.NewTicker(time.Second).C") {
		t.Fatalf("fix not applied:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("post-fix plain run exit = %d, want 0 (finding resolved)\n%s", code, stderr.String())
	}

	// Idempotency: nothing left to apply, file untouched.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-fix", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("second -fix exit = %d\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "applied 0 fix(es)") {
		t.Errorf("second -fix was not a no-op:\n%s", stderr.String())
	}
	again, err := os.ReadFile(tick)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("second -fix rewrote the file")
	}
}

// TestFixSuggestMode: -fix -suggest inserts an //accu:allow directive
// above a finding that has no code fix, suppressing it on the next run.
func TestFixSuggestMode(t *testing.T) {
	writeViolationModule(t)

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-fix", "-suggest", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-fix -suggest exit = %d\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(filepath.Join("internal", "core", "bad.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "//accu:allow detrand -- TODO") {
		t.Fatalf("directive not inserted:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("post-insert plain run exit = %d, want 0 (finding allowed)\n%s", code, stderr.String())
	}
}

// TestWireLock drives the lockfile cycle on a throwaway module: snapshot
// the //accu:wire schemas, verify a clean diff, then rename a wire field
// and assert the drift fails the run.
func TestWireLock(t *testing.T) {
	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "sim")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	wire := filepath.Join(pkg, "wire.go")
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		wire: `package sim

// Line is one journal record.
//
//accu:wire
type Line struct {
	Cell  string ` + "`json:\"cell\"`" + `
	Count int    ` + "`json:\"count\"`" + `
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)
	lock := filepath.Join(dir, "wire.lock.json")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-write-wire-lock", lock, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-write-wire-lock exit = %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(lock)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"example.test/internal/sim"`) || !strings.Contains(string(data), `"cell"`) {
		t.Fatalf("lockfile missing schema:\n%s", data)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-wire-lock", lock, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean -wire-lock exit = %d\n%s", code, stderr.String())
	}

	// A wire rename: same Go field, new json name. The analyzer cannot
	// see it (the tag is still explicit and unique); the lockfile must.
	renamed := strings.Replace(string(files[wire]), `json:"count"`, `json:"n"`, 1)
	if err := os.WriteFile(wire, []byte(renamed), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-wire-lock", lock, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("drifted -wire-lock exit = %d, want 1\n%s", code, stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "wire drift") || !strings.Contains(out, `"count" -> "n"`) {
		t.Errorf("missing drift detail:\n%s", out)
	}
}

// TestSARIFOutput: -sarif renders findings as a parseable SARIF 2.1.0
// log with the analyzer as ruleId and a repo-relative URI, while the
// exit code still reflects the findings.
func TestSARIFOutput(t *testing.T) {
	dir := writeViolationModule(t)
	sarifPath := filepath.Join(dir, "out.sarif")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-sarif", sarifPath, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit = %d, want 1: %s", code, stderr.String())
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output does not parse: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q, want 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	r := log.Runs[0]
	if r.Tool.Driver.Name != "accuvet" {
		t.Errorf("driver name = %q", r.Tool.Driver.Name)
	}
	if len(r.Tool.Driver.Rules) != 19 {
		t.Errorf("rules table has %d entries, want 19 (one per analyzer)", len(r.Tool.Driver.Rules))
	}
	if len(r.Results) == 0 {
		t.Fatal("no results in SARIF log for a module with a violation")
	}
	res := r.Results[0]
	if res.RuleID != "detrand" || res.Level != "warning" {
		t.Errorf("result ruleId/level = %q/%q, want detrand/warning", res.RuleID, res.Level)
	}
	loc := res.Locations[0].PhysicalLocation
	if want := "internal/core/bad.go"; loc.ArtifactLocation.URI != want {
		t.Errorf("result uri = %q, want %q", loc.ArtifactLocation.URI, want)
	}
	if loc.Region.StartLine == 0 {
		t.Error("result has no startLine")
	}
}

// TestVetUnitSARIFDir: in vettool mode, ACCUVET_SARIF_DIR collects one
// SARIF log per analyzed unit. The test hand-crafts the unit.cfg the go
// command would pass (export data for "time" comes from go list), so it
// exercises the real vetUnitMode path without re-execing the binary.
func TestVetUnitSARIFDir(t *testing.T) {
	dir := writeViolationModule(t)
	badGo := filepath.Join(dir, "internal", "core", "bad.go")

	export, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "time").Output()
	if err != nil {
		t.Skipf("go list -export time: %v", err)
	}
	cfg := analysis.VetConfig{
		ID:          "example.test/internal/core",
		Compiler:    "gc",
		Dir:         filepath.Join(dir, "internal", "core"),
		ImportPath:  "example.test/internal/core",
		GoFiles:     []string{badGo},
		ImportMap:   map[string]string{"time": "time"},
		PackageFile: map[string]string{"time": strings.TrimSpace(string(export))},
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sarifDir := t.TempDir()
	t.Setenv("ACCUVET_SARIF_DIR", sarifDir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 1 {
		t.Fatalf("vet unit exit = %d, want 1\n%s", code, stderr.String())
	}
	entries, err := os.ReadDir(sarifDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("ACCUVET_SARIF_DIR holds %d files, want 1", len(entries))
	}
	name := entries[0].Name()
	if !strings.HasPrefix(name, "unit-") || !strings.HasSuffix(name, ".sarif") {
		t.Errorf("per-unit log name = %q, want unit-<hash>.sarif", name)
	}
	logData, err := os.ReadFile(filepath.Join(sarifDir, name))
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(logData, &log); err != nil {
		t.Fatalf("per-unit SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || len(log.Runs[0].Results) == 0 {
		t.Fatalf("per-unit SARIF malformed: %s", logData)
	}
	if got := log.Runs[0].Results[0].RuleID; got != "detrand" {
		t.Errorf("per-unit result ruleId = %q, want detrand", got)
	}
}

// TestDedupSort: duplicate findings collapse and output ordering is by
// file, line, column, analyzer — independent of insertion order.
func TestDedupSort(t *testing.T) {
	fset := token.NewFileSet()
	fileB := fset.AddFile("b.go", -1, 100)
	fileA := fset.AddFile("a.go", -1, 100)
	posB := fileB.Pos(10)
	posA1 := fileA.Pos(50)
	posA2 := fileA.Pos(5)

	diags := []analysis.Diagnostic{
		{Pos: posB, Analyzer: "maporder", Message: "m3"},
		{Pos: posA1, Analyzer: "detrand", Message: "m2"},
		{Pos: posA2, Analyzer: "seedflow", Message: "m1"},
		{Pos: posA1, Analyzer: "detrand", Message: "m2"}, // exact duplicate
	}
	got := dedupSort(fset, diags)
	if len(got) != 3 {
		t.Fatalf("got %d findings after dedup, want 3", len(got))
	}
	wantOrder := []string{"m1", "m2", "m3"}
	for i, d := range got {
		if d.Message != wantOrder[i] {
			t.Errorf("position %d: got %q, want %q", i, d.Message, wantOrder[i])
		}
	}
}
