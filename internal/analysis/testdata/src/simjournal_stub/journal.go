// Stub of internal/sim's CellJournal: lockedio recognizes its
// Commit/Sync/Close methods as in-module cross-package blocking roots.
package sim

type CellJournal struct{}

func (j *CellJournal) Commit(line string) error { return nil }

func (j *CellJournal) Sync() error { return nil }

func (j *CellJournal) Close() error { return nil }
