// Fixture: seedflow (scope is module-wide; type-checked as
// .../internal/sim). The same rng.Seed value reaching two sinks — two
// calls, two .Rand() constructions, or one sink inside a loop — must be
// flagged; per-consumer Split/SplitN derivations stay legal.
package sim

import "example.test/internal/rng"

// Config carries a seed onward.
type Config struct {
	Seed rng.Seed
	K    int
}

func build(seed rng.Seed) error   { _ = seed; return nil }
func sample(seed rng.Seed) error  { _ = seed; return nil }
func consume(r interface{}) error { _ = r; return nil }

func twoCallSinks(seed rng.Seed) error {
	if err := build(seed); err != nil {
		return err
	}
	return sample(seed) // want `seed "seed" reaches 2 sinks without re-derivation`
}

func twoRandConstructions(seed rng.Seed) (int, int) {
	a := seed.Rand().IntN(10)
	b := seed.Rand().IntN(10) // want `seed "seed" reaches 2 sinks without re-derivation`
	return a, b
}

func sinkInsideLoop(seed rng.Seed, n int) error {
	for i := 0; i < n; i++ {
		if err := sample(seed); err != nil { // want `seed "seed" reaches 2 sinks without re-derivation`
			return err
		}
	}
	return nil
}

func splitPerConsumerIsFine(seed rng.Seed, n int) error {
	if err := build(seed.Split("build")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := sample(seed.SplitN("run", i)); err != nil {
			return err
		}
	}
	return consume(seed.Split("consume").Rand())
}

func perIterationSeedIsFine(root rng.Seed, n int) error {
	for i := 0; i < n; i++ {
		child := root.SplitN("cell", i)
		if err := sample(child); err != nil {
			return err
		}
	}
	return nil
}

func compositeThenCallSink(seed rng.Seed) (Config, error) {
	cfg := Config{Seed: seed, K: 5}
	return cfg, build(seed) // want `seed "seed" reaches 2 sinks without re-derivation`
}

func allowedPairedDesign(seed rng.Seed) error {
	if err := build(seed); err != nil {
		return err
	}
	//accu:allow seedflow -- fixture: intentional paired comparison
	return sample(seed)
}
