package stats

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
)

// The columnar result store is the on-disk complement of the streaming
// sketches: an append-only file of Monte-Carlo result rows laid out
// column by column inside CRC-framed blocks, so a finished grid can be
// re-queried for any quantile without rerunning it and without ever
// holding more than one block in memory.
//
// Layout:
//
//	"ACS1"                                   file magic
//	uvarint metaLen, metaLen bytes           metadata JSON (string map)
//	block*                                   until EOF
//
// where each block is
//
//	uvarint payloadLen
//	uint32  crc32(payload), little-endian
//	payload
//
// and a payload is
//
//	uvarint rowCount
//	section(policy) section(network) section(run)
//	section(benefit) section(cautiousFriends)
//
// with every section length-prefixed (uvarint sectionLen) so a reader
// can skip columns it does not need. The policy column is
// dictionary-encoded per block (uvarint dictN, dictN length-prefixed
// strings in first-seen order, then one uvarint code per row); network,
// run and cautiousFriends are uvarints per row; benefit is 8
// little-endian bytes of math.Float64bits per row.
//
// A torn or corrupt trailing block — the crash artifact of an
// interrupted writer — is detected by the length/CRC frame and cleanly
// ignored; StoreReader.Truncated reports it so callers can surface the
// loss, mirroring CellJournal's torn-tail semantics.

// storeMagic opens every store file.
var storeMagic = []byte("ACS1")

// storeBlockRows is the writer's default rows-per-block. A block is the
// unit of buffering on both sides: writer memory and reader memory are
// O(storeBlockRows), never O(total rows).
const storeBlockRows = 4096

// StoreRecord is one result row: the (policy, network, run) cell
// coordinates and the outcome columns.
type StoreRecord struct {
	Policy          string
	Network, Run    int
	Benefit         float64
	CautiousFriends int
}

// StoreWriter appends result rows to a columnar store file. Feed it
// from a Monte-Carlo collect callback and Close it when the grid
// finishes. Not safe for concurrent use (the engine invokes collect
// serially).
type StoreWriter struct {
	f    *os.File
	w    *bufio.Writer
	rows []StoreRecord
	// BlockRows caps rows per block; set before the first Append to
	// override the default.
	BlockRows int
	closed    bool
}

// CreateStore creates a new store file at path with the given metadata
// (protocol parameters, say — anything a later query should display).
// Like OpenCellJournal, the file must not already exist: mixing two
// grids into one store would poison every later query.
func CreateStore(path string, meta map[string]string) (*StoreWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("stats: store %s already exists; remove it first: %w", path, err)
		}
		return nil, fmt.Errorf("stats: create store: %w", err)
	}
	if meta == nil {
		meta = map[string]string{}
	}
	metaJSON, err := json.Marshal(meta)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("stats: marshal store metadata: %w", err)
	}
	w := bufio.NewWriter(f)
	header := append([]byte(nil), storeMagic...)
	header = binary.AppendUvarint(header, uint64(len(metaJSON)))
	header = append(header, metaJSON...)
	if _, err := w.Write(header); err != nil {
		f.Close()
		return nil, fmt.Errorf("stats: write store header: %w", err)
	}
	return &StoreWriter{f: f, w: w, BlockRows: storeBlockRows}, nil
}

// Append buffers one row, flushing a full block to disk when the
// buffer reaches BlockRows.
func (sw *StoreWriter) Append(rec StoreRecord) error {
	if sw.closed {
		return errors.New("stats: append to closed store")
	}
	sw.rows = append(sw.rows, rec)
	if len(sw.rows) >= sw.BlockRows {
		return sw.flushBlock()
	}
	return nil
}

// flushBlock encodes the buffered rows as one framed columnar block.
func (sw *StoreWriter) flushBlock() error {
	if len(sw.rows) == 0 {
		return nil
	}
	payload := encodeBlock(sw.rows)
	sw.rows = sw.rows[:0]
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	if _, err := sw.w.Write(frame); err != nil {
		return fmt.Errorf("stats: write block frame: %w", err)
	}
	if _, err := sw.w.Write(payload); err != nil {
		return fmt.Errorf("stats: write block: %w", err)
	}
	return nil
}

// Close flushes the trailing partial block and syncs the file.
func (sw *StoreWriter) Close() error {
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.flushBlock(); err != nil {
		sw.f.Close()
		return err
	}
	if err := sw.w.Flush(); err != nil {
		sw.f.Close()
		return fmt.Errorf("stats: flush store: %w", err)
	}
	if err := sw.f.Sync(); err != nil {
		sw.f.Close()
		return fmt.Errorf("stats: sync store: %w", err)
	}
	return sw.f.Close()
}

// encodeBlock lays the rows out column by column.
func encodeBlock(rows []StoreRecord) []byte {
	// Policy column: per-block dictionary in first-seen order.
	dict := make(map[string]uint64)
	var dictOrder []string
	codes := make([]uint64, len(rows))
	for i, r := range rows {
		code, ok := dict[r.Policy]
		if !ok {
			code = uint64(len(dictOrder))
			dict[r.Policy] = code
			dictOrder = append(dictOrder, r.Policy)
		}
		codes[i] = code
	}
	var policy []byte
	policy = binary.AppendUvarint(policy, uint64(len(dictOrder)))
	for _, p := range dictOrder {
		policy = binary.AppendUvarint(policy, uint64(len(p)))
		policy = append(policy, p...)
	}
	for _, c := range codes {
		policy = binary.AppendUvarint(policy, c)
	}

	var network, run, cautious []byte
	benefit := make([]byte, 0, 8*len(rows))
	for _, r := range rows {
		network = binary.AppendUvarint(network, uint64(r.Network))
		run = binary.AppendUvarint(run, uint64(r.Run))
		cautious = binary.AppendUvarint(cautious, uint64(r.CautiousFriends))
		benefit = binary.LittleEndian.AppendUint64(benefit, math.Float64bits(r.Benefit))
	}

	payload := binary.AppendUvarint(nil, uint64(len(rows)))
	for _, col := range [][]byte{policy, network, run, benefit, cautious} {
		payload = binary.AppendUvarint(payload, uint64(len(col)))
		payload = append(payload, col...)
	}
	return payload
}

// StoreReader reads a columnar store file sequentially, one block at a
// time — memory stays O(block), independent of the store size.
type StoreReader struct {
	f         *os.File
	r         *bufio.Reader
	meta      map[string]string
	truncated bool
}

// OpenStore opens a store file and reads its header.
func OpenStore(path string) (*StoreReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stats: open store: %w", err)
	}
	r := bufio.NewReader(f)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(r, magic); err != nil || !bytes.Equal(magic, storeMagic) {
		f.Close()
		return nil, fmt.Errorf("stats: %s is not a columnar result store (bad magic)", path)
	}
	metaLen, err := binary.ReadUvarint(r)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("stats: read store metadata length: %w", err)
	}
	if metaLen > 1<<20 {
		f.Close()
		return nil, fmt.Errorf("stats: store metadata length %d implausible", metaLen)
	}
	metaJSON := make([]byte, metaLen)
	if _, err := io.ReadFull(r, metaJSON); err != nil {
		f.Close()
		return nil, fmt.Errorf("stats: read store metadata: %w", err)
	}
	meta := make(map[string]string)
	if err := json.Unmarshal(metaJSON, &meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("stats: parse store metadata: %w", err)
	}
	return &StoreReader{f: f, r: r, meta: meta}, nil
}

// Meta returns the metadata map written at creation.
func (sr *StoreReader) Meta() map[string]string { return sr.meta }

// Truncated reports whether the last Scan stopped at a torn or corrupt
// trailing block — rows after that point were lost to an interrupted
// writer and are not delivered.
func (sr *StoreReader) Truncated() bool { return sr.truncated }

// Scan streams every row to fn in file order, one decoded block in
// memory at a time. A torn or corrupt trailing block ends the scan
// cleanly (see Truncated); an error from fn aborts the scan and is
// returned verbatim.
func (sr *StoreReader) Scan(fn func(StoreRecord) error) error {
	for {
		payload, ok, err := sr.nextBlock()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		rows, err := decodeBlock(payload)
		if err != nil {
			// A framed block with a valid CRC that fails to decode is
			// structural corruption, not a torn tail: fail loudly.
			return fmt.Errorf("stats: decode store block: %w", err)
		}
		for _, rec := range rows {
			if err := fn(rec); err != nil {
				return err
			}
		}
	}
}

// nextBlock reads one framed payload; ok=false at clean EOF or a torn
// tail (recorded in truncated).
func (sr *StoreReader) nextBlock() ([]byte, bool, error) {
	payloadLen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		if err == io.EOF {
			return nil, false, nil // clean end
		}
		sr.truncated = true // torn mid-frame
		return nil, false, nil
	}
	if payloadLen > 1<<30 {
		sr.truncated = true
		return nil, false, nil
	}
	header := make([]byte, 4)
	if _, err := io.ReadFull(sr.r, header); err != nil {
		sr.truncated = true
		return nil, false, nil
	}
	wantCRC := binary.LittleEndian.Uint32(header)
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(sr.r, payload); err != nil {
		sr.truncated = true
		return nil, false, nil
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		sr.truncated = true
		return nil, false, nil
	}
	return payload, true, nil
}

// Close closes the underlying file.
func (sr *StoreReader) Close() error { return sr.f.Close() }

// decodeBlock is the inverse of encodeBlock.
func decodeBlock(payload []byte) ([]StoreRecord, error) {
	buf := bytes.NewReader(payload)
	rowCount, err := binary.ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	if rowCount > uint64(len(payload)) {
		return nil, fmt.Errorf("row count %d exceeds payload", rowCount)
	}
	sections := make([][]byte, 5)
	for i := range sections {
		n, err := binary.ReadUvarint(buf)
		if err != nil {
			return nil, fmt.Errorf("section %d length: %w", i, err)
		}
		if n > uint64(buf.Len()) {
			return nil, fmt.Errorf("section %d length %d exceeds remaining payload", i, n)
		}
		sections[i] = make([]byte, n)
		if _, err := io.ReadFull(buf, sections[i]); err != nil {
			return nil, fmt.Errorf("section %d: %w", i, err)
		}
	}

	rows := make([]StoreRecord, rowCount)

	// Policy dictionary + codes.
	pb := bytes.NewReader(sections[0])
	dictN, err := binary.ReadUvarint(pb)
	if err != nil {
		return nil, fmt.Errorf("policy dict size: %w", err)
	}
	if dictN > rowCount {
		return nil, fmt.Errorf("policy dict size %d exceeds rows %d", dictN, rowCount)
	}
	dict := make([]string, dictN)
	for i := range dict {
		n, err := binary.ReadUvarint(pb)
		if err != nil || n > uint64(pb.Len()) {
			return nil, fmt.Errorf("policy dict entry %d", i)
		}
		s := make([]byte, n)
		if _, err := io.ReadFull(pb, s); err != nil {
			return nil, fmt.Errorf("policy dict entry %d: %w", i, err)
		}
		dict[i] = string(s)
	}
	for i := range rows {
		code, err := binary.ReadUvarint(pb)
		if err != nil {
			return nil, fmt.Errorf("policy code row %d: %w", i, err)
		}
		if code >= dictN {
			return nil, fmt.Errorf("policy code %d out of dict range %d", code, dictN)
		}
		rows[i].Policy = dict[code]
	}

	if err := decodeUvarintColumn(sections[1], rows, func(r *StoreRecord, v uint64) { r.Network = int(v) }); err != nil {
		return nil, fmt.Errorf("network column: %w", err)
	}
	if err := decodeUvarintColumn(sections[2], rows, func(r *StoreRecord, v uint64) { r.Run = int(v) }); err != nil {
		return nil, fmt.Errorf("run column: %w", err)
	}
	if uint64(len(sections[3])) != 8*rowCount {
		return nil, fmt.Errorf("benefit column %d bytes, want %d", len(sections[3]), 8*rowCount)
	}
	for i := range rows {
		bits := binary.LittleEndian.Uint64(sections[3][8*i:])
		rows[i].Benefit = math.Float64frombits(bits)
	}
	if err := decodeUvarintColumn(sections[4], rows, func(r *StoreRecord, v uint64) { r.CautiousFriends = int(v) }); err != nil {
		return nil, fmt.Errorf("cautiousFriends column: %w", err)
	}
	return rows, nil
}

// decodeUvarintColumn fills one uvarint-per-row column.
func decodeUvarintColumn(col []byte, rows []StoreRecord, set func(*StoreRecord, uint64)) error {
	buf := bytes.NewReader(col)
	for i := range rows {
		v, err := binary.ReadUvarint(buf)
		if err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
		set(&rows[i], v)
	}
	if buf.Len() != 0 {
		return fmt.Errorf("%d trailing bytes", buf.Len())
	}
	return nil
}
