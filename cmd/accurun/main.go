// Command accurun executes a single adaptive attack with a chosen policy
// and prints the request-by-request trace — useful for inspecting how ABM
// courts cautious users.
//
// Usage:
//
//	accurun -preset slashdot -scale 0.02 -policy abm -k 50 [-wd 0.5 -wi 0.5]
//
// Policies: abm, greedy, maxdegree, pagerank, random.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	accu "github.com/accu-sim/accu"
	"github.com/accu-sim/accu/internal/prof"
)

// writeJournal saves the replayable request journal of a run.
func writeJournal(path string, res *accu.Result) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create journal: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, err := res.Journal.WriteTo(f); err != nil {
		return fmt.Errorf("write journal: %w", err)
	}
	return nil
}

// traceJSON is the machine-readable attack trace emitted by -json.
type traceJSON struct {
	Preset          string      `json:"preset"`
	Scale           float64     `json:"scale"`
	Nodes           int         `json:"nodes"`
	Edges           int         `json:"edges"`
	Cautious        int         `json:"cautious"`
	Policy          string      `json:"policy"`
	Budget          int         `json:"budget"`
	Benefit         float64     `json:"benefit"`
	Friends         int         `json:"friends"`
	CautiousFriends int         `json:"cautiousFriends"`
	Steps           []accu.Step `json:"steps"`

	// Metrics is the policy/environment metrics snapshot (-metrics).
	Metrics *accu.MetricsSnapshot `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accurun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accurun", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "slashdot", "dataset preset")
		scale    = fs.Float64("scale", 0.02, "scale factor in (0, 1]")
		policy   = fs.String("policy", "abm", "policy: abm|greedy|maxdegree|pagerank|random")
		k        = fs.Int("k", 50, "friend-request budget")
		wd       = fs.Float64("wd", 0.5, "ABM w_D")
		wi       = fs.Float64("wi", 0.5, "ABM w_I")
		cautious = fs.Int("cautious", 10, "number of cautious users")
		seed     = fs.Uint64("seed", 1, "random seed")
		verbose  = fs.Bool("v", false, "print every request (default: accepted only)")
		asJSON   = fs.Bool("json", false, "emit the full trace as JSON instead of text")
		journal  = fs.String("journal", "", "write the replayable request journal to this file")

		metrics    = fs.Bool("metrics", false, "print policy/environment metrics after the trace")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(prof.Options{CPUProfile: *cpuprofile, MemProfile: *memprofile, PprofAddr: *pprofAddr})
	if err != nil {
		return err
	}
	defer stopProf()
	var reg *accu.Metrics
	if *metrics {
		reg = accu.NewMetrics()
	}

	p, err := accu.PresetByName(*preset)
	if err != nil {
		return err
	}
	generator, err := p.Generator(*scale)
	if err != nil {
		return err
	}
	root := accu.NewSeed(*seed, *seed*2+1)
	g, err := generator.Generate(root.Split("network"))
	if err != nil {
		return err
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = *cautious
	inst, err := setup.Build(g, root.Split("setup"))
	if err != nil {
		return err
	}
	inst.Instrument(reg)
	re := inst.SampleRealization(root.Split("realization"))

	var pol accu.Policy
	switch *policy {
	case "abm":
		pol, err = accu.NewABM(accu.Weights{WD: *wd, WI: *wi}, accu.WithMetrics(reg))
		if err != nil {
			return err
		}
	case "greedy":
		pol = accu.NewPureGreedy()
	case "maxdegree":
		pol = accu.NewMaxDegree()
	case "pagerank":
		pol = accu.NewPageRank()
	case "random":
		pol = accu.NewRandom(root.Split("random-policy"))
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	res, err := accu.Run(pol, re, *k)
	if err != nil {
		return err
	}
	if *journal != "" {
		if err := writeJournal(*journal, res); err != nil {
			return err
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(traceJSON{
			Preset:          p.Key,
			Scale:           *scale,
			Nodes:           g.N(),
			Edges:           g.M(),
			Cautious:        inst.NumCautious(),
			Policy:          res.Policy,
			Budget:          *k,
			Benefit:         res.Benefit,
			Friends:         res.Friends,
			CautiousFriends: res.CautiousFriends,
			Steps:           res.Steps,
			Metrics:         reg.Snapshot(),
		})
	}

	fmt.Fprintf(out, "network: %s scale %.3f — %d nodes, %d edges, %d cautious\n",
		p.Key, *scale, g.N(), g.M(), inst.NumCautious())
	fmt.Fprintf(out, "policy:  %s, budget %d\n\n", res.Policy, *k)
	for i, s := range res.Steps {
		if !s.Accepted && !*verbose {
			continue
		}
		kind := "reckless"
		if s.Cautious {
			kind = "CAUTIOUS"
		}
		status := "accepted"
		if !s.Accepted {
			status = "rejected"
		}
		fmt.Fprintf(out, "#%-4d user %-6d %-8s %-8s gain %7.1f  total %8.1f  cautious friends %d\n",
			i+1, s.User, kind, status, s.Gain, s.BenefitAfter, s.CautiousFriendsAfter)
	}
	fmt.Fprintf(out, "\nfinal: benefit %.1f, friends %d (%d cautious), %d requests sent\n",
		res.Benefit, res.Friends, res.CautiousFriends, len(res.Steps))
	if snap := reg.Snapshot(); !snap.Empty() {
		fmt.Fprintf(out, "\n-- metrics --\n%s", snap.Render())
	}
	return nil
}
