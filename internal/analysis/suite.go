package analysis

// NewSuite returns fresh instances of the nineteen accuvet analyzers, in
// the order they report:
//
// Wave 1 — determinism invariants (AST + object identity):
//
//	detrand       — no clock / global rand / env reads on the record path
//	maporder      — no order-dependent effects under map iteration
//	seedflow      — one Split per seed consumer
//	metricname    — obs metric names match the convention, one kind per name
//
// Wave 2 — concurrency invariants (CFG + forward dataflow):
//
//	lockbalance   — every Lock released on every CFG path; no lock copies
//	atomicmix     — no variable accessed both atomically and plainly
//	ctxcancel     — cancel funcs invoked on every path, never dropped
//	scratchescape — per-worker scratch never escapes its worker goroutine
//	errcmp        — errors.Is for module sentinels, not == (wrapping-safe)
//
// Wave 3 — service-layer invariants (package-local call graph + CFG):
//
//	httpbody      — every *http.Response body closed on all paths, drained
//	respwrite     — response header committed once per path, via helpers
//	lockedio      — no blocking I/O reachable while a mutex is held
//	ctxflow       — outgoing requests carry a context; poll loops consult it
//	timerleak     — no time.After in loops, no time.Tick at all
//
// Wave 4 — flow-based invariants (interprocedural taint engine + CFG):
//
//	detflow       — no clock/env/rand/map-order value reaches a digest,
//	                sketch or summary input in the deterministic packages
//	errdrop       — no discarded error on a durability-critical call chain
//	fsyncack      — handlers commit durably before writing the response
//	wiretag       — //accu:wire structs carry explicit unique json tags,
//	                no unkeyed literals; feeds the wire-schema lockfile
//	chanleak      — no goroutine left blocked on an unreceived unbuffered send
//
// Instances hold per-run state (metricname's cross-package duplicate
// table), so every checker invocation must call NewSuite rather than
// sharing analyzers globally.
func NewSuite() []*Analyzer {
	return []*Analyzer{
		Detrand(),
		MapOrder(),
		SeedFlow(),
		MetricNames(),
		LockBalance(),
		AtomicMix(),
		CtxCancel(),
		ScratchEscape(),
		ErrCmp(),
		HTTPBody(),
		RespWrite(),
		LockedIO(),
		CtxFlow(),
		TimerLeak(),
		Detflow(),
		ErrDrop(),
		FsyncAck(),
		WireTag(),
		ChanLeak(),
	}
}
