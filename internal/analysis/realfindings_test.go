package analysis_test

import (
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
)

// TestRealTreeSuppressedFindings loads the real internal/sim package and
// audits it with RunAnalyzersAll: every //accu:allow in the engine must
// still cover a live finding (the analyzers keep detecting the annotated
// sites), and nothing unsuppressed may have crept in. If an annotated
// site is refactored away, the stale directive shows up here; if an
// analyzer regresses and stops seeing the site, that shows up too.
func TestRealTreeSuppressedFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the real engine package")
	}
	pkgs, err := analysis.Load("", "github.com/accu-sim/accu/internal/sim")
	if err != nil {
		t.Fatalf("loading internal/sim: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	diags, err := analysis.RunAnalyzersAll(pkgs[0], analysis.NewSuite())
	if err != nil {
		t.Fatal(err)
	}

	// The two audited exceptions the engine carries, pinned as
	// regression anchors: the pre-existing seedflow allowance on the
	// policy-reuse branch, and the wave-2 scratchescape allowance on the
	// timed-attempt handoff goroutine.
	pinned := map[string]string{
		"seedflow":      "reaches 2 sinks",
		"scratchescape": "goroutine captures per-worker scratch sc",
	}
	for analyzer, fragment := range pinned {
		found := false
		for _, d := range diags {
			if d.Analyzer == analyzer && d.Suppressed && strings.Contains(d.Message, fragment) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected a suppressed %s finding matching %q in internal/sim; the //accu:allow site moved or the analyzer regressed", analyzer, fragment)
		}
	}

	for _, d := range diags {
		if !d.Suppressed {
			pos := pkgs[0].Fset.Position(d.Pos)
			t.Errorf("unsuppressed finding in internal/sim: %s: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
}
