package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SeedFlow returns the seed-discipline analyzer: an rng.Seed held in a
// local variable or parameter must be re-derived (Split / SplitN) before
// each consumer. Passing the same seed value to two sinks — two calls,
// two .Rand() constructions, or one sink inside a loop — replays the
// identical stream in both places, the exact bug class the cell
// scheduler's per-cell seed tree exists to prevent.
//
// Receiver positions of Split/SplitN are derivations and may repeat
// freely (splitting is pure). Aliasing assignments and returns are not
// counted; intentional paired-stream designs should use an
// //accu:allow seedflow directive with the reason.
func SeedFlow() *Analyzer {
	a := &Analyzer{
		Name: "seedflow",
		Doc: "require rng.Seed values to be split per consumer; the same seed " +
			"reaching two sinks replays one stream twice",
	}
	a.Run = func(pass *Pass) error {
		type sink struct {
			pos    token.Pos
			weight int
		}
		sinks := make(map[*types.Var][]sink)

		inspectWithStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[id].(*types.Var)
			if !ok || obj.IsField() || !isSeedType(obj.Type()) {
				return true
			}
			if !seedUseIsSink(pass, id, stack) {
				return true
			}
			weight := 1
			if enclosedByLoopOutsideDecl(stack, obj) {
				weight = 2
			}
			sinks[obj] = append(sinks[obj], sink{pos: id.Pos(), weight: weight})
			return true
		})

		for obj, uses := range sinks {
			total := 0
			for _, u := range uses {
				total += u.weight
			}
			if total < 2 {
				continue
			}
			// Report at the site that tipped the seed into reuse: the
			// second sink, or the sole in-loop sink.
			at := uses[len(uses)-1].pos
			if len(uses) > 1 {
				at = uses[1].pos
			}
			pass.Reportf(at,
				"seed %q reaches %d sinks without re-derivation; derive one child per consumer with %s.Split(label) or SplitN",
				obj.Name(), total, obj.Name())
		}
		return nil
	}
	return a
}

// isSeedType reports whether t is internal/rng.Seed (directly or behind
// one pointer).
func isSeedType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Seed" && (objectPkgIs(obj, "internal/rng") || objectPkgIs(obj, "rng"))
}

// seedUseIsSink classifies one appearance of a seed-typed identifier.
// Sinks consume the stream: receiver of .Rand(), argument to any call,
// or value stored into a composite literal. Derivations (receiver of
// .Split / .SplitN) and plain aliasing are not sinks.
func seedUseIsSink(pass *Pass, id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	parent := stack[len(stack)-1]

	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X != id {
			return false
		}
		// Method call on the seed: Split/SplitN derive, Rand consumes.
		if len(stack) >= 2 {
			if call, ok := stack[len(stack)-2].(*ast.CallExpr); ok && call.Fun == parent {
				switch p.Sel.Name {
				case "Split", "SplitN":
					return false
				case "Rand":
					return true
				}
			}
		}
		// Bare method value (seed.Rand passed as func) — treat as sink.
		return p.Sel.Name == "Rand"
	case *ast.CallExpr:
		for _, arg := range p.Args {
			if arg == id {
				return true
			}
		}
		return false
	case *ast.KeyValueExpr:
		return p.Value == id && isCompositeLitEntry(stack)
	case *ast.CompositeLit:
		for _, elt := range p.Elts {
			if elt == id {
				return true
			}
		}
		return false
	}
	return false
}

// isCompositeLitEntry reports whether the KeyValueExpr at the top of the
// stack belongs to a composite literal (as opposed to nothing else —
// KeyValueExpr only appears there, but keep the check explicit).
func isCompositeLitEntry(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	_, ok := stack[len(stack)-2].(*ast.CompositeLit)
	return ok
}

// enclosedByLoopOutsideDecl reports whether the current node sits inside
// a for/range statement that does not itself contain obj's declaration —
// i.e. the same seed value is consumed on every iteration.
func enclosedByLoopOutsideDecl(stack []ast.Node, obj *types.Var) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			if !(n.Pos() <= obj.Pos() && obj.Pos() <= n.End()) {
				return true
			}
		}
	}
	return false
}
