package analysis

import (
	"go/ast"
	"go/types"
)

// RespWrite returns the response-write discipline analyzer: on any one
// CFG path, an http.ResponseWriter's header must be committed at most
// once. The classic bug shape is a handler that writes an error envelope
// and falls through instead of returning — the success body then lands
// on top of the error status and net/http logs "superfluous
// WriteHeader". Envelope writes are traced through in-package
// `writeJSON(w, code, v)`-style helpers via a call-graph parameter
// summary, so the helper call itself is the tracked event.
//
// Events: w.WriteHeader and the http.Error/NotFound/Redirect family are
// explicit commits; w.Write is an implicit one (it commits 200 on first
// use). A second event on a path where the header is already committed
// reports only when it is explicit — WriteHeader-then-many-Writes (an
// SSE stream) is the normal shape and stays silent.
func RespWrite() *Analyzer {
	a := &Analyzer{
		Name: "respwrite",
		Doc: "flag HTTP handlers that commit a response header twice on one " +
			"CFG path — an error envelope written and then fallen through, or " +
			"a double WriteHeader — including through in-package helpers",
	}
	a.Run = func(pass *Pass) error {
		cg := NewCallGraph(pass.Pkg, pass.Info, pass.Files)
		writes := cg.ParamSummary(pass.Info, func(_ *types.Func, decl *ast.FuncDecl, p *types.Var) bool {
			return paramWritesHeader(pass, decl, p)
		}, nil)
		funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
			checkRespWrites(pass, cg, writes, body)
		})
		return nil
	}
	return a
}

func isResponseWriter(t types.Type) bool {
	return isNamed(t, "net/http", "ResponseWriter")
}

// httpHeaderHelpers are the net/http package functions that commit the
// response header of their first argument.
var httpHeaderHelpers = map[string]bool{
	"Error": true, "NotFound": true, "Redirect": true, "ServeFile": true, "ServeContent": true,
}

// directWriteEvent recognizes a call that commits the response header of
// a ResponseWriter-typed identifier without going through an in-package
// helper: w.WriteHeader / w.Write, or http.Error(w, ...)-family.
func directWriteEvent(pass *Pass, call *ast.CallExpr) (obj types.Object, explicit, ok bool) {
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		if sel.Sel.Name == "WriteHeader" || sel.Sel.Name == "Write" {
			if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
				if o := pass.Info.Uses[id]; o != nil && isResponseWriter(o.Type()) {
					return o, sel.Sel.Name == "WriteHeader", true
				}
			}
		}
	}
	if f := calleeFunc(pass, call); f != nil && f.Pkg() != nil &&
		f.Pkg().Path() == "net/http" && httpHeaderHelpers[f.Name()] && len(call.Args) > 0 {
		if id, isID := ast.Unparen(call.Args[0]).(*ast.Ident); isID {
			if o := pass.Info.Uses[id]; o != nil && isResponseWriter(o.Type()) {
				return o, true, true
			}
		}
	}
	return nil, false, false
}

// headerWriteEvent extends directWriteEvent with in-package helpers: a
// call passing a writer to a parameter the summary marks as
// header-writing is an explicit commit of that writer.
func headerWriteEvent(pass *Pass, cg *CallGraph, writes map[*types.Func]map[int]bool, call *ast.CallExpr) (types.Object, bool, bool) {
	if obj, explicit, ok := directWriteEvent(pass, call); ok {
		return obj, explicit, ok
	}
	callee := cg.StaticCallee(pass.Info, call)
	if callee == nil {
		return nil, false, false
	}
	for j, arg := range call.Args {
		if !writes[callee][j] {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if o := pass.Info.Uses[id]; o != nil && isResponseWriter(o.Type()) {
				return o, true, true
			}
		}
	}
	return nil, false, false
}

// paramWritesHeader is the intrinsic summary: the body commits the
// header of parameter p through a direct event.
func paramWritesHeader(pass *Pass, decl *ast.FuncDecl, p *types.Var) bool {
	if decl == nil || decl.Body == nil || !isResponseWriter(p.Type()) {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if obj, _, ok := directWriteEvent(pass, call); ok && obj == p {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkRespWrites runs the committed-header dataflow over one body. The
// fixpoint pass records first-commit facts; a second deterministic walk
// over each block replays the transfer with reporting enabled (the
// engine re-runs transfers, so they must stay side-effect-free).
func checkRespWrites(pass *Pass, cg *CallGraph, writes map[*types.Func]map[int]bool, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	apply := func(n ast.Node, facts Facts, report bool) {
		walkBlockNode(n, false, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj, explicit, ok := headerWriteEvent(pass, cg, writes, call)
			if !ok {
				return true
			}
			if prev, committed := facts[obj]; committed {
				if explicit && report {
					pass.Reportf(call.Pos(),
						"response header already committed on this path (first written at line %d); add a return after writing the error envelope",
						pass.Fset.Position(prev).Line)
				}
			} else {
				facts[obj] = call.Pos()
			}
			return true
		})
	}
	in, _ := cfg.ForwardMay(func(n ast.Node, facts Facts) { apply(n, facts, false) })
	for _, b := range cfg.Blocks {
		facts := in[b].clone()
		for _, n := range b.Nodes {
			apply(n, facts, true)
		}
	}
}
