package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
)

// loadCallGraphFixture type-checks the import-free call-graph fixture
// and builds its graph.
func loadCallGraphFixture(t *testing.T) *analysis.CallGraph {
	t.Helper()
	fset := token.NewFileSet()
	names, err := filepath.Glob("testdata/src/callgraph_sim/*.go")
	if err != nil || len(names) == 0 {
		t.Fatalf("fixture glob: %v (%d files)", err, len(names))
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	pkg, err := analysis.TypeCheck(fset, nil, "example.test/internal/sim", files)
	if err != nil {
		t.Fatal(err)
	}
	return analysis.NewCallGraph(pkg.Types, pkg.Info, pkg.Files)
}

// TestCallGraphGolden pins the full edge set: direct, method, interface
// and recursive edges with go/defer context flags, in source order.
func TestCallGraphGolden(t *testing.T) {
	g := loadCallGraphFixture(t)
	want := strings.TrimLeft(`
(*store).save -> (*store).flush [method]
direct -> helper [direct]
viaInterface -> (*store).save [interface]
recurse -> recurse [direct]
spawn -> helper [direct] go
spawn -> helper [direct] defer
spawn -> direct [direct]
spawnOnly -> helper [direct] go
`, "\n")
	if got := g.String(); got != want {
		t.Errorf("call graph mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestCallGraphPropagateUp checks bounded witness propagation: a seeded
// effect climbs synchronous edges (defer included), is stopped at `go`
// edges when the filter excludes them, and terminates on recursion.
func TestCallGraphPropagateUp(t *testing.T) {
	g := loadCallGraphFixture(t)
	byName := make(map[string]*types.Func)
	for _, fn := range g.Funcs() {
		byName[fn.Name()] = fn
	}

	seeds := map[*types.Func]string{byName["helper"]: "net.Dial"}
	blocks := g.PropagateUp(seeds, func(e analysis.CallEdge) bool { return !e.Async })

	if w := blocks[byName["direct"]]; w != "helper → net.Dial" {
		t.Errorf("direct witness = %q, want %q", w, "helper → net.Dial")
	}
	if w := blocks[byName["spawn"]]; !strings.Contains(w, "net.Dial") {
		t.Errorf("spawn should inherit through its deferred edge, got %q", w)
	}
	if w, ok := blocks[byName["spawnOnly"]]; ok {
		t.Errorf("spawnOnly's only edge is async and filtered; unexpected witness %q", w)
	}
	if _, ok := blocks[byName["flush"]]; ok {
		t.Error("flush does not reach helper; unexpected witness")
	}

	// Recursion terminates and self-marks through the cycle.
	rec := g.PropagateUp(map[*types.Func]string{byName["recurse"]: "time.Sleep"}, nil)
	if w := rec[byName["recurse"]]; w != "time.Sleep" {
		t.Errorf("seeded recursive fn witness = %q, want its own seed", w)
	}
}
