package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a function body and builds its graph. src is the body
// of `func f(...)`, with params fixed per test via the decl literal.
func buildCFG(t *testing.T, decl string) *CFG {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+decl, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return NewCFG(fd.Body)
		}
	}
	t.Fatal("no function declaration in source")
	return nil
}

// TestCFGGoldenEdges pins the block/edge structure of every structured
// statement the builder lowers. The golden form is CFG.String(): one
// line per block, "b<i> <kind> -> succs".
func TestCFGGoldenEdges(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if with early return",
			src: `func f(c bool) {
				x := 1
				if c {
					return
				}
				x++
				_ = x
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3 b4
b3 if.then -> b1
b4 if.join -> b1`,
		},
		{
			name: "if else both branches join",
			src: `func f(c bool) {
				if c {
					work()
				} else {
					rest()
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3 b4
b3 if.then -> b5
b4 if.else -> b5
b5 if.join -> b1`,
		},
		{
			name: "for with break and continue",
			src: `func f(n int) {
				for i := 0; i < n; i++ {
					if i == 3 {
						break
					}
					if i == 1 {
						continue
					}
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3
b3 for.head -> b4 b5
b4 for.body -> b7 b8
b5 for.join -> b1
b6 for.post -> b3
b7 if.then -> b5
b8 if.join -> b9 b10
b9 if.then -> b6
b10 if.join -> b6`,
		},
		{
			name: "for without condition has no exit edge",
			src: `func f() {
				for {
					work()
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3
b3 for.head -> b4
b4 for.body -> b3
b5 for.join -> b1`,
		},
		{
			name: "range loop",
			src: `func f(xs []int) {
				s := 0
				for _, x := range xs {
					s += x
				}
				_ = s
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3
b3 range.head -> b4 b5
b4 range.body -> b3
b5 range.join -> b1`,
		},
		{
			name: "switch with fallthrough and default",
			src: `func f(x int) {
				switch x {
				case 1:
					fallthrough
				case 2:
					x = 2
				default:
					x = 3
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3 b4 b5
b3 switch.case -> b4
b4 switch.case -> b6
b5 switch.default -> b6
b6 switch.join -> b1`,
		},
		{
			name: "switch without default edges past the cases",
			src: `func f(x int) {
				switch x {
				case 1:
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3 b4
b3 switch.case -> b4
b4 switch.join -> b1`,
		},
		{
			name: "select leaves only through its cases",
			src: `func f(ch chan int) {
				select {
				case v := <-ch:
					_ = v
				default:
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3 b4
b3 select.case -> b5
b4 select.default -> b5
b5 select.join -> b1`,
		},
		{
			name: "panic is terminal",
			src: `func f(c bool) {
				defer cleanup()
				if c {
					panic("x")
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3 b4
b3 if.then -> b1
b4 if.join -> b1`,
		},
		{
			name: "goto and label form a loop",
			src: `func f(n int) {
				i := 0
			loop:
				if i < n {
					i++
					goto loop
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3
b3 label.loop -> b4 b5
b4 if.then -> b3
b5 if.join -> b1`,
		},
		{
			name: "labeled break exits the outer loop",
			src: `func f() {
			outer:
				for {
					for {
						break outer
					}
				}
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b3
b3 label.outer -> b4
b4 for.head -> b5
b5 for.body -> b7
b6 for.join -> b1
b7 for.head -> b8
b8 for.body -> b6
b9 for.join -> b4`,
		},
		{
			name: "statements after return are predecessor-less",
			src: `func f() int {
				return 1
				println("dead")
			}`,
			want: `
b0 entry -> b2
b1 exit
b2 body -> b1
b3 unreachable -> b1`,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := buildCFG(t, tc.src)
			got := strings.TrimSpace(g.String())
			want := strings.TrimSpace(tc.want)
			if got != want {
				t.Errorf("graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCFGDefers pins defer collection: every defer at any structured
// depth is collected, in source order, while nested literals' defers are
// not.
func TestCFGDefers(t *testing.T) {
	g := buildCFG(t, `func f(c bool) {
		defer first()
		if c {
			defer second()
		}
		go func() {
			defer notMine()
		}()
	}`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2 (nested literal's defer excluded)", len(g.Defers))
	}
}

// TestForwardMayEarlyReturn exercises the dataflow engine on the exact
// shape lockbalance cares about: a fact generated before a conditional
// early return survives to the exit on the unbalanced path only.
func TestForwardMayEarlyReturn(t *testing.T) {
	// gen() generates the fact, kill() kills it. The early return leaks.
	g := buildCFG(t, `func f(c bool) {
		gen()
		if c {
			return
		}
		kill()
	}`)
	transfer := func(n ast.Node, facts Facts) {
		walkBlockNode(n, true, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "gen":
					facts["fact"] = call.Pos()
				case "kill":
					delete(facts, "fact")
				}
			}
			return true
		})
	}
	if _, exit := g.ForwardMay(transfer); len(exit) != 1 {
		t.Fatalf("unbalanced function: got %d exit facts, want 1", len(exit))
	}

	// Balanced variant: killed on both paths, nothing reaches the exit.
	g = buildCFG(t, `func f(c bool) {
		gen()
		if c {
			kill()
			return
		}
		kill()
	}`)
	if _, exit := g.ForwardMay(transfer); len(exit) != 0 {
		t.Fatalf("balanced function: got %d exit facts, want 0", len(exit))
	}

	// Loop variant: a kill inside the loop body does not cover the
	// zero-iteration path.
	g = buildCFG(t, `func f(n int) {
		gen()
		for i := 0; i < n; i++ {
			kill()
		}
	}`)
	if _, exit := g.ForwardMay(transfer); len(exit) != 1 {
		t.Fatalf("loop function: got %d exit facts, want 1 (zero-iteration path leaks)", len(exit))
	}
}
