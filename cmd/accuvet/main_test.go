package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the lint smoke test: the suite must run clean over
// this repository, exactly as `make lint` / CI invoke it.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"github.com/accu-sim/accu/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("accuvet exit %d on clean repo:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSyntheticViolationFails builds a throwaway module containing a
// deterministic-package clock read and asserts the checker fails on it.
func TestSyntheticViolationFails(t *testing.T) {
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "time.Now reads the clock") || !strings.Contains(out, "[detrand]") {
		t.Fatalf("missing detrand finding in output:\n%s", out)
	}
}

// TestListAnalyzers: -list names all four analyzers.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	for _, name := range []string{"detrand", "maporder", "seedflow", "metricname"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("missing analyzer %q in -list output:\n%s", name, stdout.String())
		}
	}
}

// TestVetProtocolFlags: the go command interrogates -flags before
// passing anything through; the answer must be valid JSON (accuvet
// exposes no extra flags, so an empty array).
func TestVetProtocolFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("-flags output = %q, want []", got)
	}
}

// TestJSONOutput: findings serialize as JSON with positions.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "github.com/accu-sim/accu/internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean package JSON = %q, want []", got)
	}
}
