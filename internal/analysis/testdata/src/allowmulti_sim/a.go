// Fixture for multi-name //accu:allow directives: one directive listing
// several analyzers suppresses each of them on the covered line, and
// only those named.
package sim

import (
	"context"
	"sync"
)

var mu sync.Mutex

// suppressedBoth violates lockbalance (Lock never released) and
// ctxcancel (cancel discarded) on one line; a single directive naming
// both analyzers silences both.
func suppressedBoth(parent context.Context) context.Context {
	//accu:allow lockbalance, ctxcancel -- fixture: one directive, two analyzer names
	ctx, _ := context.WithCancel(parent); mu.Lock()
	return ctx
}

// partialDirective names only lockbalance, so ctxcancel still fires on
// the same line.
func partialDirective(parent context.Context) context.Context {
	//accu:allow lockbalance -- fixture: directive covers one analyzer only
	ctx, _ := context.WithCancel(parent); mu.Lock() // want `cancel func of context\.WithCancel is discarded`
	return ctx
}
