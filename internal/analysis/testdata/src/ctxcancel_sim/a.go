// Fixture for the ctxcancel analyzer: cancel funcs must be invoked on
// every path and never discarded into the blank identifier.
package sim

import (
	"context"
	"time"
)

func leaksInSwitch(parent context.Context, mode int) {
	ctx, cancel := context.WithCancel(parent) // want `cancel func cancel is not called on every path`
	switch mode {
	case 0:
		cancel()
	}
	_ = ctx
}

func discarded(parent context.Context) context.Context {
	ctx, _ := context.WithCancel(parent) // want `cancel func of context\.WithCancel is discarded`
	return ctx
}

func discardedTimeout(parent context.Context) context.Context {
	ctx, _ := context.WithTimeout(parent, time.Second) // want `cancel func of context\.WithTimeout is discarded`
	return ctx
}

func leaksOnEarlyReturn(parent context.Context, cond bool) error {
	ctx, cancel := context.WithTimeout(parent, time.Second) // want `cancel func cancel is not called on every path`
	if cond {
		return ctx.Err() // early return skips cancel
	}
	cancel()
	return nil
}

func deferredIsFine(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return use(ctx)
}

func calledOnBothBranches(parent context.Context, cond bool) {
	_, cancel := context.WithDeadline(parent, time.Now())
	if cond {
		cancel()
		return
	}
	cancel()
}

// handedOff passes the cancel func along; the callee owns the obligation
// now, which the conservative kill treats as discharged.
func handedOff(parent context.Context) {
	ctx, cancel := context.WithCancel(parent)
	keep(ctx, cancel)
}

func allowedLeak(parent context.Context) context.Context {
	//accu:allow ctxcancel -- fixture: context intentionally lives until process exit
	ctx, _ := context.WithCancel(parent)
	return ctx
}

func use(context.Context) error                 { return nil }
func keep(context.Context, context.CancelFunc) {}
