package theory

import (
	"fmt"
	"math"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/osn"
)

// BPrime computes B'(u) of Lemma 4: the least benefit obtainable from
// befriending u in an adversarial sub-realization — B_f(u) − B_fof(u)
// when u has a neighbor other than the cautious user vc (that neighbor
// can be placed in S first, making u a friend-of-friend already), and
// the full B_f(u) otherwise.
func BPrime(inst *osn.Instance, u, vc int) float64 {
	g := inst.Graph()
	for _, v := range g.Neighbors(u) {
		if int(v) != vc {
			return inst.BFriend(u) - inst.BFof(u)
		}
	}
	return inst.BFriend(u)
}

// Lemma4Lambda evaluates the closed form of Lemma 4 for an instance with
// a single cautious user vc on a deterministic realization (all edge
// probabilities 1):
//
//	deg(vc) = 1, N(vc) = {u}:  λ = B'(u) / (B_f(vc) + B'(u))
//	deg(vc) > 1:               λ = min( min over U ⊆ N(vc), |U| = θ of
//	                                     ΣB'(U) / (B_f(vc) + ΣB'(U)),
//	                                    min over u* ∈ N(vc) of
//	                                     B'(u*) / (B'(vc) + B'(u*)) )
//
// where B'(vc) accounts for vc being a friend-of-friend already when
// θ − 1 ≥ 1 friends of vc sit in S.
func Lemma4Lambda(inst *osn.Instance, vc int) (float64, error) {
	if inst.Kind(vc) != osn.Cautious {
		return 0, fmt.Errorf("theory: node %d is not cautious", vc)
	}
	if inst.NumCautious() != 1 {
		return 0, fmt.Errorf("theory: Lemma 4 needs exactly one cautious user, have %d", inst.NumCautious())
	}
	g := inst.Graph()
	nbrs := g.Neighbors(vc)
	theta := inst.Theta(vc)

	if len(nbrs) == 1 {
		u := int(nbrs[0])
		bu := BPrime(inst, u, vc)
		return bu / (inst.BFriend(vc) + bu), nil
	}

	// Case (12): the cheapest θ-subset of N(vc).
	bps := make([]float64, len(nbrs))
	for i, v := range nbrs {
		bps[i] = BPrime(inst, int(v), vc)
	}
	sortFloats(bps)
	lambda := math.Inf(1)
	if theta <= len(bps) {
		var sum float64
		for _, b := range bps[:theta] {
			sum += b
		}
		lambda = sum / (inst.BFriend(vc) + sum)
	}

	// Case (13): a single neighbor completes the threshold while S holds
	// θ−1 friends of vc. With θ−1 >= 1, vc is already a friend-of-friend
	// in S, so only the upgrade B_f − B_fof remains.
	bvc := inst.BFriend(vc)
	if theta > 1 {
		bvc -= inst.BFof(vc)
	}
	for _, b := range bps {
		if r := b / (bvc + b); r < lambda {
			lambda = r
		}
	}
	return lambda, nil
}

// Lemma5UpperBound evaluates the upper bound of Lemma 5 for a user u
// shared as a friend by the cautious users cs:
//
//	λ ≤ B_f(u) / (Σ_i B'(vc_i) + B_f(u))
//
// where each B'(vc_i) is the threshold-completion gain of cautious user i.
func Lemma5UpperBound(inst *osn.Instance, u int, cs []int) (float64, error) {
	g := inst.Graph()
	var sum float64
	for _, vc := range cs {
		if inst.Kind(vc) != osn.Cautious {
			return 0, fmt.Errorf("theory: node %d is not cautious", vc)
		}
		if !g.HasEdge(u, vc) {
			return 0, fmt.Errorf("theory: %d is not a neighbor of cautious %d", u, vc)
		}
		b := inst.BFriend(vc)
		if inst.Theta(vc) > 1 {
			b -= inst.BFof(vc)
		}
		sum += b
	}
	bu := inst.BFriend(u)
	return bu / (sum + bu), nil
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Witness reports a concrete violation of a submodularity-style property:
// two nested partial realizations and the marginal gains of the same user
// under each.
type Witness struct {
	// DeltaEarly is Δ(u|ω1) with ω1 ⊆ ω2; DeltaLate is Δ(u|ω2).
	DeltaEarly, DeltaLate float64
	// User is the witnessing user.
	User int
}

// NonSubmodularWitness constructs the two-user example of Fig. 1 — a
// cautious user v1 (θ=1) linked to a reckless user v2 (q=1) — and returns
// the marginal gains of v1 before and after befriending v2:
// Δ(v1|∅) = 0 < Δ(v1|{v2 accepted}) = B_f(v1) − B_fof(v1), proving the
// ACCU benefit function is not adaptive submodular.
func NonSubmodularWitness() (Witness, error) {
	b := graph.NewBuilder(2)
	if _, err := b.AddEdge(0, 1); err != nil {
		return Witness{}, err
	}
	g := b.Freeze()
	inst, err := osn.NewInstance(g, osn.Params{
		Kind:       []osn.Kind{osn.Cautious, osn.Reckless},
		AcceptProb: []float64{0, 1},
		Theta:      []int{1, 0},
		BFriend:    []float64{50, 2},
		BFof:       []float64{1, 1},
	})
	if err != nil {
		return Witness{}, err
	}
	all, err := EnumerateRealizations(inst)
	if err != nil {
		return Witness{}, err
	}
	ref := inst.FixedRealization(nil, nil)
	early, err := Delta(inst, all, ref, nil, 0)
	if err != nil {
		return Witness{}, err
	}
	late, err := Delta(inst, all, ref, []int{1}, 0)
	if err != nil {
		return Witness{}, err
	}
	return Witness{DeltaEarly: early, DeltaLate: late, User: 0}, nil
}

// CurvatureWitness reproduces the §III-B argument that the adaptive total
// primal curvature Γ(u|ω′, ω) = Δ(u|ω′)/Δ(u|ω) is unbounded for ACCU: it
// returns the two marginals for the cautious user of the Fig. 1 instance,
// whose ratio is +Inf (division of a positive gain by zero).
func CurvatureWitness() (gamma float64, w Witness, err error) {
	w, err = NonSubmodularWitness()
	if err != nil {
		return 0, Witness{}, err
	}
	if w.DeltaEarly == 0 && w.DeltaLate > 0 {
		return math.Inf(1), w, nil
	}
	return w.DeltaLate / w.DeltaEarly, w, nil
}
