package sim

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestWireStructsTagged pins the //accu:wire contract with reflection:
// every exported, non-embedded field of the journal/upload wire structs
// must carry an explicit json tag, so a Go-level rename can never
// silently change the encoded field name. This is the runtime twin of
// the wiretag analyzer — it fails even if the analyzer regresses.
func TestWireStructsTagged(t *testing.T) {
	for _, typ := range []reflect.Type{
		reflect.TypeOf(CellKey{}),
		reflect.TypeOf(CellLine{}),
		reflect.TypeOf(Record{}),
	} {
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if f.Anonymous || !f.IsExported() {
				continue
			}
			if _, ok := f.Tag.Lookup("json"); !ok {
				t.Errorf("%s.%s has no explicit json tag; encoding/json would fall back to the field name", typ.Name(), f.Name)
			}
		}
	}
}

// TestCellLineWireFormat pins the exact journal-line encoding byte for
// byte. CellLine is shared by the on-disk cell journal and the dist
// cell-upload stream; any drift here breaks replay of existing journals
// and mixed-version coordinator/worker clusters.
func TestCellLineWireFormat(t *testing.T) {
	line := CellLine{
		CellKey: CellKey{Network: 2, Run: 7},
		Records: []Record{{Policy: "abm", Network: 2, Run: 7}},
	}
	got, err := json.Marshal(line)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"network":2,"run":7,"records":[{"Policy":"abm","Network":2,"Run":7,"Result":null}]}`
	if string(got) != want {
		t.Errorf("CellLine wire format drifted:\n got %s\nwant %s", got, want)
	}
}
