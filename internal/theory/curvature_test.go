package theory

import (
	"errors"
	"math"
	"testing"

	"github.com/accu-sim/accu/internal/osn"
)

// softSpec builds a spec-based instance with a soft cautious user.
func softInstance(t *testing.T, qLow, qHigh float64) *osn.Instance {
	t.Helper()
	g := buildGraph(t, 3, [][2]int{{0, 2}, {1, 2}})
	p := osn.Params{
		Kind:       []osn.Kind{osn.Reckless, osn.Reckless, osn.Cautious},
		AcceptProb: []float64{1, 1, 0},
		Theta:      []int{0, 0, 1},
		BFriend:    []float64{2, 2, 50},
		BFof:       []float64{1, 1, 1},
		QLow:       []float64{0, 0, qLow},
		QHigh:      []float64{1, 1, qHigh},
	}
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCurvatureDelta(t *testing.T) {
	if d := CurvatureDelta(softInstance(t, 0.1, 1)); math.Abs(d-10) > 1e-12 {
		t.Errorf("δ = %v, want 10", d)
	}
	if d := CurvatureDelta(softInstance(t, 0, 1)); !math.IsInf(d, 1) {
		t.Errorf("deterministic model δ = %v, want +Inf", d)
	}
	// No cautious users: δ = 1.
	det := makeInstance(t, spec{n: 2})
	if d := CurvatureDelta(det); d != 1 {
		t.Errorf("no cautious δ = %v, want 1", d)
	}
}

func TestCurvatureBoundPaperExample(t *testing.T) {
	// §III-B numeric example: δ = 10, k = 20 gives ratio ≈ 0.095.
	got := CurvatureBound(10, 20)
	if math.Abs(got-0.0954) > 0.001 {
		t.Errorf("bound(δ=10, k=20) = %v, want ≈ 0.095", got)
	}
	if CurvatureBound(math.Inf(1), 20) != 0 {
		t.Error("unbounded δ must yield ratio 0")
	}
	if CurvatureBound(0, 20) != 0 || CurvatureBound(10, 0) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestSoftEnumerationCoinsAndProbabilities(t *testing.T) {
	inst := softInstance(t, 0.25, 0.75)
	all, err := EnumerateRealizations(inst)
	if err != nil {
		t.Fatal(err)
	}
	// Two coins: low and high for the single cautious user.
	if len(all) != 4 {
		t.Fatalf("realizations = %d, want 4", len(all))
	}
	var sum float64
	for _, wr := range all {
		sum += wr.P
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("probabilities sum to %v", sum)
	}
	// P(low accept) must be 0.25 over realizations.
	var pLow float64
	for _, wr := range all {
		if wr.R.AcceptsCautious(2, false) {
			pLow += wr.P
		}
	}
	if math.Abs(pLow-0.25) > 1e-12 {
		t.Errorf("P(low coin) = %v", pLow)
	}
}

func TestSoftModelDeltaBelowThreshold(t *testing.T) {
	// With qLow = 0.5, the expected marginal gain of the cautious user
	// below threshold is positive: 0.5·B_f = 25 (no FOF yet, and node
	// 2's neighbors are strangers so their B_fof flows in too).
	inst := softInstance(t, 0.5, 1)
	all, err := EnumerateRealizations(inst)
	if err != nil {
		t.Fatal(err)
	}
	ref := inst.FixedRealizationCautious(nil, nil, func(int) bool { return true }, nil)
	d, err := Delta(inst, all, ref, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Accept (p=0.5): B_f(2)=50 plus FOF for neighbors 0,1 (+2) = 52.
	want := 0.5 * 52.0
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("Δ = %v, want %v", d, want)
	}
}

func TestRASRRejectsSoftModel(t *testing.T) {
	inst := softInstance(t, 0.25, 0.75)
	re := inst.FixedRealization(nil, nil)
	if _, err := RASR(inst, re); !errors.Is(err, ErrNotDeterministic) {
		t.Errorf("RASR on soft model: %v", err)
	}
	if _, err := BenefitSet(inst, re, []int{0}); !errors.Is(err, ErrNotDeterministic) {
		t.Errorf("BenefitSet on soft model: %v", err)
	}
	if _, err := AdaptiveSubmodularRatio(inst); !errors.Is(err, ErrNotDeterministic) {
		t.Errorf("ASR on soft model: %v", err)
	}
}

func TestSoftModelOptimalVsGreedy(t *testing.T) {
	inst := softInstance(t, 0.3, 0.9)
	for k := 1; k <= 3; k++ {
		opt, err := OptimalValue(inst, k)
		if err != nil {
			t.Fatal(err)
		}
		gre, err := GreedyValue(inst, k)
		if err != nil {
			t.Fatal(err)
		}
		if gre > opt+1e-9 {
			t.Errorf("k=%d: greedy %v > optimal %v", k, gre, opt)
		}
		// δ-based guarantee of §III-B must hold too.
		delta := CurvatureDelta(inst)
		if bound := CurvatureBound(delta, k); gre+1e-9 < bound*opt {
			t.Errorf("k=%d: greedy %v below curvature bound %v·%v", k, gre, bound, opt)
		}
	}
}
