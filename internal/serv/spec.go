package serv

import (
	"fmt"
	"regexp"
	"time"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
	"github.com/accu-sim/accu/internal/sim"
)

// PolicySpec names one policy of the roster. WD/WI apply to "abm" only
// (0/0 means the paper's balanced default weights).
//
//accu:wire
type PolicySpec struct {
	// Name is one of abm, greedy, maxdegree, pagerank, random.
	Name string  `json:"name"`
	WD   float64 `json:"wd,omitempty"`
	WI   float64 `json:"wi,omitempty"`
}

// Spec is the serializable description of one Monte-Carlo protocol — the
// HTTP submission payload. It maps onto sim.Protocol exactly the way the
// accurun CLI maps its flags, including the root-seed derivation
// NewSeed(seed, 2·seed+1), so a job's record digest can be compared
// bit-for-bit against a local `accurun -runs N -digest` of the same
// parameters.
//
//accu:wire
type Spec struct {
	// Preset is the dataset stand-in ("facebook", "slashdot", "twitter",
	// "dblp"); Scale shrinks it (0 defaults to 0.02).
	Preset string  `json:"preset"`
	Scale  float64 `json:"scale,omitempty"`
	// Cautious is the number of cautious users per network; nil defaults
	// to 10, matching accurun's -cautious default.
	Cautious *int `json:"cautious,omitempty"`

	// Policies is the roster to compare; every cell runs all of them
	// against the same realization.
	Policies []PolicySpec `json:"policies"`

	// Networks × Runs is the Monte-Carlo grid; K the request budget.
	Networks int `json:"networks"`
	Runs     int `json:"runs"`
	K        int `json:"k"`
	// BatchSize > 1 switches to the parallel-batching attack model.
	BatchSize int `json:"batchSize,omitempty"`

	// Seed feeds the deterministic root seed NewSeed(seed, 2·seed+1).
	Seed uint64 `json:"seed"`

	// Workers bounds the job's engine worker pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`

	// Fault-tolerance knobs, forwarded to sim.Protocol.
	CellTimeoutMS   int  `json:"cellTimeoutMs,omitempty"`
	Retries         int  `json:"retries,omitempty"`
	ContinueOnError bool `json:"continueOnError,omitempty"`
	MaxFailures     int  `json:"maxFailures,omitempty"`
}

// defaultScale matches accurun's -scale default.
const defaultScale = 0.02

// defaultCautious matches accurun's -cautious default.
const defaultCautious = 10

// scale returns the effective scale factor.
func (s Spec) scale() float64 {
	if s.Scale == 0 {
		return defaultScale
	}
	return s.Scale
}

// cautious returns the effective cautious-user count.
func (s Spec) cautious() int {
	if s.Cautious == nil {
		return defaultCautious
	}
	return *s.Cautious
}

// Cells returns the record-grid size Networks × Runs × policies.
func (s Spec) Cells() int64 {
	return int64(s.Networks) * int64(s.Runs) * int64(len(s.Policies))
}

// Validate checks the spec without building anything expensive: preset
// and policy names resolve, weights validate, and the grid dimensions
// satisfy sim.Protocol.Validate. It is the submission-time gate, so a
// queued job cannot fail on a typo hours later.
func (s Spec) Validate() error {
	if _, err := gen.PresetByName(s.Preset); err != nil {
		return err
	}
	if sc := s.scale(); sc <= 0 || sc > 1 {
		return fmt.Errorf("serv: scale %v not in (0, 1]", sc)
	}
	if s.cautious() < 0 {
		return fmt.Errorf("serv: cautious %d must be >= 0", s.cautious())
	}
	if len(s.Policies) == 0 {
		return fmt.Errorf("serv: no policies")
	}
	seen := make(map[string]bool, len(s.Policies))
	for _, ps := range s.Policies {
		if seen[ps.Name] {
			return fmt.Errorf("serv: duplicate policy %q", ps.Name)
		}
		seen[ps.Name] = true
		if _, err := policyFactory(ps, nil); err != nil {
			return err
		}
	}
	p := sim.Protocol{
		Gen:         probeGen{},
		Setup:       osn.DefaultSetup(),
		Networks:    s.Networks,
		Runs:        s.Runs,
		K:           s.K,
		BatchSize:   s.BatchSize,
		Workers:     s.Workers,
		MaxFailures: s.MaxFailures,
		CellTimeout: time.Duration(s.CellTimeoutMS) * time.Millisecond,
		Retries:     s.Retries,
	}
	return p.Validate()
}

// probeGen satisfies gen.Generator so Spec.Validate can reuse the
// engine's own protocol validation without building a real generator; it
// must never actually run.
type probeGen struct{}

func (probeGen) Generate(rng.Seed) (*graph.Graph, error) {
	return nil, fmt.Errorf("serv: probe generator must not run")
}

func (probeGen) Name() string { return "probe" }

// Build materializes the spec into a runnable protocol and policy roster.
// reg becomes the job-scoped metrics registry (engine instrumentation and
// ABM work counters); nil disables instrumentation.
func (s Spec) Build(reg *obs.Registry) (sim.Protocol, []sim.PolicyFactory, error) {
	preset, err := gen.PresetByName(s.Preset)
	if err != nil {
		return sim.Protocol{}, nil, err
	}
	generator, err := preset.Generator(s.scale())
	if err != nil {
		return sim.Protocol{}, nil, err
	}
	setup := osn.DefaultSetup()
	setup.NumCautious = s.cautious()
	factories := make([]sim.PolicyFactory, 0, len(s.Policies))
	for _, ps := range s.Policies {
		f, err := policyFactory(ps, reg)
		if err != nil {
			return sim.Protocol{}, nil, err
		}
		factories = append(factories, f)
	}
	seed := rng.NewSeed(s.Seed, s.Seed*2+1)
	p := sim.Protocol{
		Gen:             generator,
		Setup:           setup,
		Networks:        s.Networks,
		Runs:            s.Runs,
		K:               s.K,
		BatchSize:       s.BatchSize,
		Seed:            seed,
		Workers:         s.Workers,
		Metrics:         reg,
		ContinueOnError: s.ContinueOnError,
		MaxFailures:     s.MaxFailures,
		CellTimeout:     time.Duration(s.CellTimeoutMS) * time.Millisecond,
		Retries:         s.Retries,
	}
	return p, factories, nil
}

// policyFactory builds the factory for one policy spec, mirroring the
// accurun CLI's roster so service jobs and local runs stay digest-
// compatible.
func policyFactory(ps PolicySpec, reg *obs.Registry) (sim.PolicyFactory, error) {
	switch ps.Name {
	case "abm":
		w := core.Weights{WD: ps.WD, WI: ps.WI}
		if ps.WD == 0 && ps.WI == 0 {
			w = core.DefaultWeights()
		}
		if err := w.Validate(); err != nil {
			return sim.PolicyFactory{}, err
		}
		return sim.PolicyFactory{Name: "abm", New: func(rng.Seed) (core.Policy, error) {
			return core.NewABM(w, core.WithMetrics(reg))
		}}, nil
	case "greedy":
		return sim.PolicyFactory{Name: "greedy", New: func(rng.Seed) (core.Policy, error) {
			return core.NewPureGreedy(), nil
		}}, nil
	case "maxdegree":
		return sim.PolicyFactory{Name: "maxdegree", New: func(rng.Seed) (core.Policy, error) {
			return core.NewMaxDegree(), nil
		}}, nil
	case "pagerank":
		return sim.PolicyFactory{Name: "pagerank", New: func(rng.Seed) (core.Policy, error) {
			return core.NewPageRank(), nil
		}}, nil
	case "random":
		return sim.PolicyFactory{Name: "random", New: func(s rng.Seed) (core.Policy, error) {
			return core.NewRandom(s), nil
		}}, nil
	default:
		return sim.PolicyFactory{}, fmt.Errorf("serv: unknown policy %q (want abm|greedy|maxdegree|pagerank|random)", ps.Name)
	}
}

// jobIDPattern constrains job identifiers: metric-name-safe lowercase
// segments, so per-job registries prefix cleanly into /metrics names
// ("job.<id>.sim.cells" must satisfy obs.NamePattern).
var jobIDPattern = regexp.MustCompile(`^[a-z0-9_]{1,64}$`)

// ValidJobID reports whether a client-supplied job ID is acceptable.
func ValidJobID(id string) bool { return jobIDPattern.MatchString(id) }
