// Fixture for the lockbalance analyzer: every Lock must be released on
// every CFG path, and lock-bearing values must not be copied.
package sim

import "sync"

var mu sync.Mutex
var rw sync.RWMutex

// guarded holds a mutex by value; copying it copies the lock.
type guarded struct {
	mu  sync.Mutex
	val int
}

// registry embeds a lock two levels deep; still lock-bearing.
type registry struct {
	inner guarded
}

func earlyReturnLeaks(cond bool) {
	mu.Lock() // want `mu\.Lock\(\) is not released on every path`
	if cond {
		return
	}
	mu.Unlock()
}

func deferredIsBalanced() {
	mu.Lock()
	defer mu.Unlock()
	work()
}

func straightLineIsBalanced() int {
	mu.Lock()
	v := read()
	mu.Unlock()
	return v
}

func branchBalanced(cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	mu.Unlock()
}

func panicPathLeaks(cond bool) {
	mu.Lock() // want `mu\.Lock\(\) is not released on every path`
	if cond {
		panic("corrupt state")
	}
	mu.Unlock()
}

func readLockMismatch() {
	rw.RLock() // want `rw\.RLock\(\) is not released on every path`
	work()
	rw.Unlock() // Unlock does not discharge RLock
}

func readLockBalanced() {
	rw.RLock()
	defer rw.RUnlock()
	work()
}

func loopSkipsUnlock(n int) {
	mu.Lock() // want `mu\.Lock\(\) is not released on every path`
	for i := 0; i < n; i++ {
		mu.Unlock() // zero-iteration path never unlocks
	}
}

func allowedHandover() {
	//accu:allow lockbalance -- fixture: unlock-in-callee protocol, release() unlocks
	mu.Lock()
	work()
}

func (g guarded) byValueReceiver() int { // want `by-value receiver copies lock-bearing value`
	return g.val
}

func byValueParam(g guarded) { // want `by-value parameter copies lock-bearing value`
	_ = g
}

func pointerReceiverFine(g *guarded) int {
	return g.val
}

func assignmentCopies(g *guarded) {
	cp := *g // want `assignment copies lock-bearing value`
	_ = cp
}

func nestedAssignmentCopies(r *registry) {
	cp := r.inner // want `assignment copies lock-bearing value`
	_ = cp
}

func rangeCopies(gs []guarded) {
	for _, g := range gs { // want `range value copies lock-bearing value`
		_ = g.val
	}
}

func callArgCopies(g *guarded) {
	consume(*g) // want `call argument copies lock-bearing value`
}

func consume(guarded) {} // want `by-value parameter copies lock-bearing value`

func work()     {}
func read() int { return 0 }
