// Fixture: detrand in a strict deterministic package (type-checked as
// .../internal/core). Clock reads, environment reads and every use of
// the global math/rand generators must be flagged; explicitly seeded
// *rand.Rand methods and pure time constructors stay legal.
package core

import (
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"

	"example.test/internal/rng"
)

func clockReads() (time.Time, time.Duration) {
	now := time.Now()          // want `time\.Now reads the clock in deterministic package`
	d := time.Since(now)       // want `time\.Since reads the clock in deterministic package`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the clock in deterministic package`
	return now, d
}

func pureTimeIsFine() time.Duration {
	d, _ := time.ParseDuration("3s")
	return d + 2*time.Second
}

func envReads() string {
	if v, ok := os.LookupEnv("ACCU_MODE"); ok { // want `os\.LookupEnv makes .* depend on the process environment`
		return v
	}
	return os.Getenv("HOME") // want `os\.Getenv makes .* depend on the process environment`
}

func globalRand() (int, float64) {
	a := randv2.IntN(10) // want `math/rand/v2\.IntN bypasses the internal/rng seed tree`
	b := rand.Float64()  // want `math/rand\.Float64 bypasses the internal/rng seed tree`
	return a, b
}

func adHocGenerator() *randv2.Rand {
	return randv2.New(randv2.NewPCG(1, 2)) // want `rand\.New constructs an ad-hoc generator` `math/rand/v2\.NewPCG bypasses the internal/rng seed tree`
}

func seededIsFine(seed rng.Seed) int {
	r := seed.Rand()
	return r.IntN(10) + int(r.Uint64()%3)
}

func allowed() time.Time {
	//accu:allow detrand -- fixture: directive must suppress the finding
	return time.Now()
}
