package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestRunWritesReport(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-quick",
		"-scale", "0.01",
		"-k", "5",
		"-workers", "1,2",
		"-out", outPath,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var got output
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if want := 2 * 2; len(got.Results) != want { // 2 quick shapes × 2 worker counts
		t.Fatalf("results = %d, want %d", len(got.Results), want)
	}
	for _, r := range got.Results {
		if r.Cells != r.Networks*r.Runs*r.Policies {
			t.Errorf("shape %dx%d: cells = %d, want %d", r.Networks, r.Runs, r.Cells, r.Networks*r.Runs*r.Policies)
		}
		if r.CellsPerSec <= 0 {
			t.Errorf("shape %dx%d workers %d: cellsPerSec = %v", r.Networks, r.Runs, r.Workers, r.CellsPerSec)
		}
		if r.ResolvedWorkers > r.Networks*r.Runs {
			t.Errorf("resolved workers %d exceeds cell count", r.ResolvedWorkers)
		}
	}
}

// TestChaosModeCompletes is the fault-tolerance smoke: under injected
// generator and policy faults the benchmark must still finish every
// shape and account for each grid cell as either collected or failed.
func TestChaosModeCompletes(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "chaos.json")
	err := run([]string{
		"-quick",
		"-chaos",
		"-scale", "0.01",
		"-k", "5",
		"-workers", "1,2",
		"-out", outPath,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var got output
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if want := 2 * 2; len(got.Results) != want {
		t.Fatalf("results = %d, want %d", len(got.Results), want)
	}
	anyFailed := false
	for _, r := range got.Results {
		// A failed (network, run) cell loses all of its policy records.
		if want := (r.Networks*r.Runs - r.FailedCells) * r.Policies; r.Cells != want {
			t.Errorf("shape %dx%d: cells = %d with %d failed, want %d",
				r.Networks, r.Runs, r.Cells, r.FailedCells, want)
		}
		anyFailed = anyFailed || r.FailedCells > 0
	}
	if !anyFailed {
		t.Error("chaos mode injected no failures across any shape; rates or seed wiring broken")
	}
}

// TestOversubscriptionAnnotated checks that worker counts beyond
// GOMAXPROCS are flagged in the report (and that honest counts are not),
// and that -strict refuses them outright.
func TestOversubscriptionAnnotated(t *testing.T) {
	over := runtime.GOMAXPROCS(0) + 1
	outPath := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-quick",
		"-scale", "0.01",
		"-k", "5",
		"-shapes", "1x2",
		"-workers", fmt.Sprintf("1,%d", over),
		"-out", outPath,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var got output
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.NumCPU <= 0 || got.GoMaxProcs <= 0 {
		t.Errorf("machine fields numCpu=%d goMaxProcs=%d, want both positive", got.NumCPU, got.GoMaxProcs)
	}
	for _, r := range got.Results {
		want := r.Workers > got.GoMaxProcs
		if r.Oversubscribed != want {
			t.Errorf("workers=%d (GOMAXPROCS %d): oversubscribed=%v, want %v",
				r.Workers, got.GoMaxProcs, r.Oversubscribed, want)
		}
	}

	err = run([]string{
		"-quick", "-strict",
		"-workers", fmt.Sprintf("%d", over),
		"-out", filepath.Join(t.TempDir(), "strict.json"),
	}, os.Stderr)
	if err == nil {
		t.Fatalf("-strict with workers=%d (GOMAXPROCS %d): want refusal", over, runtime.GOMAXPROCS(0))
	}
}

func TestParseFlagsRejectsBadShapes(t *testing.T) {
	for _, args := range [][]string{
		{"-shapes", "abc"},
		{"-shapes", "0x5"},
		{"-workers", "0"},
		{"-workers", "x"},
	} {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}
