package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockedIO returns the blocking-I/O-under-lock analyzer: a call that can
// block on the outside world — file writes and fsyncs, network round
// trips, subprocess waits, time.Sleep — must not be reachable while a
// sync.Mutex/RWMutex is held, because every other goroutine contending
// for that lock then waits out the I/O too (the coordinator-stall shape:
// one slow fsync under the lease mutex freezes lease renewal for every
// worker).
//
// The check is interprocedural within the package: the call graph
// propagates a may-block summary bottom-up (a helper that calls
// os.WriteFile blocks, so does its caller), with `go` statements excluded
// — an async call does not block its spawner — and deferred calls
// included. Cross-package, the analyzer recognizes a curated root set:
// the blocking stdlib surface below plus this module's journal fsync
// methods ((*sim.CellJournal).Commit/Sync/Close), which dist and serv
// call under their coordinator locks by design.
//
// Held-lock facts reuse lockbalance's recognition over the CFG, so
// conditional unlocks and early returns are path-accurate; a deferred
// unlock keeps the lock held to function exit, which is exactly when
// I/O after the Lock is worth flagging. Sites that serialize I/O under a
// lock on purpose (fsync-before-ack durability) are the audited
// exception: //accu:allow lockedio -- <why>.
func LockedIO() *Analyzer {
	a := &Analyzer{
		Name: "lockedio",
		Doc: "flag blocking I/O (file sync, network round trips, sleeps) " +
			"reachable while a sync.Mutex/RWMutex is held, interprocedurally " +
			"through the package call graph",
	}
	a.Run = func(pass *Pass) error {
		cg := NewCallGraph(pass.Pkg, pass.Info, pass.Files)
		seeds := make(map[*types.Func]string)
		for _, fn := range cg.Funcs() {
			if desc := intrinsicBlocking(pass, cg.DeclOf(fn)); desc != "" {
				seeds[fn] = desc
			}
		}
		blocks := cg.PropagateUp(seeds, func(e CallEdge) bool { return !e.Async })
		funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
			checkLockedIO(pass, cg, blocks, body)
		})
		return nil
	}
	return a
}

// blockingFuncs is the curated set of package-level stdlib functions
// treated as blocking I/O roots.
var blockingFuncs = map[string]map[string]bool{
	"os": {
		"ReadFile": true, "WriteFile": true, "Rename": true, "Create": true,
		"Open": true, "OpenFile": true, "Remove": true, "RemoveAll": true,
		"Mkdir": true, "MkdirAll": true, "Truncate": true, "ReadDir": true,
	},
	"time":     {"Sleep": true},
	"net":      {"Dial": true, "DialTimeout": true, "Listen": true, "LookupHost": true},
	"net/http": {"Get": true, "Post": true, "PostForm": true, "Head": true},
}

// blockingMethods is the curated set of stdlib methods treated as
// blocking, keyed package → receiver named type → method.
var blockingMethods = map[string]map[string]map[string]bool{
	"os": {"File": {
		"Read": true, "Write": true, "WriteString": true, "Sync": true,
		"Close": true, "Seek": true, "Truncate": true, "ReadAt": true, "WriteAt": true,
	}},
	"net/http": {"Client": {"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true}},
	"os/exec":  {"Cmd": {"Run": true, "Output": true, "CombinedOutput": true, "Start": true, "Wait": true}},
	"net":      {"Conn": {"Read": true, "Write": true, "Close": true}},
}

// journalMethods are this module's own cross-package blocking roots: the
// checkpoint journal's fsyncing methods, recognized by receiver type so
// dist/serv callers are covered without the sim package's ASTs.
var journalMethods = map[string]bool{"Commit": true, "Sync": true, "Close": true}

// blockingCall reports whether call invokes a blocking root, with a
// display name for the diagnostic.
func blockingCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(pass, call)
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	pkg := f.Pkg().Path()
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if blockingFuncs[pkg][f.Name()] {
			return pkg + "." + f.Name(), true
		}
		return "", false
	}
	recv := namedRecvName(sig.Recv().Type())
	if blockingMethods[pkg][recv][f.Name()] {
		return "(*" + pkg + "." + recv + ")." + f.Name(), true
	}
	if recv == "CellJournal" && pkgPathIs(pkg, "internal/sim") && journalMethods[f.Name()] {
		return "(*sim.CellJournal)." + f.Name(), true
	}
	return "", false
}

// intrinsicBlocking scans one declaration body for a blocking root call,
// pruning `go` statements (their calls run concurrently, not in this
// activation); deferred calls and inline function literals count.
func intrinsicBlocking(pass *Pass, decl *ast.FuncDecl) string {
	if decl == nil || decl.Body == nil {
		return ""
	}
	desc := ""
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if d, ok := blockingCall(pass, call); ok {
				desc = d
				return false
			}
		}
		return true
	})
	return desc
}

// checkLockedIO runs the held-lock dataflow over one body and reports
// every blocking call — direct root or summarized in-package callee —
// reached with at least one lock held.
func checkLockedIO(pass *Pass, cg *CallGraph, blocks map[*types.Func]string, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	transfer := func(n ast.Node, facts Facts) {
		// Deferred unlocks are pruned: they release at exit, so the lock
		// stays held across everything after the Lock — which is the
		// whole point of flagging I/O there. (lockbalance's deferred map
		// is about balance, not extent.)
		walkBlockNode(n, true, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f, op, ok := lockMethodCall(pass, call); ok {
				if isUnlockOp(op) {
					delete(facts, f)
				} else {
					facts[f] = call.Pos()
				}
			}
			return true
		})
	}
	in, _ := cfg.ForwardMay(transfer)
	for _, b := range cfg.Blocks {
		facts := in[b].clone()
		for _, n := range b.Nodes {
			reportBlockingUnder(pass, cg, blocks, n, facts)
			transfer(n, facts)
		}
	}
}

// reportBlockingUnder reports blocking calls inside one block node while
// facts holds at least one lock. Goroutine bodies (not blocking the
// holder), deferred calls (run at exit, usually after the paired
// deferred unlock) and stored function literals are pruned.
func reportBlockingUnder(pass *Pass, cg *CallGraph, blocks map[*types.Func]string, n ast.Node, facts Facts) {
	if len(facts) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc, ok := blockingCall(pass, call)
		if !ok {
			if callee := cg.StaticCallee(pass.Info, call); callee != nil {
				if w, has := blocks[callee]; has {
					desc, ok = funcDisplayName(callee)+" → "+w, true
				}
			}
		}
		if !ok {
			return true
		}
		// One lock names the diagnostic: the lexicographically smallest
		// key, for deterministic output under multiple held locks.
		var lf lockFact
		var lpos token.Pos
		for k, p := range facts {
			f := k.(lockFact)
			if lf.key == "" || f.key < lf.key {
				lf, lpos = f, p
			}
		}
		op := "Lock"
		if lf.read {
			op = "RLock"
		}
		pass.Reportf(call.Pos(),
			"blocking call %s while %s.%s() is held (locked at line %d); release the lock around the I/O or annotate the intentional serialization",
			desc, lf.key, op, pass.Fset.Position(lpos).Line)
		return true
	})
}
