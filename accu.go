// Package accu is a Go implementation of "Adaptive Crawling with Cautious
// Users" (Li, Pan, Tong & Pan, IEEE ICDCS 2019): the ACCU problem — a
// socialbot attacker adaptively befriending users of a partially known
// social network where cautious users accept friend requests only past a
// mutual-friend threshold — together with the ABM greedy algorithm, the
// baselines it is evaluated against, the adaptive-submodular-ratio theory
// of §III, synthetic stand-ins for the paper's SNAP datasets, and a
// harness regenerating every table and figure of §IV.
//
// # Quick start
//
//	preset, _ := accu.PresetByName("facebook")
//	generator, _ := preset.Generator(0.05)            // 5%-scale network
//	g, _ := generator.Generate(accu.NewSeed(1, 2))
//	inst, _ := accu.DefaultSetup().Build(g, accu.NewSeed(3, 4))
//	re := inst.SampleRealization(accu.NewSeed(5, 6))
//	abm, _ := accu.NewABM(accu.DefaultWeights())
//	res, _ := accu.Run(abm, re, 100)
//	fmt.Println(res.Benefit, res.CautiousFriends)
//
// The package is a facade over the internal implementation; everything a
// downstream user needs is re-exported here.
package accu

import (
	"context"
	"fmt"
	"io"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/defense"
	"github.com/accu-sim/accu/internal/exp"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/pagerank"
	"github.com/accu-sim/accu/internal/rng"
	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
	"github.com/accu-sim/accu/internal/theory"
)

// Core model types, re-exported from the implementation packages.
type (
	// Graph is an immutable undirected simple graph in CSR form.
	Graph = graph.Graph
	// GraphBuilder accumulates edges before freezing into a Graph.
	GraphBuilder = graph.Builder
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Instance is a fully specified ACCU problem instance.
	Instance = osn.Instance
	// Params bundles per-node and per-edge instance attributes.
	Params = osn.Params
	// Setup is the §IV-A experiment protocol for dressing a graph.
	Setup = osn.Setup
	// Realization is one ground-truth draw Φ of the instance randomness.
	Realization = osn.Realization
	// State is the attacker's partial realization ω.
	State = osn.State
	// Kind classifies a user as Reckless or Cautious.
	Kind = osn.Kind
	// Outcome reports the result of one friend request.
	Outcome = osn.Outcome
	// Policy is an adaptive attack strategy π.
	Policy = core.Policy
	// ABM is the Adaptive Benefit Maximization policy of Algorithm 1.
	ABM = core.ABM
	// Weights are the ABM potential weights (w_D, w_I).
	Weights = core.Weights
	// Result is the trace of one executed attack.
	Result = core.Result
	// Step records one friend request of an executed attack.
	Step = core.Step
	// Seed identifies a deterministic random stream.
	Seed = rng.Seed
	// Generator produces sample networks from seeds.
	Generator = gen.Generator
	// Preset is a calibrated stand-in for a Table I dataset.
	Preset = gen.Preset
	// FixedGenerator wraps a pre-built graph (e.g. real SNAP data) as a
	// Generator.
	FixedGenerator = gen.Fixed
	// Journal is a replayable record of an attack's request sequence.
	Journal = osn.Journal
)

// User kinds.
const (
	// Reckless users accept friend requests with probability q(u).
	Reckless = osn.Reckless
	// Cautious users accept iff the mutual-friend threshold θ is met.
	Cautious = osn.Cautious
)

// NewSeed builds a deterministic seed from two words of entropy.
func NewSeed(hi, lo uint64) Seed { return rng.NewSeed(hi, lo) }

// NewGraphBuilder returns a builder for a graph with n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// ReadEdgeList parses a SNAP-style edge list into a Graph, compacting
// sparse node ids and collapsing directed duplicates.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteEdgeList serializes a Graph as a SNAP-style edge list.
func WriteEdgeList(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// NewInstance validates parameters and builds an immutable ACCU instance.
func NewInstance(g *Graph, p Params) (*Instance, error) { return osn.NewInstance(g, p) }

// DefaultSetup returns the paper's §IV-A protocol parameters: 100
// cautious users from the degree band [10, 100], θ = 0.3·deg, B_f = 2/50
// (reckless/cautious), B_fof = 1.
func DefaultSetup() Setup { return osn.DefaultSetup() }

// NewAttack starts an attack against a realization with no requests sent.
func NewAttack(re *Realization) *State { return osn.NewState(re) }

// DefaultWeights returns the paper's balanced ABM weights w_D = w_I = 0.5.
func DefaultWeights() Weights { return core.DefaultWeights() }

// NewABM builds the Adaptive Benefit Maximization policy.
func NewABM(w Weights, opts ...core.Option) (*ABM, error) { return core.NewABM(w, opts...) }

// WithFullRescan disables ABM's lazy re-scoring (ablation).
func WithFullRescan() core.Option { return core.WithFullRescan() }

// WithMetrics records ABM's work counters (heap pops, stale skips,
// rescores, dirty-set sizes) into the given registry.
func WithMetrics(reg *Metrics) core.Option { return core.WithMetrics(reg) }

// NewPureGreedy returns the classical adaptive greedy (w_D=1, w_I=0).
func NewPureGreedy() *ABM { return core.NewPureGreedy() }

// NewMaxDegree returns the MaxDegree baseline policy.
func NewMaxDegree() Policy { return core.NewMaxDegree() }

// NewPageRank returns the PageRank baseline policy.
func NewPageRank() Policy { return core.NewPageRank() }

// NewRandom returns the uniform-random baseline policy.
func NewRandom(seed Seed) Policy { return core.NewRandom(seed) }

// Potential evaluates the ABM potential P(u|ω) for a candidate user.
func Potential(st *State, u int, w Weights) float64 { return core.Potential(st, u, w) }

// Run executes a policy against a realization for up to k requests.
func Run(p Policy, re *Realization, k int) (*Result, error) { return core.Run(p, re, k) }

// PageRankScores computes power-iteration PageRank with conventional
// parameters (damping 0.85).
func PageRankScores(g *Graph) ([]float64, error) {
	return pagerank.Scores(g, pagerank.DefaultOptions())
}

// PresetByName looks up a Table I dataset stand-in ("facebook",
// "slashdot", "twitter", "dblp").
func PresetByName(name string) (Preset, error) { return gen.PresetByName(name) }

// PresetNames lists the available presets.
func PresetNames() []string { return gen.PresetNames() }

// LoadEdgeList reads a SNAP-style edge-list file into a FixedGenerator,
// so the experiment harness can run against real data.
func LoadEdgeList(path string) (FixedGenerator, error) { return gen.LoadEdgeList(path) }

// ReadJournal parses a journal written by Journal.WriteTo.
func ReadJournal(r io.Reader) (*Journal, error) { return osn.ReadJournal(r) }

// Monte-Carlo simulation types, re-exported from the runner.
type (
	// Protocol describes one Monte-Carlo experiment.
	Protocol = sim.Protocol
	// PolicyFactory builds a fresh policy per run.
	PolicyFactory = sim.PolicyFactory
	// Record is the outcome of one (policy, network, run) cell.
	Record = sim.Record
	// Progress is one Protocol.OnProgress notification.
	Progress = sim.Progress
	// Summary aggregates Monte-Carlo records per policy (final benefit,
	// cautious friends, benefit-vs-k curves).
	Summary = sim.Summary
	// Builder constructs an Instance from a generated graph; Setup
	// satisfies it, and wrappers (caching, fault injection) slot into
	// Protocol.Setup through it.
	Builder = sim.Builder
	// Checkpointer persists completed Monte-Carlo cells so an interrupted
	// grid can resume without recomputation (Protocol.Checkpoint).
	Checkpointer = sim.Checkpointer
	// CellKey identifies one (network, run) Monte-Carlo cell.
	CellKey = sim.CellKey
	// CellJournal is the append-only JSONL Checkpointer.
	CellJournal = sim.CellJournal
	// CellError describes one failed Monte-Carlo cell.
	CellError = sim.CellError
	// FailureSummary reports the cells that failed during a run with
	// Protocol.ContinueOnError set; MonteCarlo returns it as the error.
	FailureSummary = sim.FailureSummary
	// RecordDigest accumulates an order-insensitive SHA-256 fingerprint
	// of a Monte-Carlo record set, for bit-identical-resume assertions.
	RecordDigest = sim.RecordDigest
)

// NewRecordDigest returns an empty record-set digest accumulator; feed it
// from your collect callback (and CellJournal.Replay when resuming) and
// compare Sum() across runs.
func NewRecordDigest() *RecordDigest { return sim.NewRecordDigest() }

// Streaming statistics, re-exported from the stats layer. These are the
// types Summary accessors return and job results embed.
type (
	// Welford is a numerically stable online mean/variance accumulator.
	Welford = stats.Welford
	// WelfordSnapshot is the JSON view of a Welford accumulator.
	WelfordSnapshot = stats.WelfordSnapshot
	// Sketch is a mergeable streaming quantile sketch whose serialized
	// snapshot is byte-identical for any merge order or partition of the
	// same observation multiset.
	Sketch = stats.Sketch
	// SketchSnapshot is the JSON view of a Sketch (quantiles + centroids).
	SketchSnapshot = stats.SketchSnapshot
	// StoreRecord is one per-cell observation row of a columnar result
	// store.
	StoreRecord = stats.StoreRecord
	// StoreWriter appends rows to a columnar result store file.
	StoreWriter = stats.StoreWriter
	// StoreReader scans a columnar result store file sequentially.
	StoreReader = stats.StoreReader
)

// NewSketch returns an empty quantile sketch with default accuracy
// (relative error 0.5%, 512 centroids).
func NewSketch() *Sketch { return stats.NewSketch() }

// NewSketchWith returns an empty sketch with explicit relative accuracy
// alpha in (0, 1) and centroid bound maxCentroids >= 8.
func NewSketchWith(alpha float64, maxCentroids int) (*Sketch, error) {
	return stats.NewSketchWith(alpha, maxCentroids)
}

// SketchFromSnapshot reconstructs a mergeable sketch from its snapshot.
func SketchFromSnapshot(snap SketchSnapshot) (*Sketch, error) {
	return stats.SketchFromSnapshot(snap)
}

// CreateResultStore creates a columnar result store at path (failing if
// it exists); feed it per-record rows from a MonteCarlo collect callback.
func CreateResultStore(path string, meta map[string]string) (*StoreWriter, error) {
	return stats.CreateStore(path, meta)
}

// OpenResultStore opens a result store for sequential scanning.
func OpenResultStore(path string) (*StoreReader, error) { return stats.OpenStore(path) }

// ErrCellTimeout is wrapped by cell errors whose attempts exceeded
// Protocol.CellTimeout.
var ErrCellTimeout = sim.ErrCellTimeout

// OpenCellJournal opens (resume=true) or creates (resume=false) the cell
// journal at path for use as a Protocol.Checkpoint. On resume, feed the
// already-completed cells to your collector with Replay before starting
// the run.
func OpenCellJournal(path string, resume bool) (*CellJournal, error) {
	return sim.OpenCellJournal(path, resume)
}

// Observability types, re-exported from the metrics layer.
type (
	// Metrics is a registry of atomic counters, gauges and histograms;
	// attach one via Protocol.Metrics, ExperimentConfig.Metrics or
	// WithMetrics. A nil *Metrics disables instrumentation at near-zero
	// cost.
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry, renderable
	// as result tables and marshalable to JSON.
	MetricsSnapshot = obs.Snapshot
)

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.New() }

// NewSummary creates a Monte-Carlo aggregator; pass its Collect method to
// MonteCarlo. checkpoints may be nil to skip benefit curves.
func NewSummary(checkpoints []int) *Summary { return sim.NewSummary(checkpoints) }

// MonteCarlo executes a Monte-Carlo protocol over a worker pool, invoking
// collect serially for every (policy, network, run) cell. Work is
// scheduled at (network, run) cell granularity — network instances are
// generated once and shared — so even a Networks=1 grid parallelizes
// across its runs, and the record stream is identical for every
// Protocol.Workers setting.
func MonteCarlo(ctx context.Context, p Protocol, factories []PolicyFactory, collect func(Record)) error {
	return sim.Run(ctx, p, factories, collect)
}

// DefaultFactories returns the §IV policy roster (ABM + baselines).
// opts (e.g. WithMetrics) are applied to the ABM policy.
func DefaultFactories(w Weights, opts ...core.Option) ([]PolicyFactory, error) {
	return sim.DefaultFactories(w, opts...)
}

// Experiment harness types.
type (
	// ExperimentConfig scales the experiment protocol.
	ExperimentConfig = exp.Config
	// Report is the rendered output of one experiment.
	Report = exp.Report
)

// QuickConfig returns an experiment configuration sized for interactive
// use; PaperConfig returns the full §IV protocol.
func QuickConfig() ExperimentConfig { return exp.QuickConfig() }

// PaperConfig returns the full-scale §IV experiment protocol.
func PaperConfig() ExperimentConfig { return exp.PaperConfig() }

// Experiments lists the available experiment ids (one per paper table and
// figure).
func Experiments() []string { return exp.IDs() }

// RunExperiment executes the experiment with the given id. When
// cfg.Metrics is set, the report embeds a metrics snapshot taken after
// the run (Report.Metrics).
func RunExperiment(ctx context.Context, id string, cfg ExperimentConfig) (*Report, error) {
	runner, ok := exp.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("accu: unknown experiment %q (have %v)", id, exp.IDs())
	}
	rep, err := runner(ctx, cfg)
	if err != nil {
		return nil, err
	}
	rep.MetricsSnapshot = cfg.Metrics.Snapshot()
	return rep, nil
}

// Theory helpers (exhaustive; tiny instances only).

// AdaptiveSubmodularRatio computes λ (Definition 5) by enumeration.
func AdaptiveSubmodularRatio(inst *Instance) (float64, error) {
	return theory.AdaptiveSubmodularRatio(inst)
}

// OptimalValue computes the optimal adaptive policy value by brute force.
func OptimalValue(inst *Instance, k int) (float64, error) { return theory.OptimalValue(inst, k) }

// GreedyValue computes the exact w_I=0 adaptive greedy value.
func GreedyValue(inst *Instance, k int) (float64, error) { return theory.GreedyValue(inst, k) }

// TheoremBound returns the Theorem 1 guarantee 1 − e^{−λ}.
func TheoremBound(lambda float64) float64 { return theory.Bound(lambda) }

// CurvatureDelta computes δ = max QHigh/QLow over cautious users under
// the generalized §III-B acceptance model (+Inf for the deterministic
// model).
func CurvatureDelta(inst *Instance) float64 { return theory.CurvatureDelta(inst) }

// CurvatureBound returns the §III-B curvature guarantee
// 1 − (1 − 1/(δk))^k, which collapses to 0 as δ → ∞.
func CurvatureBound(delta float64, k int) float64 { return theory.CurvatureBound(delta, k) }

// RunBatched executes a parallel-batching attack (paper reference [4]):
// requests go out batchSize at a time with no observations inside a
// batch. All shipped policies implement BatchSelector.
func RunBatched(p BatchSelector, re *Realization, k, batchSize int) (*Result, error) {
	return core.RunBatched(p, re, k, batchSize)
}

// BatchSelector is a policy that can propose several distinct targets
// without intermediate observations.
type BatchSelector = core.BatchSelector

// Collaborative multi-bot attack (paper reference [5]).
type (
	// MultiState is the shared-observation, per-bot-friendship attack
	// state of the collaborative multi-socialbot model.
	MultiState = osn.MultiState
	// BotView is one bot's scoring view of a MultiState.
	BotView = osn.BotView
	// AttackerKnowledge is the read interface consumed by scoring
	// functions; *State and *BotView implement it.
	AttackerKnowledge = osn.View
	// MultiResult is the trace of a collaborative attack.
	MultiResult = core.MultiResult
	// MultiStep records one request of a collaborative attack.
	MultiStep = core.MultiStep
)

// NewMultiAttack starts a collaborative attack with the given number of
// bots against one realization.
func NewMultiAttack(re *Realization, bots int) (*MultiState, error) {
	return osn.NewMultiState(re, bots)
}

// RunMulti executes the collaborative multi-bot greedy: bots share all
// observations and a single budget of k requests dispatched round-robin.
func RunMulti(re *Realization, bots, k int, w Weights) (*MultiResult, error) {
	return core.RunMulti(re, bots, k, w)
}

// Defense analysis (the paper's motivation: reveal the users to protect).
type (
	// VulnerabilityAnalysis aggregates per-user compromise statistics
	// across repeated simulated attacks.
	VulnerabilityAnalysis = defense.Analysis
	// UserVulnerability is one user's fate across those attacks.
	UserVulnerability = defense.UserStats
	// AttackerFactory builds a fresh attack policy per analysis run.
	AttackerFactory = defense.PolicyFactory
)

// ABMAttacker returns the default attacker (balanced-weight ABM) for
// vulnerability analyses.
func ABMAttacker() AttackerFactory { return defense.ABMAttacker() }

// AnalyzeVulnerability measures per-user compromise/exposure rates under
// `runs` simulated attacks of budget k.
func AnalyzeVulnerability(ctx context.Context, inst *Instance, attacker AttackerFactory, runs, k int, seed Seed) (*VulnerabilityAnalysis, error) {
	return defense.Analyze(ctx, inst, attacker, runs, k, seed)
}

// Harden converts the given users to cautious acceptance with
// θ = max(1, round(fraction·deg)) and returns the hardened instance.
func Harden(inst *Instance, users []int, fraction float64) (*Instance, error) {
	return defense.Harden(inst, users, fraction)
}
