// Fixture for the lockedio analyzer: blocking I/O reachable while a
// mutex is held, directly, through an in-package helper (call-graph
// summary), and through the module's cross-package journal root.
package serv

import (
	"os"
	"sync"
	"time"

	"example.test/internal/sim"
)

type server struct {
	mu   sync.Mutex
	path string
	j    *sim.CellJournal
}

func (s *server) saveUnderLock(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(s.path, data, 0o600) // want `blocking call os\.WriteFile while s\.mu\.Lock\(\) is held`
}

func (s *server) saveOutsideLock(data []byte) error {
	s.mu.Lock()
	p := s.path
	s.mu.Unlock()
	return os.WriteFile(p, data, 0o600)
}

// persist is the in-package hop the summary propagates through.
func (s *server) persist(data []byte) error {
	return os.WriteFile(s.path, data, 0o600)
}

func (s *server) saveViaHelper(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persist(data) // want `blocking call \(\*server\)\.persist → os\.WriteFile while s\.mu\.Lock\(\) is held`
}

func sleepUnderRLock(mu *sync.RWMutex) {
	mu.RLock()
	time.Sleep(time.Millisecond) // want `blocking call time\.Sleep while mu\.RLock\(\) is held`
	mu.RUnlock()
}

func (s *server) journalUnderLock(line string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.j.Commit(line) // want `blocking call \(\*sim\.CellJournal\)\.Commit while s\.mu\.Lock\(\) is held`
}

func (s *server) asyncIsFine(data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.persist(data) // runs outside the critical section
}

func (s *server) allowedDurability(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//accu:allow lockedio -- fsync-before-ack: durability must precede the reply
	return os.WriteFile(s.path, data, 0o600)
}
