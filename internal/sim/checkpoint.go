package sim

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sync"
)

// CellKey identifies one (network, run) cell of the Monte-Carlo grid.
//
//accu:wire
type CellKey struct {
	Network int `json:"network"`
	Run     int `json:"run"`
}

// Checkpointer persists completed cells so an interrupted grid can
// resume without recomputation. The engine consults Done once per cell
// before scheduling and calls Commit after a cell's records have been
// delivered; Commit is invoked concurrently from worker goroutines, so
// implementations must serialize internally. A Commit error aborts the
// run even under ContinueOnError — records that cannot be made durable
// would silently re-run on resume.
type Checkpointer interface {
	// Done reports whether the cell is already recorded.
	Done(key CellKey) bool
	// Commit records one completed cell with its records. Each
	// implementation defines its own durability point: CellJournal
	// reaches stable storage at Sync/Close (or per commit under
	// SyncEvery); a distributed checkpointer may not ack until a remote
	// store has fsynced.
	Commit(key CellKey, recs []Record) error
}

// CellLine is one cell-journal line: a completed cell with its records.
// It is the wire format shared by CellJournal's on-disk JSONL and the
// internal/dist cell-upload stream, so a journal file and a worker
// upload body are interchangeable line for line.
//
//accu:wire
type CellLine struct {
	CellKey
	Records []Record `json:"records"`
}

// CellJournal is the append-only JSONL Checkpointer: one line per
// completed cell, written in full before the cell is considered
// committed. A torn trailing line (crash mid-append) is truncated away
// on resume, so the journal is always re-appendable. Because every cell
// reseeds from its (network, run) coordinates alone, the union of a
// journal's replayed records and a resumed Run's records is
// bit-identical to an uninterrupted run at any worker count.
//
// Durability: Commit appends with a single write but does not fsync by
// default — a cell is only guaranteed to survive power loss after Sync
// or Close. Callers that ack commits to another party (the internal/dist
// coordinator acking a worker's upload, for example) must either enable
// SyncEvery or call Sync before acking, or an acked cell can vanish.
type CellJournal struct {
	mu    sync.Mutex
	f     *os.File
	done  map[CellKey]bool
	lines []CellLine // cells loaded at resume, in journal order (for Replay)
	// syncEvery > 0 fsyncs after every syncEvery-th newly committed
	// cell; sinceSync counts commits since the last fsync.
	syncEvery int
	sinceSync int
	// dropped counts valid cells discarded by load's truncate-forward
	// corruption recovery (everything after the first corrupt line).
	dropped int
}

var _ Checkpointer = (*CellJournal)(nil)

// OpenCellJournal opens the journal at path. With resume=false the file
// must not already exist (guarding against accidentally mixing two
// experiments into one journal); with resume=true an existing journal is
// loaded — its completed cells answer Done and feed Replay — and a
// missing one is simply created.
func OpenCellJournal(path string, resume bool) (*CellJournal, error) {
	flags := os.O_RDWR | os.O_CREATE
	if !resume {
		flags |= os.O_EXCL
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		if !resume && errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("sim: checkpoint %s already exists; resume it or remove it: %w", path, err)
		}
		return nil, fmt.Errorf("sim: open checkpoint: %w", err)
	}
	j := &CellJournal{f: f, done: make(map[CellKey]bool)}
	if resume {
		if err := j.load(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sim: load checkpoint %s: %w", path, err)
		}
	}
	return j, nil
}

// load parses the journal's existing lines and positions the file for
// appending. Parsing stops at the first torn or corrupt line, which is
// truncated away together with everything after it — those cells simply
// re-run. Valid cells discarded behind a corrupt line are counted in
// Dropped so callers can surface the loss instead of silently paying the
// recomputation.
func (j *CellJournal) load() error {
	data, err := io.ReadAll(j.f)
	if err != nil {
		return err
	}
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn trailing line
		}
		line := data[off : off+nl]
		if len(bytes.TrimSpace(line)) > 0 {
			var cl CellLine
			if err := json.Unmarshal(line, &cl); err != nil {
				// Corrupt line: truncate it and everything after, but
				// count the valid cells the truncation throws away.
				j.dropped = countValidCells(data[off+nl+1:], j.done)
				break
			}
			if !j.done[cl.CellKey] {
				j.done[cl.CellKey] = true
				j.lines = append(j.lines, cl)
			}
		}
		off += nl + 1
	}
	if off < len(data) {
		if err := j.f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("truncate torn tail: %w", err)
		}
	}
	_, err = j.f.Seek(int64(off), io.SeekStart)
	return err
}

// countValidCells counts the parseable, non-duplicate cells in the
// journal region behind the first corrupt line — the valid work the
// truncate-forward recovery is about to discard. A torn trailing line is
// not counted: it is the normal crash artifact, not lost work.
func countValidCells(data []byte, done map[CellKey]bool) int {
	dropped := 0
	seen := make(map[CellKey]bool)
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break
		}
		line := data[off : off+nl]
		if len(bytes.TrimSpace(line)) > 0 {
			var cl CellLine
			if err := json.Unmarshal(line, &cl); err == nil && !done[cl.CellKey] && !seen[cl.CellKey] {
				seen[cl.CellKey] = true
				dropped++
			}
		}
		off += nl + 1
	}
	return dropped
}

// Dropped returns the number of valid cells load discarded behind the
// first corrupt line (0 on a clean journal). Those cells re-run on
// resume; callers should surface the count so a corrupted journal never
// silently costs recomputation.
func (j *CellJournal) Dropped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// SyncEvery makes Commit fsync after every n-th newly committed cell
// (n == 1 syncs every commit; n <= 0 restores the default of syncing
// only at Sync/Close). Use it on any journal whose commits are acked to
// another party — the internal/dist coordinator acks worker uploads only
// after the cells are on stable storage, so "first durable commit wins"
// is literal.
func (j *CellJournal) SyncEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.syncEvery = n
}

// Done implements Checkpointer.
func (j *CellJournal) Done(key CellKey) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done[key]
}

// Commit implements Checkpointer: the cell is appended as one JSONL line
// in a single write, fsynced per SyncEvery. Committed records are not
// retained in memory — only resumed cells are, for Replay.
func (j *CellJournal) Commit(key CellKey, recs []Record) error {
	line, err := json.Marshal(CellLine{CellKey: key, Records: recs})
	if err != nil {
		return fmt.Errorf("marshal cell: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.done[key] {
		return nil
	}
	if _, err := j.f.Write(line); err != nil { //accu:allow lockedio -- journal append under j.mu is the durability contract; entries must serialize
		return fmt.Errorf("append cell: %w", err)
	}
	j.done[key] = true
	j.sinceSync++
	if j.syncEvery > 0 && j.sinceSync >= j.syncEvery {
		if err := j.f.Sync(); err != nil { //accu:allow lockedio -- periodic fsync must cover every entry appended before it
			return fmt.Errorf("sync cell: %w", err)
		}
		j.sinceSync = 0
	}
	return nil
}

// Cells returns the number of completed cells the journal holds (loaded
// plus committed this session).
func (j *CellJournal) Cells() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Replay feeds every record loaded at resume to collect, in journal
// (append) order. Call it before Run when resuming so aggregation sees
// the already-completed cells; Run itself never re-delivers checkpointed
// records. Cells committed after opening are not replayed — the caller's
// collect already saw them live.
func (j *CellJournal) Replay(collect func(Record)) {
	j.mu.Lock()
	lines := j.lines
	j.mu.Unlock()
	for _, cl := range lines {
		for _, rec := range cl.Records {
			collect(rec)
		}
	}
}

// Sync flushes the journal to stable storage (fsync).
func (j *CellJournal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.sinceSync = 0
	return j.f.Sync() //accu:allow lockedio -- explicit fsync barrier; concurrent appends must not slip past it
}

// Close syncs and closes the journal file.
func (j *CellJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil { //accu:allow lockedio -- close-time fsync+close must exclude concurrent appends
		j.f.Close()
		return err
	}
	return j.f.Close() //accu:allow lockedio -- close-time fsync+close must exclude concurrent appends
}
