package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, analysis.CtxFlow(), analysistest.Fixture{
		Dir:        "testdata/src/ctxflow_serv",
		ImportPath: "example.test/internal/serv",
	})
}
