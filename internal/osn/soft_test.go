package osn

import (
	"errors"
	"math"
	"testing"

	"github.com/accu-sim/accu/internal/rng"
)

// softFixture: star of reckless users 0,1 around cautious 2 with θ=1 and
// the generalized acceptance (qLow, qHigh).
func softFixture(t *testing.T, qLow, qHigh float64) *Instance {
	t.Helper()
	g := buildGraph(t, 3, [][2]int{{0, 2}, {1, 2}})
	p := uniformParams(3)
	p.Kind[2] = Cautious
	p.AcceptProb[2] = 0
	p.Theta[2] = 1
	p.BFriend[2] = 50
	p.QLow = []float64{0, 0, qLow}
	p.QHigh = []float64{1, 1, qHigh}
	inst, err := NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSoftModelValidation(t *testing.T) {
	g := buildGraph(t, 2, [][2]int{{0, 1}})
	p := uniformParams(2)
	p.Kind[1] = Cautious
	p.AcceptProb[1] = 0
	p.Theta[1] = 1
	p.BFriend[1] = 50

	p.QLow = []float64{0, 0.8}
	p.QHigh = []float64{1, 0.5} // qLow > qHigh
	if _, err := NewInstance(g, p); !errors.Is(err, ErrBadProbability) {
		t.Errorf("qLow > qHigh: %v", err)
	}

	p.QLow = []float64{0, -0.1}
	p.QHigh = []float64{1, 1}
	if _, err := NewInstance(g, p); !errors.Is(err, ErrBadProbability) {
		t.Errorf("negative qLow: %v", err)
	}

	p.QLow = []float64{0}
	p.QHigh = []float64{1}
	if _, err := NewInstance(g, p); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("short qLow: %v", err)
	}

	p.QLow = []float64{0, 0}
	p.QHigh = nil
	if _, err := NewInstance(g, p); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("qLow without qHigh: %v", err)
	}
}

func TestDeterministicFlag(t *testing.T) {
	det := softFixture(t, 0, 1)
	if !det.Deterministic() {
		t.Error("qLow=0 qHigh=1 must report deterministic")
	}
	soft := softFixture(t, 0.2, 0.9)
	if soft.Deterministic() {
		t.Error("soft model must not report deterministic")
	}
}

func TestSoftAcceptanceBelowThreshold(t *testing.T) {
	inst := softFixture(t, 1, 1) // always accepts, even below threshold
	re := inst.FixedRealizationCautious(nil, nil,
		func(int) bool { return true }, func(int) bool { return true })
	st := NewState(re)
	out, err := st.Request(2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Error("qLow=1 cautious user rejected below threshold")
	}
}

func TestSoftAcceptanceCoinSelection(t *testing.T) {
	// low coin false, high coin true: rejected below threshold, accepted
	// at threshold.
	inst := softFixture(t, 0.5, 0.9)
	re := inst.FixedRealizationCautious(nil, nil,
		func(int) bool { return false }, func(int) bool { return true })

	// Below threshold: low coin (false) → reject.
	st := NewState(re)
	out, err := st.Request(2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("low coin false but accepted")
	}

	// At threshold (befriend 0 first): high coin (true) → accept.
	st2 := NewState(re)
	if _, err := st2.Request(0); err != nil {
		t.Fatal(err)
	}
	out, err = st2.Request(2)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Error("high coin true but rejected")
	}
}

func TestSoftAcceptanceFrequencies(t *testing.T) {
	inst := softFixture(t, 0.25, 0.75)
	root := rng.NewSeed(100, 101)
	var lowAccepts, highAccepts int
	const draws = 4000
	for i := 0; i < draws; i++ {
		re := inst.SampleRealization(root.SplitN("draw", i))
		// Below threshold.
		st := NewState(re)
		if out, err := st.Request(2); err != nil {
			t.Fatal(err)
		} else if out.Accepted {
			lowAccepts++
		}
		// At threshold.
		st2 := NewState(re)
		if _, err := st2.Request(0); err != nil {
			t.Fatal(err)
		}
		if out, err := st2.Request(2); err != nil {
			t.Fatal(err)
		} else if out.Accepted {
			highAccepts++
		}
	}
	if f := float64(lowAccepts) / draws; math.Abs(f-0.25) > 0.03 {
		t.Errorf("below-threshold acceptance %.3f, want ≈ 0.25", f)
	}
	if f := float64(highAccepts) / draws; math.Abs(f-0.75) > 0.03 {
		t.Errorf("at-threshold acceptance %.3f, want ≈ 0.75", f)
	}
}

func TestAcceptChance(t *testing.T) {
	inst := softFixture(t, 0.2, 0.9)
	st := NewState(inst.FixedRealization(nil, nil))
	if got := st.AcceptChance(2); got != 0.2 {
		t.Errorf("below-threshold chance = %v", got)
	}
	if got := st.AcceptChance(0); got != 1 {
		t.Errorf("reckless chance = %v", got)
	}
	if _, err := st.Request(0); err != nil {
		t.Fatal(err)
	}
	if got := st.AcceptChance(2); got != 0.9 {
		t.Errorf("at-threshold chance = %v", got)
	}
}

func TestSetupSoftModel(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 5
	s.QLowCautious = 0.1
	s.QHighCautious = 0.8
	inst, err := s.Build(g, rng.NewSeed(55, 56))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range inst.Cautious() {
		if inst.QLow(v) != 0.1 || inst.QHigh(v) != 0.8 {
			t.Errorf("cautious %d: qLow=%v qHigh=%v", v, inst.QLow(v), inst.QHigh(v))
		}
	}
	if inst.Deterministic() {
		t.Error("soft setup reported deterministic")
	}
	// Invalid combos rejected.
	s.QLowCautious = 0.9
	s.QHighCautious = 0.5
	if _, err := s.Build(g, rng.NewSeed(55, 56)); err == nil {
		t.Error("qLow > qHigh in setup: want error")
	}
}

func TestSetupDefaultStaysDeterministic(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 5
	inst, err := s.Build(g, rng.NewSeed(57, 58))
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Deterministic() {
		t.Error("default setup must use the deterministic model")
	}
}
