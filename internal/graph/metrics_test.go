package graph

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestComputeDegreeStats(t *testing.T) {
	// Star graph: center degree 4, leaves degree 1.
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		mustAdd(t, b, 0, i)
	}
	g := b.Freeze()
	st := g.ComputeDegreeStats(2, 10)
	if st.Min != 1 || st.Max != 4 {
		t.Errorf("min/max = %d/%d, want 1/4", st.Min, st.Max)
	}
	if math.Abs(st.Mean-8.0/5.0) > 1e-12 {
		t.Errorf("mean = %v, want 1.6", st.Mean)
	}
	if st.InBand != 1 { // only the center is within [2,10]
		t.Errorf("InBand = %d, want 1", st.InBand)
	}
}

func TestComputeDegreeStatsEmpty(t *testing.T) {
	g := NewBuilder(0).Freeze()
	st := g.ComputeDegreeStats(1, 10)
	if st.Min != 0 || st.Max != 0 || st.Mean != 0 || st.InBand != 0 {
		t.Errorf("empty graph stats: %+v", st)
	}
}

func TestPercentileSorted(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1},
		{0.5, 3},
		{1, 5},
		{0.25, 2},
	}
	for _, tc := range cases {
		if got := percentileSorted(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentileSorted(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %v", got)
	}
}

func TestLocalClustering(t *testing.T) {
	// Triangle: clustering 1 everywhere.
	b := NewBuilder(3)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 0, 2)
	tri := b.Freeze()
	for u := 0; u < 3; u++ {
		if c := tri.LocalClustering(u); c != 1 {
			t.Errorf("triangle clustering(%d) = %v", u, c)
		}
	}
	// Path: middle node has two unconnected neighbors.
	g := path(t, 3)
	if c := g.LocalClustering(1); c != 0 {
		t.Errorf("path clustering(1) = %v", c)
	}
	if c := g.LocalClustering(0); c != 0 {
		t.Errorf("degree-1 clustering = %v", c)
	}
}

func TestAverageClustering(t *testing.T) {
	b := NewBuilder(4)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 0, 2)
	// node 3 isolated
	g := b.Freeze()
	got := g.AverageClustering(0)
	want := 3.0 / 4.0 // three nodes at 1, one at 0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("avg clustering = %v, want %v", got, want)
	}
	// Sampled version should still be within [0,1].
	if c := g.AverageClustering(2); c < 0 || c > 1 {
		t.Errorf("sampled clustering out of range: %v", c)
	}
	if c := NewBuilder(0).Freeze().AverageClustering(0); c != 0 {
		t.Errorf("empty graph clustering = %v", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		mustAdd(t, b, 0, i)
	}
	g := b.Freeze()
	h := g.DegreeHistogram()
	if len(h) != 5 {
		t.Fatalf("histogram len = %d", len(h))
	}
	if h[1] != 4 || h[4] != 1 || h[0] != 0 {
		t.Errorf("histogram = %v", h)
	}
}

func TestNodesInDegreeBand(t *testing.T) {
	b := NewBuilder(5)
	for i := 1; i < 5; i++ {
		mustAdd(t, b, 0, i)
	}
	g := b.Freeze()
	band := g.NodesInDegreeBand(1, 1)
	if len(band) != 4 {
		t.Fatalf("band = %v", band)
	}
	band = g.NodesInDegreeBand(4, 10)
	if len(band) != 1 || band[0] != 0 {
		t.Fatalf("band = %v", band)
	}
	if got := g.NodesInDegreeBand(10, 20); got != nil {
		t.Errorf("empty band = %v", got)
	}
}

func TestDegreeAssortativityStar(t *testing.T) {
	// Star: perfect disassortativity (every edge joins degree n-1 to 1).
	b := NewBuilder(6)
	for i := 1; i < 6; i++ {
		mustAdd(t, b, 0, i)
	}
	g := b.Freeze()
	if r := g.DegreeAssortativity(); math.Abs(r-(-1)) > 1e-9 {
		t.Errorf("star assortativity = %v, want -1", r)
	}
}

func TestDegreeAssortativityRegular(t *testing.T) {
	// Cycle: all degrees equal — zero variance, defined as 0.
	b := NewBuilder(5)
	for i := 0; i < 5; i++ {
		mustAdd(t, b, i, (i+1)%5)
	}
	g := b.Freeze()
	if r := g.DegreeAssortativity(); r != 0 {
		t.Errorf("cycle assortativity = %v, want 0", r)
	}
}

func TestDegreeAssortativityEdgeCases(t *testing.T) {
	if r := NewBuilder(3).Freeze().DegreeAssortativity(); r != 0 {
		t.Errorf("edgeless assortativity = %v", r)
	}
}

func TestDegreeAssortativityRange(t *testing.T) {
	b := NewBuilder(40)
	r := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 150; i++ {
		_, _ = b.AddEdge(r.IntN(40), r.IntN(40))
	}
	g := b.Freeze()
	if a := g.DegreeAssortativity(); a < -1-1e-9 || a > 1+1e-9 {
		t.Errorf("assortativity %v outside [-1, 1]", a)
	}
}
