// Fixture for the respwrite analyzer: a response header committed twice
// on one CFG path, traced through writeJSON-style envelope helpers.
package serv

import (
	"encoding/json"
	"net/http"
)

// writeJSON is the envelope helper the parameter summary marks as
// header-writing.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// notFound commits through two helper hops.
func notFound(w http.ResponseWriter) { writeJSON(w, http.StatusNotFound, "missing") }

func fallthroughBug(w http.ResponseWriter, ok bool) {
	if !ok {
		writeJSON(w, http.StatusBadRequest, "bad") // missing return
	}
	writeJSON(w, http.StatusOK, "ok") // want `response header already committed on this path`
}

func returnsAfterEnvelope(w http.ResponseWriter, ok bool) {
	if !ok {
		writeJSON(w, http.StatusBadRequest, "bad")
		return
	}
	writeJSON(w, http.StatusOK, "ok")
}

func doubleWriteHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusAccepted)
	w.WriteHeader(http.StatusOK) // want `response header already committed on this path`
}

func sseStream(w http.ResponseWriter, frames [][]byte) {
	w.WriteHeader(http.StatusOK)
	for _, f := range frames {
		w.Write(f) // implicit body writes after the commit are the point
	}
}

func httpErrorThenFallthrough(w http.ResponseWriter, err error) {
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
	w.WriteHeader(http.StatusNoContent) // want `response header already committed on this path`
}

func helperChain(w http.ResponseWriter, ok bool) {
	if !ok {
		notFound(w)
	}
	writeJSON(w, http.StatusOK, "ok") // want `response header already committed on this path`
}

func allowedDouble(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusOK) //accu:allow respwrite -- exercising net/http's superfluous-WriteHeader log in a test
}
