// Package analysistest runs accuvet analyzers over fixture packages in
// testdata and checks their findings against // want "regexp"
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest
// on top of this repository's stdlib-only framework.
//
// A fixture is one directory of Go files, type-checked under a caller
// chosen import path (so scope-sensitive analyzers see the package they
// expect) against stub dependency packages mapped to their production
// import paths. Expectations are trailing comments:
//
//	seen := time.Now() // want `time\.Now reads the clock`
//
// Every diagnostic must be matched by an expectation on its line and
// every expectation must fire, otherwise the test fails.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
)

// Fixture describes one analyzer run over a testdata package.
type Fixture struct {
	// Dir is the fixture source directory, relative to the test's
	// working directory (e.g. "testdata/src/detrand_core").
	Dir string

	// ImportPath is the path the fixture is type-checked as; pick one
	// that lands in the analyzer's scope (e.g. ".../internal/core").
	ImportPath string

	// Deps maps import paths to stub source directories, type-checked
	// on demand when the fixture (or another stub) imports them.
	Deps map[string]string
}

// Run analyzes the fixture with the given analyzer and reports any
// mismatch between diagnostics and // want expectations through t.
func Run(t *testing.T, a *analysis.Analyzer, fx Fixture) {
	t.Helper()
	RunAll(t, []*analysis.Analyzer{a}, fx)
}

// RunAll analyzes the fixture with several analyzers against one shared
// want set — for fixtures whose expectations span analyzers, such as the
// multi-name //accu:allow directive tests.
func RunAll(t *testing.T, analyzers []*analysis.Analyzer, fx Fixture) {
	t.Helper()
	fset, files, diags := diagnostics(t, analyzers, fx)
	wants, err := collectWants(fset, files)
	if err != nil {
		t.Fatal(err)
	}
	checkDiagnostics(t, fset, diags, wants)
}

// Diagnostics analyzes the fixture and returns the raw findings without
// comparing them to want expectations — for scope tests that assert a
// fixture produces nothing under an out-of-scope import path.
func Diagnostics(t *testing.T, a *analysis.Analyzer, fx Fixture) (*token.FileSet, []*ast.File, []analysis.Diagnostic) {
	t.Helper()
	return diagnostics(t, []*analysis.Analyzer{a}, fx)
}

func diagnostics(t *testing.T, analyzers []*analysis.Analyzer, fx Fixture) (*token.FileSet, []*ast.File, []analysis.Diagnostic) {
	t.Helper()

	fset := token.NewFileSet()
	files, err := parseDir(fset, fx.Dir)
	if err != nil {
		t.Fatal(err)
	}

	imp, err := newFixtureImporter(fset, fx.Deps, append([]*ast.File(nil), files...))
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := analysis.TypeCheck(fset, imp, fx.ImportPath, files)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	return fset, files, diags
}

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE matches the expectation list after "want": a sequence of
// double-quoted or backquoted regexp literals.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants extracts // want expectations from the fixture comments.
func collectWants(fset *token.FileSet, files []*ast.File) ([]*want, error) {
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lits := wantRE.FindAllString(text, -1)
				if len(lits) == 0 {
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, lit := range lits {
					pattern := lit
					if strings.HasPrefix(lit, "\"") {
						var err error
						pattern, err = strconv.Unquote(lit)
						if err != nil {
							return nil, fmt.Errorf("%s: bad want literal %s: %v", pos, lit, err)
						}
					} else {
						pattern = strings.Trim(lit, "`")
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants, nil
}

// checkDiagnostics matches findings against expectations one-to-one by
// line.
func checkDiagnostics(t *testing.T, fset *token.FileSet, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// parseDir parses every .go file in dir, in name order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysistest: no Go files in %s", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// fixtureImporter resolves stub packages from testdata directories and
// everything else (the standard library) from compiler export data.
type fixtureImporter struct {
	fset    *token.FileSet
	deps    map[string]string
	std     types.Importer
	checked map[string]*types.Package
}

// newFixtureImporter builds the importer, resolving export data for
// every standard-library import reachable from the given files and the
// stub directories in one `go list` invocation.
func newFixtureImporter(fset *token.FileSet, deps map[string]string, roots []*ast.File) (*fixtureImporter, error) {
	im := &fixtureImporter{
		fset:    fset,
		deps:    deps,
		checked: make(map[string]*types.Package),
	}

	// Union of imports across fixture and stubs, minus the stubs
	// themselves, is the standard-library demand set.
	stdSet := make(map[string]bool)
	addImports := func(files []*ast.File) {
		for _, f := range files {
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, isStub := deps[path]; !isStub && path != "unsafe" {
					stdSet[path] = true
				}
			}
		}
	}
	addImports(roots)
	for _, dir := range deps {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		addImports(files)
	}

	paths := make([]string, 0, len(stdSet))
	for p := range stdSet {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exports := map[string]string{}
	if len(paths) > 0 {
		var err error
		exports, err = analysis.ExportData("", paths...)
		if err != nil {
			return nil, err
		}
	}
	im.std = analysis.ExportImporter(fset, exports)
	return im, nil
}

// Import implements types.Importer; stub packages type-check lazily and
// recursively through the same importer.
func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := im.checked[path]; ok {
		return pkg, nil
	}
	dir, ok := im.deps[path]
	if !ok {
		return im.std.Import(path)
	}
	files, err := parseDir(im.fset, dir)
	if err != nil {
		return nil, err
	}
	pkg, err := analysis.TypeCheck(im.fset, im, path, files)
	if err != nil {
		return nil, err
	}
	im.checked[path] = pkg.Types
	return pkg.Types, nil
}
