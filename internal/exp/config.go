// Package exp defines one reproducible experiment per table and figure of
// the paper's evaluation (§IV): Table I dataset statistics, Fig. 2 benefit
// curves, Fig. 3 marginal-gain breakdown, Fig. 4 weight sweep, Fig. 5
// request-timing fractions, Fig. 6/7 sensitivity heat maps, and a
// Theorem 1 verification on enumerable instances. Each experiment renders
// the same rows/series the paper reports.
package exp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
	"github.com/accu-sim/accu/internal/sim"
)

// Config scales the experiment protocol. The paper's full protocol is
// Scale=1, Networks=100, Runs=30, K=500, NumCautious=100; the quick
// default shrinks everything proportionally so the suite runs on a
// laptop while preserving the qualitative shapes.
type Config struct {
	// Scale shrinks the preset networks (node count factor in (0, 1]).
	Scale float64
	// Networks and Runs are the Monte-Carlo grid dimensions.
	Networks, Runs int
	// K is the friend-request budget. 0 derives K = max(60, 500·Scale).
	K int
	// NumCautious is the cautious users per network. 0 derives
	// max(10, 100·Scale).
	NumCautious int
	// Datasets are the preset names to run on (nil = paper's four).
	Datasets []string
	// Weights are the ABM potential weights (zero value = paper's 0.5/0.5).
	Weights core.Weights
	// Seed roots all randomness.
	Seed rng.Seed
	// Workers bounds the simulation worker pool (0 = GOMAXPROCS). The
	// pool is sized against (network, run) cells, so values above
	// Networks still help as long as Networks×Runs cells exist; anything
	// beyond the cell count is clamped.
	Workers int
	// Metrics, when non-nil, collects engine/environment/policy counters
	// across every Monte-Carlo run of the experiment; snapshot it after
	// RunExperiment (reports embed the snapshot automatically).
	Metrics *obs.Registry
	// OnProgress, when non-nil, is forwarded to every Monte-Carlo run so
	// long experiments can report liveness. Note an experiment may run
	// several protocols (one per dataset or grid cell); Done/Total reset
	// for each.
	OnProgress func(sim.Progress)
	// CheckpointDir, when non-empty, journals every completed Monte-Carlo
	// cell to one JSONL file per protocol under this directory, so an
	// interrupted experiment can resume without recomputing finished
	// cells.
	CheckpointDir string
	// Resume reopens existing journals in CheckpointDir, replays their
	// cells and computes only what is missing. Without Resume a leftover
	// journal is an error (refusing to silently mix two runs).
	Resume bool
	// KeepGoing makes each Monte-Carlo run continue past failed cells:
	// the surviving cells are collected normally and the trailing
	// *sim.FailureSummary is reported as a warning instead of aborting
	// the experiment.
	KeepGoing bool
}

// QuickConfig returns a configuration sized for interactive use
// (seconds-to-minutes per experiment on one core).
func QuickConfig() Config {
	return Config{
		Scale:    0.03,
		Networks: 2,
		Runs:     3,
		Seed:     rng.NewSeed(2019, 1243),
	}
}

// PaperConfig returns the full §IV protocol (hours of compute).
func PaperConfig() Config {
	return Config{
		Scale:    1,
		Networks: 100,
		Runs:     30,
		K:        500,
		Seed:     rng.NewSeed(2019, 1243),
	}
}

// normalize fills derived defaults and validates.
func (c Config) normalize() (Config, error) {
	if c.Scale <= 0 || c.Scale > 1 {
		return c, fmt.Errorf("exp: scale %v not in (0, 1]", c.Scale)
	}
	if c.Networks <= 0 || c.Runs <= 0 {
		return c, fmt.Errorf("exp: networks=%d runs=%d must be positive", c.Networks, c.Runs)
	}
	if c.K == 0 {
		c.K = int(math.Max(60, 500*c.Scale))
	}
	if c.K < 0 {
		return c, fmt.Errorf("exp: K = %d", c.K)
	}
	if c.NumCautious == 0 {
		c.NumCautious = int(math.Max(10, 100*c.Scale))
	}
	if c.NumCautious < 0 {
		return c, fmt.Errorf("exp: NumCautious = %d", c.NumCautious)
	}
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"facebook", "slashdot", "twitter", "dblp"}
	}
	if c.Weights == (core.Weights{}) {
		c.Weights = core.DefaultWeights()
	}
	if err := c.Weights.Validate(); err != nil {
		return c, err
	}
	return c, nil
}

// setup builds the §IV-A protocol setup for this config.
func (c Config) setup() osn.Setup {
	s := osn.DefaultSetup()
	s.NumCautious = c.NumCautious
	return s
}

// protocol assembles the Monte-Carlo protocol shared by every
// experiment, threading the config's metrics registry and progress
// callback through to the engine. Callers override BatchSize or other
// fields afterwards as needed.
func (c Config) protocol(g gen.Generator, s osn.Setup, seed rng.Seed) sim.Protocol {
	return sim.Protocol{
		Gen:        g,
		Setup:      s,
		Networks:   c.Networks,
		Runs:       c.Runs,
		K:          c.K,
		Seed:       seed,
		Workers:    c.Workers,
		Metrics:    c.Metrics,
		OnProgress: c.OnProgress,
	}
}

// run executes one Monte-Carlo protocol with the config's fault-tolerance
// settings applied. name identifies the protocol within the experiment
// (it keys the checkpoint journal, so it must be stable across resumes
// and unique within CheckpointDir). When CheckpointDir is set, completed
// cells from a resumed journal are replayed into collect before the
// engine starts and freshly completed cells are committed as they
// finish. When KeepGoing is set, a run that degrades gracefully (all
// failures within the engine's budget) is reported as a warning on
// stderr instead of an error.
func (c Config) run(ctx context.Context, name string, protocol sim.Protocol, factories []sim.PolicyFactory, collect func(sim.Record)) error {
	var journal *sim.CellJournal
	if c.CheckpointDir != "" {
		path := filepath.Join(c.CheckpointDir, sanitizeName(name)+".jsonl")
		j, err := sim.OpenCellJournal(path, c.Resume)
		if err != nil {
			return fmt.Errorf("exp: %s: %w", name, err)
		}
		journal = j
		journal.Replay(collect)
		protocol.Checkpoint = journal
	}
	if c.KeepGoing {
		protocol.ContinueOnError = true
	}
	err := sim.Run(ctx, protocol, factories, collect)
	if journal != nil {
		if cerr := journal.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("exp: %s: close journal: %w", name, cerr)
		}
	}
	var fs *sim.FailureSummary
	if c.KeepGoing && errors.As(err, &fs) {
		fmt.Fprintf(os.Stderr, "exp: warning: %s: %v\n", name, fs)
		return nil
	}
	return err
}

// sanitizeName maps a protocol name to a filesystem-safe journal stem:
// anything outside [A-Za-z0-9._-] becomes '-'.
func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.' || r == '_' || r == '-':
			return r
		default:
			return '-'
		}
	}, name)
}

// abmOptions returns the policy options every experiment applies to its
// ABM instances (currently just metrics wiring; no-ops when disabled).
func (c Config) abmOptions() []core.Option {
	if c.Metrics == nil {
		return nil
	}
	return []core.Option{core.WithMetrics(c.Metrics)}
}

// generator resolves a preset at the configured scale.
func (c Config) generator(dataset string) (gen.Generator, gen.Preset, error) {
	p, err := gen.PresetByName(dataset)
	if err != nil {
		return nil, gen.Preset{}, err
	}
	g, err := p.Generator(c.Scale)
	if err != nil {
		return nil, gen.Preset{}, err
	}
	return g, p, nil
}
