package accu_test

// Facade-level coverage for the observability layer: experiment reports
// embed a metrics snapshot when a registry is attached, progress
// callbacks flow through ExperimentConfig, and the snapshot marshals
// with the report JSON.

import (
	"context"
	"encoding/json"
	"testing"

	accu "github.com/accu-sim/accu"
)

func TestRunExperimentMetricsAndProgress(t *testing.T) {
	cfg := accu.ExperimentConfig{
		Scale:       0.02,
		Networks:    1,
		Runs:        1,
		K:           20,
		NumCautious: 10,
		Datasets:    []string{"slashdot"},
		Seed:        accu.NewSeed(7, 8),
		Metrics:     accu.NewMetrics(),
	}
	var events int
	var lastDone, lastTotal int
	cfg.OnProgress = func(p accu.Progress) {
		events++
		lastDone, lastTotal = p.Done, p.Total
	}
	rep, err := accu.RunExperiment(context.Background(), "fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Metrics()
	if snap.Empty() {
		t.Fatal("report metrics snapshot is empty with a registry attached")
	}
	var cells int64
	for _, c := range snap.Counters {
		if c.Name == "sim.cells" {
			cells = c.Value
		}
	}
	// fig2 on one dataset runs Networks × Runs × 4 policies cells.
	if want := int64(cfg.Networks * cfg.Runs * 4); cells != want {
		t.Errorf("sim.cells = %d, want %d", cells, want)
	}
	if events != 4 || lastDone != 4 || lastTotal != 4 {
		t.Errorf("progress: events=%d lastDone=%d lastTotal=%d, want 4/4/4", events, lastDone, lastTotal)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Metrics *accu.MetricsSnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Metrics == nil || len(decoded.Metrics.Counters) == 0 {
		t.Error("metrics snapshot not embedded in report JSON")
	}
}

func TestRunExperimentWithoutMetrics(t *testing.T) {
	cfg := accu.ExperimentConfig{
		Scale:       0.02,
		Networks:    1,
		Runs:        1,
		K:           10,
		NumCautious: 10,
		Datasets:    []string{"slashdot"},
		Seed:        accu.NewSeed(9, 10),
	}
	rep, err := accu.RunExperiment(context.Background(), "table1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics() != nil {
		t.Error("Metrics() should be nil when no registry was attached")
	}
}
