package core

import (
	"testing"

	"github.com/accu-sim/accu/internal/rng"
)

func TestRunBatchedSizeOneMatchesRun(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		inst := randomInstance(t, 700+seed*10)
		re := inst.SampleRealization(rng.NewSeed(seed, 5))
		seq, err := NewABM(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		bat, err := NewABM(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		const k = 40
		resSeq, err := Run(seq, re, k)
		if err != nil {
			t.Fatal(err)
		}
		resBat, err := RunBatched(bat, re, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(resSeq.Steps) != len(resBat.Steps) {
			t.Fatalf("seed %d: step counts %d vs %d", seed, len(resSeq.Steps), len(resBat.Steps))
		}
		for i := range resSeq.Steps {
			if resSeq.Steps[i] != resBat.Steps[i] {
				t.Fatalf("seed %d step %d: %+v vs %+v", seed, i, resSeq.Steps[i], resBat.Steps[i])
			}
		}
	}
}

func TestRunBatchedDistinctUsers(t *testing.T) {
	inst := randomInstance(t, 800)
	re := inst.SampleRealization(rng.NewSeed(8, 8))
	abm, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatched(abm, re, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 60 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	seen := map[int]bool{}
	for _, s := range res.Steps {
		if seen[s.User] {
			t.Fatalf("user %d requested twice", s.User)
		}
		seen[s.User] = true
	}
	// Trace stays cumulative.
	prev := 0.0
	for i, s := range res.Steps {
		if s.BenefitAfter+1e-9 < prev {
			t.Errorf("step %d: benefit decreased %v -> %v", i, prev, s.BenefitAfter)
		}
		prev = s.BenefitAfter
	}
	if res.Benefit != prev {
		t.Errorf("final %v vs last step %v", res.Benefit, prev)
	}
}

func TestRunBatchedAdaptivityGap(t *testing.T) {
	// Averaged over realizations, fully-adaptive (batch 1) should not be
	// worse than one-shot batching (batch = k): intermediate
	// observations can only help the greedy.
	inst := randomInstance(t, 900)
	const k, runs = 40, 10
	avg := func(batch int) float64 {
		var total float64
		for i := 0; i < runs; i++ {
			re := inst.SampleRealization(rng.NewSeed(uint64(i), 90))
			abm, err := NewABM(DefaultWeights())
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunBatched(abm, re, k, batch)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Benefit
		}
		return total / runs
	}
	adaptive, oneShot := avg(1), avg(k)
	if adaptive < oneShot*0.98 { // small tolerance for sampling noise
		t.Errorf("adaptive %v below one-shot %v", adaptive, oneShot)
	}
}

func TestRunBatchedBaselines(t *testing.T) {
	inst := randomInstance(t, 1000)
	re := inst.SampleRealization(rng.NewSeed(10, 10))
	for _, p := range []BatchSelector{NewMaxDegree(), NewPageRank(), NewRandom(rng.NewSeed(1, 1))} {
		res, err := RunBatched(p, re, 30, 7)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if len(res.Steps) != 30 {
			t.Errorf("%s: steps = %d", p.Name(), len(res.Steps))
		}
	}
}

func TestRunBatchedValidation(t *testing.T) {
	inst := potentialFixture(t)
	re := inst.FixedRealization(nil, nil)
	abm, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBatched(abm, re, 0, 5); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := RunBatched(abm, re, 5, 0); err == nil {
		t.Error("batch=0: want error")
	}
}

func TestRunBatchedExhaustsCandidates(t *testing.T) {
	inst := potentialFixture(t)
	re := inst.FixedRealization(nil, nil)
	abm, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatched(abm, re, 100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 { // only 4 users exist
		t.Errorf("steps = %d", len(res.Steps))
	}
}

// TestRunBatchedDeterministicAcrossRuns guards the dedup structure in
// ABM.SelectBatch: batch selection must be a pure function of the
// realization, so repeated runs from fresh policies yield byte-identical
// step sequences (a map-backed dedup could leak iteration order here).
func TestRunBatchedDeterministicAcrossRuns(t *testing.T) {
	inst := randomInstance(t, 900)
	re := inst.SampleRealization(rng.NewSeed(11, 4))
	var first []Step
	for trial := 0; trial < 5; trial++ {
		abm, err := NewABM(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunBatched(abm, re, 50, 7)
		if err != nil {
			t.Fatal(err)
		}
		if trial == 0 {
			first = res.Steps
			continue
		}
		if len(res.Steps) != len(first) {
			t.Fatalf("trial %d: %d steps, want %d", trial, len(res.Steps), len(first))
		}
		for i := range first {
			if res.Steps[i] != first[i] {
				t.Fatalf("trial %d step %d: %+v != %+v", trial, i, res.Steps[i], first[i])
			}
		}
	}
}
