package analysis

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func baselineFixture() (*token.FileSet, []Diagnostic) {
	fset := token.NewFileSet()
	fa := fset.AddFile("internal/serv/a.go", -1, 1000)
	fb := fset.AddFile("internal/dist/b.go", -1, 1000)
	return fset, []Diagnostic{
		// Two instances of the same finding class in one file...
		{Pos: fa.Pos(10), Analyzer: "lockedio", Message: "blocking call under lock"},
		{Pos: fa.Pos(500), Analyzer: "lockedio", Message: "blocking call under lock"},
		// ...a distinct class in another file...
		{Pos: fb.Pos(42), Analyzer: "httpbody", Message: "body never closed"},
		// ...and a suppressed finding, which baselines must ignore.
		{Pos: fb.Pos(700), Analyzer: "timerleak", Message: "time.Tick leaks", Suppressed: true},
	}
}

// TestBaselineSnapshotAndFilter: a fresh snapshot absorbs exactly the
// live findings it was taken from — same batch filters to only the
// suppressed leftover, which never consumes baseline budget.
func TestBaselineSnapshotAndFilter(t *testing.T) {
	fset, diags := baselineFixture()
	b := NewBaseline(fset, diags)
	if len(b.Findings) != 2 {
		t.Fatalf("baseline entries = %d, want 2 (one per finding class)", len(b.Findings))
	}
	for _, e := range b.Findings {
		if e.Analyzer == "lockedio" && e.Count != 2 {
			t.Errorf("lockedio count = %d, want 2", e.Count)
		}
		if e.Analyzer == "timerleak" {
			t.Error("suppressed finding leaked into the baseline")
		}
	}
	rest := b.Filter(fset, diags)
	if len(rest) != 1 || !rest[0].Suppressed {
		t.Fatalf("filter left %d diags, want only the suppressed one: %+v", len(rest), rest)
	}
}

// TestBaselineCountBudget: a third instance of a twice-baselined class
// surfaces as new; the budget is per (file, analyzer, message).
func TestBaselineCountBudget(t *testing.T) {
	fset, diags := baselineFixture()
	b := NewBaseline(fset, diags)
	fa := fset.File(diags[0].Pos)
	extra := Diagnostic{Pos: fa.Pos(900), Analyzer: "lockedio", Message: "blocking call under lock"}
	rest := b.Filter(fset, append(diags[:2:2], extra))
	if len(rest) != 1 {
		t.Fatalf("filter left %d diags, want 1 (the over-budget instance)", len(rest))
	}
	if pos := fset.Position(rest[0].Pos); pos.Offset != 900 {
		// Budget consumes in order, so the surviving instance is the last.
		t.Errorf("surviving instance at %v, want the third (offset 900)", pos)
	}
}

// TestBaselineRoundTrip: Write then Load preserves the snapshot; a
// missing file loads as the empty baseline; a wrong version is
// rejected.
func TestBaselineRoundTrip(t *testing.T) {
	fset, diags := baselineFixture()
	b := NewBaseline(fset, diags)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	writeFile(t, path, buf.Bytes())
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Findings) != len(b.Findings) {
		t.Fatalf("round-trip entries = %d, want %d", len(loaded.Findings), len(b.Findings))
	}
	for i := range b.Findings {
		if loaded.Findings[i] != b.Findings[i] {
			t.Errorf("entry %d changed in round-trip: %+v vs %+v", i, loaded.Findings[i], b.Findings[i])
		}
	}

	empty, err := LoadBaseline(filepath.Join(dir, "missing.json"))
	if err != nil {
		t.Fatalf("missing baseline must load as empty, got %v", err)
	}
	if len(empty.Findings) != 0 {
		t.Errorf("missing baseline loaded %d entries", len(empty.Findings))
	}
	if rest := empty.Filter(fset, diags); len(rest) != len(diags) {
		t.Errorf("empty baseline absorbed findings: %d left of %d", len(rest), len(diags))
	}

	writeFile(t, path, []byte(`{"version": 99, "findings": []}`))
	if _, err := LoadBaseline(path); err == nil {
		t.Error("unsupported baseline version must be rejected")
	}
}

// TestBaselineWriteEmpty: an empty snapshot serializes with an explicit
// empty findings array (the committed zero-state file), not null.
func TestBaselineWriteEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Baseline{Version: baselineVersion}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"findings": []`)) {
		t.Errorf("empty baseline = %s, want explicit empty findings array", buf.String())
	}
}
