// Command accuvet is the project's static-analysis suite: nineteen
// analyzers that turn the simulator's determinism and concurrency
// invariants into compile-time properties. Wave 1 (detrand, maporder,
// seedflow, metricname) guards the deterministic record path; wave 2
// (lockbalance, atomicmix, ctxcancel, scratchescape, errcmp) checks the
// parallel engine's concurrency discipline with a CFG/dataflow engine;
// wave 3 (httpbody, respwrite, lockedio, ctxflow, timerleak) audits the
// service layer interprocedurally over a package-local call graph; wave
// 4 (detflow, errdrop, fsyncack, wiretag, chanleak) adds value-taint
// provenance, durability error-flow, ack-before-fsync ordering, wire-
// schema locking, and send-leak detection. See DESIGN.md "Determinism
// invariants & static enforcement".
//
// It runs in two modes:
//
//	accuvet ./...                      # standalone, whole-repo analysis
//	go vet -vettool=$(which accuvet) ./...   # as a vet tool, per unit
//
// Standalone mode loads packages through the go command and additionally
// checks metric-name/kind collisions across package boundaries; vettool
// mode follows the -V=full / -flags / unit.cfg protocol the go command
// expects and inherits vet's build caching. Both modes type-check each
// package as its merged test unit but analyze only production files, so
// their verdicts and exit codes agree: 0 clean, 1 findings, 2 failure.
//
// -suggest prints every finding (including ones an //accu:allow
// directive already covers, marked "allowed") together with the
// suppression comment that would silence it — the triage surface for
// working through a wave of new findings.
//
// -sarif writes the findings as a SARIF 2.1.0 log, including the fixes
// property for suggested edits (standalone mode; in vettool mode set
// ACCUVET_SARIF_DIR to collect one log per unit). -baseline subtracts a
// committed snapshot of known findings so CI fails only on new ones and
// prints a ratchet summary (new/fixed/suppressed) on stderr;
// -write-baseline refreshes that snapshot and refuses to shrink it
// without -force, so a run over a package subset cannot silently wipe
// ratchet state.
//
// -fix applies the machine-applicable suggested fixes (missing json
// tags on //accu:wire structs, keying unkeyed wire literals,
// time.Tick→time.NewTicker) atomically and gofmt-clean; combined with
// -suggest it instead inserts //accu:allow directives (with TODO
// reasons) above every remaining finding — the bulk-triage hammer for a
// new analyzer wave.
//
// -wire-lock diffs the //accu:wire struct schemas of the tree against a
// committed lockfile so a silent field rename becomes a build break;
// -write-wire-lock snapshots the current schemas.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/accu-sim/accu/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the checker and returns the process exit code: 0 clean,
// 1 findings, 2 usage or internal failure.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("accuvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		vFlag       = fs.String("V", "", "print version and exit (-V=full, for the go command)")
		flagsFlag   = fs.Bool("flags", false, "print analyzer flags in JSON (for the go command)")
		listFlag    = fs.Bool("list", false, "list analyzers and exit")
		jsonFlag    = fs.Bool("json", false, "emit findings as JSON (standalone mode)")
		suggestFlag = fs.Bool("suggest", false, "print findings with //accu:allow suppression suggestions, including already-allowed ones (standalone mode)")
		sarifFlag   = fs.String("sarif", "", "also write findings as a SARIF 2.1.0 log to `file` (\"-\" for stdout; standalone mode)")
		baseFlag    = fs.String("baseline", "", "subtract the findings recorded in the baseline `file`; only new findings affect the exit code (standalone mode)")
		writeBase   = fs.String("write-baseline", "", "snapshot current findings as a baseline to `file` and exit 0 (standalone mode)")
		fixFlag     = fs.Bool("fix", false, "apply machine-applicable suggested fixes; with -suggest, insert //accu:allow directives instead (standalone mode)")
		forceFlag   = fs.Bool("force", false, "allow -write-baseline to shrink the baseline")
		wireLock    = fs.String("wire-lock", "", "diff //accu:wire struct schemas against the lock `file`; drift is a finding (standalone mode)")
		writeWire   = fs.String("write-wire-lock", "", "snapshot //accu:wire struct schemas to the lock `file` and exit 0 (standalone mode)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: accuvet [packages]   (default ./...)\n")
		fmt.Fprintf(stderr, "       go vet -vettool=$(which accuvet) [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *vFlag != "":
		return printVersion(*vFlag, stdout, stderr)
	case *flagsFlag:
		// The go command interrogates supported flags before passing any
		// through; accuvet exposes none beyond the protocol set.
		fmt.Fprintln(stdout, "[]")
		return 0
	case *listFlag:
		for _, a := range analysis.NewSuite() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetUnitMode(rest[0], stderr)
	}
	opts := standaloneOpts{
		json:          *jsonFlag,
		suggest:       *suggestFlag,
		sarifPath:     *sarifFlag,
		baselinePath:  *baseFlag,
		writeBaseline: *writeBase,
		fix:           *fixFlag,
		force:         *forceFlag,
		wireLockPath:  *wireLock,
		writeWireLock: *writeWire,
	}
	return standaloneMode(rest, stdout, stderr, opts)
}

// vetUnitMode analyzes one compilation unit under the go vet protocol.
// When ACCUVET_SARIF_DIR names a directory, each unit additionally
// drops a SARIF log there (one file per unit, named after the config),
// so a vettool sweep can be stitched into a CI artifact.
func vetUnitMode(cfg string, stderr io.Writer) int {
	diags, fset, err := analysis.VetUnit(cfg, analysis.NewSuite())
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
	if dir := os.Getenv("ACCUVET_SARIF_DIR"); dir != "" {
		name := strings.TrimSuffix(filepath.Base(cfg), ".cfg")
		sum := sha256.Sum256([]byte(cfg))
		path := filepath.Join(dir, fmt.Sprintf("%s-%x.sarif", name, sum[:4]))
		if err := writeSARIFFile(path, fset, diags); err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
	}
	return exitCode(len(diags))
}

// writeSARIFFile writes one SARIF log to path ("-" means stdout is the
// caller's job, so path here is always a real file).
func writeSARIFFile(path string, fset *token.FileSet, diags []analysis.Diagnostic) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteSARIF(f, fset, diags, analysis.NewSuite()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// standaloneOpts collects the output/ratchet switches of standalone
// mode; the mutually-independent ones compose (e.g. -sarif with
// -baseline writes the full log but gates the exit code on new
// findings only).
type standaloneOpts struct {
	json          bool
	suggest       bool
	sarifPath     string
	baselinePath  string
	writeBaseline string
	fix           bool
	force         bool
	wireLockPath  string
	writeWireLock string
}

// standaloneMode loads the patterns from source and analyzes every
// matched package with one shared suite, so cross-package invariants
// (metricname's kind table) see the whole tree.
func standaloneMode(patterns []string, stdout, stderr io.Writer, opts standaloneOpts) int {
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	suite := analysis.NewSuite()
	var all []analysis.Diagnostic
	var fset *token.FileSet
	var schemas []analysis.WireSchema
	for _, pkg := range pkgs {
		run := analysis.RunAnalyzers
		if opts.suggest {
			run = analysis.RunAnalyzersAll
		}
		diags, err := run(pkg, suite)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		all = append(all, diags...)
		fset = pkg.Fset
		if opts.wireLockPath != "" || opts.writeWireLock != "" {
			schemas = append(schemas, analysis.CollectWireSchemas(pkg.ImportPath, pkg.Files)...)
		}
	}
	all = dedupSort(fset, all)

	if opts.writeWireLock != "" {
		f, err := os.Create(opts.writeWireLock)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		err = analysis.NewWireLock(schemas).Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: wire lock: %v\n", err)
			return 2
		}
		return 0
	}
	if opts.fix {
		return fixMode(stderr, fset, all, opts.suggest)
	}

	// The SARIF log and the baseline snapshot both describe the raw
	// verdict; the baseline subtraction below only gates what is
	// *reported* and the exit code.
	if opts.sarifPath != "" {
		w := stdout
		var f *os.File
		if opts.sarifPath != "-" {
			f, err = os.Create(opts.sarifPath)
			if err != nil {
				fmt.Fprintf(stderr, "accuvet: %v\n", err)
				return 2
			}
			w = f
		}
		err = analysis.WriteSARIF(w, fset, all, suite)
		if f != nil {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: sarif: %v\n", err)
			return 2
		}
	}
	if opts.writeBaseline != "" {
		next := analysis.NewBaseline(fset, all)
		// The shrink guard: fewer tolerated findings is the ratchet
		// working, but it is also exactly what a run over a package
		// subset produces by accident — and that would silently delete
		// ratchet state for everything outside the subset. Shrinking
		// must be said out loud with -force.
		prev, err := analysis.LoadBaseline(opts.writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		if next.Total() < prev.Total() && !opts.force {
			fmt.Fprintf(stderr, "accuvet: refusing to shrink baseline %s from %d to %d findings; if this run covered every package, re-run with -force\n",
				opts.writeBaseline, prev.Total(), next.Total())
			return 2
		}
		f, err := os.Create(opts.writeBaseline)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		err = next.Write(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: baseline: %v\n", err)
			return 2
		}
		return 0
	}
	if opts.baselinePath != "" {
		base, err := analysis.LoadBaseline(opts.baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		diff := base.Diff(fset, all)
		fmt.Fprintf(stderr, "accuvet: baseline %s: %d new, %d fixed, %d suppressed (baseline absorbs %d)\n",
			opts.baselinePath, diff.New, diff.Fixed, diff.Suppressed, base.Total())
		all = base.Filter(fset, all)
	}

	// Wire-schema drift has no single source position (the struct moved,
	// or the lockfile is stale), so it reports as driver-level findings
	// that share the findings exit code.
	drift := 0
	if opts.wireLockPath != "" {
		lock, err := analysis.LoadWireLock(opts.wireLockPath)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
		for _, line := range lock.Diff(schemas) {
			fmt.Fprintf(stderr, "accuvet: wire drift: %s\n", line)
			drift++
		}
	}

	var code int
	switch {
	case opts.json:
		code = printJSON(stdout, stderr, fset, all)
	case opts.suggest:
		code = printSuggestions(stdout, fset, all)
	default:
		for _, d := range all {
			fmt.Fprintf(stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
		}
		code = exitCode(len(all))
	}
	if code == 0 && drift > 0 {
		code = 1
	}
	return code
}

// fixMode applies fixes and reports what changed. Plain -fix applies
// the machine-applicable edits the analyzers attached; -fix -suggest
// instead inserts an //accu:allow directive (with a TODO reason) above
// every unsuppressed finding, folding co-located findings into one
// directive. Exit 0 when everything applied, 1 when fixes were skipped
// (rerun applies them once positions settle), 2 on failure.
func fixMode(stderr io.Writer, fset *token.FileSet, all []analysis.Diagnostic, suggest bool) int {
	diags := all
	if suggest {
		var err error
		diags, err = allowInsertDiags(fset, all)
		if err != nil {
			fmt.Fprintf(stderr, "accuvet: %v\n", err)
			return 2
		}
	}
	res, err := analysis.ApplyFixes(fset, diags)
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	for _, f := range res.Files {
		fmt.Fprintf(stderr, "accuvet: fixed %s\n", f)
	}
	fmt.Fprintf(stderr, "accuvet: applied %d fix(es) across %d file(s), skipped %d\n",
		res.Applied, len(res.Files), res.Skipped)
	if res.Skipped > 0 {
		fmt.Fprintf(stderr, "accuvet: skipped fixes overlapped applied ones; re-run -fix to pick them up\n")
		return 1
	}
	return 0
}

// allowInsertDiags rewrites the diagnostic set into synthetic ones whose
// only fix is the //accu:allow insertion: one directive per finding
// line, with every analyzer that fired there folded into its list.
func allowInsertDiags(fset *token.FileSet, all []analysis.Diagnostic) ([]analysis.Diagnostic, error) {
	type site struct {
		file string
		line int
	}
	analyzers := make(map[site][]string)
	firstPos := make(map[site]token.Pos)
	var order []site
	for _, d := range all {
		if d.Suppressed {
			continue
		}
		p := fset.Position(d.Pos)
		s := site{file: p.Filename, line: p.Line}
		if _, ok := analyzers[s]; !ok {
			order = append(order, s)
			firstPos[s] = d.Pos
		}
		if !contains(analyzers[s], d.Analyzer) {
			analyzers[s] = append(analyzers[s], d.Analyzer)
		}
	}
	srcs := make(map[string][]byte)
	var out []analysis.Diagnostic
	for _, s := range order {
		src, ok := srcs[s.file]
		if !ok {
			var err error
			src, err = os.ReadFile(s.file)
			if err != nil {
				return nil, err
			}
			srcs[s.file] = src
		}
		names := append([]string(nil), analyzers[s]...)
		sort.Strings(names)
		fix, ok := analysis.AllowInsertFix(fset, src, firstPos[s], strings.Join(names, ","))
		if !ok {
			continue
		}
		out = append(out, analysis.Diagnostic{
			Pos:            firstPos[s],
			Analyzer:       names[0],
			Message:        "insert //accu:allow",
			SuggestedFixes: []analysis.SuggestedFix{fix},
		})
	}
	return out, nil
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// dedupSort orders findings by position (file, line, column, analyzer)
// and drops exact duplicates, so standalone output is stable across
// go-list orderings and a finding surfaces once even if its package were
// analyzed under several guises.
func dedupSort(fset *token.FileSet, diags []analysis.Diagnostic) []analysis.Diagnostic {
	if fset == nil {
		return diags
	}
	type key struct {
		pos      string
		analyzer string
		message  string
	}
	seen := make(map[key]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		k := key{fset.Position(d.Pos).String(), d.Analyzer, d.Message}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, d)
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// printJSON emits the findings as a JSON array on stdout.
func printJSON(stdout, stderr io.Writer, fset *token.FileSet, all []analysis.Diagnostic) int {
	type finding struct {
		Pos        string `json:"pos"`
		Analyzer   string `json:"analyzer"`
		Message    string `json:"message"`
		Suppressed bool   `json:"suppressed,omitempty"`
	}
	out := make([]finding, 0, len(all))
	for _, d := range all {
		out = append(out, finding{Pos: fset.Position(d.Pos).String(), Analyzer: d.Analyzer, Message: d.Message, Suppressed: d.Suppressed})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	return exitCode(len(all))
}

// printSuggestions writes each finding followed by the //accu:allow line
// that would suppress it. Findings already covered by a directive are
// marked "allowed" and do not affect the exit code, matching the plain
// modes' verdict.
func printSuggestions(w io.Writer, fset *token.FileSet, all []analysis.Diagnostic) int {
	active := 0
	for _, d := range all {
		status := ""
		if d.Suppressed {
			status = " (allowed)"
		} else {
			active++
		}
		fmt.Fprintf(w, "%s: %s [%s]%s\n", fset.Position(d.Pos), d.Message, d.Analyzer, status)
		if !d.Suppressed {
			fmt.Fprintf(w, "\tto suppress, add on the line above:\n")
			fmt.Fprintf(w, "\t//accu:allow %s -- <why this violation is intentional>\n", d.Analyzer)
		}
	}
	return exitCode(active)
}

// exitCode maps a finding count to the shared process exit code: 0
// clean, 1 findings. Both drivers funnel through it so `go vet
// -vettool` and standalone runs agree.
func exitCode(findings int) int {
	if findings > 0 {
		return 1
	}
	return 0
}

// printVersion implements the -V=full handshake: the go command hashes
// the reported line into its build cache key, so the line must identify
// this exact executable.
func printVersion(v string, stdout, stderr io.Writer) int {
	if v != "full" {
		fmt.Fprintf(stderr, "accuvet: unsupported flag value: -V=%s (use -V=full)\n", v)
		return 2
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "accuvet: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "%s version devel accuvet buildID=%02x\n", exe, string(h.Sum(nil)))
	return 0
}
