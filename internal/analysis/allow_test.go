package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

// TestAllowMultipleNames pins the multi-name //accu:allow form: one
// directive listing several analyzers suppresses exactly the named ones
// on the covered line. The fixture violates lockbalance and ctxcancel on
// a single line; a two-name directive silences both, a one-name
// directive leaves the other analyzer's finding live.
func TestAllowMultipleNames(t *testing.T) {
	analysistest.RunAll(t,
		[]*analysis.Analyzer{analysis.LockBalance(), analysis.CtxCancel()},
		analysistest.Fixture{
			Dir:        "testdata/src/allowmulti_sim",
			ImportPath: "example.test/internal/sim",
			Deps:       stubDeps,
		})
}
