package analysis_test

import (
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
)

// TestRealTreeSuppressedFindings loads the real engine and service
// packages and audits them with RunAnalyzersAll: every //accu:allow in
// the tree must still cover a live finding (the analyzers keep detecting
// the annotated sites), and nothing unsuppressed may have crept in. If
// an annotated site is refactored away, the stale directive shows up
// here; if an analyzer regresses and stops seeing the site, that shows
// up too.
func TestRealTreeSuppressedFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the real packages")
	}
	// Per package: analyzer name → {message fragment → expected count}.
	// Counts pin the wave-3 lockedio allowances exactly: each one marks
	// an intentional write-under-lock durability barrier.
	pins := map[string]map[string]map[string]int{
		"github.com/accu-sim/accu/internal/sim": {
			"seedflow":      {"reaches 2 sinks": 1},
			"scratchescape": {"goroutine captures per-worker scratch sc": 1},
			// CellJournal serializes append/fsync/close under j.mu —
			// that mutual exclusion IS the durability contract.
			"lockedio": {
				"(*os.File).Write": 1,
				"(*os.File).Sync":  3,
				"(*os.File).Close": 2,
			},
		},
		"github.com/accu-sim/accu/internal/dist": {
			// The coordinator commits a cell to its journal before the
			// upload response acks it durable (fsync-before-ack).
			"lockedio": {"(*sim.CellJournal).Commit": 1},
		},
		"github.com/accu-sim/accu/internal/serv": {
			// Job documents persist under s.mu before state transitions
			// become visible to waiters (durability-before-signal).
			"lockedio": {"saveJob → os.WriteFile": 9},
		},
		// Wave-4 regression pins: errdrop surfaced a discarded
		// (Coordinator).Close — a swallowed final fsync — on accudist's
		// serve-error path, and wiretag surfaced sim.Record (the journal
		// line payload) relying on encoding/json field-name fallback.
		// Both are fixed; an empty pin set keeps the package in the
		// nothing-unsuppressed sweep so the bugs cannot return. The
		// stats entry pins detflow's third scope (the sketch/welford
		// sink package) as clean — detflow, fsyncack and chanleak found
		// no true positives in the tree, and this sweep is what keeps
		// that verdict from silently eroding.
		"github.com/accu-sim/accu/cmd/accudist":   {},
		"github.com/accu-sim/accu/internal/stats": {},
	}
	for path, pinned := range pins {
		t.Run(path[strings.LastIndex(path, "/")+1:], func(t *testing.T) {
			pkgs, err := analysis.Load("", path)
			if err != nil {
				t.Fatalf("loading %s: %v", path, err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("got %d packages, want 1", len(pkgs))
			}
			diags, err := analysis.RunAnalyzersAll(pkgs[0], analysis.NewSuite())
			if err != nil {
				t.Fatal(err)
			}
			for analyzer, fragments := range pinned {
				for fragment, want := range fragments {
					got := 0
					for _, d := range diags {
						if d.Analyzer == analyzer && d.Suppressed && strings.Contains(d.Message, fragment) {
							got++
						}
					}
					if got != want {
						t.Errorf("suppressed %s findings matching %q in %s: got %d, want %d; an //accu:allow site moved or the analyzer regressed", analyzer, fragment, path, got, want)
					}
				}
			}
			for _, d := range diags {
				if !d.Suppressed {
					pos := pkgs[0].Fset.Position(d.Pos)
					t.Errorf("unsuppressed finding in %s: %s: %s [%s]", path, pos, d.Message, d.Analyzer)
				}
			}
		})
	}
}
