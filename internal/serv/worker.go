package serv

import (
	"context"
	"errors"
	"fmt"

	"github.com/accu-sim/accu/internal/sim"
)

// executeJob runs one claimed job end to end: build the protocol from the
// spec, open (or resume) the job's cell journal, replay already-durable
// cells into the aggregation, run the engine, and assemble the Result.
//
// Every completed cell commits to the journal before it counts, so this
// function can be interrupted anywhere — client cancel, drain preemption,
// SIGKILL of the whole process — and a later execution reassembles the
// exact same record set: Result.Digest is invariant under interruption.
func (s *Server) executeJob(ctx context.Context, e *entry) (*Result, error) {
	// The spec and hub are immutable while the job runs; read them once.
	spec := e.job.Spec
	id := e.job.ID
	hub := e.hub

	protocol, factories, err := spec.Build(e.reg)
	if err != nil {
		return nil, err
	}

	path := s.store.checkpointPath(id)
	journal, err := sim.OpenCellJournal(path, s.store.checkpointExists(id))
	if err != nil {
		return nil, err
	}

	summary := sim.NewSummary(nil)
	digest := sim.NewRecordDigest()
	records := 0
	collect := func(rec sim.Record) {
		summary.Collect(rec)
		digest.Collect(rec)
		records++
	}
	journal.Replay(collect)
	total := spec.Cells()
	e.resumed.Store(int64(records))

	protocol.Checkpoint = journal
	protocol.OnProgress = func(pr sim.Progress) {
		e.done.Store(int64(pr.Done))
		e.resumed.Store(int64(pr.Resumed))
		hub.publish(Event{
			Type:    "progress",
			JobID:   id,
			State:   StateRunning,
			Done:    int64(pr.Done),
			Resumed: int64(pr.Resumed),
			Total:   total,
			Policy:  pr.Policy,
			Network: pr.Network,
			Run:     pr.Run,
		})
	}

	err = sim.Run(ctx, protocol, factories, collect)
	cerr := journal.Close()

	var failedCells int
	var warning string
	var fsum *sim.FailureSummary
	if errors.As(err, &fsum) {
		// Degraded but complete (ContinueOnError): the surviving cells
		// are a valid, durable result; the failures ride along.
		failedCells = len(fsum.Failures)
		warning = fsum.Error()
		err = nil
	}
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, fmt.Errorf("serv: close checkpoint journal: %w", cerr)
	}
	res := BuildResult(records, digest, summary)
	res.FailedCells = failedCells
	res.Warning = warning
	return res, nil
}
