package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// SARIF emission — the interchange half of the wave-3 reporting story.
// accuvet renders its findings as a SARIF 2.1.0 log so CI can archive
// them as a reviewable artifact and code-scanning UIs can ingest them
// without a bespoke parser. The emitter is deliberately small: one run,
// one rule per analyzer, one result per diagnostic. Findings an
// //accu:allow directive covers are still emitted but carry an
// "inSource" suppression, mirroring how the text drivers report them
// only under -suggest.

const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string             `json:"ruleId"`
	RuleIndex           int                `json:"ruleIndex"`
	Level               string             `json:"level"`
	Message             sarifMessage       `json:"message"`
	Locations           []sarifLocation    `json:"locations"`
	PartialFingerprints map[string]string  `json:"partialFingerprints,omitempty"`
	Suppressions        []sarifSuppression `json:"suppressions,omitempty"`
	Fixes               []sarifFix         `json:"fixes,omitempty"`
}

// sarifFix mirrors SuggestedFix for code-scanning UIs: one description
// plus per-file artifactChanges whose replacements carry a deletedRegion
// and insertedContent. Whether accuvet would auto-apply the fix rides in
// result properties (machineApplicable), since SARIF has no native flag.
type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifRegion           `json:"deletedRegion"`
	InsertedContent *sarifArtifactContent `json:"insertedContent,omitempty"`
}

type sarifArtifactContent struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

type sarifSuppression struct {
	Kind string `json:"kind"`
}

// WriteSARIF renders diags as one SARIF 2.1.0 run. The rules table
// lists every analyzer in suite (not just the ones that fired), so a
// clean log still documents what was checked. Suppressed diagnostics
// become results with an inSource suppression; SARIF consumers treat
// those as resolved, matching accuvet's exit-code semantics.
func WriteSARIF(w io.Writer, fset *token.FileSet, diags []Diagnostic, suite []*Analyzer) error {
	rules := make([]sarifRule, 0, len(suite))
	ruleIndex := make(map[string]int, len(suite))
	for _, a := range suite {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}

	results := make([]sarifResult, 0, len(diags))
	// Occurrence counters disambiguate fingerprints when the same
	// message fires twice in one file (e.g. two identical lock/IO
	// pairings); line numbers stay out of the hash so pure reflow does
	// not churn identities.
	occurrence := make(map[string]int, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		uri := sarifURI(pos.Filename)
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			// An analyzer outside the suite (tests compose ad-hoc sets):
			// grow the rules table on the fly.
			idx = len(rules)
			ruleIndex[d.Analyzer] = idx
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: d.Analyzer}})
		}
		key := uri + "\x00" + d.Analyzer + "\x00" + d.Message
		occurrence[key]++
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", key, occurrence[key])))
		res := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "warning",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: uri},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{"accuvetFingerprint/v1": fmt.Sprintf("%x", sum[:8])},
		}
		if d.Suppressed {
			res.Suppressions = []sarifSuppression{{Kind: "inSource"}}
		}
		res.Fixes = sarifFixes(fset, d.SuggestedFixes)
		results = append(results, res)
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "accuvet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "\t")
	return enc.Encode(log)
}

// sarifFixes converts suggested fixes to the SARIF fixes property.
// Edits are grouped per file; a fix with an unresolvable edit is dropped
// rather than emitted half-described.
func sarifFixes(fset *token.FileSet, fixes []SuggestedFix) []sarifFix {
	out := make([]sarifFix, 0, len(fixes))
	for _, f := range fixes {
		byURI := make(map[string]*sarifArtifactChange)
		order := make([]string, 0, 1)
		ok := len(f.Edits) > 0
		for _, e := range f.Edits {
			if !e.Pos.IsValid() || !e.End.IsValid() {
				ok = false
				break
			}
			ps, pe := fset.Position(e.Pos), fset.Position(e.End)
			if ps.Filename == "" || pe.Filename != ps.Filename {
				ok = false
				break
			}
			uri := sarifURI(ps.Filename)
			ch := byURI[uri]
			if ch == nil {
				ch = &sarifArtifactChange{ArtifactLocation: sarifArtifactLocation{URI: uri}}
				byURI[uri] = ch
				order = append(order, uri)
			}
			rep := sarifReplacement{
				DeletedRegion: sarifRegion{
					StartLine:   ps.Line,
					StartColumn: ps.Column,
					EndLine:     pe.Line,
					EndColumn:   pe.Column,
				},
			}
			if e.NewText != "" {
				rep.InsertedContent = &sarifArtifactContent{Text: e.NewText}
			}
			ch.Replacements = append(ch.Replacements, rep)
		}
		if !ok {
			continue
		}
		sf := sarifFix{Description: sarifMessage{Text: f.Message}}
		for _, uri := range order {
			sf.ArtifactChanges = append(sf.ArtifactChanges, *byURI[uri])
		}
		out = append(out, sf)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// sarifURI renders a diagnostic's file as a repo-relative, slash-
// separated URI when the file sits under the working directory, and
// falls back to the raw path otherwise. Relative URIs keep the log
// portable between the developer checkout and the CI runner.
func sarifURI(filename string) string {
	if cwd, err := os.Getwd(); err == nil {
		if rel, err := filepath.Rel(cwd, filename); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(filename)
}
