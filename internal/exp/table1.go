package exp

import (
	"context"
	"fmt"
	"strconv"

	"github.com/accu-sim/accu/internal/stats"
)

// Table1 reproduces Table I: the statistics of the four datasets. Since
// the SNAP data cannot be fetched offline, the table reports both the
// paper's reference counts and the generated stand-in's counts at the
// configured scale, plus the degree-band population that the cautious
// selection protocol depends on.
func Table1(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	header := []string{"Network", "Kind", "RefNodes", "RefEdges", "GenNodes", "GenEdges", "MeanDeg", "MaxDeg", "Band[10,100]"}
	var rows [][]string
	var notes []string
	for _, name := range cfg.Datasets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g, preset, err := cfg.generator(name)
		if err != nil {
			return nil, err
		}
		sample, err := g.Generate(cfg.Seed.Split("table1-" + name))
		if err != nil {
			return nil, fmt.Errorf("exp: table1 %s: %w", name, err)
		}
		st := sample.ComputeDegreeStats(10, 100)
		rows = append(rows, []string{
			name,
			preset.Kind,
			strconv.Itoa(preset.RefNodes),
			strconv.Itoa(preset.RefEdges),
			strconv.Itoa(sample.N()),
			strconv.Itoa(sample.M()),
			fmt.Sprintf("%.1f", st.Mean),
			strconv.Itoa(st.Max),
			strconv.Itoa(st.InBand),
		})
		refMean := 2 * float64(preset.RefEdges) / float64(preset.RefNodes)
		if st.Mean < refMean*0.5 || st.Mean > refMean*1.6 {
			notes = append(notes, fmt.Sprintf("%s: mean degree %.1f drifted from reference %.1f", name, st.Mean, refMean))
		}
	}
	tables := []stats.Table{{Header: header, Rows: rows}}
	return newReport("table1", "Dataset statistics (paper reference vs generated stand-in)", tables, notes), nil
}
