package serv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// httpServer wires a test Server into an httptest listener.
func httpServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal request: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp, out
}

func TestHTTPSubmitLifecycle(t *testing.T) {
	s := newTestServer(t, Config{})
	gate := make(chan struct{})
	s.execute = func(ctx context.Context, e *entry) (*Result, error) {
		<-gate
		e.done.Store(8)
		return &Result{Records: 8, Digest: "deadbeef"}, nil
	}
	s.Start()
	defer drain(t, s)
	ts := httpServer(t, s)

	resp, body := postJSON(t, ts.URL+"/api/v1/jobs",
		SubmitRequest{ID: "httpjob", Spec: testSpec()},
		map[string]string{"X-Accu-Tenant": "team_a"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("parse submit response: %v", err)
	}
	if job.ID != "httpjob" || job.Tenant != "team_a" {
		t.Fatalf("job = %+v, want httpjob/team_a", job)
	}

	// Result of an unfinished job conflicts.
	waitState(t, s, "httpjob", StateRunning)
	resp, _ = getJSON(t, ts.URL+"/api/v1/jobs/httpjob/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("result-while-running status = %d, want 409", resp.StatusCode)
	}

	close(gate)
	waitState(t, s, "httpjob", StateDone)

	resp, body = getJSON(t, ts.URL+"/api/v1/jobs/httpjob")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatalf("parse job: %v", err)
	}
	if job.State != StateDone {
		t.Fatalf("state = %s, want done", job.State)
	}

	resp, body = getJSON(t, ts.URL+"/api/v1/jobs/httpjob/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", resp.StatusCode)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("parse result: %v", err)
	}
	if res.Digest != "deadbeef" || res.Records != 8 {
		t.Fatalf("result = %+v", res)
	}

	resp, body = getJSON(t, ts.URL+"/api/v1/jobs?tenant=team_a")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("parse list: %v", err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("list = %d jobs, want 1", len(list.Jobs))
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	s := newTestServer(t, Config{DefaultQuota: 1})
	ts := httpServer(t, s) // workers not started: jobs stay queued

	if resp, _ := getJSON(t, ts.URL+"/api/v1/jobs/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
	if resp, body := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{ID: "Bad ID", Spec: testSpec()}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid id status = %d, body %s, want 400", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/api/v1/jobs", map[string]any{"bogus": true}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status = %d, body %s, want 400", resp.StatusCode, body)
	}

	if resp, body := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{ID: "q1", Spec: testSpec()}, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	if resp, _ := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{ID: "q1", Spec: testSpec()}, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate status = %d, want 409", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{ID: "q2", Spec: testSpec()}, nil); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("quota status = %d, want 429", resp.StatusCode)
	}

	if resp, _ := postJSON(t, ts.URL+"/api/v1/jobs/q1/cancel", nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Errorf("cancel status = %d, want 202", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/api/v1/jobs/q1/cancel", nil, nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel status = %d, want 409", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/api/v1/jobs/q1/resume", nil, nil); resp.StatusCode != http.StatusAccepted {
		t.Errorf("resume status = %d, want 202", resp.StatusCode)
	}

	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d, want 200", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/metrics?job=nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("metrics unknown job status = %d, want 404", resp.StatusCode)
	}
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics status = %d, want 200", resp.StatusCode)
	}
	if !strings.Contains(string(body), "serv.jobs_submitted") {
		t.Errorf("metrics body missing serv.jobs_submitted: %s", body)
	}

	drain(t, s)
	if resp, _ := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status = %d, want 503", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{ID: "late", Spec: testSpec()}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit status = %d, want 503", resp.StatusCode)
	}
}

// readSSE consumes one SSE stream, returning the decoded events in order.
func readSSE(t *testing.T, resp *http.Response) []Event {
	t.Helper()
	defer resp.Body.Close()
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("parse SSE data %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	return events
}

func TestHTTPEventsStream(t *testing.T) {
	s := newTestServer(t, Config{})
	gate := make(chan struct{})
	s.execute = func(ctx context.Context, e *entry) (*Result, error) {
		for i := int64(1); i <= 3; i++ {
			e.done.Store(i)
			e.hub.publish(Event{Type: "progress", JobID: e.job.ID, State: StateRunning, Done: i, Total: 8})
		}
		<-gate
		return &Result{Records: 8}, nil
	}
	s.Start()
	defer drain(t, s)
	ts := httpServer(t, s)

	if resp, body := postJSON(t, ts.URL+"/api/v1/jobs", SubmitRequest{ID: "ssejob", Spec: testSpec()}, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	waitState(t, s, "ssejob", StateRunning)

	resp, err := http.Get(ts.URL + "/api/v1/jobs/ssejob/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	streamed := make(chan []Event, 1)
	go func() { streamed <- readSSE(t, resp) }()

	close(gate)
	waitState(t, s, "ssejob", StateDone)
	events := <-streamed

	if len(events) < 2 {
		t.Fatalf("stream had %d events, want at least opening + final state: %+v", len(events), events)
	}
	if first := events[0]; first.Type != "state" {
		t.Errorf("first event = %+v, want opening state snapshot", first)
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != StateDone {
		t.Errorf("last event = %+v, want terminal done state", last)
	}

	// A stream opened on a finished job still reports the final state.
	resp, err = http.Get(ts.URL + "/api/v1/jobs/ssejob/events")
	if err != nil {
		t.Fatalf("GET events after done: %v", err)
	}
	late := readSSE(t, resp)
	if len(late) == 0 || late[len(late)-1].State != StateDone {
		t.Errorf("late stream = %+v, want done state", late)
	}

	if resp, _ := getJSON(t, ts.URL+"/api/v1/jobs/nosuch/events"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("events unknown job status = %d, want 404", resp.StatusCode)
	}
}
