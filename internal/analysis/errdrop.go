package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDrop returns the durability error-discard analyzer: an error
// returned by a durability-critical call — a journal commit/fsync, a
// store block write, an atomic tmp+rename document swap — must never be
// discarded, because a swallowed fsync failure silently converts the
// exactly-once/bit-identical-resume guarantees into corruption that only
// surfaces runs later. The discard shapes flagged are the statement call
// (`j.Commit(line)`), the blank assignment (`_ = j.Sync()`), and
// go/defer statements whose call's error has nowhere to go.
//
// The check is interprocedural within the package: PropagateUp marks
// every function whose (non-async) call chain reaches a durable root, so
// discarding `saveJob(...)` is reported with the chain witness
// ("saveJob → os.WriteFile") even though the rename lives two calls
// down. Cross-package, the curated root set mirrors lockedio: the
// stdlib durable surface (os.WriteFile/Rename, (*os.File).Sync,
// (*bufio.Writer).Flush) plus this module's journal and store writers
// ((*sim.CellJournal).Commit/Sync/Close, sim.Checkpointer,
// (*stats.StoreWriter).Append/Close). Bare (*os.File).Close is
// deliberately NOT a root — close-on-error-path cleanup where the write
// error already propagated is idiomatic and the fsync path is what
// durability actually rides on.
//
// Intentional discards (best-effort cleanup on an already-failing path)
// are the audited exception: //accu:allow errdrop -- <why>.
func ErrDrop() *Analyzer {
	a := &Analyzer{
		Name: "errdrop",
		Doc: "flag discarded or blank-assigned errors from durability-critical " +
			"call chains (journal commit/sync, store writes, atomic renames), " +
			"interprocedurally through the package call graph",
	}
	a.Run = func(pass *Pass) error {
		cg := NewCallGraph(pass.Pkg, pass.Info, pass.Files)
		seeds := make(map[*types.Func]string)
		for _, fn := range cg.Funcs() {
			if desc := intrinsicDurable(pass, cg.DeclOf(fn)); desc != "" {
				seeds[fn] = desc
			}
		}
		durable := cg.PropagateUp(seeds, func(e CallEdge) bool { return !e.Async })

		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
						reportDroppedDurable(pass, cg, durable, call, "discarded")
					}
				case *ast.DeferStmt:
					reportDroppedDurable(pass, cg, durable, n.Call, "deferred with its error discarded")
				case *ast.GoStmt:
					reportDroppedDurable(pass, cg, durable, n.Call, "spawned with its error discarded")
				case *ast.AssignStmt:
					if len(n.Rhs) != 1 {
						return true
					}
					call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, i := range errResultIndices(pass, call) {
						if i < len(n.Lhs) {
							if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
								reportDroppedDurable(pass, cg, durable, call, "blank-assigned")
								break
							}
						}
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

// durableFuncs is the curated set of package-level stdlib durable roots.
var durableFuncs = map[string]map[string]bool{
	"os": {"WriteFile": true, "Rename": true},
}

// durableMethods is the curated stdlib durable-method surface, keyed
// package → receiver named type → method.
var durableMethods = map[string]map[string]map[string]bool{
	"os":    {"File": {"Sync": true}},
	"bufio": {"Writer": {"Flush": true}},
}

// moduleDurableMethods are this module's cross-package durable roots,
// keyed package suffix → receiver named type → method. Checkpointer is
// the interface the engine commits through; CellJournal and StoreWriter
// are the fsyncing implementations; Coordinator.Close flushes and closes
// the fsynced cell journal, so its error is the grid's final durability
// signal.
var moduleDurableMethods = map[string]map[string]map[string]bool{
	"internal/sim": {
		"CellJournal":  {"Commit": true, "Sync": true, "Close": true},
		"Checkpointer": {"Commit": true, "Close": true},
	},
	"internal/stats": {
		"StoreWriter": {"Append": true, "Close": true},
	},
	"internal/dist": {
		"Coordinator": {"Close": true},
	},
}

// durableCall reports whether call invokes a durable root, with a
// display name for the diagnostic.
func durableCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(pass, call)
	if f == nil || f.Pkg() == nil {
		return "", false
	}
	pkg := f.Pkg().Path()
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	if sig.Recv() == nil {
		if durableFuncs[pkg][f.Name()] {
			return pkg + "." + f.Name(), true
		}
		return "", false
	}
	recv := namedRecvName(sig.Recv().Type())
	if durableMethods[pkg][recv][f.Name()] {
		return "(*" + pkg + "." + recv + ")." + f.Name(), true
	}
	for suffix, types := range moduleDurableMethods {
		if pkgPathIs(pkg, suffix) && types[recv][f.Name()] {
			return "(" + recv + ")." + f.Name(), true
		}
	}
	return "", false
}

// intrinsicDurable scans one declaration body for a durable root call,
// pruning `go` statements (async work does not carry this activation's
// durability); deferred calls count.
func intrinsicDurable(pass *Pass, decl *ast.FuncDecl) string {
	if decl == nil || decl.Body == nil {
		return ""
	}
	desc := ""
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if d, ok := durableCall(pass, call); ok {
				desc = d
				return false
			}
		}
		return true
	})
	return desc
}

// errResultIndices returns the result positions of call that have type
// error; empty when the callee returns none (nothing to drop).
func errResultIndices(pass *Pass, call *ast.CallExpr) []int {
	f := calleeFunc(pass, call)
	if f == nil {
		return nil
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), types.Universe.Lookup("error").Type()) {
			idx = append(idx, i)
		}
	}
	return idx
}

// reportDroppedDurable reports call if it is a durable root (direct or
// via the package summary) returning an error that `how` describes being
// lost.
func reportDroppedDurable(pass *Pass, cg *CallGraph, durable map[*types.Func]string, call *ast.CallExpr, how string) {
	if len(errResultIndices(pass, call)) == 0 {
		return
	}
	desc, ok := durableCall(pass, call)
	if !ok {
		if callee := cg.StaticCallee(pass.Info, call); callee != nil {
			if w, has := durable[callee]; has {
				desc, ok = funcDisplayName(callee)+" → "+w, true
			}
		}
	}
	if !ok {
		return
	}
	pass.Reportf(call.Pos(),
		"error from durable call %s %s; a swallowed fsync/commit failure breaks the durability guarantees — check it, return it, or annotate the intentional best-effort site",
		desc, how)
}
