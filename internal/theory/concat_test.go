package theory

import (
	"testing"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// concat implements the policy-concatenation operation of Lemma 2 on
// concrete request sequences: send seqA, then the users of seqB not in
// seqA, preserving order.
func concat(seqA, seqB []int) []int {
	out := append([]int(nil), seqA...)
	seen := make(map[int]bool, len(seqA))
	for _, u := range seqA {
		seen[u] = true
	}
	for _, u := range seqB {
		if !seen[u] {
			out = append(out, u)
			seen[u] = true
		}
	}
	return out
}

// TestLemma2Commutativity verifies f(π1@π2, φ) = f(π2@π1, φ) for the
// sequences produced by two greedy-family policies: both only request a
// cautious user once its threshold is met, which is the condition the
// proof of Lemma 2 relies on.
func TestLemma2Commutativity(t *testing.T) {
	// A random instance with enough reckless users that neither policy
	// needs to burn requests on locked cautious users.
	b := graph.NewBuilder(120)
	r := rng.NewSeed(201, 202).Rand()
	for b.M() < 900 {
		if _, err := b.AddEdge(r.IntN(120), r.IntN(120)); err != nil {
			t.Fatal(err)
		}
	}
	s := osn.DefaultSetup()
	s.NumCautious = 4
	inst, err := s.Build(b.Freeze(), rng.NewSeed(203, 204))
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 4; trial++ {
		re := inst.SampleRealization(rng.NewSeed(uint64(trial), 205))

		g1 := core.NewPureGreedy()
		res1, err := core.Run(g1, re, 20)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := core.NewABM(core.DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		res2, err := core.Run(g2, re, 20)
		if err != nil {
			t.Fatal(err)
		}

		seq12 := concat(res1.Journal.Users, res2.Journal.Users)
		seq21 := concat(res2.Journal.Users, res1.Journal.Users)

		f12, err := BenefitOf(re, seq12)
		if err != nil {
			t.Fatal(err)
		}
		f21, err := BenefitOf(re, seq21)
		if err != nil {
			t.Fatal(err)
		}
		if f12 != f21 {
			t.Errorf("trial %d: f(π1@π2)=%v != f(π2@π1)=%v", trial, f12, f21)
		}
	}
}

// TestLemma2FailsWithoutGreedyDiscipline shows why the lemma needs its
// condition: arbitrary sequences that request cautious users early are
// NOT order-commutable.
func TestLemma2FailsWithoutGreedyDiscipline(t *testing.T) {
	// cautious 0 (θ=1) — reckless 1.
	b := graph.NewBuilder(2)
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	inst, err := osn.NewInstance(b.Freeze(), osn.Params{
		Kind:       []osn.Kind{osn.Cautious, osn.Reckless},
		AcceptProb: []float64{0, 1},
		Theta:      []int{1, 0},
		BFriend:    []float64{50, 2},
		BFof:       []float64{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	re := inst.FixedRealization(nil, nil)
	early, err := BenefitOf(re, []int{0, 1}) // cautious first: rejected
	if err != nil {
		t.Fatal(err)
	}
	late, err := BenefitOf(re, []int{1, 0}) // friend first: accepted
	if err != nil {
		t.Fatal(err)
	}
	if early >= late {
		t.Errorf("expected order dependence: early=%v late=%v", early, late)
	}
}
