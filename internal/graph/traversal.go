package graph

import "sort"

// BFS performs a breadth-first search from src and returns the distance
// (in hops) to every node; unreachable nodes get -1. An out-of-range src
// returns all -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, v := range g.Neighbors(int(u)) {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Components labels connected components. It returns the component id of
// every node (ids are dense, assigned in discovery order) and the number
// of components.
func (g *Graph) Components() (labels []int, count int) {
	labels = make([]int, g.n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []int32
	for s := 0; s < g.n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.Neighbors(int(u)) {
				if labels[v] == -1 {
					labels[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels, count
}

// LargestComponent returns the node set of the largest connected
// component, sorted ascending. Ties break toward the lowest component id.
func (g *Graph) LargestComponent() []int {
	labels, count := g.Components()
	if count == 0 {
		return nil
	}
	sizes := make([]int, count)
	for _, c := range labels {
		sizes[c]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]int, 0, sizes[best])
	for u, c := range labels {
		if c == best {
			out = append(out, u)
		}
	}
	return out
}

// TwoHopNeighbors returns the set of nodes at exactly distance 2 from u
// (friend-of-friend candidates), as a sorted slice. O(sum of neighbor
// degrees).
func (g *Graph) TwoHopNeighbors(u int) []int {
	if u < 0 || u >= g.n {
		return nil
	}
	mark := make(map[int32]bool)
	for _, v := range g.Neighbors(u) {
		mark[v] = true
	}
	twoHop := make(map[int32]bool)
	for _, v := range g.Neighbors(u) {
		for _, w := range g.Neighbors(int(v)) {
			if int(w) != u && !mark[w] {
				twoHop[w] = true
			}
		}
	}
	out := make([]int, 0, len(twoHop))
	for w := range twoHop {
		out = append(out, int(w))
	}
	sort.Ints(out)
	return out
}
