package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// FsyncAck returns the ack-after-durable analyzer for the service
// layers: an HTTP handler in internal/serv or internal/dist must not
// write a success response before the durable commit on that path. The
// distributed exactly-once protocol rides on this ordering — a worker
// treats an acked upload as committed, so a coordinator that responds
// 200 and then fsyncs has promised durability it does not yet have; a
// crash in the gap loses acknowledged cells (DESIGN §10,
// fsync-before-ack).
//
// Response-write events are tracked per handler over the CFG: a call to
// WriteHeader/Write on the handler's http.ResponseWriter parameter, or
// passing that parameter to an in-package helper that writes it
// (ParamSummary marks writeJSON-shaped helpers bottom-up). Helpers whose
// name contains "Error" are exempt — error envelopes ack a failure, and
// the durability contract only covers success acks. Durable commits are
// the errdrop root set (journal Commit/Sync, store writes, atomic
// renames) plus in-package functions PropagateUp summarizes as reaching
// one. A durable call reached while a response-written fact is live is
// the violation, reported with the commit's chain witness.
//
// Post-ack best-effort persistence (a cache write after responding) is
// the audited exception: //accu:allow fsyncack -- <why>.
func FsyncAck() *Analyzer {
	a := &Analyzer{
		Name: "fsyncack",
		Doc: "flag HTTP handler paths in internal/serv and internal/dist that " +
			"write a response before the durable commit on that path " +
			"(ack-after-fsync ordering)",
	}
	a.Run = func(pass *Pass) error {
		if !pkgPathIn(pass.Path, []string{"internal/serv", "internal/dist"}) {
			return nil
		}
		cg := NewCallGraph(pass.Pkg, pass.Info, pass.Files)

		seeds := make(map[*types.Func]string)
		for _, fn := range cg.Funcs() {
			if desc := intrinsicDurable(pass, cg.DeclOf(fn)); desc != "" {
				seeds[fn] = desc
			}
		}
		durable := cg.PropagateUp(seeds, func(e CallEdge) bool { return !e.Async })

		// writers[fn][i]: parameter i of fn is an http.ResponseWriter the
		// body (transitively) writes to.
		writers := cg.ParamSummary(pass.Info, func(fn *types.Func, decl *ast.FuncDecl, p *types.Var) bool {
			if decl == nil || decl.Body == nil || !isResponseWriter(p.Type()) {
				return false
			}
			found := false
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if respWriterMethod(pass, call) == p {
						found = true
					}
				}
				return true
			})
			return found
		}, nil)

		funcBodies(pass.Files, func(enclosing ast.Node, body *ast.BlockStmt) {
			rw := responseWriterParam(pass, enclosing)
			if rw == nil {
				return
			}
			checkAckOrder(pass, cg, durable, writers, rw, body)
		})
		return nil
	}
	return a
}

// responseWriterParam returns the object of enclosing's
// http.ResponseWriter parameter, or nil when it has none.
func responseWriterParam(pass *Pass, enclosing ast.Node) types.Object {
	var ft *ast.FuncType
	switch e := enclosing.(type) {
	case *ast.FuncDecl:
		ft = e.Type
	case *ast.FuncLit:
		ft = e.Type
	default:
		return nil
	}
	if ft.Params == nil {
		return nil
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := pass.Info.Defs[name]; obj != nil && isResponseWriter(obj.Type()) {
				return obj
			}
		}
	}
	return nil
}

// respWriterMethod returns the parameter object when call is
// rw.WriteHeader(...) or rw.Write(...) on a ResponseWriter-typed ident.
func respWriterMethod(pass *Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "WriteHeader" && sel.Sel.Name != "Write") {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.Info.Uses[id]
	if obj == nil || !isResponseWriter(obj.Type()) {
		return nil
	}
	return obj
}

// ackFact marks "a response has been written to rw on this path".
type ackFact struct{ rw types.Object }

// checkAckOrder runs the response-before-durable dataflow over one
// handler body.
func checkAckOrder(pass *Pass, cg *CallGraph, durable map[*types.Func]string, writers map[*types.Func]map[int]bool, rw types.Object, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	transfer := func(n ast.Node, facts Facts) {
		walkBlockNode(n, false, func(m ast.Node) bool {
			switch m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ackWrite(pass, cg, writers, rw, call) {
				facts[ackFact{rw}] = call.Pos()
			}
			return true
		})
	}
	in, _ := cfg.ForwardMay(transfer)
	for _, b := range cfg.Blocks {
		facts := in[b].clone()
		for _, n := range b.Nodes {
			reportDurableAfterAck(pass, cg, durable, n, facts)
			transfer(n, facts)
		}
	}
}

// ackWrite reports whether call writes a response to rw: a direct
// WriteHeader/Write, or rw passed to an in-package writer-summarized
// parameter of a non-"Error" helper.
func ackWrite(pass *Pass, cg *CallGraph, writers map[*types.Func]map[int]bool, rw types.Object, call *ast.CallExpr) bool {
	if respWriterMethod(pass, call) == rw {
		return true
	}
	callee := cg.StaticCallee(pass.Info, call)
	if callee == nil || strings.Contains(callee.Name(), "Error") {
		return false
	}
	marked := writers[callee]
	if marked == nil {
		return false
	}
	for i, arg := range call.Args {
		if !marked[i] {
			continue
		}
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.Info.Uses[id] == rw {
			return true
		}
	}
	return false
}

// reportDurableAfterAck reports durable calls inside one block node
// while an ack fact is live.
func reportDurableAfterAck(pass *Pass, cg *CallGraph, durable map[*types.Func]string, n ast.Node, facts Facts) {
	if len(facts) == 0 {
		return
	}
	var ackPos = facts[ackFact{}]
	for k, p := range facts {
		if _, ok := k.(ackFact); ok {
			ackPos = p
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		desc, ok := durableCall(pass, call)
		if !ok {
			if callee := cg.StaticCallee(pass.Info, call); callee != nil {
				if w, has := durable[callee]; has {
					desc, ok = funcDisplayName(callee)+" → "+w, true
				}
			}
		}
		if !ok {
			return true
		}
		pass.Reportf(call.Pos(),
			"durable commit %s runs after the response was already written (acked at line %d); commit before acknowledging so a crash in the gap cannot lose acked work",
			desc, pass.Fset.Position(ackPos).Line)
		return true
	})
}
