package dist

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/accu-sim/accu/internal/sim"
)

// Handler returns the coordinator's HTTP API:
//
//	POST /api/v1/dist/lease    request the next range               (LeaseRequest -> LeaseResponse)
//	POST /api/v1/dist/cells    upload completed cells               (?lease=&worker=, JSONL CellLine body -> UploadResponse)
//	POST /api/v1/dist/fail     release a lease after a range error  (FailRequest)
//	GET  /api/v1/dist/spec     the grid spec workers build from
//	GET  /api/v1/dist/status   poll snapshot
//	GET  /api/v1/dist/result   final Result (409 until complete)
//	GET  /metrics              dist.* instruments
//	GET  /healthz              liveness probe
//
// The cell-upload body is the journal's own line format: a journal file
// is a valid upload body and vice versa.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/dist/lease", c.handleLease)
	mux.HandleFunc("POST /api/v1/dist/cells", c.handleCells)
	mux.HandleFunc("POST /api/v1/dist/fail", c.handleFail)
	mux.HandleFunc("GET /api/v1/dist/spec", c.handleSpec)
	mux.HandleFunc("GET /api/v1/dist/status", c.handleStatus)
	mux.HandleFunc("GET /api/v1/dist/result", c.handleResult)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	return mux
}

// errorBody is the JSON error envelope, matching internal/serv's.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // status line already out; nothing to recover
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad lease request: " + err.Error()})
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "lease request without worker"})
		return
	}
	lease, done := c.Lease(req.Worker)
	writeJSON(w, http.StatusOK, LeaseResponse{Done: done, Lease: lease})
}

func (c *Coordinator) handleCells(w http.ResponseWriter, r *http.Request) {
	leaseID := r.URL.Query().Get("lease")
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "cell upload without worker"})
		return
	}
	lines, err := decodeCellLines(r.Body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad cell upload: " + err.Error()})
		return
	}
	resp, err := c.Upload(leaseID, worker, lines)
	if err != nil {
		// Commit/merge failure: the batch is not durable, the worker must
		// not proceed past this cell.
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// decodeCellLines reads a JSONL (or concatenated-JSON) stream of cell
// lines. json.Decoder handles arbitrary line lengths without a scanner
// buffer limit — cell records carry full attack traces.
func decodeCellLines(r io.Reader) ([]sim.CellLine, error) {
	dec := json.NewDecoder(r)
	var lines []sim.CellLine
	for {
		var cl sim.CellLine
		if err := dec.Decode(&cl); err != nil {
			if errors.Is(err, io.EOF) {
				return lines, nil
			}
			return nil, err
		}
		lines = append(lines, cl)
	}
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad fail request: " + err.Error()})
		return
	}
	c.Fail(req)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Spec())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := c.Result()
	if err != nil {
		writeJSON(w, http.StatusConflict, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := c.cfg.Metrics.Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusOK, struct{}{})
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}
