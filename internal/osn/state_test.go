package osn

import (
	"errors"
	"math"
	"testing"

	"github.com/accu-sim/accu/internal/rng"
)

// fixture: 0-1-2 path plus 1-3; node 3 cautious with θ=1.
//
//	0 — 1 — 2
//	    |
//	    3 (cautious, θ=1, B_f=50)
func cautiousFixture(t *testing.T) *Instance {
	t.Helper()
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {1, 3}})
	p := uniformParams(4)
	p.Kind[3] = Cautious
	p.AcceptProb[3] = 0
	p.Theta[3] = 1
	p.BFriend[3] = 50
	inst, err := NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func allIn(in *Instance) *Realization { return in.FixedRealization(nil, nil) }

func TestRequestAcceptReckless(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))

	out, err := st.Request(1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted || out.Cautious {
		t.Fatalf("outcome = %+v", out)
	}
	// Gain: B_f(1)=2 plus B_fof for realized neighbors 0, 2, 3.
	if out.Gain != 2+3 {
		t.Errorf("gain = %v, want 5", out.Gain)
	}
	if !st.IsFriend(1) || st.Friends() != 1 {
		t.Error("friend bookkeeping wrong")
	}
	for _, v := range []int{0, 2, 3} {
		if !st.IsFOF(v) || st.Mutual(v) != 1 {
			t.Errorf("node %d: FOF=%v mutual=%d", v, st.IsFOF(v), st.Mutual(v))
		}
	}
	if st.FOFCount() != 3 {
		t.Errorf("FOF count = %d", st.FOFCount())
	}
	if st.Benefit() != 5 {
		t.Errorf("benefit = %v", st.Benefit())
	}
}

func TestRequestRejectReckless(t *testing.T) {
	inst := cautiousFixture(t)
	re := inst.FixedRealization(nil, func(u int) bool { return false })
	st := NewState(re)
	out, err := st.Request(0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted || out.Gain != 0 {
		t.Fatalf("outcome = %+v", out)
	}
	if st.Friends() != 0 || st.Benefit() != 0 || st.FOFCount() != 0 {
		t.Error("rejection must not change accounting")
	}
	if st.Requests() != 1 {
		t.Errorf("requests = %d", st.Requests())
	}
	// Rejection still consumes the user's single request.
	if _, err := st.Request(0); !errors.Is(err, ErrAlreadyRequested) {
		t.Errorf("re-request: %v", err)
	}
}

func TestRequestCautiousThreshold(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))

	// Below threshold: 3 has no mutual friends with the attacker.
	if st.WouldAccept(3) {
		t.Error("WouldAccept(3) before threshold")
	}
	out, err := st.Request(3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Fatal("cautious user accepted below threshold")
	}
	if !out.Cautious {
		t.Error("outcome not flagged cautious")
	}

	// Befriend 1 → mutual(3) = 1 = θ. But 3 already got its request.
	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	if st.Mutual(3) != 1 || !st.WouldAccept(3) {
		t.Errorf("mutual(3) = %d", st.Mutual(3))
	}
	if _, err := st.Request(3); !errors.Is(err, ErrAlreadyRequested) {
		t.Errorf("err = %v", err)
	}
}

func TestRequestCautiousAcceptAfterThreshold(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	out, err := st.Request(3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Fatal("cautious user rejected at threshold")
	}
	// 3 was FOF → upgrade: gain = B_f − B_fof = 49. Node 3's only
	// neighbor (1) is already a friend, so no new FOF.
	if out.Gain != 49 {
		t.Errorf("gain = %v, want 49", out.Gain)
	}
	if st.CautiousFriends() != 1 {
		t.Errorf("cautious friends = %d", st.CautiousFriends())
	}
	if st.FOFCount() != 2 { // 0 and 2 remain FOF
		t.Errorf("FOF = %d", st.FOFCount())
	}
	if got, want := st.Benefit(), 5.0+49.0; got != want {
		t.Errorf("benefit = %v, want %v", got, want)
	}
}

func TestRequestUnrealizedEdgesHidden(t *testing.T) {
	inst := cautiousFixture(t)
	// Only edge (0,1) realized; (1,2) and (1,3) do not exist.
	re := inst.FixedRealization(func(u, v int) bool { return u == 0 && v == 1 }, nil)
	st := NewState(re)
	out, err := st.Request(1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Gain != 2+1 { // B_f(1) + B_fof(0)
		t.Errorf("gain = %v, want 3", out.Gain)
	}
	if st.IsFOF(2) || st.IsFOF(3) {
		t.Error("unrealized neighbors leaked into FOF")
	}
	if st.Mutual(3) != 0 {
		t.Errorf("mutual(3) = %d over unrealized edge", st.Mutual(3))
	}
}

func TestRequestErrors(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	if _, err := st.Request(-1); !errors.Is(err, ErrBadUser) {
		t.Errorf("err = %v", err)
	}
	if _, err := st.Request(4); !errors.Is(err, ErrBadUser) {
		t.Errorf("err = %v", err)
	}
}

func TestFOFUpgradeAccounting(t *testing.T) {
	// Befriending 0 then 2 must count node 1's B_fof exactly once, then
	// upgrade when 1 itself is befriended.
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	if _, err := st.Request(0); err != nil {
		t.Fatal(err)
	}
	if st.Benefit() != 2+1 { // friend 0 + FOF 1
		t.Fatalf("benefit = %v", st.Benefit())
	}
	if _, err := st.Request(2); err != nil {
		t.Fatal(err)
	}
	// + friend 2 (B_f=2); node 1's B_fof was already counted once.
	if st.Benefit() != 3+2 {
		t.Fatalf("benefit after 2 = %v", st.Benefit())
	}
	if st.Mutual(1) != 2 {
		t.Errorf("mutual(1) = %d", st.Mutual(1))
	}
	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	// Upgrade 1: +B_f−B_fof = 1; plus 3 enters FOF: +1.
	if st.Benefit() != 5+1+1 {
		t.Errorf("benefit after 1 = %v", st.Benefit())
	}
}

func TestIncrementalMatchesRecompute(t *testing.T) {
	// Random instance, random realization, random request order: the
	// incremental benefit must always equal the from-scratch benefit.
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 10
	inst, err := s.Build(g, rng.NewSeed(9, 9))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		re := inst.SampleRealization(rng.NewSeed(uint64(trial), 1))
		st := NewState(re)
		r := rng.NewSeed(uint64(trial), 2).Rand()
		order, err := rng.SampleWithoutReplacement(r, inst.N(), 60)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range order {
			if _, err := st.Request(u); err != nil {
				t.Fatal(err)
			}
			if inc, scratch := st.Benefit(), st.RecomputeBenefit(); math.Abs(inc-scratch) > 1e-9 {
				t.Fatalf("trial %d after %d requests: incremental %v != recomputed %v",
					trial, st.Requests(), inc, scratch)
			}
		}
	}
}

func TestPosteriorEdgeProb(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	p := uniformParams(3)
	p.EdgeProb = make([]float64, g.AdjSize())
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		p.EdgeProb[g.IndexOf(e[0], e[1])] = 0.4
		p.EdgeProb[g.IndexOf(e[1], e[0])] = 0.4
	}
	inst, err := NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Realize only (0,1).
	re := inst.FixedRealization(func(u, v int) bool { return u == 0 && v == 1 }, nil)
	st := NewState(re)

	slot01 := g.IndexOf(0, 1)
	slot12 := g.IndexOf(1, 2)
	// Before any acceptance: prior.
	if got := st.PosteriorEdgeProb(0, 1, slot01); got != 0.4 {
		t.Errorf("prior = %v", got)
	}
	if _, err := st.Request(0); err != nil {
		t.Fatal(err)
	}
	// (0,1) observed to exist; (1,2) still unobserved.
	if got := st.PosteriorEdgeProb(0, 1, slot01); got != 1 {
		t.Errorf("observed-exists = %v", got)
	}
	if got := st.PosteriorEdgeProb(1, 2, slot12); got != 0.4 {
		t.Errorf("unobserved = %v", got)
	}
	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	// (1,2) now observed to NOT exist.
	if got := st.PosteriorEdgeProb(1, 2, slot12); got != 0 {
		t.Errorf("observed-missing = %v", got)
	}
}

func TestStateClone(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	cp := st.Clone()
	if _, err := cp.Request(0); err != nil {
		t.Fatal(err)
	}
	if st.Requested(0) {
		t.Error("clone mutation leaked into original")
	}
	if cp.Benefit() == st.Benefit() {
		t.Error("clone benefit should have advanced")
	}
}

// TestStateResetMatchesFresh pins the pooling contract: a state reset
// onto a realization behaves exactly like a new one — same outcomes,
// same accounting — with no residue from the previous attack.
func TestStateResetMatchesFresh(t *testing.T) {
	inst := cautiousFixture(t)
	re := allIn(inst)

	used := NewState(re)
	for u := 0; u < 3; u++ {
		if _, err := used.Request(u); err != nil {
			t.Fatal(err)
		}
	}
	used.Reset(re)

	for u := 0; u < inst.N(); u++ {
		if used.Requested(u) || used.IsFriend(u) || used.Mutual(u) != 0 {
			t.Fatalf("user %d: reset state retains attack residue", u)
		}
	}

	fresh := NewState(re)
	for u := 0; u < inst.N(); u++ {
		a, errA := used.Request(u)
		b, errB := fresh.Request(u)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("user %d: errors diverge: %v vs %v", u, errA, errB)
		}
		if a != b {
			t.Fatalf("user %d: outcome %+v vs fresh %+v", u, a, b)
		}
	}
	if used.Benefit() != fresh.Benefit() || used.Friends() != fresh.Friends() ||
		used.CautiousFriends() != fresh.CautiousFriends() || used.FOFCount() != fresh.FOFCount() {
		t.Fatalf("accounting diverged: reset (%v, %d, %d, %d) vs fresh (%v, %d, %d, %d)",
			used.Benefit(), used.Friends(), used.CautiousFriends(), used.FOFCount(),
			fresh.Benefit(), fresh.Friends(), fresh.CautiousFriends(), fresh.FOFCount())
	}
}

func TestSampleRealizationDeterministic(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 5
	inst, err := s.Build(g, rng.NewSeed(10, 11))
	if err != nil {
		t.Fatal(err)
	}
	r1 := inst.SampleRealization(rng.NewSeed(1, 2))
	r2 := inst.SampleRealization(rng.NewSeed(1, 2))
	for u := 0; u < inst.N(); u++ {
		if r1.Accepts(u) != r2.Accepts(u) {
			t.Fatal("acceptance not deterministic")
		}
	}
	g.EachEdge(func(u, v int) bool {
		if r1.EdgeExists(u, v) != r2.EdgeExists(u, v) {
			t.Fatalf("edge (%d,%d) not deterministic", u, v)
		}
		return true
	})
}

func TestSampleRealizationSymmetric(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 5
	inst, err := s.Build(g, rng.NewSeed(12, 13))
	if err != nil {
		t.Fatal(err)
	}
	re := inst.SampleRealization(rng.NewSeed(3, 4))
	g.EachEdge(func(u, v int) bool {
		if re.EdgeExists(u, v) != re.EdgeExists(v, u) {
			t.Fatalf("edge (%d,%d) asymmetric", u, v)
		}
		return true
	})
	// Cautious users never "accept" via the realization.
	for _, c := range inst.Cautious() {
		if re.Accepts(c) {
			t.Errorf("cautious %d has realized acceptance", c)
		}
	}
}

func TestSampleRealizationFrequencies(t *testing.T) {
	// Edge with p=0.5 should exist about half the time.
	g := buildGraph(t, 2, [][2]int{{0, 1}})
	p := uniformParams(2)
	p.EdgeProb = []float64{0.5, 0.5}
	inst, err := NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	root := rng.NewSeed(20, 21)
	hits := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		if inst.SampleRealization(root.SplitN("draw", i)).EdgeExists(0, 1) {
			hits++
		}
	}
	freq := float64(hits) / draws
	if freq < 0.45 || freq > 0.55 {
		t.Errorf("edge frequency %.3f, want ≈ 0.5", freq)
	}
}

func TestRealizedDegree(t *testing.T) {
	inst := cautiousFixture(t)
	re := inst.FixedRealization(func(u, v int) bool { return u == 0 && v == 1 }, nil)
	if d := re.RealizedDegree(1); d != 1 {
		t.Errorf("realized degree = %d, want 1", d)
	}
	if d := re.RealizedDegree(2); d != 0 {
		t.Errorf("realized degree = %d, want 0", d)
	}
	if d := allIn(inst).RealizedDegree(1); d != 3 {
		t.Errorf("full realization degree = %d, want 3", d)
	}
}

func TestClassCounts(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	f, fof, s := st.ClassCounts()
	if f != 0 || fof != 0 || s != 4 {
		t.Errorf("initial classes: %d/%d/%d", f, fof, s)
	}
	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	f, fof, s = st.ClassCounts()
	if f != 1 || fof != 3 || s != 0 {
		t.Errorf("after hub: %d/%d/%d", f, fof, s)
	}
	if f+fof+s != inst.N() {
		t.Error("classes do not partition V")
	}
}
