package gen

import (
	"fmt"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/rng"
)

// PowerLawConfig generates a simple graph whose degree sequence is drawn
// from a discrete power law P(d) ∝ d^(-Gamma) on [MinDeg, MaxDeg], wired
// with the configuration model (stub matching with self-loop/multi-edge
// rejection). It matches the heavy-tailed-but-not-BA degree profiles of
// the Slashdot/Twitter-like presets, where the exponent and degree cut-off
// can be calibrated independently of the edge count.
type PowerLawConfig struct {
	N      int     // number of nodes
	MinDeg int     // minimum degree
	MaxDeg int     // maximum degree
	Gamma  float64 // power-law exponent (> 1)
}

var _ Generator = PowerLawConfig{}

// Name implements Generator.
func (g PowerLawConfig) Name() string {
	return fmt.Sprintf("plconf(n=%d,deg=[%d,%d],gamma=%.2f)", g.N, g.MinDeg, g.MaxDeg, g.Gamma)
}

// Generate implements Generator.
func (g PowerLawConfig) Generate(seed rng.Seed) (*graph.Graph, error) {
	r := seed.Rand()
	degs, err := rng.PowerLawDegrees(r, g.N, g.MinDeg, g.MaxDeg, g.Gamma)
	if err != nil {
		return nil, fmt.Errorf("gen: power-law degrees: %w", err)
	}

	// Stub list: node u appears degs[u] times.
	total := 0
	for _, d := range degs {
		total += d
	}
	stubs := make([]int32, 0, total)
	for u, d := range degs {
		for i := 0; i < d; i++ {
			stubs = append(stubs, int32(u))
		}
	}
	rng.Shuffle(r, stubs)

	b := graph.NewBuilder(g.N)
	// Match consecutive stub pairs; self-loops and duplicate edges are
	// rejected, which slightly truncates the degree sequence — the
	// standard "erased configuration model".
	for i := 0; i+1 < len(stubs); i += 2 {
		if _, err := b.AddEdge(int(stubs[i]), int(stubs[i+1])); err != nil {
			return nil, err
		}
	}
	return b.Freeze(), nil
}

// WattsStrogatz generates a small-world graph: a ring lattice where each
// node connects to its K nearest neighbors (K even), with each edge
// rewired to a uniform random endpoint with probability Beta.
type WattsStrogatz struct {
	N    int     // number of nodes
	K    int     // ring degree (even)
	Beta float64 // rewiring probability
}

var _ Generator = WattsStrogatz{}

// Name implements Generator.
func (g WattsStrogatz) Name() string {
	return fmt.Sprintf("ws(n=%d,k=%d,beta=%.2f)", g.N, g.K, g.Beta)
}

// Generate implements Generator.
func (g WattsStrogatz) Generate(seed rng.Seed) (*graph.Graph, error) {
	if g.N < 3 || g.K < 2 || g.K%2 != 0 || g.K >= g.N || g.Beta < 0 || g.Beta > 1 {
		return nil, fmt.Errorf("%w: ws n=%d k=%d beta=%v", ErrBadParam, g.N, g.K, g.Beta)
	}
	r := seed.Rand()
	b := graph.NewBuilder(g.N)
	for u := 0; u < g.N; u++ {
		for j := 1; j <= g.K/2; j++ {
			v := (u + j) % g.N
			if rng.Bernoulli(r, g.Beta) {
				// Rewire: keep u, pick a random new endpoint. A failed
				// attempt (self-loop/duplicate) keeps the lattice edge.
				w := r.IntN(g.N)
				if w != u && !b.HasEdge(u, w) {
					if _, err := b.AddEdge(u, w); err != nil {
						return nil, err
					}
					continue
				}
			}
			if _, err := b.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	return b.Freeze(), nil
}
