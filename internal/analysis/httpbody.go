package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HTTPBody returns the response-body hygiene analyzer: every
// *http.Response a function obtains must have its Body closed on every
// CFG path to function exit, and a body that is closed without ever
// being read should be drained first so the keep-alive connection can be
// reused. Both checks see through in-package helpers via call-graph
// parameter summaries: a `drainClose(resp.Body)` helper that closes (and
// drains) its argument discharges the obligation at the call site.
//
// Discharges on a path: resp.Body.Close() (directly or deferred),
// passing resp or resp.Body to an in-package helper whose summary closes
// it, or transferring ownership — returning resp, storing it, sending
// it, or passing the whole response to a function outside the package
// (conservative: the analyzer cannot see whether it closes). Passing
// only resp.Body to an unknown function (json.NewDecoder(resp.Body)) is
// a read, not a discharge — the classic leak shape stays flagged.
//
// The err-nil idiom is handled by branch refinement: after
// `resp, err := client.Do(req)`, the `err != nil` branch carries no live
// response (the Client contract), so early error returns do not flag.
func HTTPBody() *Analyzer {
	a := &Analyzer{
		Name: "httpbody",
		Doc: "require every *http.Response body to be closed on all CFG paths " +
			"(through in-package helpers too), and drained before Close when " +
			"it was never read, so keep-alive connections are reused",
	}
	a.Run = func(pass *Pass) error {
		cg := NewCallGraph(pass.Pkg, pass.Info, pass.Files)
		argIs := func(arg ast.Expr, p *types.Var) bool { return exprIsParamOrBody(pass, arg, p) }
		closes := cg.ParamSummary(pass.Info, func(_ *types.Func, decl *ast.FuncDecl, p *types.Var) bool {
			return paramBodyClosed(pass, decl, p)
		}, argIs)
		drains := cg.ParamSummary(pass.Info, func(_ *types.Func, decl *ast.FuncDecl, p *types.Var) bool {
			return paramBodyDrained(pass, decl, p)
		}, argIs)
		funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
			checkBodyPaths(pass, cg, closes, body)
			checkBodyDrain(pass, cg, closes, drains, body)
		})
		return nil
	}
	return a
}

// respFact keys one unclosed response in the dataflow state: the
// response variable plus the error variable assigned alongside it (nil
// when the producing call returns no error), which the branch refinement
// uses to kill the fact on `err != nil` paths.
type respFact struct {
	resp types.Object
	err  types.Object
}

func isHTTPResponsePtr(t types.Type) bool {
	p, ok := types.Unalias(t).(*types.Pointer)
	return ok && isNamed(p.Elem(), "net/http", "Response")
}

// closeReceiver recognizes `x.Body.Close()` and `x.Close()` and returns
// the base identifier x plus the `x.Body` selector node (nil for the
// bare-closer shape).
func closeReceiver(call *ast.CallExpr) (*ast.Ident, *ast.SelectorExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
		return nil, nil
	}
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.Ident:
		return x, nil
	case *ast.SelectorExpr:
		if x.Sel.Name == "Body" {
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				return id, x
			}
		}
	}
	return nil, nil
}

// exprIsParamOrBody reports whether arg denotes p itself or p.Body.
func exprIsParamOrBody(pass *Pass, arg ast.Expr, p *types.Var) bool {
	switch a := ast.Unparen(arg).(type) {
	case *ast.Ident:
		return pass.Info.Uses[a] == p
	case *ast.SelectorExpr:
		if a.Sel.Name != "Body" {
			return false
		}
		id, ok := ast.Unparen(a.X).(*ast.Ident)
		return ok && pass.Info.Uses[id] == p
	}
	return false
}

// paramBodyClosed is the intrinsic close summary: the body contains
// `p.Close()` or `p.Body.Close()` (deferred counts — it runs in this
// activation).
func paramBodyClosed(pass *Pass, decl *ast.FuncDecl, p *types.Var) bool {
	if decl == nil || decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, _ := closeReceiver(call); id != nil && pass.Info.Uses[id] == p {
				found = true
			}
		}
		return !found
	})
	return found
}

// paramBodyDrained is the intrinsic drain summary: the body copies p (or
// p.Body) into a sink via io.Copy/io.CopyN or reads it with io.ReadAll.
func paramBodyDrained(pass *Pass, decl *ast.FuncDecl, p *types.Var) bool {
	if decl == nil || decl.Body == nil {
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		f := calleeFunc(pass, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "io" {
			return !found
		}
		var src ast.Expr
		switch f.Name() {
		case "Copy", "CopyN":
			if len(call.Args) >= 2 {
				src = call.Args[1]
			}
		case "ReadAll":
			if len(call.Args) >= 1 {
				src = call.Args[0]
			}
		}
		// A bounded drain via io.LimitReader(p, n) still drains.
		if lr, ok := ast.Unparen(src).(*ast.CallExpr); ok && len(lr.Args) >= 1 {
			if lf := calleeFunc(pass, lr); lf != nil && lf.Pkg() != nil &&
				lf.Pkg().Path() == "io" && lf.Name() == "LimitReader" {
				src = lr.Args[0]
			}
		}
		if src != nil && exprIsParamOrBody(pass, src, p) {
			found = true
		}
		return !found
	})
	return found
}

// respAssign recognizes `resp, err := <call>` (or `resp := <call>`, `=`,
// or a var declaration) where the call produces a *http.Response, and
// returns the call plus the response and error identifiers (errID nil
// when the call returns no error or it is blanked).
func respAssign(pass *Pass, n ast.Node) (call *ast.CallExpr, respID, errID *ast.Ident) {
	var lhs, rhs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		lhs, rhs = n.Lhs, n.Rhs
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || len(gd.Specs) != 1 {
			return nil, nil, nil
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok {
			return nil, nil, nil
		}
		rhs = vs.Values
		for _, name := range vs.Names {
			lhs = append(lhs, name)
		}
	default:
		return nil, nil, nil
	}
	if len(rhs) != 1 {
		return nil, nil, nil
	}
	c, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, nil, nil
	}
	tv, ok := pass.Info.Types[c]
	if !ok {
		return nil, nil, nil
	}
	ident := func(i int) *ast.Ident {
		if i >= len(lhs) {
			return nil
		}
		if id, ok := ast.Unparen(lhs[i]).(*ast.Ident); ok && id.Name != "_" {
			return id
		}
		return nil
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isHTTPResponsePtr(t.At(i).Type()) {
				respID = ident(i)
			} else if isErrorType(t.At(i).Type()) {
				errID = ident(i)
			}
		}
	default:
		if isHTTPResponsePtr(tv.Type) {
			respID = ident(0)
		}
	}
	if respID == nil {
		return nil, nil, nil
	}
	return c, respID, errID
}

func identObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return pass.Info.Uses[id]
}

// killResp deletes every fact tracking obj.
func killResp(facts Facts, obj types.Object) {
	if obj == nil {
		return
	}
	for k := range facts {
		if f, ok := k.(respFact); ok && f.resp == obj {
			delete(facts, k)
		}
	}
}

// killIdentMention discharges a response whose whole value is used as e:
// returned, stored, sent — ownership transferred.
func killIdentMention(pass *Pass, facts Facts, e ast.Expr) {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		killResp(facts, pass.Info.Uses[id])
	}
}

// checkBodyPaths runs the close-on-all-paths dataflow over one body.
func checkBodyPaths(pass *Pass, cg *CallGraph, closes map[*types.Func]map[int]bool, body *ast.BlockStmt) {
	cfg := NewCFG(body)

	transfer := func(n ast.Node, facts Facts) {
		// Kills first (defers included: a deferred Close registered on
		// this path covers every later exit).
		walkBlockNode(n, false, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if id, _ := closeReceiver(m); id != nil {
					killResp(facts, pass.Info.Uses[id])
				}
				callee := cg.StaticCallee(pass.Info, m)
				for j, arg := range m.Args {
					switch a := ast.Unparen(arg).(type) {
					case *ast.Ident:
						obj := pass.Info.Uses[a]
						if obj == nil {
							continue
						}
						// Whole response handed to a helper: an
						// in-package callee discharges only if its
						// summary closes it; an unknown callee is a
						// conservative ownership transfer.
						if callee == nil || closes[callee][j] {
							killResp(facts, obj)
						}
					case *ast.SelectorExpr:
						// resp.Body handed to a close-summarized helper
						// discharges; to anything else it is only a read.
						if a.Sel.Name != "Body" || callee == nil || !closes[callee][j] {
							continue
						}
						if id, ok := ast.Unparen(a.X).(*ast.Ident); ok {
							killResp(facts, pass.Info.Uses[id])
						}
					}
				}
			case *ast.AssignStmt:
				for _, r := range m.Rhs {
					killIdentMention(pass, facts, r)
				}
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					killIdentMention(pass, facts, r)
				}
			case *ast.SendStmt:
				killIdentMention(pass, facts, m.Value)
			case *ast.CompositeLit:
				for _, el := range m.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						el = kv.Value
					}
					killIdentMention(pass, facts, el)
				}
			}
			return true
		})
		// Gens second: a reassignment replaces the old obligation.
		if call, respID, errID := respAssign(pass, n); call != nil {
			if obj := identObj(pass, respID); obj != nil {
				killResp(facts, obj)
				var errObj types.Object
				if errID != nil {
					errObj = identObj(pass, errID)
				}
				facts[respFact{resp: obj, err: errObj}] = call.Pos()
			}
		}
	}

	// Branch refinement: on the `err != nil` edge the paired response is
	// nil (http.Client contract), so the obligation dies with it.
	refine := func(cond ast.Expr, branch int, facts Facts) {
		bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
			return
		}
		idSide := bin.X
		if isNilExpr(pass, bin.X) {
			idSide = bin.Y
		} else if !isNilExpr(pass, bin.Y) {
			return
		}
		id, ok := ast.Unparen(idSide).(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return
		}
		errHolds := 0 // builder orders the true edge first
		if bin.Op == token.EQL {
			errHolds = 1
		}
		if branch != errHolds {
			return
		}
		for k := range facts {
			if f, ok := k.(respFact); ok && f.err != nil && f.err == obj {
				delete(facts, k)
			}
		}
	}

	_, exit := cfg.ForwardMayRefined(transfer, refine)
	for k, pos := range exit {
		f := k.(respFact)
		pass.Reportf(pos,
			"%s's response body is not closed on every path to function exit, which leaks the connection; defer %s.Body.Close() once the error has been checked",
			f.resp.Name(), f.resp.Name())
	}
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.IsNil()
}

// checkBodyDrain flags responses whose body is closed but never read:
// the closed-but-undrained shape prevents net/http from reusing the
// keep-alive connection. The check is function-granular (any read of the
// body anywhere in the function counts), trading path precision for a
// near-zero false-positive rate.
func checkBodyDrain(pass *Pass, cg *CallGraph, closes, drains map[*types.Func]map[int]bool, body *ast.BlockStmt) {
	type bodyUse struct {
		closePos token.Pos
		read     bool
	}
	tracked := make(map[types.Object]*bodyUse)
	walkBlockNode(body, false, func(n ast.Node) bool {
		if _, respID, _ := respAssign(pass, n); respID != nil {
			if obj := identObj(pass, respID); obj != nil && tracked[obj] == nil {
				tracked[obj] = &bodyUse{}
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// Close sites consume their `resp.Body` mention; everything else
	// mentioning the body is read evidence.
	consumed := make(map[ast.Node]bool)
	walkBlockNode(body, false, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, bodySel := closeReceiver(call); id != nil {
			if st := tracked[pass.Info.Uses[id]]; st != nil {
				if st.closePos == token.NoPos {
					st.closePos = call.Pos()
				}
				if bodySel != nil {
					consumed[bodySel] = true
				}
			}
		}
		callee := cg.StaticCallee(pass.Info, call)
		if callee == nil {
			return true
		}
		for j, arg := range call.Args {
			if !closes[callee][j] {
				continue
			}
			a := ast.Unparen(arg)
			var base *ast.Ident
			switch a := a.(type) {
			case *ast.Ident:
				base = a
			case *ast.SelectorExpr:
				if a.Sel.Name == "Body" {
					base, _ = ast.Unparen(a.X).(*ast.Ident)
				}
			}
			if base == nil {
				continue
			}
			if st := tracked[pass.Info.Uses[base]]; st != nil {
				if st.closePos == token.NoPos {
					st.closePos = call.Pos()
				}
				if drains[callee][j] {
					st.read = true
				}
				consumed[a] = true
			}
		}
		return true
	})
	walkBlockNode(body, false, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Body" || consumed[sel] {
			return true
		}
		id, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if st := tracked[pass.Info.Uses[id]]; st != nil {
			st.read = true
		}
		return true
	})

	for obj, st := range tracked {
		if st.closePos != token.NoPos && !st.read {
			pass.Reportf(st.closePos,
				"%s's body is closed but never read or drained; io.Copy(io.Discard, %s.Body) before Close so the keep-alive connection is reused",
				obj.Name(), obj.Name())
		}
	}
}
