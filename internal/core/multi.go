package core

import (
	"fmt"

	"github.com/accu-sim/accu/internal/osn"
)

// MultiStep records one request of a collaborative multi-bot attack.
type MultiStep struct {
	// Bot is the requesting bot index.
	Bot int
	// Step carries the request outcome and running totals.
	Step
}

// MultiResult is the trace of a collaborative attack.
type MultiResult struct {
	// Bots is the number of socialbots.
	Bots int
	// Steps holds one record per request, in send order.
	Steps []MultiStep
	// Benefit is the collective (union) benefit.
	Benefit float64
	// Friends and CautiousFriends count users befriended by >= 1 bot.
	Friends         int
	CautiousFriends int
}

// RunMulti executes the collaborative multi-socialbot attack (paper
// reference [5]): `bots` bots share all observations and a single budget
// of k requests, dispatched round-robin; at its turn each bot greedily
// requests the user maximizing the ABM potential from its own view
// (bot-local friendships and mutual-friend counts, shared edge
// observations). Users already befriended by the collective are skipped —
// their friend benefit is spent. Selection is a full O(N) scan per
// request; this runner is meant for analysis-scale experiments, not the
// sequential hot path.
func RunMulti(re *osn.Realization, bots, k int, w Weights) (*MultiResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoBudget, k)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	ms, err := osn.NewMultiState(re, bots)
	if err != nil {
		return nil, err
	}
	views := make([]*osn.BotView, bots)
	for b := 0; b < bots; b++ {
		v, err := ms.View(b)
		if err != nil {
			return nil, err
		}
		views[b] = v
	}

	n := re.Instance().N()
	res := &MultiResult{Bots: bots, Steps: make([]MultiStep, 0, k)}
	for i := 0; i < k; i++ {
		b := i % bots
		view := views[b]
		best, bestScore := -1, -1.0
		for u := 0; u < n; u++ {
			if view.Requested(u) || ms.FriendOfAny(u) {
				continue
			}
			score := Potential(view, u, w)
			if score > bestScore {
				best, bestScore = u, score
			}
		}
		if best < 0 {
			break
		}
		out, err := ms.Request(b, best)
		if err != nil {
			return nil, fmt.Errorf("core: multi-bot request: %w", err)
		}
		res.Steps = append(res.Steps, MultiStep{
			Bot: b,
			Step: Step{
				User:                 out.User,
				Accepted:             out.Accepted,
				Cautious:             out.Cautious,
				Gain:                 out.Gain,
				BenefitAfter:         ms.Benefit(),
				CautiousFriendsAfter: ms.CautiousFriends(),
			},
		})
	}
	res.Benefit = ms.Benefit()
	res.Friends = ms.Friends()
	res.CautiousFriends = ms.CautiousFriends()
	return res, nil
}
