package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sketch is a mergeable streaming quantile sketch with a bounded number
// of centroids and a deterministic, order-insensitive merge: two
// sketches built over the same multiset of observations — in any add
// order, under any merge tree, at any partition of the stream — hold
// bit-identical state and serialize to identical bytes. That contract
// is what lets the internal/dist coordinator fold worker batches in
// arrival order and still publish quantile snapshots byte-identical to
// an uninterrupted local run.
//
// Classic t-digest centroids cannot satisfy it: their positions are
// weighted means of whichever values happened to compress together, so
// they depend on insertion and merge history. This sketch instead pins
// every centroid to a deterministic location — log-spaced buckets with
// relative width alpha, as in DDSketch — and keeps exact integer counts
// per bucket, so bucket membership is a pure function of the value and
// counts add commutatively.
//
// The centroid bound is enforced by a canonical coarsening rule rather
// than by history-dependent compression: the sketch always holds
// (level L, counts at level L) where one level-L bucket spans 2^L base
// buckets, and L is the smallest level at which the multiset's bucket
// count fits MaxCentroids. L is a pure function of the observed
// multiset: coarsening is monotone and is triggered only when the
// bucket count of some sub-multiset exceeds the bound, and a
// sub-multiset never occupies more buckets than the full multiset —
// so every add/merge path lands on the same level and the same counts.
//
// Accuracy: a level-0 bucket has relative width alpha, and each
// coarsening doubles the width in log space, so Quantile's relative
// error is ~alpha·2^L. With the default MaxCentroids of 512 real
// workloads stay at level 0.
//
// The zero value is not ready to use; construct with NewSketch. Not
// safe for concurrent use. NaN and ±Inf observations are ignored.
type Sketch struct {
	alpha        float64
	lnGamma      float64 // ln((1+alpha)/(1-alpha)), the base bucket width
	maxCentroids int
	level        uint32
	count        int64
	zero         int64 // observations equal to ±0
	min, max     float64
	pos, neg     map[int32]int64 // level-L bucket index -> count
}

// DefaultSketchAlpha is the base relative accuracy of NewSketch.
const DefaultSketchAlpha = 0.005

// DefaultMaxCentroids bounds the sketch's bucket count under NewSketch.
const DefaultMaxCentroids = 512

// NewSketch returns an empty sketch with the default accuracy and
// centroid bound.
func NewSketch() *Sketch {
	s, err := NewSketchWith(DefaultSketchAlpha, DefaultMaxCentroids)
	if err != nil {
		panic(err) // defaults are valid by construction
	}
	return s
}

// NewSketchWith returns an empty sketch with relative accuracy alpha in
// (0, 1) and at most maxCentroids buckets (minimum 8). Sketches merge
// only with sketches of identical parameters.
func NewSketchWith(alpha float64, maxCentroids int) (*Sketch, error) {
	if !(alpha > 0 && alpha < 1) {
		return nil, fmt.Errorf("stats: sketch alpha %v not in (0, 1)", alpha)
	}
	if maxCentroids < 8 {
		return nil, fmt.Errorf("stats: sketch maxCentroids %d < 8", maxCentroids)
	}
	return &Sketch{
		alpha:        alpha,
		lnGamma:      math.Log((1 + alpha) / (1 - alpha)),
		maxCentroids: maxCentroids,
		pos:          make(map[int32]int64),
		neg:          make(map[int32]int64),
	}, nil
}

// baseIndex maps a positive magnitude to its level-0 bucket: bucket i
// covers (gamma^(i-1), gamma^i].
func (s *Sketch) baseIndex(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / s.lnGamma))
}

// key coarsens a level-0 bucket index to the sketch's current level.
// Signed right shift is floor division by 2^level, which composes:
// coarsening twice by one level equals coarsening once by two, so a
// value's bucket at level L never depends on the path taken to L.
func (s *Sketch) key(base int32) int32 { return base >> s.level }

// Add folds one observation into the sketch. NaN and ±Inf are ignored.
func (s *Sketch) Add(x float64) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return
	}
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		s.min = math.Min(s.min, x)
		s.max = math.Max(s.max, x)
	}
	s.count++
	switch {
	case x == 0:
		s.zero++
	case x > 0:
		s.pos[s.key(s.baseIndex(x))]++
	default:
		s.neg[s.key(s.baseIndex(-x))]++
	}
	s.coarsen()
}

// coarsen raises the level until the bucket count fits the bound.
func (s *Sketch) coarsen() {
	for len(s.pos)+len(s.neg) > s.maxCentroids {
		s.level++
		s.pos = coarsenOne(s.pos)
		s.neg = coarsenOne(s.neg)
	}
}

// coarsenOne halves the resolution of one bucket map (level L → L+1).
func coarsenOne(m map[int32]int64) map[int32]int64 {
	out := make(map[int32]int64, (len(m)+1)/2)
	for k, n := range m {
		out[k>>1] += n
	}
	return out
}

// Merge folds another sketch into this one. The other sketch is not
// modified. Merging requires identical alpha and MaxCentroids — two
// sketches with different bucket geometry have no common canonical
// form — and fails loudly otherwise.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if o.alpha != s.alpha || o.maxCentroids != s.maxCentroids {
		return fmt.Errorf("stats: merge incompatible sketches: alpha %v/%v maxCentroids %d/%d",
			s.alpha, o.alpha, s.maxCentroids, o.maxCentroids)
	}
	opos, oneg := o.pos, o.neg
	switch {
	case o.level > s.level:
		// Raise the receiver; its maps are ours to rewrite.
		for s.level < o.level {
			s.level++
			s.pos = coarsenOne(s.pos)
			s.neg = coarsenOne(s.neg)
		}
	case o.level < s.level:
		// Raise copies of the other side's maps; o stays untouched.
		shift := s.level - o.level
		opos = coarsenBy(opos, shift)
		oneg = coarsenBy(oneg, shift)
	}
	for k, n := range opos {
		s.pos[k] += n
	}
	for k, n := range oneg {
		s.neg[k] += n
	}
	if s.count == 0 {
		s.min, s.max = o.min, o.max
	} else {
		s.min = math.Min(s.min, o.min)
		s.max = math.Max(s.max, o.max)
	}
	s.count += o.count
	s.zero += o.zero
	s.coarsen()
	return nil
}

// coarsenBy copies a bucket map coarsened by shift levels.
func coarsenBy(m map[int32]int64, shift uint32) map[int32]int64 {
	out := make(map[int32]int64, len(m))
	for k, n := range m {
		out[k>>shift] += n
	}
	return out
}

// Count returns the number of observations folded in.
func (s *Sketch) Count() int64 { return s.count }

// Min returns the exact minimum observation (NaN when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the exact maximum observation (NaN when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return math.NaN()
	}
	return s.max
}

// Centroids returns the current number of occupied buckets (the memory
// footprint the MaxCentroids bound caps).
func (s *Sketch) Centroids() int { return len(s.pos) + len(s.neg) }

// Level returns the current coarsening level (0 = base resolution).
func (s *Sketch) Level() int { return int(s.level) }

// Quantile returns an estimate of the q-quantile (q in [0, 1]) with
// relative error ~alpha·2^level, clamped to the exact observed
// [Min, Max]. It returns NaN on an empty sketch or q outside [0, 1].
// Quantile is a pure function of the sketch's canonical state, so equal
// sketches answer equal quantiles.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 || math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	// The extreme ranks are known exactly — the sketch tracks true
	// min/max — so return them rather than a bucket midpoint.
	if rank == 1 {
		return s.min
	}
	if rank == s.count {
		return s.max
	}
	// Walk buckets in ascending value order: negatives (most negative
	// first), zeros, positives.
	cum := int64(0)
	for _, k := range sortedKeys(s.neg, true) {
		cum += s.neg[k]
		if cum >= rank {
			return s.clamp(-s.representative(k))
		}
	}
	cum += s.zero
	if cum >= rank {
		return s.clamp(0)
	}
	for _, k := range sortedKeys(s.pos, false) {
		cum += s.pos[k]
		if cum >= rank {
			return s.clamp(s.representative(k))
		}
	}
	return s.max // unreachable: cum == count after the last bucket
}

// representative returns the canonical point estimate of a level-L
// bucket: the geometric midpoint of the magnitude range it covers,
// (gamma^(k·2^L − 1), gamma^((k+1)·2^L − 1)].
func (s *Sketch) representative(k int32) float64 {
	p := float64(int64(1) << s.level)
	lo := float64(int64(k))*p - 1
	return math.Exp(s.lnGamma * (lo + p/2))
}

// clamp bounds an estimate by the exact observed extrema.
func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// sortedKeys returns the map's keys in ascending (or descending) order.
func sortedKeys(m map[int32]int64, desc bool) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if desc {
			return keys[i] > keys[j]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// SketchCentroid is one bucket of a sketch snapshot: the level-scaled
// bucket index and its exact observation count.
//
//accu:wire
type SketchCentroid struct {
	Index int32 `json:"i"`
	Count int64 `json:"n"`
}

// SketchSnapshot is the JSON-marshalable canonical state of a Sketch
// plus convenience quantiles. Buckets are sorted by index and counts
// are exact integers, so two snapshots of sketches over the same record
// set marshal to identical bytes regardless of how the observations
// were partitioned or in which order partial sketches were merged. Min,
// Max and the convenience quantiles are pure functions of that state
// (0, not NaN, when the sketch is empty, keeping the JSON valid).
//
//accu:wire
type SketchSnapshot struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`

	Alpha        float64          `json:"alpha"`
	MaxCentroids int              `json:"maxCentroids"`
	Level        uint32           `json:"level"`
	Zero         int64            `json:"zero,omitempty"`
	Neg          []SketchCentroid `json:"neg,omitempty"`
	Pos          []SketchCentroid `json:"pos,omitempty"`
}

// Snapshot captures the sketch's canonical state and headline quantiles.
func (s *Sketch) Snapshot() SketchSnapshot {
	snap := SketchSnapshot{
		Count:        s.count,
		Alpha:        s.alpha,
		MaxCentroids: s.maxCentroids,
		Level:        s.level,
		Zero:         s.zero,
	}
	if s.count > 0 {
		snap.Min, snap.Max = s.min, s.max
		snap.P50 = s.Quantile(0.5)
		snap.P90 = s.Quantile(0.9)
		snap.P99 = s.Quantile(0.99)
	}
	for _, k := range sortedKeys(s.neg, false) {
		snap.Neg = append(snap.Neg, SketchCentroid{Index: k, Count: s.neg[k]})
	}
	for _, k := range sortedKeys(s.pos, false) {
		snap.Pos = append(snap.Pos, SketchCentroid{Index: k, Count: s.pos[k]})
	}
	return snap
}

// SketchFromSnapshot reconstructs a sketch from its snapshot — the
// inverse of Snapshot up to the convenience fields, which are
// recomputable. Counts must be positive and bucket indices unique.
func SketchFromSnapshot(snap SketchSnapshot) (*Sketch, error) {
	s, err := NewSketchWith(snap.Alpha, snap.MaxCentroids)
	if err != nil {
		return nil, err
	}
	s.level = snap.Level
	s.count = snap.Count
	s.zero = snap.Zero
	if snap.Count > 0 {
		s.min, s.max = snap.Min, snap.Max
	}
	total := snap.Zero
	for _, side := range [][]SketchCentroid{snap.Neg, snap.Pos} {
		for _, c := range side {
			if c.Count <= 0 {
				return nil, fmt.Errorf("stats: sketch snapshot bucket %d has count %d", c.Index, c.Count)
			}
			total += c.Count
		}
	}
	if total != snap.Count {
		return nil, fmt.Errorf("stats: sketch snapshot bucket counts sum to %d, want count %d", total, snap.Count)
	}
	for _, c := range snap.Neg {
		if _, dup := s.neg[c.Index]; dup {
			return nil, fmt.Errorf("stats: sketch snapshot duplicate neg bucket %d", c.Index)
		}
		s.neg[c.Index] = c.Count
	}
	for _, c := range snap.Pos {
		if _, dup := s.pos[c.Index]; dup {
			return nil, fmt.Errorf("stats: sketch snapshot duplicate pos bucket %d", c.Index)
		}
		s.pos[c.Index] = c.Count
	}
	return s, nil
}
