package osn

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"github.com/accu-sim/accu/internal/rng"
)

func TestJournalReplayMatchesLive(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 8
	inst, err := s.Build(g, rng.NewSeed(121, 122))
	if err != nil {
		t.Fatal(err)
	}
	re := inst.SampleRealization(rng.NewSeed(123, 124))

	// Live attack with journaling.
	live := NewState(re)
	j := &Journal{}
	r := rng.NewSeed(125, 126).Rand()
	order, err := rng.SampleWithoutReplacement(r, inst.N(), 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range order {
		if _, err := live.Request(u); err != nil {
			t.Fatal(err)
		}
		j.Record(u)
	}

	replayed, err := j.Replay(re)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Benefit() != live.Benefit() ||
		replayed.Friends() != live.Friends() ||
		replayed.CautiousFriends() != live.CautiousFriends() {
		t.Errorf("replay diverged: %v/%d/%d vs %v/%d/%d",
			replayed.Benefit(), replayed.Friends(), replayed.CautiousFriends(),
			live.Benefit(), live.Friends(), live.CautiousFriends())
	}
}

func TestJournalBatchReplay(t *testing.T) {
	inst := cautiousFixture(t)
	re := allIn(inst)

	live := NewState(re)
	j := &Journal{}
	if _, err := live.RequestBatch([]int{0, 1}); err != nil {
		t.Fatal(err)
	}
	j.RecordBatch([]int{0, 1})
	if _, err := live.Request(3); err != nil {
		t.Fatal(err)
	}
	j.Record(3)

	replayed, err := j.Replay(re)
	if err != nil {
		t.Fatal(err)
	}
	if replayed.Benefit() != live.Benefit() {
		t.Errorf("batch replay: %v vs %v", replayed.Benefit(), live.Benefit())
	}
}

func TestJournalMixedSingleThenBatch(t *testing.T) {
	j := &Journal{}
	j.Record(5)
	j.RecordBatch([]int{7, 9})
	j.Record(2)
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(j.Users) != 4 || len(j.BatchSizes) != 3 {
		t.Errorf("journal shape: users %v batches %v", j.Users, j.BatchSizes)
	}
	if j.BatchSizes[0] != 1 || j.BatchSizes[1] != 2 || j.BatchSizes[2] != 1 {
		t.Errorf("batch sizes %v", j.BatchSizes)
	}
}

func TestJournalValidate(t *testing.T) {
	j := &Journal{Users: []int{1, 2}, BatchSizes: []int{1}}
	if err := j.Validate(); !errors.Is(err, ErrJournalShape) {
		t.Errorf("short batches: %v", err)
	}
	j = &Journal{Users: []int{1}, BatchSizes: []int{0, 1}}
	if err := j.Validate(); !errors.Is(err, ErrJournalShape) {
		t.Errorf("zero batch: %v", err)
	}
	if _, err := j.Replay(allIn(cautiousFixture(t))); err == nil {
		t.Error("replay of invalid journal: want error")
	}
}

func TestJournalSerializationRoundTrip(t *testing.T) {
	j := &Journal{}
	j.Record(5)
	j.RecordBatch([]int{7, 9})
	j.Record(2)

	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	j2, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(j2.Users) != len(j.Users) {
		t.Fatalf("users %v vs %v", j2.Users, j.Users)
	}
	for i := range j.Users {
		if j2.Users[i] != j.Users[i] {
			t.Fatalf("users %v vs %v", j2.Users, j.Users)
		}
	}
	for i := range j.BatchSizes {
		if j2.BatchSizes[i] != j.BatchSizes[i] {
			t.Fatalf("batches %v vs %v", j2.BatchSizes, j.BatchSizes)
		}
	}
}

func TestJournalSingleOnlySerialization(t *testing.T) {
	j := &Journal{Users: []int{3, 1, 4}}
	var buf bytes.Buffer
	if _, err := j.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	j2, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if j2.BatchSizes != nil {
		t.Errorf("single-only journal grew batch sizes: %v", j2.BatchSizes)
	}
	if len(j2.Users) != 3 || j2.Users[0] != 3 {
		t.Errorf("users = %v", j2.Users)
	}
}

func TestReadJournalErrorsAndComments(t *testing.T) {
	if _, err := ReadJournal(strings.NewReader("1 x 3\n")); err == nil {
		t.Error("bad token: want error")
	}
	j, err := ReadJournal(strings.NewReader("# comment\n\n4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Users) != 1 || j.Users[0] != 4 {
		t.Errorf("users = %v", j.Users)
	}
}

func TestJournalRoundTripProperty(t *testing.T) {
	// Random journals (mixed batch shapes) survive serialization intact.
	f := func(raw []uint8, batched bool) bool {
		j := &Journal{}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		i := 0
		for i < len(raw) {
			if batched && int(raw[i])%3 == 0 && i+2 < len(raw) {
				j.RecordBatch([]int{int(raw[i]), int(raw[i+1]), int(raw[i+2])})
				i += 3
				continue
			}
			j.Record(int(raw[i]))
			i++
		}
		var buf bytes.Buffer
		if _, err := j.WriteTo(&buf); err != nil {
			return false
		}
		j2, err := ReadJournal(&buf)
		if err != nil {
			return false
		}
		if len(j2.Users) != len(j.Users) {
			return false
		}
		for k := range j.Users {
			if j2.Users[k] != j.Users[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
