// Package serv turns the batch Monte-Carlo engine into a long-running
// HTTP service: clients submit sim protocols as jobs into a persistent
// priority queue with per-tenant quotas, a worker pool executes them with
// per-job checkpoint journals (so a crashed or drained server resumes
// exactly where it stopped, bit-identically), progress streams out over
// SSE or polling, and an admin surface lists, cancels, resumes and
// observes jobs. cmd/accuserv is the binary wrapping this package.
//
// Durability model: the job documents (state, priority, attempts) and the
// per-job sim.CellJournal both live under one data directory. Every
// completed (network, run) cell is journaled before it counts, so the
// kill-anywhere guarantee of the PR-4 checkpoint machinery extends to the
// whole service — a SIGKILL mid-cell costs at most that cell's partial
// work, never correctness: the resumed job's record set (and therefore
// its result digest) is bit-identical to an uninterrupted run.
package serv

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/accu-sim/accu/internal/obs"
)

// Service errors, mapped onto HTTP statuses by the handlers.
var (
	// ErrDuplicateJob rejects a submit reusing an existing job ID.
	ErrDuplicateJob = errors.New("serv: duplicate job id")
	// ErrQuotaExceeded rejects a submit that would push the tenant past
	// its active-job quota.
	ErrQuotaExceeded = errors.New("serv: tenant quota exceeded")
	// ErrNotFound reports an unknown job ID.
	ErrNotFound = errors.New("serv: job not found")
	// ErrConflict reports an operation invalid in the job's state
	// (cancel a finished job, resume a running one, ...).
	ErrConflict = errors.New("serv: operation conflicts with job state")
	// ErrDraining rejects submits while the server shuts down.
	ErrDraining = errors.New("serv: server draining")
)

// Cancellation causes, distinguished via context.Cause so the runner can
// tell a client cancel (job → cancelled) from a drain preemption (job →
// queued, resumed by the next process).
var (
	errCancelJob = errors.New("serv: job cancelled by client")
	errDrainJob  = errors.New("serv: job preempted by drain")
)

// Config sizes the service.
type Config struct {
	// Dir is the persistent data directory (job documents and cell
	// journals).
	Dir string
	// Workers is the number of concurrent job executions (not to be
	// confused with Spec.Workers, the engine pool inside one job).
	// 0 means 1: jobs run strictly one at a time.
	Workers int
	// DefaultQuota bounds each tenant's active (queued + running) jobs;
	// 0 means unlimited. TenantQuotas overrides it per tenant.
	DefaultQuota int
	TenantQuotas map[string]int
	// DefaultMaxAttempts is the per-job attempt budget when a submit
	// does not set one; 0 means 1 (no automatic retry).
	DefaultMaxAttempts int
	// Logf, when non-nil, receives one line per lifecycle transition.
	Logf func(format string, args ...any)
}

// servMetrics are the server-scoped instruments (per-job engine metrics
// live in each job's own registry, surfaced via /metrics prefixed with
// "job.<id>.").
type servMetrics struct {
	submitted    *obs.Counter
	completed    *obs.Counter
	failed       *obs.Counter
	cancelled    *obs.Counter
	retried      *obs.Counter
	resumed      *obs.Counter
	requeued     *obs.Counter
	quotaRejects *obs.Counter
	dupRejects   *obs.Counter
	queued       *obs.Gauge
	running      *obs.Gauge
	jobNS        *obs.Histogram
}

func newServMetrics(reg *obs.Registry) servMetrics {
	return servMetrics{
		submitted:    reg.Counter("serv.jobs_submitted"),
		completed:    reg.Counter("serv.jobs_completed"),
		failed:       reg.Counter("serv.jobs_failed"),
		cancelled:    reg.Counter("serv.jobs_cancelled"),
		retried:      reg.Counter("serv.jobs_retried"),
		resumed:      reg.Counter("serv.jobs_resumed"),
		requeued:     reg.Counter("serv.jobs_requeued"),
		quotaRejects: reg.Counter("serv.quota_rejections"),
		dupRejects:   reg.Counter("serv.duplicate_rejections"),
		queued:       reg.Gauge("serv.jobs_queued"),
		running:      reg.Gauge("serv.jobs_running"),
		jobNS:        reg.Histogram("serv.job_ns"),
	}
}

// Server is the job-queue service. Create with New, start the worker
// pool with Start, wire Handler into an http.Server, and stop with
// Drain.
type Server struct {
	cfg   Config
	store *store
	reg   *obs.Registry
	m     servMetrics

	mu           sync.Mutex
	cond         *sync.Cond
	jobs         map[string]*entry
	queue        entryHeap
	tenantActive map[string]int
	runningCount int
	seq          int64
	draining     bool

	workersWG sync.WaitGroup

	// execute runs one claimed job and returns its result; swapped by
	// lifecycle tests to script outcomes without real simulations. The
	// default is (*Server).executeJob.
	execute func(ctx context.Context, e *entry) (*Result, error)
}

// New opens (or creates) the data directory, loads every persisted job
// and requeues the ones a previous process left queued or running —
// running jobs are the crash case and resume from their checkpoints
// without consuming an attempt.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.DefaultMaxAttempts <= 0 {
		cfg.DefaultMaxAttempts = 1
	}
	st, err := openStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		store:        st,
		reg:          obs.New(),
		jobs:         make(map[string]*entry),
		tenantActive: make(map[string]int),
	}
	s.cond = sync.NewCond(&s.mu)
	s.m = newServMetrics(s.reg)
	s.execute = s.executeJob

	jobs, err := st.loadJobs()
	if err != nil {
		return nil, err
	}
	for i := range jobs {
		j := jobs[i]
		e := &entry{job: j, heapIndex: -1, hub: newHub()}
		if j.State == StateRunning {
			// Crash recovery: the previous process died mid-run. The cell
			// journal holds the completed cells; requeue without burning
			// an attempt.
			e.job.State = StateQueued
			if e.job.Attempt > 0 {
				e.job.Attempt--
			}
			if err := st.saveJob(&e.job); err != nil {
				return nil, err
			}
			s.m.requeued.Inc()
			s.logf("job %s: recovered running job, requeued (attempt %d/%d)",
				j.ID, e.job.Attempt, e.job.MaxAttempts)
		}
		if e.job.State.terminal() {
			e.hub.close()
		}
		s.jobs[j.ID] = e
		if e.job.State == StateQueued {
			heap.Push(&s.queue, e)
			s.tenantActive[j.Tenant]++
		}
		if j.Seq >= s.seq {
			s.seq = j.Seq + 1
		}
	}
	s.updateGauges()
	return s, nil
}

// Registry exposes the server-scoped metrics registry.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Start launches the worker pool. Call once.
func (s *Server) Start() {
	s.workersWG.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.workerLoop()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// updateGauges refreshes the queue-depth gauges; callers hold s.mu.
func (s *Server) updateGauges() {
	s.m.queued.Set(float64(s.queue.Len()))
	s.m.running.Set(float64(s.runningCount))
}

// SubmitRequest is the POST /api/v1/jobs payload.
//
//accu:wire
type SubmitRequest struct {
	// ID, when set, names the job (lowercase [a-z0-9_], ≤ 64 chars); a
	// resubmission of an existing ID is rejected with ErrDuplicateJob,
	// which is the idempotency handle. Empty auto-assigns "j<seq>".
	ID string `json:"id,omitempty"`
	// Tenant attributes the job for quota accounting ("default" when
	// empty; the X-Accu-Tenant header also sets it).
	Tenant string `json:"tenant,omitempty"`
	// Priority orders the queue: higher first, FIFO within a class.
	Priority int `json:"priority,omitempty"`
	// MaxAttempts bounds automatic retries of failed executions; 0 uses
	// the server default.
	MaxAttempts int `json:"maxAttempts,omitempty"`
	Spec        Spec `json:"spec"`
}

// Submit validates and enqueues a job, returning its document.
func (s *Server) Submit(req SubmitRequest) (Job, error) {
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.ID != "" && !ValidJobID(req.ID) {
		return Job{}, fmt.Errorf("serv: invalid job id %q (want lowercase [a-z0-9_], max 64 chars)", req.ID)
	}
	if err := req.Spec.Validate(); err != nil {
		return Job{}, err
	}
	maxAttempts := req.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = s.cfg.DefaultMaxAttempts
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Job{}, ErrDraining
	}
	id := req.ID
	if id == "" {
		id = fmt.Sprintf("j%06d", s.seq)
	}
	if _, ok := s.jobs[id]; ok {
		s.m.dupRejects.Inc()
		return Job{}, fmt.Errorf("%w: %s", ErrDuplicateJob, id)
	}
	if limit, ok := s.quota(req.Tenant); ok && s.tenantActive[req.Tenant] >= limit {
		s.m.quotaRejects.Inc()
		return Job{}, fmt.Errorf("%w: tenant %s has %d active jobs (limit %d)",
			ErrQuotaExceeded, req.Tenant, s.tenantActive[req.Tenant], limit)
	}
	e := &entry{
		job: Job{
			ID:          id,
			Tenant:      req.Tenant,
			Priority:    req.Priority,
			Seq:         s.seq,
			Spec:        req.Spec,
			State:       StateQueued,
			MaxAttempts: maxAttempts,
			SubmittedAt: time.Now().UTC(),
			Progress:    Progress{Total: req.Spec.Cells()},
		},
		heapIndex: -1,
		hub:       newHub(),
	}
	if err := s.store.saveJob(&e.job); err != nil { //accu:allow lockedio -- durability-before-signal: the job document must hit disk before the ID is visible
		return Job{}, err
	}
	s.seq++
	s.jobs[id] = e
	s.tenantActive[req.Tenant]++
	heap.Push(&s.queue, e)
	s.m.submitted.Inc()
	s.updateGauges()
	s.cond.Signal()
	s.logf("job %s: submitted by %s (priority %d, %d cells)", id, req.Tenant, req.Priority, e.job.Progress.Total)
	return e.job, nil
}

// quota resolves a tenant's active-job limit.
func (s *Server) quota(tenant string) (int, bool) {
	if q, ok := s.cfg.TenantQuotas[tenant]; ok {
		return q, q > 0
	}
	return s.cfg.DefaultQuota, s.cfg.DefaultQuota > 0
}

// Get returns a job's document; running jobs carry live progress.
func (s *Server) Get(id string) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return s.view(e), nil
}

// List returns every job (optionally filtered by state and/or tenant) in
// submission order.
func (s *Server) List(state State, tenant string) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, e := range s.jobs {
		if state != "" && e.job.State != state {
			continue
		}
		if tenant != "" && e.job.Tenant != tenant {
			continue
		}
		out = append(out, s.view(e))
	}
	sortJobs(out)
	return out
}

// view snapshots a job document with live progress; callers hold s.mu.
func (s *Server) view(e *entry) Job {
	j := e.job // value copy; Result pointer shared but immutable once set
	if j.State == StateRunning {
		j.Progress.Done = e.done.Load()
		j.Progress.Resumed = e.resumed.Load()
	}
	return j
}

// Cancel stops a job: a queued job is cancelled immediately, a running
// one is interrupted (its cancellation is observed asynchronously; the
// checkpoint keeps its completed cells for a later Resume). Terminal jobs
// conflict.
func (s *Server) Cancel(id string) (Job, error) {
	s.mu.Lock()
	e, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch e.job.State {
	case StateQueued:
		heap.Remove(&s.queue, e.heapIndex)
		s.finishLocked(e, StateCancelled, "cancelled by client") //accu:allow lockedio -- durability-before-signal: the terminal state persists before waiters wake
		job := s.view(e)
		s.mu.Unlock()
		return job, nil
	case StateRunning:
		e.cancel(errCancelJob)
		job := s.view(e)
		s.mu.Unlock()
		return job, nil
	default:
		job := s.view(e)
		s.mu.Unlock()
		return job, fmt.Errorf("%w: job %s is %s", ErrConflict, id, job.State)
	}
}

// Resume requeues a failed or cancelled job with a fresh attempt budget;
// its checkpoint journal is picked up where it left off.
func (s *Server) Resume(id string) (Job, error) {
	s.mu.Lock()
	e, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Job{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if st := e.job.State; st != StateFailed && st != StateCancelled {
		job := s.view(e)
		s.mu.Unlock()
		return job, fmt.Errorf("%w: job %s is %s, resume applies to failed or cancelled jobs", ErrConflict, id, st)
	}
	if s.draining {
		s.mu.Unlock()
		return Job{}, ErrDraining
	}
	e.job.State = StateQueued
	e.job.Attempt = 0
	e.job.Error = ""
	e.job.FinishedAt = nil
	e.hub = newHub() // the old hub closed at the terminal transition
	if err := s.store.saveJob(&e.job); err != nil { //accu:allow lockedio -- durability-before-signal: the requeued attempt persists before the queue signals
		s.mu.Unlock()
		return Job{}, err
	}
	s.tenantActive[e.job.Tenant]++
	heap.Push(&s.queue, e)
	s.m.resumed.Inc()
	s.updateGauges()
	s.cond.Signal()
	job := s.view(e)
	s.mu.Unlock()
	s.logf("job %s: resumed from checkpoint", id)
	return job, nil
}

// Metrics returns the merged observability snapshot: server-scoped
// instruments plus every job's registry prefixed "job.<id>.". With a
// non-empty jobID only that job's registry is returned (unprefixed).
func (s *Server) Metrics(jobID string) (*obs.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if jobID != "" {
		e, ok := s.jobs[jobID]
		if !ok {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, jobID)
		}
		if e.reg == nil {
			return &obs.Snapshot{}, nil
		}
		return e.reg.Snapshot(), nil
	}
	snap := s.reg.Snapshot()
	for id, e := range s.jobs {
		if e.reg == nil {
			continue
		}
		snap = snap.Merge(e.reg.Snapshot().Prefixed("job." + id + "."))
	}
	return snap, nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the worker pool: no new claims, running jobs
// are preempted (they checkpoint at cell granularity and requeue without
// consuming an attempt), and every SSE stream is closed. It returns when
// the pool has stopped or ctx expires. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		for _, e := range s.jobs {
			if e.job.State == StateRunning && e.cancel != nil {
				e.cancel(errDrainJob)
			}
		}
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	stopped := make(chan struct{})
	go func() {
		s.workersWG.Wait()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.mu.Lock()
	for _, e := range s.jobs {
		e.hub.close()
	}
	s.mu.Unlock()
	return nil
}

// workerLoop claims and executes jobs until drain.
func (s *Server) workerLoop() {
	defer s.workersWG.Done()
	for {
		e, ctx, cancel := s.claim()
		if e == nil {
			return
		}
		s.runJob(e, ctx, cancel)
	}
}

// claim blocks until a job is available (or drain begins) and moves it
// queued → running.
func (s *Server) claim() (*entry, context.Context, context.CancelCauseFunc) {
	s.mu.Lock()
	for !s.draining && s.queue.Len() == 0 {
		s.cond.Wait()
	}
	if s.draining {
		s.mu.Unlock()
		return nil, nil, nil
	}
	e := heap.Pop(&s.queue).(*entry)
	ctx, cancel := context.WithCancelCause(context.Background())
	e.cancel = cancel
	e.job.State = StateRunning
	e.job.Attempt++
	now := time.Now().UTC()
	e.job.StartedAt = &now
	e.job.Error = ""
	e.reg = obs.New() // fresh per attempt: /metrics reflects the live run
	e.done.Store(0)
	e.resumed.Store(0)
	s.runningCount++
	if err := s.store.saveJob(&e.job); err != nil { //accu:allow lockedio -- durability-before-signal: the claim persists before the job is handed to a runner
		// The document could not be made durable; running it anyway would
		// desynchronize disk and memory. Fail the job in memory and keep
		// serving.
		s.logf("job %s: persist claim: %v", e.job.ID, err)
	}
	s.updateGauges()
	hub := e.hub
	job := e.job
	s.mu.Unlock()
	hub.publish(Event{Type: "state", JobID: job.ID, State: StateRunning})
	s.logf("job %s: claimed (attempt %d/%d)", job.ID, job.Attempt, job.MaxAttempts)
	return e, ctx, cancel
}

// runJob executes one claimed job and applies the outcome transition.
func (s *Server) runJob(e *entry, ctx context.Context, cancel context.CancelCauseFunc) {
	span := obs.StartSpan(s.m.jobNS)
	res, err := s.execute(ctx, e)
	span.End()
	cause := context.Cause(ctx)
	cancel(nil) // release the context's resources; cause is already set

	s.mu.Lock()
	e.cancel = nil
	s.runningCount--
	e.job.Progress.Done = e.done.Load()
	e.job.Progress.Resumed = e.resumed.Load()
	switch {
	case err == nil:
		e.job.Result = res
		s.finishLocked(e, StateDone, "") //accu:allow lockedio -- durability-before-signal: the terminal state persists before waiters wake
	case errors.Is(cause, errCancelJob):
		s.finishLocked(e, StateCancelled, "cancelled by client") //accu:allow lockedio -- durability-before-signal: the terminal state persists before waiters wake
	case errors.Is(cause, errDrainJob):
		// Preempted, not failed: requeue for the next process without
		// consuming an attempt. The checkpoint holds the completed cells.
		e.job.State = StateQueued
		e.job.Attempt--
		e.job.StartedAt = nil
		if perr := s.store.saveJob(&e.job); perr != nil { //accu:allow lockedio -- durability-before-signal: the requeue persists before the queue signals
			s.logf("job %s: persist requeue: %v", e.job.ID, perr)
		}
		heap.Push(&s.queue, e)
		s.m.requeued.Inc()
		s.logf("job %s: drained, requeued", e.job.ID)
	case e.job.Attempt < e.job.MaxAttempts:
		e.job.State = StateQueued
		e.job.Error = err.Error()
		if perr := s.store.saveJob(&e.job); perr != nil { //accu:allow lockedio -- durability-before-signal: the retry persists before the queue signals
			s.logf("job %s: persist retry: %v", e.job.ID, perr)
		}
		heap.Push(&s.queue, e)
		s.m.retried.Inc()
		s.cond.Signal()
		s.logf("job %s: attempt %d/%d failed, retrying: %v", e.job.ID, e.job.Attempt, e.job.MaxAttempts, err)
	default:
		s.finishLocked(e, StateFailed, err.Error()) //accu:allow lockedio -- durability-before-signal: the terminal state persists before waiters wake
	}
	s.updateGauges()
	s.mu.Unlock()
}

// finishLocked applies a terminal transition: persist, account the
// tenant's quota slot back, count, publish the final event and close the
// job's hub. Callers hold s.mu.
func (s *Server) finishLocked(e *entry, st State, errMsg string) {
	e.job.State = st
	e.job.Error = errMsg
	now := time.Now().UTC()
	e.job.FinishedAt = &now
	if err := s.store.saveJob(&e.job); err != nil {
		s.logf("job %s: persist %s: %v", e.job.ID, st, err)
	}
	s.tenantActive[e.job.Tenant]--
	if s.tenantActive[e.job.Tenant] <= 0 {
		delete(s.tenantActive, e.job.Tenant)
	}
	switch st {
	case StateDone:
		s.m.completed.Inc()
	case StateFailed:
		s.m.failed.Inc()
	case StateCancelled:
		s.m.cancelled.Inc()
	}
	hub := e.hub
	ev := Event{Type: "state", JobID: e.job.ID, State: st, Error: errMsg}
	s.logf("job %s: %s%s", e.job.ID, st, errSuffix(errMsg))
	// Publish-then-close under the lock keeps the final event ordered
	// before the stream end for every subscriber.
	hub.publish(ev)
	hub.close()
}

// errSuffix formats an optional error for a log line.
func errSuffix(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// sortJobs orders job views by submission sequence.
func sortJobs(jobs []Job) {
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Seq < jobs[j].Seq })
}

// entryHeap orders queued entries by (priority desc, seq asc) and keeps
// heapIndex in sync for heap.Remove on cancel.
type entryHeap []*entry

func (h entryHeap) Len() int { return len(h) }
func (h entryHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].job.Seq < h[j].job.Seq
}
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}
func (h *entryHeap) Push(x any) {
	e := x.(*entry)
	e.heapIndex = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.heapIndex = -1
	*h = old[:n-1]
	return e
}
