package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestHTTPBody(t *testing.T) {
	analysistest.Run(t, analysis.HTTPBody(), analysistest.Fixture{
		Dir:        "testdata/src/httpbody_serv",
		ImportPath: "example.test/internal/serv",
	})
}
