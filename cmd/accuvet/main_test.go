package main

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
)

// TestRepoIsClean is the lint smoke test: the suite must run clean over
// this repository, exactly as `make lint` / CI invoke it.
func TestRepoIsClean(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"github.com/accu-sim/accu/..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("accuvet exit %d on clean repo:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// TestSyntheticViolationFails builds a throwaway module containing a
// deterministic-package clock read and asserts the checker fails on it.
func TestSyntheticViolationFails(t *testing.T) {
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "time.Now reads the clock") || !strings.Contains(out, "[detrand]") {
		t.Fatalf("missing detrand finding in output:\n%s", out)
	}
}

// TestListAnalyzers: -list names all nine analyzers.
func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	for _, name := range []string{
		"detrand", "maporder", "seedflow", "metricname",
		"lockbalance", "atomicmix", "ctxcancel", "scratchescape", "errcmp",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("missing analyzer %q in -list output:\n%s", name, stdout.String())
		}
	}
}

// TestVetProtocolFlags: the go command interrogates -flags before
// passing anything through; the answer must be valid JSON (accuvet
// exposes no extra flags, so an empty array).
func TestVetProtocolFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("-flags output = %q, want []", got)
	}
}

// TestJSONOutput: findings serialize as JSON with positions.
func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "github.com/accu-sim/accu/internal/rng"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean package JSON = %q, want []", got)
	}
}

// TestSuggestMode builds a throwaway module with one live violation and
// one already-allowed violation: -suggest prints both (the allowed one
// marked), suggests the //accu:allow syntax for the live one, and exits
// 1 because a live finding remains.
func TestSuggestMode(t *testing.T) {
	dir := t.TempDir()
	corePkg := filepath.Join(dir, "internal", "core")
	if err := os.MkdirAll(corePkg, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "go.mod"): "module example.test\n\ngo 1.22\n",
		filepath.Join(corePkg, "bad.go"): `package core

import "time"

// Stamp leaks wall-clock time into the record path.
func Stamp() int64 { return time.Now().UnixNano() }

// Boot is the audited exception.
func Boot() int64 {
	//accu:allow detrand -- startup banner only, never recorded
	return time.Now().UnixNano()
}
`,
	}
	for name, content := range files {
		if err := os.WriteFile(name, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Chdir(dir)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-suggest", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one live finding)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, fragment := range []string{
		"//accu:allow detrand",
		"to suppress",
		"(allowed)",
	} {
		if !strings.Contains(out, fragment) {
			t.Errorf("missing %q in -suggest output:\n%s", fragment, out)
		}
	}

	// Exit-code consistency: the plain run sees only the live finding
	// and must agree with -suggest's verdict.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("plain run exit = %d, want 1", code)
	}
}

// TestDedupSort: duplicate findings collapse and output ordering is by
// file, line, column, analyzer — independent of insertion order.
func TestDedupSort(t *testing.T) {
	fset := token.NewFileSet()
	fileB := fset.AddFile("b.go", -1, 100)
	fileA := fset.AddFile("a.go", -1, 100)
	posB := fileB.Pos(10)
	posA1 := fileA.Pos(50)
	posA2 := fileA.Pos(5)

	diags := []analysis.Diagnostic{
		{Pos: posB, Analyzer: "maporder", Message: "m3"},
		{Pos: posA1, Analyzer: "detrand", Message: "m2"},
		{Pos: posA2, Analyzer: "seedflow", Message: "m1"},
		{Pos: posA1, Analyzer: "detrand", Message: "m2"}, // exact duplicate
	}
	got := dedupSort(fset, diags)
	if len(got) != 3 {
		t.Fatalf("got %d findings after dedup, want 3", len(got))
	}
	wantOrder := []string{"m1", "m2", "m3"}
	for i, d := range got {
		if d.Message != wantOrder[i] {
			t.Errorf("position %d: got %q, want %q", i, d.Message, wantOrder[i])
		}
	}
}
