package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestRespWrite(t *testing.T) {
	analysistest.Run(t, analysis.RespWrite(), analysistest.Fixture{
		Dir:        "testdata/src/respwrite_serv",
		ImportPath: "example.test/internal/serv",
	})
}
