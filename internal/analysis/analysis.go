// Package analysis is a self-contained static-analysis framework plus the
// accuvet analyzer suite that enforces this repository's determinism
// invariants at compile time.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built only on the standard library
// (go/ast, go/types, and the go command for package metadata and export
// data), because this module deliberately carries zero external
// dependencies. Analyzers run over fully type-checked packages, so checks
// are semantic (import-path and object identity), not textual.
//
// Suppression: a comment of the form
//
//	//accu:allow <analyzer>[,<analyzer>...] [-- reason]
//
// on the offending line, or on the line directly above it, silences the
// named analyzers for that line. Every use of the directive should carry
// a reason; it is the audited escape hatch for intentional violations
// (e.g. a map iteration whose output is sorted immediately after).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //accu:allow
	// directives. Lowercase, no spaces.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are reported
	// through the pass; the error return is reserved for analyzer
	// failures (not findings).
	Run func(*Pass) error
}

// A Diagnostic is one finding, tied to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string

	// Suppressed marks a finding covered by an //accu:allow directive.
	// The checkers drop suppressed findings; RunAnalyzersAll keeps them
	// so audits and regression tests can pin the allowed sites.
	Suppressed bool

	// SuggestedFixes are source edits that would resolve the finding.
	// Fixes marked MachineApplicable are safe to apply without human
	// review and are what `accuvet -fix` applies; advisory fixes are
	// carried through to the SARIF log only.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one candidate resolution of a diagnostic: a set of
// non-overlapping text edits applied together.
type SuggestedFix struct {
	// Message describes the fix ("add explicit json tag").
	Message string
	// Edits are the source changes, in any order; the applier sorts and
	// rejects overlaps.
	Edits []TextEdit
	// MachineApplicable marks a fix that is behavior-preserving by
	// construction and safe for unattended application.
	MachineApplicable bool
}

// A TextEdit replaces the source range [Pos, End) with NewText. A
// zero-width range (End == Pos) is an insertion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText string
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Path is the package's import path as reported by the build system
	// (test variants stripped by the drivers before analyzers run).
	Path string

	allow       allowIndex
	diagnostics *[]Diagnostic
}

// Reportf records a diagnostic at pos. Findings covered by an
// //accu:allow directive are recorded with Suppressed set; the checkers
// filter them out, audit mode keeps them.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportfFix(pos, nil, format, args...)
}

// ReportfFix is Reportf with suggested fixes attached to the finding.
func (p *Pass) ReportfFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:            pos,
		Analyzer:       p.Analyzer.Name,
		Message:        fmt.Sprintf(format, args...),
		Suppressed:     p.allow.covers(p.Fset, pos, p.Analyzer.Name),
		SuggestedFixes: fixes,
	})
}

// allowIndex maps file -> line -> analyzer names suppressed on that line.
type allowIndex map[string]map[int]map[string]bool

// allowDirective matches the suppression comment. The directive text (after
// "//") must start exactly with "accu:allow".
var allowDirective = regexp.MustCompile(`^//accu:allow\s+([a-z0-9_,\s]+?)\s*(?:--.*)?$`)

// buildAllowIndex scans every comment in the files for //accu:allow
// directives. A directive covers its own line and the following line, so
// both trailing comments and standalone comment lines work.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, name := range strings.FieldsFunc(m[1], func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = make(map[string]bool)
							lines[line] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return idx
}

func (idx allowIndex) covers(fset *token.FileSet, pos token.Pos, analyzer string) bool {
	if idx == nil || !pos.IsValid() {
		return false
	}
	p := fset.Position(pos)
	return idx[p.Filename][p.Line][analyzer]
}

// RunAnalyzers applies every analyzer to the package and returns the
// unsuppressed findings sorted by position. The package's allow
// directives are parsed once and shared across analyzers.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAnalyzersAll(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	diags := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			diags = append(diags, d)
		}
	}
	return diags, nil
}

// RunAnalyzersAll is RunAnalyzers without the suppression filter: allowed
// findings are returned too, with Suppressed set. This is the audit
// surface — it answers "what would fire if the //accu:allow directives
// were removed", which is how regression tests pin that an annotated
// true positive is still detected.
func RunAnalyzersAll(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allow := buildAllowIndex(pkg.Fset, pkg.Files)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Types,
			Info:        pkg.Info,
			Path:        pkg.ImportPath,
			allow:       allow,
			diagnostics: &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sortDiagnostics(pkg.Fset, diags)
	return diags, nil
}

func sortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}

// inspectWithStack walks every node in the files, keeping the ancestor
// stack. fn receives the node and its ancestors (outermost first) and
// returns whether to descend into the node's children.
func inspectWithStack(files []*ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			descend := fn(n, stack)
			if descend {
				stack = append(stack, n)
			}
			return descend
		})
	}
}

// pkgPathIs reports whether path refers to the module package with the
// given module-relative suffix (e.g. "internal/core"). It matches both
// the in-module form "github.com/accu-sim/accu/internal/core" and the
// bare suffix used by test fixtures.
func pkgPathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// pkgPathIn reports whether path matches any of the suffixes.
func pkgPathIn(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPathIs(path, s) {
			return true
		}
	}
	return false
}

// objectPkgIs reports whether obj is declared in the package with the
// given import-path suffix.
func objectPkgIs(obj types.Object, suffix string) bool {
	return obj != nil && obj.Pkg() != nil && pkgPathIs(obj.Pkg().Path(), suffix)
}
