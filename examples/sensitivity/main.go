// Sensitivity: Fig. 6/7 in miniature — sweep the cautious-user benefit
// and acceptance-threshold fraction and print heat maps of total benefit
// and cautious friends, reproducing the paper's observation that
// over-valuing hard-to-reach cautious users can hurt total benefit.
package main

import (
	"context"
	"fmt"
	"log"

	accu "github.com/accu-sim/accu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sensitivity: ")

	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		log.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		log.Fatal(err)
	}
	abmFactory, err := accu.DefaultFactories(accu.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	abm := abmFactory[:1] // ABM only

	benefits := []float64{20, 50, 100}
	thetas := []float64{0.1, 0.3, 0.5}

	type cell struct{ benefit, cautious float64 }
	grid := map[[2]int]*cell{}
	const runs = 4
	for i, tf := range thetas {
		for j, bf := range benefits {
			setup := accu.DefaultSetup()
			setup.NumCautious = 10
			setup.ThetaFraction = tf
			setup.BFriendCautious = bf
			protocol := accu.Protocol{
				Gen:      generator,
				Setup:    setup,
				Networks: 1,
				Runs:     runs,
				K:        60,
				Seed:     accu.NewSeed(uint64(i*10+j), 99),
			}
			c := &cell{}
			grid[[2]int{i, j}] = c
			err := accu.MonteCarlo(context.Background(), protocol, abm, func(rec accu.Record) {
				c.benefit += rec.Result.Benefit / runs
				c.cautious += float64(rec.Result.CautiousFriends) / runs
			})
			if err != nil {
				log.Fatal(err)
			}
		}
	}

	printGrid := func(title string, pick func(*cell) float64) {
		fmt.Printf("%s\n  theta\\Bf(c)", title)
		for _, bf := range benefits {
			fmt.Printf("%10.0f", bf)
		}
		fmt.Println()
		for i, tf := range thetas {
			fmt.Printf("  %10.1f ", tf)
			for j := range benefits {
				fmt.Printf("%10.1f", pick(grid[[2]int{i, j}]))
			}
			fmt.Println()
		}
		fmt.Println()
	}
	printGrid("Total benefit (Fig. 6 shape)", func(c *cell) float64 { return c.benefit })
	printGrid("Cautious friends (Fig. 7 shape)", func(c *cell) float64 { return c.cautious })
	fmt.Println("expected: both rise toward high Bf(c) / low theta; at Bf(c)=20 a higher")
	fmt.Println("theta can outperform (ABM stops wasting requests courting cautious users).")
}
