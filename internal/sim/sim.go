// Package sim runs the Monte-Carlo experiment protocol of §IV-A: a grid
// of (sample network × repetition) cells, each executing every policy
// under comparison against the same sampled realization, fanned out over
// a bounded worker pool with deterministic per-cell seeding.
//
// Scheduling is cell-granular: workers consume (network, run) cells from
// a shared queue, so a Networks=1, Runs=30 protocol — the "one real
// dataset, many repetitions" shape — parallelizes just as well as a wide
// network grid. Each network's immutable Instance is generated once
// behind a once-per-network gate and shared by every worker; all
// randomness still derives from per-cell seed splits, so the record
// stream is bit-identical at any worker count.
package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// Protocol describes one Monte-Carlo experiment.
type Protocol struct {
	// Gen produces sample networks (one per Networks index).
	Gen gen.Generator
	// Setup dresses each network into an ACCU instance.
	Setup osn.Setup
	// Networks is the number of sample networks (paper: 100).
	Networks int
	// Runs is the number of algorithm executions per network (paper: 30).
	Runs int
	// K is the friend-request budget per run.
	K int
	// BatchSize > 1 switches to the parallel-batching attack model
	// (requests go out BatchSize at a time with no observations inside a
	// batch); 0 or 1 is the paper's fully adaptive one-at-a-time model.
	// Batching requires every policy to implement core.BatchSelector.
	BatchSize int
	// Seed is the root seed; every cell derives its own stream from it.
	Seed rng.Seed
	// Workers bounds the worker pool; 0 means GOMAXPROCS. An explicit
	// value is honored up to the (network, run) cell count — see
	// ResolveWorkers for the clamp rule; a clamp is surfaced via the
	// sim.workers / sim.workers_requested / sim.workers_clamped metrics
	// rather than silently shrinking the pool to Networks as earlier
	// versions did.
	Workers int
	// Metrics, when non-nil, receives engine instrumentation: per-cell
	// and per-network wall time, worker busy time and utilisation, and —
	// via Instance.Instrument — the osn environment counters. ABM policy
	// counters are separate; see core.WithMetrics.
	Metrics *obs.Registry
	// OnProgress, when non-nil, is invoked serially (same goroutine as
	// collect, no locking needed) after every completed cell, so long
	// experiments can report liveness. Cells cancelled mid-flight are
	// not reported; Done reaches Total only on a full, error-free run.
	OnProgress func(Progress)
}

// Progress is one OnProgress notification.
type Progress struct {
	// Done is the number of cells completed so far; Total the grid size
	// Networks × Runs × len(factories).
	Done, Total int
	// Policy is the completed cell's policy name.
	Policy string
	// Network and Run locate the completed cell in the Monte-Carlo grid.
	Network, Run int
}

// Validate checks the protocol is runnable.
func (p Protocol) Validate() error {
	switch {
	case p.Gen == nil:
		return errors.New("sim: nil generator")
	case p.Networks <= 0:
		return fmt.Errorf("sim: Networks = %d, must be positive", p.Networks)
	case p.Runs <= 0:
		return fmt.Errorf("sim: Runs = %d, must be positive", p.Runs)
	case p.K <= 0:
		return fmt.Errorf("sim: K = %d, must be positive", p.K)
	case p.BatchSize < 0:
		return fmt.Errorf("sim: BatchSize = %d, must be >= 0", p.BatchSize)
	case p.Workers < 0:
		return fmt.Errorf("sim: Workers = %d, must be >= 0", p.Workers)
	}
	return nil
}

// PolicyFactory constructs a fresh policy for each run (policies carry
// per-attack state). The run seed is deterministic per cell, feeding
// randomized policies such as Random.
type PolicyFactory struct {
	// Name labels the policy in records (useful before Init).
	Name string
	// New builds the policy for one run.
	New func(runSeed rng.Seed) (core.Policy, error)
}

// ABMFactory builds an ABM policy factory with the given weights. opts
// (e.g. core.WithMetrics) are applied to every policy instance built.
func ABMFactory(w Weights, opts ...core.Option) (PolicyFactory, error) {
	if err := w.Validate(); err != nil {
		return PolicyFactory{}, err
	}
	return PolicyFactory{
		Name: w.PolicyName(),
		New: func(rng.Seed) (core.Policy, error) {
			return core.NewABM(w, opts...)
		},
	}, nil
}

// Weights aliases core.Weights for caller convenience.
type Weights = core.Weights

// DefaultFactories returns the §IV policy roster: ABM with the given
// weights plus the MaxDegree, PageRank and Random baselines. opts are
// applied to the ABM policy only.
func DefaultFactories(w Weights, opts ...core.Option) ([]PolicyFactory, error) {
	abm, err := ABMFactory(w, opts...)
	if err != nil {
		return nil, err
	}
	return []PolicyFactory{
		abm,
		{Name: "maxdegree", New: func(rng.Seed) (core.Policy, error) { return core.NewMaxDegree(), nil }},
		{Name: "pagerank", New: func(rng.Seed) (core.Policy, error) { return core.NewPageRank(), nil }},
		{Name: "random", New: func(s rng.Seed) (core.Policy, error) { return core.NewRandom(s), nil }},
	}, nil
}

// Record is the outcome of one (policy, network, run) cell.
type Record struct {
	// Policy is the factory name.
	Policy string
	// Network and Run locate the Monte-Carlo cell.
	Network, Run int
	// Result is the full attack trace.
	Result *core.Result
}

// engineMetrics holds the runner's instruments, resolved once per Run so
// the per-cell hot path records through plain pointers (all nil — and
// therefore no-ops — when Protocol.Metrics is unset).
type engineMetrics struct {
	cellNS     *obs.Histogram // one policy execution (core.Run/RunBatched)
	networkNS  *obs.Histogram // generate + setup of one network instance
	cells      *obs.Counter   // completed cells
	workerBusy *obs.Counter   // summed worker busy nanoseconds
	wallNS     *obs.Histogram // wall time, one observation per Run call
	workers    *obs.Gauge     // resolved pool size
	// workersRequested/workersClamped surface the clamp rule: the gauge
	// holds the caller's explicit Workers request, the counter increments
	// once per Run whose request exceeded the cell count. A clamp is a
	// note, never an error.
	workersRequested *obs.Gauge
	workersClamped   *obs.Counter
	// utilizationPct observes each Run's pool utilisation — this run's
	// busy time over wall × workers — in percent (100 = fully busy).
	utilizationPct *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	return engineMetrics{
		cellNS:           reg.Histogram("sim.cell_ns"),
		networkNS:        reg.Histogram("sim.network_ns"),
		cells:            reg.Counter("sim.cells"),
		workerBusy:       reg.Counter("sim.worker_busy_ns"),
		wallNS:           reg.Histogram("sim.wall_ns"),
		workers:          reg.Gauge("sim.workers"),
		workersRequested: reg.Gauge("sim.workers_requested"),
		workersClamped:   reg.Counter("sim.workers_clamped"),
		utilizationPct:   reg.Histogram("sim.worker_utilization_pct"),
	}
}

// ResolveWorkers reports the worker pool size Run will use for this
// protocol and whether an explicit Workers request was clamped. The pool
// is bounded by the number of (network, run) cells — the scheduler's unit
// of parallelism — never by Networks alone, so single-network protocols
// with many repetitions use every worker they ask for.
func (p Protocol) ResolveWorkers() (workers int, clamped bool) {
	workers = p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cells := p.Networks * p.Runs; cells > 0 && workers > cells {
		return cells, p.Workers > cells
	}
	return workers, false
}

// Run executes the protocol. Every policy in factories attacks the same
// realization within a cell, so policies are compared on identical ground
// truth. collect is invoked serially (no locking needed by the caller)
// but in nondeterministic cell order; the per-cell randomness itself is
// fully deterministic in Protocol.Seed — the collected record set is
// bit-identical at any worker count. Run stops at the first error or
// when ctx is cancelled; a worker error always wins over the context
// cancellation it triggers.
func Run(ctx context.Context, p Protocol, factories []PolicyFactory, collect func(Record)) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if len(factories) == 0 {
		return errors.New("sim: no policy factories")
	}
	workers, clamped := p.ResolveWorkers()
	em := newEngineMetrics(p.Metrics)
	em.workers.Set(float64(workers))
	if p.Workers > 0 {
		em.workersRequested.Set(float64(p.Workers))
	}
	if clamped {
		em.workersClamped.Inc()
	}
	// One registry may span several Run calls (an experiment per dataset),
	// so utilisation is computed from this run's busy-time delta.
	busyBefore := em.workerBusy.Value()
	start := time.Now()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// firstErr captures the first worker failure. It is published before
	// cancel() and read after the worker pool drains, so every exit path
	// below prefers it over the secondary ctx.Err() the failure causes.
	var (
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() { firstErr = err })
		cancel()
	}

	// The scheduler's unit of work is one (network, run) cell; instances
	// are built lazily, once per network, by whichever worker reaches the
	// network first (the once-gate blocks same-network latecomers).
	nets := make([]netSlot, p.Networks)
	cellIdx := make(chan int)
	records := make(chan Record)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			wk := newWorker(len(factories))
			for c := range cellIdx {
				busyStart := time.Now()
				err := wk.runCell(ctx, p, factories, nets, c, records, em)
				em.workerBusy.Add(int64(time.Since(busyStart)))
				if err != nil {
					fail(err)
					return
				}
			}
		}()
	}

	// Feed cell indices in network-major order (all runs of network 0,
	// then network 1, ...) so a draining pool touches as few instances as
	// possible at once; close records when all workers are done.
	go func() {
		defer close(cellIdx)
		for c := 0; c < p.Networks*p.Runs; c++ {
			select {
			case cellIdx <- c:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(records)
	}()

	done, total := 0, p.Networks*p.Runs*len(factories)
	for rec := range records {
		collect(rec)
		done++
		if p.OnProgress != nil {
			p.OnProgress(Progress{Done: done, Total: total, Policy: rec.Policy, Network: rec.Network, Run: rec.Run})
		}
	}

	wall := time.Since(start)
	em.wallNS.Observe(int64(wall))
	if wall > 0 && workers > 0 {
		busy := em.workerBusy.Value() - busyBefore
		em.utilizationPct.Observe(int64(100 * float64(busy) / (float64(wall) * float64(workers))))
	}
	// The records channel closed, so the pool has drained and firstErr —
	// written before any cancel() — is stable: prefer it on every path.
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// netSlot memoizes one network's immutable instance behind a build-once
// gate, and drops it once every run of the network has completed so long
// grids do not pin all Networks instances in memory at once.
type netSlot struct {
	once sync.Once
	inst *osn.Instance
	err  error
	done atomic.Int32
}

// get returns the network's instance, building it on first use. Callers
// racing the builder block on the once-gate instead of regenerating.
func (s *netSlot) get(p Protocol, i int, netSeed rng.Seed, em engineMetrics) (*osn.Instance, error) {
	s.once.Do(func() {
		defer obs.StartSpan(em.networkNS).End()
		g, err := p.Gen.Generate(netSeed)
		if err != nil {
			s.err = fmt.Errorf("sim: generate network %d: %w", i, err)
			return
		}
		inst, err := p.Setup.Build(g, netSeed.Split("setup"))
		if err != nil {
			s.err = fmt.Errorf("sim: setup network %d: %w", i, err)
			return
		}
		inst.Instrument(p.Metrics)
		s.inst = inst
	})
	return s.inst, s.err
}

// release marks one of the network's runs complete; after the last, the
// memoized instance is unpinned (in-flight references keep it alive).
func (s *netSlot) release(runs int) {
	if int(s.done.Add(1)) == runs {
		s.inst = nil
	}
}

// worker holds one pool goroutine's reusable scratch: the pooled attack
// state (core.Runner) and, for policies implementing core.Reusable, the
// policy instances themselves — their Init re-slices internal buffers, so
// reuse turns three-plus O(N) allocations per cell into reseeds.
type worker struct {
	runner core.Runner
	pols   []core.Reusable
}

func newWorker(nfactories int) *worker {
	return &worker{pols: make([]core.Reusable, nfactories)}
}

// policy returns factory fi's policy for a cell seeded by seed, reusing a
// cached Reusable instance when one exists.
func (w *worker) policy(f PolicyFactory, fi int, seed rng.Seed) (core.Policy, error) {
	if cached := w.pols[fi]; cached != nil {
		cached.Reseed(seed)
		return cached, nil
	}
	//accu:allow seedflow -- exclusive branch: reuse path returned above
	pol, err := f.New(seed)
	if err != nil {
		return nil, fmt.Errorf("sim: build policy %s: %w", f.Name, err)
	}
	if r, ok := pol.(core.Reusable); ok {
		w.pols[fi] = r
	}
	return pol, nil
}

// runCell executes cell c = network·Runs + run: sample the cell's
// realization and attack it with every policy. Seed derivation is
// identical to the historical per-network scheduler (network split, then
// run split, then realization/policy splits), which is what keeps the
// record stream byte-identical across worker counts and scheduler
// versions.
func (w *worker) runCell(ctx context.Context, p Protocol, factories []PolicyFactory, nets []netSlot, c int, records chan<- Record, em engineMetrics) error {
	i, j := c/p.Runs, c%p.Runs
	netSeed := p.Seed.SplitN("network", i)
	inst, err := nets[i].get(p, i, netSeed, em)
	if err != nil {
		return err
	}
	if ctx.Err() != nil {
		return nil // cooperative cancellation, not a cell failure
	}
	runSeed := netSeed.SplitN("run", j)
	re := inst.SampleRealization(runSeed.Split("realization"))
	for fi, f := range factories {
		pol, err := w.policy(f, fi, runSeed.SplitN("policy", fi))
		if err != nil {
			return err
		}
		cell := obs.StartSpan(em.cellNS)
		var res *core.Result
		if p.BatchSize > 1 {
			bp, ok := pol.(core.BatchSelector)
			if !ok {
				return fmt.Errorf("sim: policy %s does not support batching", f.Name)
			}
			res, err = w.runner.RunBatched(bp, re, p.K, p.BatchSize)
		} else {
			res, err = w.runner.Run(pol, re, p.K)
		}
		cell.End()
		if err != nil {
			return fmt.Errorf("sim: run %s on network %d run %d: %w", f.Name, i, j, err)
		}
		em.cells.Inc()
		select {
		case records <- Record{Policy: f.Name, Network: i, Run: j, Result: res}:
		case <-ctx.Done():
			return nil
		}
	}
	nets[i].release(p.Runs)
	return nil
}
