#!/usr/bin/env bash
# query_e2e.sh — end-to-end test of the columnar result store and the
# `accurun query` subcommand.
#
# The contract under test: a Monte-Carlo run that streams its records
# into a result store (-store) and writes its aggregated result (-out)
# can be re-aggregated offline by `accurun query`, reproducing the live
# run's quantile sketch BYTE for byte — the store holds exact float64
# benefits, so the replayed sketch is the live sketch.
#
#   1. accurun -runs N -store out.acs -out result.json
#   2. accurun query -store out.acs -json
#   3. assert the queried benefitSketch == the live finalBenefitSketch
#      (canonical jq -cS serialization) and the requested quantiles
#      match the snapshot's p50/p90/p99
#   4. assert a -where filter narrows the row count
#
# Requires: jq. Runs from anywhere inside the repo.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/"

PRESET=slashdot
SCALE=0.02
CAUTIOUS=10
POLICY=abm
K=20
SEED=11
RUNS=40

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

log() { echo "query_e2e: $*"; }
fail() {
    log "FAIL: $*"
    exit 1
}

log "building accurun"
go build -o "$WORK/accurun" ./cmd/accurun

log "running $RUNS-realization grid with -store and -out"
"$WORK/accurun" -preset "$PRESET" -scale "$SCALE" -cautious "$CAUTIOUS" \
    -policy "$POLICY" -k "$K" -seed "$SEED" -runs "$RUNS" \
    -store "$WORK/out.acs" -out "$WORK/result.json" >"$WORK/run.txt"
[ -s "$WORK/out.acs" ] || fail "no result store written"
[ -s "$WORK/result.json" ] || fail "no result JSON written"

log "querying the store"
"$WORK/accurun" query -store "$WORK/out.acs" -policy "$POLICY" \
    -quantiles 0.5,0.9,0.99 -json >"$WORK/query.json"

ROWS=$(jq -r '.rows' "$WORK/query.json")
[ "$ROWS" = "$RUNS" ] || fail "query rows=$ROWS, want $RUNS"

LIVE_SK=$(jq -cS '.policies[] | select(.policy == "'"$POLICY"'") | .finalBenefitSketch' "$WORK/result.json")
QUERY_SK=$(jq -cS '.policies[] | select(.policy == "'"$POLICY"'") | .benefitSketch' "$WORK/query.json")
[ -n "$LIVE_SK" ] || fail "no live sketch in result.json"
[ "$QUERY_SK" = "$LIVE_SK" ] || fail "queried sketch differs from live run:
  query: $QUERY_SK
  live:  $LIVE_SK"
log "queried sketch byte-identical to live run"

# The requested quantiles must equal the snapshot's own p50/p90/p99.
for pair in "0.5 p50" "0.9 p90" "0.99 p99"; do
    set -- $pair
    QV=$(jq -r '.policies[0].quantiles[] | select(.q == '"$1"') | .value' "$WORK/query.json")
    SV=$(echo "$LIVE_SK" | jq -r ".$2")
    [ "$QV" = "$SV" ] || fail "quantile q=$1: query $QV != snapshot .$2 $SV"
done
log "requested quantiles match snapshot p50/p90/p99"

# -where narrows the aggregation to matching rows.
FILTERED=$(jq -r '.rows' <<<"$("$WORK/accurun" query -store "$WORK/out.acs" -where run=0 -json)")
[ "$FILTERED" = 1 ] || fail "-where run=0 rows=$FILTERED, want 1"
log "-where filter narrows to $FILTERED row"

# The text table renders the quantile columns.
"$WORK/accurun" query -store "$WORK/out.acs" >"$WORK/query.txt"
grep -q "p50" "$WORK/query.txt" || fail "text table missing p50 column"
grep -q "$POLICY" "$WORK/query.txt" || fail "text table missing policy row"

log "PASS: offline store query reproduces the live run's quantile sketch byte for byte"
