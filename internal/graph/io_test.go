package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTripEdgeList(t *testing.T) {
	b := NewBuilder(5)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 3, 4)
	g := b.Freeze()

	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip: N=%d M=%d, want N=%d M=%d", g2.N(), g2.M(), g.N(), g.M())
	}
	g.EachEdge(func(u, v int) bool {
		if !g2.HasEdge(u, v) {
			t.Errorf("edge (%d,%d) lost", u, v)
		}
		return true
	})
}

func TestReadEdgeListSparseIDsAndComments(t *testing.T) {
	in := `# a comment

100 200
200	300
300 100
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3/3", g.N(), g.M())
	}
}

func TestReadEdgeListDirectedDuplicatesCollapse(t *testing.T) {
	in := "0 1\n1 0\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"one field", "42\n"},
		{"non-numeric u", "x 1\n"},
		{"non-numeric v", "1 y\n"},
	}
	for _, tc := range cases {
		if _, err := ReadEdgeList(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# nothing\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Errorf("N=%d M=%d, want empty", g.N(), g.M())
	}
}

func TestInducedSubgraph(t *testing.T) {
	b := NewBuilder(5)
	mustAdd(t, b, 0, 1)
	mustAdd(t, b, 1, 2)
	mustAdd(t, b, 2, 3)
	mustAdd(t, b, 3, 4)
	mustAdd(t, b, 0, 4)
	g := b.Freeze()

	sub, orig, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub N=%d M=%d, want 3/2", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig = %v", orig)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) || sub.HasEdge(0, 2) {
		t.Error("sub edges wrong")
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := path(t, 3)
	if _, _, err := g.InducedSubgraph([]int{0, 7}); err == nil {
		t.Error("out of range: want error")
	}
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Error("duplicate: want error")
	}
}

func TestClone(t *testing.T) {
	g := path(t, 4)
	b := g.Clone()
	if b.N() != 4 || b.M() != 3 {
		t.Fatalf("clone N=%d M=%d", b.N(), b.M())
	}
	mustAdd(t, b, 0, 3)
	if g.HasEdge(0, 3) {
		t.Error("clone mutation leaked into original")
	}
}
