package analysis

import (
	"go/ast"
	"go/types"
)

// ctxCancelFuncs are the context constructors that return a CancelFunc
// the caller must invoke.
var ctxCancelFuncs = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

// CtxCancel returns the context-cancellation analyzer: the cancel
// function returned by context.WithCancel / WithTimeout / WithDeadline
// (and their *Cause variants) must be invoked on every control-flow path
// of the function that created it, and must not be discarded into the
// blank identifier. A path that leaks the cancel func keeps the derived
// context — its timer and its goroutine — alive until the parent
// context ends, which in the engine's case is the whole experiment.
//
// Discharges are recognized conservatively: a direct call, a deferred
// call, or any other mention of the cancel variable (passing it to a
// callee, storing it, returning it) ends the obligation on that path.
// What remains is the real bug: a cancel func that some path simply
// forgets.
func CtxCancel() *Analyzer {
	a := &Analyzer{
		Name: "ctxcancel",
		Doc: "require the cancel func of context.WithCancel/WithTimeout/WithDeadline " +
			"to be called (or deferred) on every path, and never dropped into _",
	}
	a.Run = func(pass *Pass) error {
		// Blank-assignment check is purely syntactic: `ctx, _ := ...`.
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, lhs := cancelAssign(pass, n)
				if call == nil || len(lhs) < 2 {
					return true
				}
				if id, ok := lhs[1].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(),
						"the cancel func of context.%s is discarded; the derived context leaks until its parent ends",
						calleeName(pass, call))
				}
				return true
			})
		}

		// Path check: dataflow per function body.
		funcBodies(pass.Files, func(_ ast.Node, body *ast.BlockStmt) {
			checkCancelPaths(pass, body)
		})
		return nil
	}
	return a
}

func checkCancelPaths(pass *Pass, body *ast.BlockStmt) {
	cfg := NewCFG(body)
	_, exit := cfg.ForwardMay(func(n ast.Node, facts Facts) {
		// Kills first: any mention of a tracked cancel variable —
		// calling it, deferring it, passing or storing it — discharges
		// the obligation on this path. Defers are NOT pruned here: a
		// deferred cancel registered on this path does run at exit.
		walkBlockNode(n, false, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj, ok := pass.Info.Uses[id]; ok {
				delete(facts, obj)
			}
			return true
		})
		// Gens second, so `ctx, cancel = context.WithCancel(ctx)`
		// re-arms an obligation it just discharged.
		if call, lhs := cancelAssign(pass, n); call != nil && len(lhs) >= 2 {
			if id, ok := lhs[1].(*ast.Ident); ok && id.Name != "_" {
				var obj types.Object
				if obj = pass.Info.Defs[id]; obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj != nil {
					facts[obj] = call.Pos()
				}
			}
		}
	})

	for k, pos := range exit {
		obj := k.(types.Object)
		pass.Reportf(pos,
			"cancel func %s is not called on every path to function exit; defer %s() on the line after it is created",
			obj.Name(), obj.Name())
	}
}

// cancelAssign recognizes `a, b := context.WithX(...)` (or `=`, or a
// var declaration) and returns the call plus the left-hand sides.
func cancelAssign(pass *Pass, n ast.Node) (*ast.CallExpr, []ast.Expr) {
	var rhs []ast.Expr
	var lhs []ast.Expr
	switch n := n.(type) {
	case *ast.AssignStmt:
		rhs, lhs = n.Rhs, n.Lhs
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || len(gd.Specs) != 1 {
			return nil, nil
		}
		vs, ok := gd.Specs[0].(*ast.ValueSpec)
		if !ok {
			return nil, nil
		}
		rhs = vs.Values
		for _, name := range vs.Names {
			lhs = append(lhs, name)
		}
	default:
		return nil, nil
	}
	if len(rhs) != 1 {
		return nil, nil
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !ctxCancelFuncs[fn.Name()] {
		return nil, nil
	}
	return call, lhs
}

// calleeName returns the called function's name for diagnostics.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok {
			return fn.Name()
		}
	}
	return "WithCancel"
}
