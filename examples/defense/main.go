// Defense: the paper's motivation in action — measure which users the
// ABM attacker compromises most often, harden them with threshold-gated
// acceptance, and show the attack degrade.
package main

import (
	"context"
	"fmt"
	"log"

	accu "github.com/accu-sim/accu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("defense: ")

	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		log.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		log.Fatal(err)
	}
	g, err := generator.Generate(accu.NewSeed(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 10
	inst, err := setup.Build(g, accu.NewSeed(3, 4))
	if err != nil {
		log.Fatal(err)
	}

	const runs, k = 10, 60
	ctx := context.Background()

	// 1. Measure vulnerability under repeated ABM attacks.
	analysis, err := accu.AnalyzeVulnerability(ctx, inst, accu.ABMAttacker(), runs, k, accu.NewSeed(5, 6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: attacker collects %.1f benefit on average (%d runs, k=%d)\n\n",
		analysis.MeanBenefit, runs, k)

	fmt.Println("most-compromised users (protection priority):")
	top := analysis.TopCompromised(8)
	for _, st := range top {
		fmt.Printf("  user %-6d befriended %d/%d runs (degree %d)\n",
			st.User, st.Befriended, runs, g.Degree(st.User))
	}

	// 2. Harden them: threshold-gated acceptance at θ = 30% of degree.
	targets := make([]int, 0, len(top))
	for _, st := range top {
		targets = append(targets, st.User)
	}
	hardened, err := accu.Harden(inst, targets, 0.3)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Re-attack the hardened network. The metric that matters for the
	// protected users is their own compromise rate — the attacker can
	// re-route its budget, but can no longer reach them.
	after, err := accu.AnalyzeVulnerability(ctx, hardened, accu.ABMAttacker(), runs, k, accu.NewSeed(5, 6))
	if err != nil {
		log.Fatal(err)
	}
	rate := func(a *accu.VulnerabilityAnalysis) float64 {
		var sum float64
		for _, u := range targets {
			sum += a.CompromiseRate(u)
		}
		return sum / float64(len(targets))
	}
	fmt.Printf("\nafter hardening %d users:\n", len(targets))
	fmt.Printf("  their compromise rate: %.0f%% -> %.0f%%\n", 100*rate(analysis), 100*rate(after))
	fmt.Printf("  attacker total benefit: %.1f -> %.1f (budget re-routed to weaker targets)\n",
		analysis.MeanBenefit, after.MeanBenefit)
}
