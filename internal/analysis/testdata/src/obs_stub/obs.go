// Package obs is a minimal stub of internal/obs for analyzer fixtures:
// the Registry lookup surface the metricname analyzer keys on, plus the
// instrument methods the maporder analyzer recognizes.
package obs

// Counter is a stub counter.
type Counter struct{}

// Inc increments the counter.
func (c *Counter) Inc() {}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {}

// Gauge is a stub gauge.
type Gauge struct{}

// Set stores v.
func (g *Gauge) Set(v float64) {}

// Histogram is a stub histogram.
type Histogram struct{}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {}

// Span is a stub phase timer.
type Span struct{}

// End stops the span.
func (s Span) End() {}

// Registry is a stub named-instrument collection.
type Registry struct{}

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return nil }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return nil }

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return nil }

// StartSpan begins timing the named phase.
func (r *Registry) StartSpan(name string) Span { return Span{} }

// Time runs fn under a span for the named phase.
func (r *Registry) Time(name string, fn func()) { fn() }
