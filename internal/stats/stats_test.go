package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.Count() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Error("zero value not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Count() != 8 {
		t.Errorf("count = %d", w.Count())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v", w.Mean())
	}
	// Population variance of this classic set is 4; sample variance is
	// 32/7.
	if math.Abs(w.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %v", w.Variance())
	}
	if math.Abs(w.Std()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("std = %v", w.Std())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Errorf("mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true // skip pathological inputs
			}
		}
		cut := int(split) % (len(xs) + 1)
		var seq, a, b Welford
		for _, x := range xs {
			seq.Add(x)
		}
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.Count() != seq.Count() {
			return false
		}
		return math.Abs(a.Mean()-seq.Mean()) < 1e-6 &&
			math.Abs(a.Variance()-seq.Variance()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merge with empty changed accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.Mean() != a.Mean() || b.Count() != a.Count() {
		t.Error("merge into empty lost data")
	}
}

func TestWelfordCI95(t *testing.T) {
	var w Welford
	for i := 0; i < 100; i++ {
		w.Add(float64(i % 2)) // mean 0.5, std ≈ 0.5025
	}
	ci := w.CI95()
	if ci < 0.09 || ci > 0.11 {
		t.Errorf("CI95 = %v, want ≈ 0.0985", ci)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("abm", []float64{10, 20, 30})
	if s.Len() != 3 || s.X(1) != 20 {
		t.Fatalf("series shape wrong")
	}
	s.Add(0, 1)
	s.Add(0, 3)
	s.Add(2, 10)
	if s.At(0).Mean() != 2 {
		t.Errorf("mean[0] = %v", s.At(0).Mean())
	}
	means := s.Means()
	if means[0] != 2 || means[1] != 0 || means[2] != 10 {
		t.Errorf("means = %v", means)
	}
}

func TestSeriesMerge(t *testing.T) {
	a := NewSeries("x", []float64{1, 2})
	b := NewSeries("x", []float64{1, 2})
	a.Add(0, 2)
	b.Add(0, 4)
	b.Add(1, 6)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0).Mean() != 3 || a.At(0).Count() != 2 {
		t.Errorf("merged mean = %v count = %d", a.At(0).Mean(), a.At(0).Count())
	}
	if a.At(1).Mean() != 6 {
		t.Errorf("merged mean[1] = %v", a.At(1).Mean())
	}
}

// TestSeriesMergeMismatch pins the loud-failure contract in both
// directions: a longer other side used to silently drop its tail
// observations, and a shorter one used to panic with a bare index error.
func TestSeriesMergeMismatch(t *testing.T) {
	base := func() *Series {
		s := NewSeries("base", []float64{1, 2})
		s.Add(0, 1)
		s.Add(1, 2)
		return s
	}
	cases := map[string]*Series{
		"longer other":     NewSeries("o", []float64{1, 2, 3}),
		"shorter other":    NewSeries("o", []float64{1}),
		"shifted x values": NewSeries("o", []float64{1, 5}),
	}
	for name, o := range cases {
		s := base()
		o.Add(0, 9)
		if err := s.Merge(o); !errors.Is(err, ErrMismatchedAxes) {
			t.Errorf("%s: err = %v, want ErrMismatchedAxes", name, err)
		}
		// The failed merge must not have folded anything in.
		if s.At(0).Count() != 1 || s.At(0).Mean() != 1 {
			t.Errorf("%s: receiver mutated by failed merge", name)
		}
	}
}

// TestMergeNaNAxes is the regression test for the NaN merge bug:
// matchAxis compared positions with !=, so two series (or grids) with
// identical axes containing a NaN position could never merge — NaN !=
// NaN under IEEE comparison. Identical-bits NaN positions must merge;
// a NaN against a real number must still mismatch.
func TestMergeNaNAxes(t *testing.T) {
	nan := math.NaN()
	a := NewSeries("a", []float64{1, nan, 3})
	b := NewSeries("b", []float64{1, nan, 3})
	a.Add(1, 2)
	b.Add(1, 4)
	if err := a.Merge(b); err != nil {
		t.Fatalf("identical NaN axes refused to merge: %v", err)
	}
	if a.At(1).Mean() != 3 || a.At(1).Count() != 2 {
		t.Errorf("merged NaN position: mean = %v count = %d, want 3 and 2", a.At(1).Mean(), a.At(1).Count())
	}
	// NaN vs a real position is still a mismatch, in both orders.
	c := NewSeries("c", []float64{1, 2, 3})
	if err := a.Merge(c); !errors.Is(err, ErrMismatchedAxes) {
		t.Errorf("NaN vs 2: err = %v, want ErrMismatchedAxes", err)
	}
	if err := c.Merge(a); !errors.Is(err, ErrMismatchedAxes) {
		t.Errorf("2 vs NaN: err = %v, want ErrMismatchedAxes", err)
	}

	ga := NewGrid("r", []float64{nan}, "c", []float64{1, nan})
	gb := NewGrid("r", []float64{nan}, "c", []float64{1, nan})
	ga.Add(0, 1, 10)
	gb.Add(0, 1, 20)
	if err := ga.Merge(gb); err != nil {
		t.Fatalf("identical NaN grid axes refused to merge: %v", err)
	}
	if ga.At(0, 1).Mean() != 15 {
		t.Errorf("merged NaN grid cell = %v, want 15", ga.At(0, 1).Mean())
	}
}

func TestGrid(t *testing.T) {
	g := NewGrid("theta", []float64{0.1, 0.2}, "benefit", []float64{20, 50, 100})
	g.Add(0, 2, 7)
	g.Add(1, 0, 3)
	g.Add(1, 0, 5)
	if g.At(0, 2).Mean() != 7 {
		t.Errorf("cell (0,2) = %v", g.At(0, 2).Mean())
	}
	if g.At(1, 0).Mean() != 4 {
		t.Errorf("cell (1,0) = %v", g.At(1, 0).Mean())
	}
	if g.At(0, 0).Count() != 0 {
		t.Error("untouched cell has observations")
	}
}

func TestGridMerge(t *testing.T) {
	a := NewGrid("r", []float64{1}, "c", []float64{1})
	b := NewGrid("r", []float64{1}, "c", []float64{1})
	a.Add(0, 0, 10)
	b.Add(0, 0, 20)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0).Mean() != 15 {
		t.Errorf("merged = %v", a.At(0, 0).Mean())
	}
}

// TestGridMergeMismatch covers both mismatch directions on both axes.
func TestGridMergeMismatch(t *testing.T) {
	cases := map[string]*Grid{
		"extra row":      NewGrid("r", []float64{1, 2}, "c", []float64{1}),
		"missing row":    NewGrid("r", nil, "c", []float64{1}),
		"extra col":      NewGrid("r", []float64{1}, "c", []float64{1, 2}),
		"shifted col":    NewGrid("r", []float64{1}, "c", []float64{9}),
		"renumbered row": NewGrid("r", []float64{7}, "c", []float64{1}),
	}
	for name, o := range cases {
		g := NewGrid("r", []float64{1}, "c", []float64{1})
		g.Add(0, 0, 10)
		if err := g.Merge(o); !errors.Is(err, ErrMismatchedAxes) {
			t.Errorf("%s: err = %v, want ErrMismatchedAxes", name, err)
		}
		if g.At(0, 0).Count() != 1 {
			t.Errorf("%s: receiver mutated by failed merge", name)
		}
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"beta", "22"},
	})
	if !strings.Contains(out, "name") || !strings.Contains(out, "alpha") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every line has the same prefix width before col 2.
	if !strings.HasPrefix(lines[3], "beta ") {
		t.Errorf("row misaligned: %q", lines[3])
	}
}

func TestRenderSeries(t *testing.T) {
	s1 := NewSeries("abm", []float64{10, 20})
	s2 := NewSeries("random", []float64{10, 20})
	s1.Add(0, 5)
	s1.Add(1, 9)
	s2.Add(0, 1)
	s2.Add(1, 2)
	out, err := RenderSeries("k", []*Series{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"k", "abm", "random", "10", "20", "5.0", "9.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if out, err := RenderSeries("k", nil); err != nil || out != "" {
		t.Errorf("empty series list should render empty: %q, %v", out, err)
	}
}

// TestRenderSeriesMismatchedAxes is the regression test for the silent
// shared-axis assumption: a shorter series used to panic at At(i) and a
// longer one silently lost its tail points. Both now fail loudly.
func TestRenderSeriesMismatchedAxes(t *testing.T) {
	cases := map[string]*Series{
		"shorter": NewSeries("s", []float64{10}),
		"longer":  NewSeries("s", []float64{10, 20, 30}),
		"shifted": NewSeries("s", []float64{10, 25}),
	}
	for name, other := range cases {
		base := NewSeries("base", []float64{10, 20})
		base.Add(0, 1)
		if _, err := RenderSeries("k", []*Series{base, other}); !errors.Is(err, ErrMismatchedAxes) {
			t.Errorf("RenderSeries %s: err = %v, want ErrMismatchedAxes", name, err)
		}
		if _, err := SeriesTable("t", "k", []*Series{base, other}); !errors.Is(err, ErrMismatchedAxes) {
			t.Errorf("SeriesTable %s: err = %v, want ErrMismatchedAxes", name, err)
		}
	}
}

func TestRenderGrid(t *testing.T) {
	g := NewGrid("theta", []float64{0.1, 0.3}, "Bf", []float64{20, 50})
	g.Add(0, 0, 1)
	g.Add(1, 1, 9)
	out := RenderGrid(g)
	for _, want := range []string{"theta \\ Bf", "0.1", "0.3", "20", "50", "1.0", "9.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(10) != "10" {
		t.Errorf("trimFloat(10) = %q", trimFloat(10))
	}
	if trimFloat(0.25) != "0.25" {
		t.Errorf("trimFloat(0.25) = %q", trimFloat(0.25))
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}
	out := tab.Render()
	if strings.HasPrefix(out, "[") {
		t.Errorf("unnamed table rendered with name prefix: %q", out)
	}
	tab.Name = "section"
	out = tab.Render()
	if !strings.HasPrefix(out, "[section]\n") {
		t.Errorf("named table missing prefix: %q", out)
	}
	if !strings.Contains(out, "a") || !strings.Contains(out, "1") {
		t.Errorf("table body missing: %q", out)
	}
}

func TestSeriesTable(t *testing.T) {
	s1 := NewSeries("abm", []float64{10, 20})
	s1.Add(0, 5)
	s1.Add(1, 0.25) // sub-1 mean gets 3 decimals
	tab, err := SeriesTable("ds", "k", []*Series{s1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Name != "ds" || len(tab.Header) != 2 || tab.Header[1] != "abm" {
		t.Fatalf("table = %+v", tab)
	}
	if len(tab.Rows) != 2 || tab.Rows[0][0] != "10" {
		t.Fatalf("rows = %v", tab.Rows)
	}
	if !strings.Contains(tab.Rows[1][1], "0.250") {
		t.Errorf("small mean lost precision: %v", tab.Rows[1][1])
	}
	empty, err := SeriesTable("x", "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rows) != 0 || len(empty.Header) != 1 {
		t.Errorf("empty series table = %+v", empty)
	}
}

func TestGridTable(t *testing.T) {
	g := NewGrid("theta", []float64{0.1}, "Bf", []float64{20, 50})
	g.Add(0, 0, 3)
	g.Add(0, 1, 7)
	tab := GridTable("tw", g)
	if tab.Name != "tw" || len(tab.Header) != 3 {
		t.Fatalf("table = %+v", tab)
	}
	if tab.Rows[0][1] != "3.0" || tab.Rows[0][2] != "7.0" {
		t.Errorf("rows = %v", tab.Rows)
	}
}

func TestFormatMeanCI(t *testing.T) {
	if got := formatMeanCI(0.123, 0.045); got != "0.123 ±0.045" {
		t.Errorf("small = %q", got)
	}
	if got := formatMeanCI(12.34, 1.2); got != "12.3 ±1.2" {
		t.Errorf("large = %q", got)
	}
	if got := formatMeanCI(0, 0); got != "0.0 ±0.0" {
		t.Errorf("zero = %q", got)
	}
	if got := formatMeanCI(-0.5, 0.1); got != "-0.500 ±0.100" {
		t.Errorf("negative small = %q", got)
	}
	// Regression: a mean >= 1 with a small nonzero ci used to render
	// "±0.0" — indistinguishable from zero uncertainty. The ci's
	// precision now follows its own magnitude.
	if got := formatMeanCI(5.0, 0.04); got != "5.0 ±0.040" {
		t.Errorf("large mean small ci = %q, want \"5.0 ±0.040\"", got)
	}
	if got := formatMeanCI(1234.5, 0.001); got != "1234.5 ±0.001" {
		t.Errorf("tiny ci = %q", got)
	}
	if got := formatMeanCI(0.02, 3.5); got != "0.020 ±3.5" {
		t.Errorf("small mean large ci = %q", got)
	}
}

// TestRenderTableRaggedRow is the regression test for the
// index-out-of-range panic: width computation guarded i < len(widths)
// but writeRow did not, so a row with more cells than the header
// panicked. Surplus cells now render unpadded.
func TestRenderTableRaggedRow(t *testing.T) {
	out := RenderTable([]string{"a", "b"}, [][]string{
		{"1", "2", "surplus", "more"},
		{"3"},
	})
	for _, want := range []string{"a", "b", "1", "2", "surplus", "more", "3"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("line count = %d:\n%s", len(lines), out)
	}
}
