package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestFsyncAck(t *testing.T) {
	analysistest.Run(t, analysis.FsyncAck(), analysistest.Fixture{
		Dir:        "testdata/src/fsyncack_serv",
		ImportPath: "example.test/internal/serv",
		Deps: map[string]string{
			"example.test/internal/sim": "testdata/src/simjournal_stub",
		},
	})
}

// TestFsyncAckOutOfScope pins that the ordering check only applies to
// the service layers.
func TestFsyncAckOutOfScope(t *testing.T) {
	_, _, diags := analysistest.Diagnostics(t, analysis.FsyncAck(), analysistest.Fixture{
		Dir:        "testdata/src/fsyncack_serv",
		ImportPath: "example.test/internal/exp",
		Deps: map[string]string{
			"example.test/internal/sim": "testdata/src/simjournal_stub",
		},
	})
	if len(diags) != 0 {
		t.Fatalf("fsyncack out of scope reported %d findings, want 0: %v", len(diags), diags)
	}
}
