package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow returns the context-propagation analyzer for outbound network
// code. Two checks:
//
//  1. Requests built or sent without a context: http.NewRequest (use
//     NewRequestWithContext), the package-level http.Get/Post/PostForm/
//     Head conveniences and their (*http.Client) method twins. A request
//     with no context cannot be cancelled — a worker stuck in a dead
//     coordinator's dial keeps its lease alive past expiry.
//  2. Retry/poll loops that never consult their context: a loop that
//     paces itself (time.Sleep, time.After, time.Tick) inside a function
//     that has a context.Context in scope, yet mentions no context
//     anywhere in the loop. Such a loop survives cancellation until its
//     current backoff elapses — or forever. Mentioning any in-scope
//     context in the loop (ctx.Done(), ctx.Err(), passing ctx to a
//     callee) satisfies the check; the analyzer does not prove the
//     callee looks at it, a documented soundness limit.
func CtxFlow() *Analyzer {
	a := &Analyzer{
		Name: "ctxflow",
		Doc: "require outgoing HTTP requests to carry a context " +
			"(NewRequestWithContext) and pacing retry/poll loops to consult " +
			"ctx.Done()/ctx.Err() when a context is in scope",
	}
	a.Run = func(pass *Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkNoCtxRequest(pass, call)
				return true
			})
		}
		funcBodies(pass.Files, func(enclosing ast.Node, body *ast.BlockStmt) {
			checkPollLoops(pass, enclosing, body)
		})
		return nil
	}
	return a
}

// noCtxHTTPCalls are the request conveniences — package functions and
// *http.Client methods alike — that send without a caller context.
var noCtxHTTPCalls = map[string]bool{"Get": true, "Post": true, "PostForm": true, "Head": true}

func checkNoCtxRequest(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "net/http" {
		return
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return
	}
	switch {
	case sig.Recv() == nil && f.Name() == "NewRequest":
		pass.Reportf(call.Pos(),
			"http.NewRequest builds a request without a context; use http.NewRequestWithContext so the call can be cancelled")
	case sig.Recv() == nil && noCtxHTTPCalls[f.Name()]:
		pass.Reportf(call.Pos(),
			"http.%s sends a request that cannot be cancelled; build it with http.NewRequestWithContext and send via a Client",
			f.Name())
	case sig.Recv() != nil && namedRecvName(sig.Recv().Type()) == "Client" && noCtxHTTPCalls[f.Name()]:
		pass.Reportf(call.Pos(),
			"(*http.Client).%s sends a request without a context; build it with http.NewRequestWithContext and use Do",
			f.Name())
	}
}

func isContextType(t types.Type) bool {
	return isNamed(t, "context", "Context")
}

// checkPollLoops flags pacing loops in one function body that never
// consult an in-scope context. Nested function literals are handled by
// their own funcBodies visit (a captured outer context shows up there
// through Uses).
func checkPollLoops(pass *Pass, enclosing ast.Node, body *ast.BlockStmt) {
	ctxObjs := make(map[types.Object]bool)
	var ft *ast.FuncType
	switch e := enclosing.(type) {
	case *ast.FuncDecl:
		ft = e.Type
	case *ast.FuncLit:
		ft = e.Type
	}
	if ft != nil && ft.Params != nil {
		for _, field := range ft.Params.List {
			for _, name := range field.Names {
				if obj := pass.Info.Defs[name]; obj != nil && isContextType(obj.Type()) {
					ctxObjs[obj] = true
				}
			}
		}
	}
	walkBlockNode(body, false, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil && isContextType(obj.Type()) {
				ctxObjs[obj] = true
			}
		}
		return true
	})
	if len(ctxObjs) == 0 {
		// No context reaches this function; requiring one is the
		// caller's refactor, not this loop's bug.
		return
	}

	walkBlockNode(body, false, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
		default:
			return true
		}
		if loopPaces(pass, n) && !loopMentionsCtx(pass, n, ctxObjs) {
			pass.Reportf(n.Pos(),
				"this loop paces itself with a timer but never consults its context; select on ctx.Done() (or check ctx.Err()) each iteration so cancellation can stop the retry/poll loop")
		}
		return true
	})
}

// pacingCalls are the time package calls that make a loop a retry/poll
// loop.
var pacingCalls = map[string]bool{"Sleep": true, "After": true, "Tick": true}

// loopPaces reports whether the loop's own iteration (nested loops,
// goroutines and stored literals excluded — they pace themselves) calls
// a pacing primitive.
func loopPaces(pass *Pass, loop ast.Node) bool {
	paces := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if paces {
			return false
		}
		if n != loop {
			switch n.(type) {
			case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit, *ast.GoStmt:
				return false
			}
		}
		if call, ok := n.(*ast.CallExpr); ok {
			// Package functions only: time.Time.After is a comparison.
			if f := calleeFunc(pass, call); f != nil && f.Pkg() != nil &&
				f.Pkg().Path() == "time" && pacingCalls[f.Name()] && isPackageFunc(f) {
				paces = true
			}
		}
		return true
	})
	return paces
}

// loopMentionsCtx reports whether any in-scope context object is
// mentioned anywhere in the loop, nested literals included (a callback
// may be the one checking ctx).
func loopMentionsCtx(pass *Pass, loop ast.Node, ctxObjs map[types.Object]bool) bool {
	mentions := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if mentions {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && ctxObjs[pass.Info.Uses[id]] {
			mentions = true
		}
		return true
	})
	return mentions
}
