package analysis

// cfg.go implements the function-level control-flow-graph builder the
// wave-2 (path-sensitive) analyzers run on. The graph is purely
// syntactic — it is built from the AST alone, so it can be constructed
// for fixture snippets and golden-tested without type information — and
// deliberately small: basic blocks hold leaf statements and control
// expressions; structured statements (if/for/range/switch/select) are
// decomposed into blocks and edges.
//
// Edge semantics:
//
//   - `return` and terminal calls (panic, os.Exit, log.Fatal*,
//     runtime.Goexit) edge to the synthetic exit block.
//   - loops carry the back edge plus the exit edge (a `for` without a
//     condition has no exit edge unless a `break` targets it).
//   - `switch` without a `default` has an edge from the head past every
//     case; `select` only leaves through its cases (or its default).
//   - `break`, `continue`, `goto` and `fallthrough` — labeled or not —
//     edge to their targets; statements after them land in a fresh
//     predecessor-less block, so dataflow never propagates into dead
//     code.
//   - `defer` statements stay in their block as ordinary nodes (the
//     deferred call does NOT execute there) and are additionally
//     collected in CFG.Defers so analyzers can model function-exit
//     effects (e.g. a deferred mu.Unlock covering every path).
//
// Nested function literals are opaque: their bodies are not flattened
// into the enclosing graph. Analyzers build a separate CFG per literal
// and must prune FuncLit subtrees when walking block nodes (see
// walkBlockNode in dataflow.go).
import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// A Block is one basic block: a maximal single-entry, single-exit run of
// leaf statements and control expressions.
type Block struct {
	// Index is the block's position in CFG.Blocks (stable across builds
	// of the same function; used by the golden tests).
	Index int
	// Kind names the block's structural role: "entry", "exit", "body",
	// "if.then", "for.head", "switch.case", "label.<name>", ...
	Kind string
	// Nodes holds the block's statements and control expressions in
	// execution order. Control expressions (an if condition, a switch
	// tag, case expressions, a range operand) appear as bare ast.Expr.
	Nodes []ast.Node
	// Succs are the possible successors, in creation order.
	Succs []*Block
}

// A CFG is the control-flow graph of one function body. Blocks[0] is the
// entry, Blocks[1] the synthetic exit.
type CFG struct {
	Blocks []*Block
	// Defers lists every defer statement of the function (at any depth
	// of structured control flow, excluding nested function literals),
	// in source order.
	Defers []*ast.DeferStmt
}

// Entry returns the entry block.
func (g *CFG) Entry() *Block { return g.Blocks[0] }

// Exit returns the synthetic exit block. Every return path and terminal
// call edges here; facts flowing into it describe function exit.
func (g *CFG) Exit() *Block { return g.Blocks[1] }

// String renders the graph in the compact form the golden tests pin:
// one line per block, "b<i> <kind> -> b<j> b<k>".
func (g *CFG) String() string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", b.Index, b.Kind)
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// NewCFG builds the control-flow graph of one function body (from an
// *ast.FuncDecl or *ast.FuncLit).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]*Block)}
	entry := b.newBlock("entry")
	b.newBlock("exit")
	first := b.newBlock("body")
	entry.Succs = append(entry.Succs, first)
	b.cur = first
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit()) // implicit return at end of body
	}
	return b.cfg
}

// cfgBuilder carries the under-construction graph and the control
// context (break/continue targets, fallthrough target, label blocks).
type cfgBuilder struct {
	cfg *CFG
	// cur is the block statements are currently appended to; nil after
	// a jump (return/break/...) until the next statement revives it as
	// an unreachable block.
	cur *Block
	// targets is the stack of enclosing breakable/continuable regions.
	targets []cfgTarget
	// fall is the next case block while building a switch clause body
	// (the fallthrough target), nil elsewhere.
	fall *Block
	// pendingLabel is the label wrapping the next loop/switch/select.
	pendingLabel string
	// labels maps label names to their blocks (created on first use by
	// either the labeled statement or a goto).
	labels map[string]*Block
}

// cfgTarget is one entry of the break/continue stack.
type cfgTarget struct {
	label      string
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// block returns the current block, reviving dead control flow into a
// fresh predecessor-less block (statements after return/break/...).
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

// add appends a leaf node to the current block.
func (b *cfgBuilder) add(n ast.Node) {
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

// jump edges the current block to dst and kills the flow.
func (b *cfgBuilder) jump(dst *Block) {
	if b.cur != nil {
		b.edge(b.cur, dst)
	}
	b.cur = nil
}

// takeLabel consumes the pending label of a wrapped loop/switch/select.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// labelBlock returns the block for a label, creating it on first use.
func (b *cfgBuilder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label." + name)
	b.labels[name] = blk
	return blk
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s)
	case *ast.RangeStmt:
		b.rangeStmt(s)
	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, true)
	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, false)
	case *ast.SelectStmt:
		b.selectStmt(s)
	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.cfg.Exit())
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			b.jump(b.cfg.Exit())
		}
	case *ast.EmptyStmt:
		// no node
	default:
		// AssignStmt, DeclStmt, GoStmt, SendStmt, IncDecStmt, ...
		b.add(s)
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	cond := b.block()
	b.cur = nil

	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmt(s.Body)
	thenEnd := b.cur

	var elseEnd *Block
	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		elseEnd = b.cur
	}

	join := b.newBlock("if.join")
	if thenEnd != nil {
		b.edge(thenEnd, join)
	}
	if s.Else == nil {
		b.edge(cond, join)
	} else if elseEnd != nil {
		b.edge(elseEnd, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock("for.head")
	b.jump(head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.newBlock("for.body")
	b.edge(head, body)
	join := b.newBlock("for.join")
	if s.Cond != nil {
		b.edge(head, join)
	}
	contTo := head
	if s.Post != nil {
		post := b.newBlock("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		contTo = post
	}
	b.targets = append(b.targets, cfgTarget{label: label, breakTo: join, continueTo: contTo})
	b.cur = body
	b.stmt(s.Body)
	b.jump(contTo)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.newBlock("range.head")
	b.jump(head)
	head.Nodes = append(head.Nodes, s.X)
	body := b.newBlock("range.body")
	b.edge(head, body)
	join := b.newBlock("range.join")
	b.edge(head, join)
	b.targets = append(b.targets, cfgTarget{label: label, breakTo: join, continueTo: head})
	b.cur = body
	b.stmt(s.Body)
	b.jump(head)
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

// switchStmt lowers expression and type switches. allowFall enables
// fallthrough (expression switches only).
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, allowFall bool) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.block()
	b.cur = nil

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blks[i] = b.newBlock(kind)
		b.edge(head, blks[i])
	}
	join := b.newBlock("switch.join")
	if !hasDefault {
		b.edge(head, join)
	}

	b.targets = append(b.targets, cfgTarget{label: label, breakTo: join})
	for i, cc := range clauses {
		b.cur = blks[i]
		for _, e := range cc.List {
			blks[i].Nodes = append(blks[i].Nodes, e)
		}
		oldFall := b.fall
		b.fall = nil
		if allowFall && i+1 < len(blks) {
			b.fall = blks[i+1]
		}
		b.stmtList(cc.Body)
		b.fall = oldFall
		b.jump(join)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.block()
	b.cur = nil

	clauses := make([]*ast.CommClause, 0, len(s.Body.List))
	for _, c := range s.Body.List {
		clauses = append(clauses, c.(*ast.CommClause))
	}
	blks := make([]*Block, len(clauses))
	for i, cc := range clauses {
		kind := "select.case"
		if cc.Comm == nil {
			kind = "select.default"
		}
		blks[i] = b.newBlock(kind)
		b.edge(head, blks[i])
	}
	// A select only leaves through its cases; with no clause at all
	// (`select {}`) it blocks forever, so the join is unreachable.
	join := b.newBlock("select.join")

	b.targets = append(b.targets, cfgTarget{label: label, breakTo: join})
	for i, cc := range clauses {
		b.cur = blks[i]
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		b.jump(join)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = join
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if label == "" || t.label == label {
				b.jump(t.breakTo)
				return
			}
		}
		b.cur = nil // malformed label: kill flow rather than mis-edge
	case token.CONTINUE:
		for i := len(b.targets) - 1; i >= 0; i-- {
			t := b.targets[i]
			if t.continueTo != nil && (label == "" || t.label == label) {
				b.jump(t.continueTo)
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		b.jump(b.labelBlock(label))
	case token.FALLTHROUGH:
		if b.fall != nil {
			b.jump(b.fall)
		} else {
			b.cur = nil
		}
	}
}

func (b *cfgBuilder) labeledStmt(s *ast.LabeledStmt) {
	lbl := b.labelBlock(s.Label.Name)
	b.jump(lbl)
	b.cur = lbl
	switch s.Stmt.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.pendingLabel = s.Label.Name
	}
	b.stmt(s.Stmt)
	b.pendingLabel = ""
}

// isTerminalCall reports whether the expression is a call that never
// returns, detected syntactically: panic(...), os.Exit, runtime.Goexit
// and the log.Fatal family.
func isTerminalCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		case "log":
			return strings.HasPrefix(fun.Sel.Name, "Fatal")
		}
	}
	return false
}
