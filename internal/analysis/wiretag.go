package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// WireTag returns the wire-format schema analyzer: a struct marked
//
//	//accu:wire
//
// in its doc comment is part of a serialized format — a journal line, an
// HTTP payload, a persisted job document — so its field layout is a
// compatibility contract, not an implementation detail. For marked
// structs the analyzer enforces:
//
//   - Every exported, non-embedded field carries an explicit `json:`
//     tag. Without one, encoding/json silently falls back to the Go
//     field name, so an innocent rename is a silent wire-format break.
//     The suggested fix is machine-applicable and behavior-preserving:
//     it locks in the CURRENT encoded name (`json:"FieldName"`),
//     changing no bytes on the wire.
//   - Tag names are unique within the struct (duplicate names make
//     encoding/json drop both fields — a silent data loss).
//   - No unkeyed composite literal of a marked struct anywhere in the
//     package: positional literals silently reshuffle values when
//     fields are reordered. The fix inserts the field names.
//
// The marked structs also feed the committed wire-schema lockfile
// (CollectWireSchemas; `accuvet -wire-lock` in the driver), which turns
// any field rename/retype/reorder into a reviewable diff instead of a
// production incident.
func WireTag() *Analyzer {
	a := &Analyzer{
		Name: "wiretag",
		Doc: "enforce explicit, unique json tags and keyed composite literals " +
			"for structs marked //accu:wire (journal lines, HTTP payloads, " +
			"persisted documents)",
	}
	a.Run = func(pass *Pass) error {
		marked := markedWireStructs(pass.Files)
		for _, m := range marked {
			checkWireStruct(pass, m)
		}
		if len(marked) == 0 {
			return nil
		}
		byObj := make(map[types.Object]*wireStruct, len(marked))
		for _, m := range marked {
			if obj := pass.Info.Defs[m.spec.Name]; obj != nil {
				byObj[obj] = m
			}
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok || len(lit.Elts) == 0 {
					return true
				}
				tv, ok := pass.Info.Types[lit]
				if !ok {
					return true
				}
				named, ok := types.Unalias(tv.Type).(*types.Named)
				if !ok {
					return true
				}
				m, isWire := byObj[named.Obj()]
				if !isWire {
					return true
				}
				if _, keyed := lit.Elts[0].(*ast.KeyValueExpr); keyed {
					return true
				}
				checkUnkeyedWireLit(pass, m, lit)
				return true
			})
		}
		return nil
	}
	return a
}

// wireStruct is one //accu:wire-marked struct declaration.
type wireStruct struct {
	spec *ast.TypeSpec
	st   *ast.StructType
}

// isWireMarker reports whether one comment line is the //accu:wire
// directive (optionally with a trailing reason).
func isWireMarker(text string) bool {
	return text == "//accu:wire" || strings.HasPrefix(text, "//accu:wire ")
}

// markedWireStructs collects the struct type declarations whose doc (or
// trailing line) comment carries //accu:wire, in file order.
func markedWireStructs(files []*ast.File) []*wireStruct {
	var out []*wireStruct
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			declMarked := commentHasWireMarker(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if declMarked || commentHasWireMarker(ts.Doc) || commentHasWireMarker(ts.Comment) {
					out = append(out, &wireStruct{spec: ts, st: st})
				}
			}
		}
	}
	return out
}

func commentHasWireMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if isWireMarker(c.Text) {
			return true
		}
	}
	return false
}

// jsonTagName extracts the json name from a field tag literal; ok is
// false when the tag has no json key at all.
func jsonTagName(tag *ast.BasicLit) (name string, ok bool) {
	if tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(tag.Value)
	if err != nil {
		return "", false
	}
	val, ok := lookupStructTag(raw, "json")
	if !ok {
		return "", false
	}
	if i := strings.IndexByte(val, ','); i >= 0 {
		val = val[:i]
	}
	return val, true
}

// lookupStructTag is reflect.StructTag.Lookup without importing reflect
// into every analyzer build — same conventional syntax.
func lookupStructTag(tag, key string) (string, bool) {
	for tag != "" {
		tag = strings.TrimLeft(tag, " ")
		i := strings.IndexByte(tag, ':')
		if i <= 0 || i+1 >= len(tag) || tag[i+1] != '"' {
			break
		}
		name := tag[:i]
		rest := tag[i+2:]
		j := 0
		for j < len(rest) && rest[j] != '"' {
			if rest[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(rest) {
			break
		}
		val := rest[:j]
		tag = rest[j+1:]
		if name == key {
			unq, err := strconv.Unquote(`"` + val + `"`)
			if err != nil {
				return "", false
			}
			return unq, true
		}
	}
	return "", false
}

// checkWireStruct enforces explicit, unique json tags on one marked
// struct.
func checkWireStruct(pass *Pass, m *wireStruct) {
	seen := make(map[string]string) // json name -> field name
	for _, field := range m.st.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: encoding/json flattens it; its own fields
			// are covered when (and only when) its type is marked too.
			continue
		}
		exported := false
		for _, name := range field.Names {
			if name.IsExported() {
				exported = true
			}
		}
		if !exported {
			continue
		}
		name, hasJSON := jsonTagName(field.Tag)
		if !hasJSON {
			for _, fn := range field.Names {
				if !fn.IsExported() {
					continue
				}
				var fixes []SuggestedFix
				if len(field.Names) == 1 {
					fixes = []SuggestedFix{tagInsertFix(field, fn.Name)}
				}
				pass.ReportfFix(fn.Pos(), fixes,
					"wire struct %s: exported field %s has no explicit json tag; encoding/json falls back to the field name, so a rename silently changes the wire format",
					m.spec.Name.Name, fn.Name)
			}
			continue
		}
		if name == "" {
			pass.Reportf(field.Names[0].Pos(),
				"wire struct %s: field %s has a json tag with an empty name; name it explicitly",
				m.spec.Name.Name, field.Names[0].Name)
			continue
		}
		if name == "-" {
			continue
		}
		if prev, dup := seen[name]; dup {
			pass.Reportf(field.Names[0].Pos(),
				"wire struct %s: json tag %q on field %s duplicates field %s; encoding/json drops both",
				m.spec.Name.Name, name, field.Names[0].Name, prev)
			continue
		}
		seen[name] = field.Names[0].Name
	}
}

// tagInsertFix builds the machine-applicable fix locking in the current
// encoded name: append (or extend) the field tag with json:"<FieldName>".
func tagInsertFix(field *ast.Field, fieldName string) SuggestedFix {
	tag := "json:\"" + fieldName + "\""
	if field.Tag == nil {
		return SuggestedFix{
			Message:           "add explicit json tag preserving the current wire name",
			MachineApplicable: true,
			Edits: []TextEdit{{
				Pos:     field.Type.End(),
				End:     field.Type.End(),
				NewText: " `" + tag + "`",
			}},
		}
	}
	if strings.HasPrefix(field.Tag.Value, "`") && strings.HasSuffix(field.Tag.Value, "`") {
		return SuggestedFix{
			Message:           "add json key to the existing field tag",
			MachineApplicable: true,
			Edits: []TextEdit{{
				Pos:     field.Tag.End() - 1,
				End:     field.Tag.End() - 1,
				NewText: " " + tag,
			}},
		}
	}
	// Double-quoted tag literal: rewriting it safely needs a human.
	return SuggestedFix{
		Message: "add json key to the existing field tag",
		Edits: []TextEdit{{
			Pos:     field.Tag.Pos(),
			End:     field.Tag.End(),
			NewText: "`" + tag + "`",
		}},
	}
}

// checkUnkeyedWireLit reports a positional composite literal of a
// marked struct, with a fix inserting the field keys.
func checkUnkeyedWireLit(pass *Pass, m *wireStruct, lit *ast.CompositeLit) {
	var names []string
	for _, field := range m.st.Fields.List {
		if len(field.Names) == 0 {
			names = append(names, types.ExprString(field.Type))
			continue
		}
		for _, fn := range field.Names {
			names = append(names, fn.Name)
		}
	}
	var fixes []SuggestedFix
	if len(lit.Elts) <= len(names) {
		fix := SuggestedFix{
			Message:           "key every element with its field name",
			MachineApplicable: true,
		}
		for i, el := range lit.Elts {
			fix.Edits = append(fix.Edits, TextEdit{
				Pos:     el.Pos(),
				End:     el.Pos(),
				NewText: names[i] + ": ",
			})
		}
		fixes = []SuggestedFix{fix}
	}
	pass.ReportfFix(lit.Pos(), fixes,
		"unkeyed composite literal of wire struct %s; positional fields silently reshuffle wire values when the struct changes — key every field",
		m.spec.Name.Name)
}

// A WireSchema is the locked shape of one //accu:wire struct, as
// serialized into the wire-schema lockfile.
type WireSchema struct {
	Package string      `json:"package"`
	Name    string      `json:"name"`
	Fields  []WireField `json:"fields"`
}

// A WireField is one field of a wire struct: declared name, wire name
// (empty for embedded or json:"-" fields) and declared type.
type WireField struct {
	Name string `json:"name"`
	JSON string `json:"json"`
	Type string `json:"type"`
}

// CollectWireSchemas extracts the //accu:wire schemas from one parsed
// package, sorted by struct name — the driver aggregates these across
// packages into the lockfile.
func CollectWireSchemas(importPath string, files []*ast.File) []WireSchema {
	var out []WireSchema
	for _, m := range markedWireStructs(files) {
		ws := WireSchema{Package: importPath, Name: m.spec.Name.Name}
		for _, field := range m.st.Fields.List {
			typ := types.ExprString(field.Type)
			if len(field.Names) == 0 {
				ws.Fields = append(ws.Fields, WireField{Name: typ, JSON: "", Type: typ})
				continue
			}
			jsonName, hasJSON := jsonTagName(field.Tag)
			for _, fn := range field.Names {
				wf := WireField{Name: fn.Name, Type: typ}
				switch {
				case !fn.IsExported():
					continue
				case !hasJSON:
					wf.JSON = fn.Name // encoding/json fallback
				case jsonName == "-":
					wf.JSON = ""
				default:
					wf.JSON = jsonName
				}
				ws.Fields = append(ws.Fields, wf)
			}
		}
		out = append(out, ws)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
