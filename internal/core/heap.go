package core

// potentialHeap is a binary max-heap on (score, user) with deterministic
// low-id tie-breaking. Hand-rolled rather than container/heap to avoid
// boxing every entry through interface{} on the ABM hot path.
type potentialHeap []heapEntry

// heapEntry is a scored candidate; stale entries are detected by
// comparing version against the policy's per-user version counter.
type heapEntry struct {
	score   float64
	user    int32
	version int32
}

// less orders entries by descending score, then ascending user id.
func (h potentialHeap) less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score > h[j].score
	}
	return h[i].user < h[j].user
}

// Len reports the number of entries.
func (h potentialHeap) Len() int { return len(h) }

// push inserts an entry.
func (h *potentialHeap) push(e heapEntry) {
	*h = append(*h, e)
	h.siftUp(len(*h) - 1)
}

// pop removes and returns the maximum entry. It must not be called on an
// empty heap.
func (h *potentialHeap) pop() heapEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	if n > 0 {
		h.siftDown(0)
	}
	return top
}

// init establishes the heap invariant over arbitrary contents.
func (h potentialHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h potentialHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h potentialHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && h.less(l, best) {
			best = l
		}
		if r < n && h.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
