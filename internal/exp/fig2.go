package exp

import (
	"context"
	"fmt"
	"strings"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
)

// checkpoints returns the request counts at which benefit is sampled —
// ten evenly spaced points up to k, matching the x-axis of Fig. 2.
func checkpoints(k int) []int {
	const points = 10
	if k <= points {
		out := make([]int, k)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}
	out := make([]int, points)
	for i := range out {
		out[i] = (i + 1) * k / points
	}
	return out
}

// benefitAt reads the cumulative benefit after the first c requests of a
// trace (traces shorter than c — candidate exhaustion — hold their final
// value).
func benefitAt(res *core.Result, c int) float64 {
	if len(res.Steps) == 0 {
		return 0
	}
	if c > len(res.Steps) {
		c = len(res.Steps)
	}
	return res.Steps[c-1].BenefitAfter
}

// Fig2 reproduces Fig. 2: total benefit vs number of requests k for ABM,
// MaxDegree, PageRank and Random on every dataset.
func Fig2(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	factories, err := sim.DefaultFactories(cfg.Weights, cfg.abmOptions()...)
	if err != nil {
		return nil, err
	}
	cps := checkpoints(cfg.K)

	var tables []stats.Table
	var notes []string
	for _, name := range cfg.Datasets {
		g, _, err := cfg.generator(name)
		if err != nil {
			return nil, err
		}
		protocol := cfg.protocol(g, cfg.setup(), cfg.Seed.Split("fig2-"+name))
		sum := sim.NewSummary(cps)
		if err := cfg.run(ctx, "fig2-"+name, protocol, factories, sum.Collect); err != nil {
			return nil, fmt.Errorf("exp: fig2 %s: %w", name, err)
		}

		ordered := make([]*stats.Series, 0, len(factories))
		for _, f := range factories {
			if curve := sum.Curve(f.Name); curve != nil {
				ordered = append(ordered, curve)
			}
		}
		tab, err := stats.SeriesTable(name, "k", ordered)
		if err != nil {
			return nil, fmt.Errorf("exp: fig2 %s: %w", name, err)
		}
		tables = append(tables, tab)
		notes = append(notes, shapeNoteFig2(name, ordered)...)
	}
	return newReport("fig2", "Total benefit vs number of friend requests", tables, notes), nil
}

// shapeNoteFig2 summarizes who wins at the final checkpoint.
func shapeNoteFig2(dataset string, series []*stats.Series) []string {
	if len(series) == 0 || series[0].Len() == 0 {
		return nil
	}
	last := series[0].Len() - 1
	best, bestVal := "", -1.0
	var abmVal, randVal float64
	for _, s := range series {
		v := s.At(last).Mean()
		if v > bestVal {
			best, bestVal = s.Label, v
		}
		switch {
		case strings.HasPrefix(s.Label, "abm"):
			abmVal = v
		case s.Label == "random":
			randVal = v
		}
	}
	notes := []string{fmt.Sprintf("%s: best final policy = %s (%.1f)", dataset, best, bestVal)}
	if abmVal > 0 && randVal > 0 {
		notes = append(notes, fmt.Sprintf("%s: ABM/Random final ratio = %.2f", dataset, abmVal/randVal))
	}
	return notes
}
