package fault_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/sim/fault"
)

// testProtocol is a small grid sized so every fault-rate expectation has
// room to fire without slowing the suite.
func testProtocol() sim.Protocol {
	s := osn.DefaultSetup()
	s.NumCautious = 5
	return sim.Protocol{
		Gen:      gen.ErdosRenyi{N: 200, M: 2000},
		Setup:    s,
		Networks: 4,
		Runs:     4,
		K:        10,
		Seed:     rng.NewSeed(7, 11),
		Workers:  4,
	}
}

func abmFactory(t *testing.T) sim.PolicyFactory {
	t.Helper()
	f, err := sim.ABMFactory(core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestChaosGridCompletes wires every wrapper at once — faulted
// generator, faulted builder, faulted policy factory — and checks the
// engine degrades instead of dying: the run finishes, the surviving
// cells are delivered, and the injected failures reconcile with the
// engine's failure ledger.
func TestChaosGridCompletes(t *testing.T) {
	p := testProtocol()
	p.ContinueOnError = true
	reg := obs.New()
	p.Metrics = reg
	rates := fault.Rates{Fail: 0.3, Metrics: reg}
	p.Gen = fault.Generator{Inner: p.Gen, Rates: rates}
	p.Setup = fault.Builder{Inner: p.Setup, Rates: rates}
	factory := fault.Factory(abmFactory(t), rates)

	collected := 0
	err := sim.Run(context.Background(), p, []sim.PolicyFactory{factory}, func(sim.Record) { collected++ })
	var sum *sim.FailureSummary
	if err != nil && !errors.As(err, &sum) {
		t.Fatalf("err = %v, want nil or *FailureSummary", err)
	}
	failed := 0
	if sum != nil {
		failed = len(sum.Failures)
		if !errors.Is(err, fault.ErrInjected) {
			t.Errorf("summary does not unwrap to ErrInjected: %v", err)
		}
	}
	if collected+failed != p.Networks*p.Runs {
		t.Errorf("collected %d + failed %d != grid %d", collected, failed, p.Networks*p.Runs)
	}
	if v := reg.Counter("sim.cell_failures").Value(); v != int64(failed) {
		t.Errorf("sim.cell_failures = %d, want %d", v, failed)
	}
	if reg.Counter("fault.failures").Value() == 0 {
		t.Error("no faults injected at Fail=0.3 on a 16-cell grid; seed choice starved the test")
	}
}

// TestPolicyFaultsReconcileWithEngine uses only the policy wrapper with
// Retries=0, so every injected policy fault is exactly one failed cell:
// fault.failures must equal sim.cell_failures.
func TestPolicyFaultsReconcileWithEngine(t *testing.T) {
	p := testProtocol()
	p.ContinueOnError = true
	reg := obs.New()
	p.Metrics = reg
	factory := fault.Factory(abmFactory(t), fault.Rates{Fail: 0.25, Metrics: reg})

	err := sim.Run(context.Background(), p, []sim.PolicyFactory{factory}, func(sim.Record) {})
	var sum *sim.FailureSummary
	if err != nil && !errors.As(err, &sum) {
		t.Fatalf("err = %v, want nil or *FailureSummary", err)
	}
	injected := reg.Counter("fault.failures").Value()
	if injected == 0 {
		t.Fatal("no faults injected at Fail=0.25 on a 16-cell grid; seed choice starved the test")
	}
	if v := reg.Counter("sim.cell_failures").Value(); v != injected {
		t.Errorf("sim.cell_failures = %d, want the %d injected faults", v, injected)
	}
}

// TestFaultDeterminism runs the same chaos grid twice and requires the
// identical failure set — fault injection must be as reproducible as the
// engine it exercises.
func TestFaultDeterminism(t *testing.T) {
	failures := func() map[sim.CellKey]bool {
		p := testProtocol()
		p.ContinueOnError = true
		factory := fault.Factory(abmFactory(t), fault.Rates{Fail: 0.25})
		err := sim.Run(context.Background(), p, []sim.PolicyFactory{factory}, func(sim.Record) {})
		var sum *sim.FailureSummary
		if !errors.As(err, &sum) {
			t.Fatalf("err = %v, want *FailureSummary", err)
		}
		got := map[sim.CellKey]bool{}
		for _, ce := range sum.Failures {
			got[sim.CellKey{Network: ce.Network, Run: ce.Run}] = true
		}
		return got
	}
	a, b := failures(), failures()
	if len(a) != len(b) {
		t.Fatalf("failure sets differ in size: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if !b[k] {
			t.Errorf("cell %+v failed in one run but not the other", k)
		}
	}
}

// TestNonFaultedCellsUntouched pins the pass-through contract: wrapping
// with zero rates changes nothing — the wrapped components consume their
// original seed streams, so records are bit-identical to an unwrapped
// run.
func TestNonFaultedCellsUntouched(t *testing.T) {
	collect := func(wrap bool) map[sim.CellKey]float64 {
		p := testProtocol()
		factory := abmFactory(t)
		if wrap {
			p.Gen = fault.Generator{Inner: p.Gen, Rates: fault.Rates{}}
			p.Setup = fault.Builder{Inner: p.Setup, Rates: fault.Rates{}}
			factory = fault.Factory(factory, fault.Rates{})
		}
		got := map[sim.CellKey]float64{}
		if err := sim.Run(context.Background(), p, []sim.PolicyFactory{factory}, func(r sim.Record) {
			got[sim.CellKey{Network: r.Network, Run: r.Run}] = r.Result.Benefit
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	plain, wrapped := collect(false), collect(true)
	if len(plain) != len(wrapped) {
		t.Fatalf("cell counts differ: %d vs %d", len(plain), len(wrapped))
	}
	for k, v := range plain {
		if wrapped[k] != v {
			t.Errorf("cell %+v: benefit %v plain vs %v wrapped", k, v, wrapped[k])
		}
	}
}

// TestRetriesRecoverInjectedFaults checks the end-to-end transient-fault
// story: the engine re-derives the cell seed per attempt, so a faulted
// attempt can succeed on retry, and enough retries drive the failure
// count well below the no-retry baseline.
func TestRetriesRecoverInjectedFaults(t *testing.T) {
	failedWith := func(retries int) int {
		p := testProtocol()
		p.ContinueOnError = true
		p.Retries = retries
		factory := fault.Factory(abmFactory(t), fault.Rates{Fail: 0.25})
		err := sim.Run(context.Background(), p, []sim.PolicyFactory{factory}, func(sim.Record) {})
		var sum *sim.FailureSummary
		if err == nil {
			return 0
		}
		if !errors.As(err, &sum) {
			t.Fatalf("retries=%d: err = %v, want *FailureSummary", retries, err)
		}
		return len(sum.Failures)
	}
	base := failedWith(0)
	if base == 0 {
		t.Fatal("no faults injected at Fail=0.25; seed choice starved the test")
	}
	if retried := failedWith(3); retried >= base {
		t.Errorf("retries did not reduce failures: %d without vs %d with", base, retried)
	}
}

// TestStallExercisesCellTimeout stalls one quarter of policy builds past
// the cell timeout and requires the engine to time the cells out rather
// than hang.
func TestStallExercisesCellTimeout(t *testing.T) {
	p := testProtocol()
	p.ContinueOnError = true
	p.CellTimeout = 20 * time.Millisecond
	reg := obs.New()
	p.Metrics = reg
	factory := fault.Factory(abmFactory(t), fault.Rates{
		Stall:    0.25,
		StallFor: 250 * time.Millisecond,
		Metrics:  reg,
	})
	err := sim.Run(context.Background(), p, []sim.PolicyFactory{factory}, func(sim.Record) {})
	var sum *sim.FailureSummary
	if !errors.As(err, &sum) {
		t.Fatalf("err = %v, want *FailureSummary", err)
	}
	if !errors.Is(err, sim.ErrCellTimeout) {
		t.Errorf("summary does not unwrap to ErrCellTimeout: %v", err)
	}
	if reg.Counter("fault.stalls").Value() == 0 {
		t.Fatal("no stalls injected at Stall=0.25; seed choice starved the test")
	}
	if reg.Counter("sim.cell_timeouts").Value() == 0 {
		t.Error("stalled cells did not trip sim.cell_timeouts")
	}
}
