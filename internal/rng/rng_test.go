package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedSplitDeterministic(t *testing.T) {
	root := NewSeed(1, 2)
	a := root.Split("network")
	b := root.Split("network")
	if a != b {
		t.Fatalf("same label produced different seeds: %v vs %v", a, b)
	}
}

func TestSeedSplitDistinctLabels(t *testing.T) {
	root := NewSeed(1, 2)
	if root.Split("a") == root.Split("b") {
		t.Fatal("distinct labels produced identical seeds")
	}
}

func TestSeedSplitNDistinctIndices(t *testing.T) {
	root := NewSeed(7, 9)
	seen := make(map[Seed]int)
	for i := 0; i < 1000; i++ {
		s := root.SplitN("run", i)
		if prev, ok := seen[s]; ok {
			t.Fatalf("indices %d and %d collided", prev, i)
		}
		seen[s] = i
	}
}

func TestSeedRandReproducible(t *testing.T) {
	s := NewSeed(42, 43)
	r1 := s.Rand()
	r2 := s.Rand()
	for i := 0; i < 100; i++ {
		if a, b := r1.Uint64(), r2.Uint64(); a != b {
			t.Fatalf("stream diverged at %d: %d vs %d", i, a, b)
		}
	}
}

func TestSeedZeroValueUsable(t *testing.T) {
	var s Seed
	r := s.Rand()
	_ = r.Uint64() // must not panic
	if s.Split("x") == s.Split("y") {
		t.Fatal("zero seed split collision")
	}
}

func TestSplitIndependence(t *testing.T) {
	// Children of the same parent should not produce correlated leading
	// outputs. Weak smoke test: first outputs must all be distinct.
	root := NewSeed(5, 5)
	seen := make(map[uint64]bool)
	for i := 0; i < 200; i++ {
		v := root.SplitN("child", i).Rand().Uint64()
		if seen[v] {
			t.Fatalf("first output collision at child %d", i)
		}
		seen[v] = true
	}
}

func TestNewAliasErrors(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("nil weights: want error")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("zero weights: want error")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := NewAlias([]float64{math.NaN()}); err == nil {
		t.Error("NaN weight: want error")
	}
	if _, err := NewAlias([]float64{math.Inf(1)}); err == nil {
		t.Error("Inf weight: want error")
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d, want 4", a.Len())
	}
	r := NewSeed(1, 1).Rand()
	counts := make([]int, 4)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / draws
		want := w / 10
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: frequency %.4f, want %.4f ± 0.01", i, got, want)
		}
	}
}

func TestAliasSingleOutcome(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	r := NewSeed(2, 2).Rand()
	for i := 0; i < 50; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias returned nonzero index")
		}
	}
}

func TestPowerLawDegreesBounds(t *testing.T) {
	r := NewSeed(3, 3).Rand()
	degs, err := PowerLawDegrees(r, 5000, 2, 100, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, d := range degs {
		if d < 2 || d > 101 { // +1 slack for the even-sum fixup
			t.Fatalf("degree %d out of bounds", d)
		}
		sum += d
	}
	if sum%2 != 0 {
		t.Error("degree sum is odd")
	}
}

func TestPowerLawDegreesHeavyTail(t *testing.T) {
	// A power law with gamma 2.1 must produce substantially more
	// high-degree nodes than one with gamma 3.5.
	countAbove := func(gamma float64) int {
		r := NewSeed(4, 4).Rand()
		degs, err := PowerLawDegrees(r, 20000, 2, 500, gamma)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, d := range degs {
			if d >= 50 {
				n++
			}
		}
		return n
	}
	heavy, light := countAbove(2.1), countAbove(3.5)
	if heavy <= 2*light {
		t.Errorf("tail not heavier: gamma2.1 count %d vs gamma3.5 count %d", heavy, light)
	}
}

func TestPowerLawDegreesErrors(t *testing.T) {
	r := NewSeed(5, 6).Rand()
	cases := []struct {
		name              string
		n, minDeg, maxDeg int
		gamma             float64
	}{
		{"zero n", 0, 1, 10, 2.5},
		{"bad min", 10, 0, 10, 2.5},
		{"max below min", 10, 5, 4, 2.5},
		{"gamma too small", 10, 1, 10, 1.0},
	}
	for _, tc := range cases {
		if _, err := PowerLawDegrees(r, tc.n, tc.minDeg, tc.maxDeg, tc.gamma); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := NewSeed(6, 6).Rand()
	out, err := SampleWithoutReplacement(r, 100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 30 {
		t.Fatalf("len = %d, want 30", len(out))
	}
	seen := make(map[int]bool)
	for _, v := range out {
		if v < 0 || v >= 100 {
			t.Fatalf("value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithoutReplacementEdge(t *testing.T) {
	r := NewSeed(7, 7).Rand()
	if out, err := SampleWithoutReplacement(r, 5, 5); err != nil || len(out) != 5 {
		t.Errorf("k==n: out=%v err=%v", out, err)
	}
	if out, err := SampleWithoutReplacement(r, 5, 0); err != nil || len(out) != 0 {
		t.Errorf("k==0: out=%v err=%v", out, err)
	}
	if _, err := SampleWithoutReplacement(r, 5, 6); err == nil {
		t.Error("k>n: want error")
	}
	if _, err := SampleWithoutReplacement(r, 5, -1); err == nil {
		t.Error("k<0: want error")
	}
}

func TestSampleWithoutReplacementProperty(t *testing.T) {
	r := NewSeed(8, 8).Rand()
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%200 + 1
		k := int(kRaw) % (n + 1)
		out, err := SampleWithoutReplacement(r, n, k)
		if err != nil || len(out) != k {
			return false
		}
		seen := make(map[int]bool, k)
		for _, v := range out {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBernoulli(t *testing.T) {
	r := NewSeed(9, 9).Rand()
	if Bernoulli(r, 0) {
		t.Error("p=0 returned true")
	}
	if !Bernoulli(r, 1) {
		t.Error("p=1 returned false")
	}
	if Bernoulli(r, -0.5) {
		t.Error("p<0 returned true")
	}
	if !Bernoulli(r, 1.5) {
		t.Error("p>1 returned false")
	}
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if Bernoulli(r, 0.3) {
			hits++
		}
	}
	freq := float64(hits) / draws
	if math.Abs(freq-0.3) > 0.01 {
		t.Errorf("p=0.3: frequency %.4f", freq)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewSeed(10, 10).Rand()
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	Shuffle(r, xs)
	seen := make([]bool, 100)
	for _, v := range xs {
		if seen[v] {
			t.Fatalf("duplicate %d after shuffle", v)
		}
		seen[v] = true
	}
}
