package core

import (
	"testing"

	"github.com/accu-sim/accu/internal/rng"
)

func TestRunJournalReplays(t *testing.T) {
	inst := randomInstance(t, 1500)
	re := inst.SampleRealization(rng.NewSeed(15, 15))
	abm, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(abm, re, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Journal == nil || len(res.Journal.Users) != len(res.Steps) {
		t.Fatalf("journal missing or short: %+v", res.Journal)
	}
	st, err := res.Journal.Replay(re)
	if err != nil {
		t.Fatal(err)
	}
	if st.Benefit() != res.Benefit {
		t.Errorf("replay benefit %v vs %v", st.Benefit(), res.Benefit)
	}
}

func TestRunBatchedJournalReplays(t *testing.T) {
	inst := randomInstance(t, 1600)
	re := inst.SampleRealization(rng.NewSeed(16, 16))
	abm, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunBatched(abm, re, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	st, err := res.Journal.Replay(re)
	if err != nil {
		t.Fatal(err)
	}
	if st.Benefit() != res.Benefit {
		t.Errorf("batched replay benefit %v vs %v", st.Benefit(), res.Benefit)
	}
	// Batch structure preserved: 30 requests in batches of 7,7,7,7,2.
	if len(res.Journal.BatchSizes) != 5 || res.Journal.BatchSizes[4] != 2 {
		t.Errorf("batch sizes = %v", res.Journal.BatchSizes)
	}
}
