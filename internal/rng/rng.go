// Package rng provides deterministic, splittable random number generation
// for reproducible experiments.
//
// Every Monte-Carlo cell in the experiment harness (one sample network, one
// algorithm run) derives its generator by splitting a root seed with a
// stable label, so any cell can be re-executed bit-for-bit in isolation.
// The underlying source is the stdlib PCG from math/rand/v2; splitting is
// implemented with SplitMix64 over the label hash, following the
// construction in Steele et al., "Fast Splittable Pseudorandom Number
// Generators" (OOPSLA 2014).
package rng

import (
	"hash/fnv"
	"math/rand/v2"
)

// Seed identifies a deterministic stream. The zero value is a valid seed.
type Seed struct {
	hi, lo uint64
}

// NewSeed builds a Seed from two words of entropy.
func NewSeed(hi, lo uint64) Seed { return Seed{hi: hi, lo: lo} }

// splitMix64 advances the state and returns the next output of the
// SplitMix64 generator.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives a child seed from the label. Splitting the same seed with
// the same label always yields the same child; distinct labels yield
// statistically independent children.
func (s Seed) Split(label string) Seed {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label)) // fnv never errors
	state := s.lo ^ h.Sum64()
	mixed := splitMix64(&state)
	return Seed{
		hi: s.hi ^ mixed,
		lo: splitMix64(&state),
	}
}

// SplitN derives a child seed from an integer label, convenient for
// per-index streams (network sample i, run j).
func (s Seed) SplitN(label string, n int) Seed {
	state := s.lo ^ (uint64(n)+1)*0x9e3779b97f4a7c15
	mixed := splitMix64(&state)
	child := Seed{hi: s.hi ^ mixed, lo: splitMix64(&state)}
	return child.Split(label)
}

// Rand returns a new generator for this seed. Each call returns an
// independent generator object positioned at the start of the same stream.
func (s Seed) Rand() *rand.Rand {
	return rand.New(rand.NewPCG(s.hi, s.lo))
}
