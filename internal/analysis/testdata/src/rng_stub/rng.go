// Package rng is a minimal stub of internal/rng for analyzer fixtures:
// just enough surface (Seed, Split, SplitN, Rand) for seedflow and
// detrand fixtures to type-check against the production import path.
package rng

import "math/rand/v2"

// Seed mirrors the production splittable seed.
type Seed struct{ hi, lo uint64 }

// NewSeed builds a Seed from two words of entropy.
func NewSeed(hi, lo uint64) Seed { return Seed{hi: hi, lo: lo} }

// Split derives a child seed from a label.
func (s Seed) Split(label string) Seed { return Seed{hi: s.hi + uint64(len(label)), lo: s.lo} }

// SplitN derives a child seed from a label and index.
func (s Seed) SplitN(label string, n int) Seed { return Seed{hi: s.hi + uint64(n), lo: s.lo} }

// Rand returns a generator positioned at the start of the stream.
func (s Seed) Rand() *rand.Rand { return rand.New(rand.NewPCG(s.hi, s.lo)) }
