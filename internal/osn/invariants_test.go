package osn

import (
	"testing"

	"github.com/accu-sim/accu/internal/rng"
)

// checkStateInvariants verifies the redundant counters of a State against
// first-principles recomputation.
func checkStateInvariants(t *testing.T, st *State) {
	t.Helper()
	inst := st.Instance()
	friends, cautiousFriends, fof, requested := 0, 0, 0, 0
	for u := 0; u < inst.N(); u++ {
		if st.IsFriend(u) {
			friends++
			if inst.Kind(u) == Cautious {
				cautiousFriends++
			}
			if st.IsFOF(u) {
				t.Fatalf("user %d both friend and FOF", u)
			}
		}
		if st.IsFOF(u) {
			fof++
		}
		if st.Requested(u) {
			requested++
		}
		// Mutual counters must equal the ground truth |N(s) ∩ N(u)|:
		// realized edges from u to friends.
		truth := 0
		base := inst.Graph().AdjBase(u)
		for i, w := range inst.Graph().Neighbors(u) {
			if st.IsFriend(int(w)) && st.Realization().EdgeExistsSlot(base+i) {
				truth++
			}
		}
		if st.Mutual(u) != truth {
			t.Fatalf("user %d: mutual %d, truth %d", u, st.Mutual(u), truth)
		}
	}
	if friends != st.Friends() {
		t.Fatalf("friends %d, counter %d", friends, st.Friends())
	}
	if cautiousFriends != st.CautiousFriends() {
		t.Fatalf("cautious friends %d, counter %d", cautiousFriends, st.CautiousFriends())
	}
	if fof != st.FOFCount() {
		t.Fatalf("FOF %d, counter %d", fof, st.FOFCount())
	}
	if requested != st.Requests() {
		t.Fatalf("requested %d, counter %d", requested, st.Requests())
	}
}

func TestStateInvariantsUnderRandomAttacks(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		s := DefaultSetup()
		s.NumCautious = 8
		if trial%2 == 1 {
			// Alternate trials exercise the soft acceptance model.
			s.QLowCautious = 0.2
			s.QHighCautious = 0.9
		}
		inst, err := s.Build(g, rng.NewSeed(uint64(trial), 91))
		if err != nil {
			t.Fatal(err)
		}
		re := inst.SampleRealization(rng.NewSeed(uint64(trial), 92))
		st := NewState(re)
		r := rng.NewSeed(uint64(trial), 93).Rand()
		order, err := rng.SampleWithoutReplacement(r, inst.N(), 80)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range order {
			if _, err := st.Request(u); err != nil {
				t.Fatal(err)
			}
			if i%16 == 0 {
				checkStateInvariants(t, st)
			}
		}
		checkStateInvariants(t, st)
	}
}

func TestStateInvariantsUnderBatches(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 8
	inst, err := s.Build(g, rng.NewSeed(94, 95))
	if err != nil {
		t.Fatal(err)
	}
	re := inst.SampleRealization(rng.NewSeed(96, 97))
	st := NewState(re)
	r := rng.NewSeed(98, 99).Rand()
	order, err := rng.SampleWithoutReplacement(r, inst.N(), 60)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(order); i += 12 {
		if _, err := st.RequestBatch(order[i : i+12]); err != nil {
			t.Fatal(err)
		}
		checkStateInvariants(t, st)
	}
}

func TestBenefitMonotoneUnderRequests(t *testing.T) {
	// Strong adaptive monotonicity, operationally: no request can lower
	// the collected benefit.
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 8
	inst, err := s.Build(g, rng.NewSeed(101, 102))
	if err != nil {
		t.Fatal(err)
	}
	re := inst.SampleRealization(rng.NewSeed(103, 104))
	st := NewState(re)
	r := rng.NewSeed(105, 106).Rand()
	order, err := rng.SampleWithoutReplacement(r, inst.N(), 100)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, u := range order {
		out, err := st.Request(u)
		if err != nil {
			t.Fatal(err)
		}
		if out.Gain < 0 {
			t.Fatalf("negative gain %v for user %d", out.Gain, u)
		}
		if st.Benefit() < prev {
			t.Fatalf("benefit decreased %v -> %v", prev, st.Benefit())
		}
		prev = st.Benefit()
	}
}
