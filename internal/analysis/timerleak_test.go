package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestTimerLeak(t *testing.T) {
	analysistest.Run(t, analysis.TimerLeak(), analysistest.Fixture{
		Dir:        "testdata/src/timerleak_serv",
		ImportPath: "example.test/internal/serv",
	})
}
