package exp

import (
	"context"
	"strings"
	"testing"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/rng"
)

// tinyConfig returns the smallest config that exercises the full
// pipeline quickly.
func tinyConfig() Config {
	return Config{
		Scale:       0.02,
		Networks:    1,
		Runs:        2,
		K:           30,
		NumCautious: 8,
		Datasets:    []string{"slashdot"},
		Seed:        rng.NewSeed(7, 8),
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := QuickConfig()
	n, err := c.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.K < 60 || n.NumCautious < 10 {
		t.Errorf("derived K=%d NumCautious=%d", n.K, n.NumCautious)
	}
	if len(n.Datasets) != 4 {
		t.Errorf("datasets = %v", n.Datasets)
	}
	if n.Weights != core.DefaultWeights() {
		t.Errorf("weights = %+v", n.Weights)
	}
}

func TestNormalizeValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.Scale = 1.5 },
		func(c *Config) { c.Networks = 0 },
		func(c *Config) { c.Runs = 0 },
		func(c *Config) { c.K = -1 },
		func(c *Config) { c.NumCautious = -1 },
		func(c *Config) { c.Weights = core.Weights{WD: -1, WI: 1} },
	}
	for i, mutate := range cases {
		c := tinyConfig()
		mutate(&c)
		if _, err := c.normalize(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "thm1", "ext-soft", "ext-batch", "ext-defense", "ext-multi", "claims"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Errorf("registry size = %d, want %d", len(reg), len(want))
	}
	for _, id := range want {
		if reg[id] == nil {
			t.Errorf("missing experiment %q", id)
		}
	}
	ids := IDs()
	if len(ids) != len(want) {
		t.Errorf("IDs() = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Error("IDs not sorted")
		}
	}
}

func TestCheckpoints(t *testing.T) {
	cps := checkpoints(100)
	if len(cps) != 10 || cps[0] != 10 || cps[9] != 100 {
		t.Errorf("checkpoints(100) = %v", cps)
	}
	cps = checkpoints(5)
	if len(cps) != 5 || cps[0] != 1 || cps[4] != 5 {
		t.Errorf("checkpoints(5) = %v", cps)
	}
}

func TestBenefitAt(t *testing.T) {
	res := &core.Result{Steps: []core.Step{
		{BenefitAfter: 1}, {BenefitAfter: 3}, {BenefitAfter: 3.5},
	}}
	if got := benefitAt(res, 2); got != 3 {
		t.Errorf("benefitAt(2) = %v", got)
	}
	if got := benefitAt(res, 10); got != 3.5 {
		t.Errorf("benefitAt(10) = %v (short trace holds final)", got)
	}
	if got := benefitAt(&core.Result{}, 1); got != 0 {
		t.Errorf("benefitAt(empty) = %v", got)
	}
}

func TestTable1(t *testing.T) {
	rep, err := Table1(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" {
		t.Errorf("id = %q", rep.ID)
	}
	for _, want := range []string{"slashdot", "Social", "77360", "905468"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
}

func TestFig2(t *testing.T) {
	rep, err := Fig2(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"[slashdot]", "abm", "maxdegree", "pagerank", "random"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
	if len(rep.Notes) == 0 {
		t.Error("no shape notes")
	}
}

func TestFig3(t *testing.T) {
	rep, err := Fig3(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"avg-gain", "from-cautious", "from-reckless"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
}

func TestFig4(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 20
	rep, err := Fig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benefit", "cautious-friends", "0.6"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
	if len(rep.Notes) < 2 {
		t.Errorf("notes = %v", rep.Notes)
	}
}

func TestFig5(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 20
	rep, err := Fig5(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wI=0.1", "wI=0.5", "fraction"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
}

func TestFig6AndFig7(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 15
	cfg.Runs = 1
	rep6, err := Fig6(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep6.Rendered, "theta \\ Bf(c)") {
		t.Errorf("fig6 rendered:\n%s", rep6.Rendered)
	}
	rep7, err := Fig7(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep7.ID != "fig7" || rep7.Rendered == "" {
		t.Error("fig7 empty")
	}
}

func TestTheorem1Experiment(t *testing.T) {
	rep, err := Theorem1(context.Background(), tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Rendered, "threshold-2-star") {
		t.Errorf("rendered:\n%s", rep.Rendered)
	}
	for _, n := range rep.Notes {
		if strings.Contains(n, "VIOLATED") {
			t.Errorf("bound violated: %s", n)
		}
	}
	// The witness notes must be present.
	joined := strings.Join(rep.Notes, "\n")
	if !strings.Contains(joined, "Fig.1 witness") || !strings.Contains(joined, "curvature") {
		t.Errorf("notes = %v", rep.Notes)
	}
	// Every instance row must report holds=true.
	if strings.Contains(rep.Rendered, "false") {
		t.Errorf("some bound failed:\n%s", rep.Rendered)
	}
}

func TestReportString(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Rendered: "body\n", Notes: []string{"note1"}}
	s := r.String()
	for _, want := range []string{"== x: T ==", "body", "note1"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
}

func TestExperimentContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Fig2(ctx, tinyConfig()); err == nil {
		t.Error("cancelled fig2: want error")
	}
	if _, err := Table1(ctx, tinyConfig()); err == nil {
		t.Error("cancelled table1: want error")
	}
	if _, err := Theorem1(ctx, tinyConfig()); err == nil {
		t.Error("cancelled thm1: want error")
	}
}

func TestExtSoft(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 15
	cfg.Runs = 1
	rep, err := ExtSoft(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"qLow", "delta", "curvature-bound", "inf"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
}

func TestExtBatch(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 15
	cfg.Runs = 1
	rep, err := ExtBatch(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"batch", "vs-adaptive", "25"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
}

func TestExtDefense(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 15
	cfg.Runs = 2
	rep, err := ExtDefense(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"none (baseline)", "vulnerability-guided", "degree-based", "random"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
}

func TestExtMulti(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 15
	cfg.Runs = 1
	rep, err := ExtMulti(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"bots", "benefit", "8"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing %q in:\n%s", want, rep.Rendered)
		}
	}
}

func TestClaims(t *testing.T) {
	cfg := tinyConfig()
	cfg.K = 20
	rep, err := Claims(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"abm-dominates", "random-worst", "theorem1-bound", "not-adaptive-submodular"} {
		if !strings.Contains(rep.Rendered, want) {
			t.Errorf("missing claim %q in:\n%s", want, rep.Rendered)
		}
	}
	// The structural (theory) claims must always hold.
	for _, row := range rep.Tables[0].Rows {
		switch row[0] {
		case "not-adaptive-submodular", "curvature-unbounded", "theorem1-bound":
			if row[2] != "true" {
				t.Errorf("structural claim %s failed: %v", row[0], row)
			}
		}
	}
}
