// Package stats provides the small statistical toolkit shared by the
// experiment harness: online mean/variance accumulation (Welford),
// labeled series for benefit-vs-k curves, grids for the sensitivity heat
// maps, and plain-text rendering of tables, series and heat maps.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrMismatchedAxes is returned by Series.Merge and Grid.Merge when the
// two sides do not accumulate over the same positions — merging them
// would silently drop or misattribute observations.
var ErrMismatchedAxes = errors.New("stats: mismatched axes")

// Welford accumulates a stream of observations with numerically stable
// online mean and variance. The zero value is ready to use.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into this one (parallel reduction,
// Chan et al.).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// Count returns the number of observations.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 with < 2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.Std() / math.Sqrt(float64(w.n))
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval of the mean.
func (w *Welford) CI95() float64 { return 1.96 * w.StdErr() }

// Series is a sequence of x-positions each accumulating y observations —
// one benefit-vs-k curve, for example. Construct with NewSeries, or
// NewSeriesSketched to also track per-position quantile sketches.
type Series struct {
	// Label names the curve (e.g. the policy name).
	Label string
	xs    []float64
	accs  []Welford
	// sketches is nil for a plain series; when present it holds one
	// quantile sketch per x position, fed by the same Add calls.
	sketches []*Sketch
}

// NewSeries creates a series over the given x positions.
func NewSeries(label string, xs []float64) *Series {
	return &Series{
		Label: label,
		xs:    append([]float64(nil), xs...),
		accs:  make([]Welford, len(xs)),
	}
}

// NewSeriesSketched creates a series that additionally accumulates a
// mergeable quantile sketch at every x position, for p50/p90/p99
// reporting at O(centroids) memory per position.
func NewSeriesSketched(label string, xs []float64) *Series {
	s := NewSeries(label, xs)
	s.sketches = make([]*Sketch, len(s.xs))
	for i := range s.sketches {
		s.sketches[i] = NewSketch()
	}
	return s
}

// Len returns the number of x positions.
func (s *Series) Len() int { return len(s.xs) }

// X returns the x position at index i.
func (s *Series) X(i int) float64 { return s.xs[i] }

// Add folds an observation into position i.
func (s *Series) Add(i int, y float64) {
	s.accs[i].Add(y)
	if s.sketches != nil {
		s.sketches[i].Add(y)
	}
}

// At returns the accumulator at position i.
func (s *Series) At(i int) *Welford { return &s.accs[i] }

// SketchAt returns the quantile sketch at position i, or nil for a
// series built without sketches.
func (s *Series) SketchAt(i int) *Sketch {
	if s.sketches == nil {
		return nil
	}
	return s.sketches[i]
}

// Sketched reports whether the series tracks per-position sketches.
func (s *Series) Sketched() bool { return s.sketches != nil }

// Merge folds another series into this one. The two series must
// accumulate over identical x positions: a silent range over only the
// receiver's accumulators would drop a longer other side's tail
// observations (and panic on a shorter one), so any mismatch fails
// loudly with ErrMismatchedAxes instead. Sketch presence must likewise
// match on both sides — merging a sketched series with a plain one
// would silently lose the other side's quantile mass.
func (s *Series) Merge(o *Series) error {
	if err := matchAxis("x", s.xs, o.xs); err != nil {
		return fmt.Errorf("%w: series %q vs %q: %v", ErrMismatchedAxes, s.Label, o.Label, err)
	}
	if (s.sketches == nil) != (o.sketches == nil) {
		return fmt.Errorf("stats: merge series %q vs %q: sketches present on one side only", s.Label, o.Label)
	}
	for i := range s.accs {
		s.accs[i].Merge(o.accs[i])
	}
	for i := range s.sketches {
		if err := s.sketches[i].Merge(o.sketches[i]); err != nil {
			return fmt.Errorf("stats: merge series %q position %d: %w", s.Label, i, err)
		}
	}
	return nil
}

// matchAxis verifies two axes cover the same positions. Positions are
// compared by bit pattern, not by ==: NaN != NaN under IEEE comparison,
// so two series with identical axes containing a NaN position (an
// undefined parameter slot in a sweep, say) could otherwise never merge.
// Bit equality also keeps the check strict — -0 and +0 are different
// positions, as are distinct NaN payloads.
func matchAxis(name string, a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s axis length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return fmt.Errorf("%s axis position %d: %v vs %v", name, i, a[i], b[i])
		}
	}
	return nil
}

// Means returns the mean at every x position.
func (s *Series) Means() []float64 {
	out := make([]float64, len(s.accs))
	for i := range s.accs {
		out[i] = s.accs[i].Mean()
	}
	return out
}

// Grid is a rows×cols matrix of accumulators for heat maps. Construct
// with NewGrid.
type Grid struct {
	// RowLabel and ColLabel name the two axes.
	RowLabel, ColLabel string
	rows, cols         []float64
	accs               []Welford
}

// NewGrid creates a grid over the given axis values.
func NewGrid(rowLabel string, rows []float64, colLabel string, cols []float64) *Grid {
	return &Grid{
		RowLabel: rowLabel,
		ColLabel: colLabel,
		rows:     append([]float64(nil), rows...),
		cols:     append([]float64(nil), cols...),
		accs:     make([]Welford, len(rows)*len(cols)),
	}
}

// Rows returns the row axis values.
func (g *Grid) Rows() []float64 { return g.rows }

// Cols returns the column axis values.
func (g *Grid) Cols() []float64 { return g.cols }

// Add folds an observation into cell (i, j).
func (g *Grid) Add(i, j int, y float64) { g.accs[i*len(g.cols)+j].Add(y) }

// At returns the accumulator of cell (i, j).
func (g *Grid) At(i, j int) *Welford { return &g.accs[i*len(g.cols)+j] }

// Merge folds another grid into this one. Both grids must span identical
// row and column axes; any mismatch fails loudly with ErrMismatchedAxes
// rather than silently dropping or misaligning cells.
func (g *Grid) Merge(o *Grid) error {
	if err := matchAxis("row", g.rows, o.rows); err != nil {
		return fmt.Errorf("%w: grid %s/%s: %v", ErrMismatchedAxes, g.RowLabel, g.ColLabel, err)
	}
	if err := matchAxis("col", g.cols, o.cols); err != nil {
		return fmt.Errorf("%w: grid %s/%s: %v", ErrMismatchedAxes, g.RowLabel, g.ColLabel, err)
	}
	for i := range g.accs {
		g.accs[i].Merge(o.accs[i])
	}
	return nil
}
