package gen

import (
	"fmt"
	"sort"
	"strings"
)

// Preset describes a synthetic stand-in for one of the paper's Table I
// datasets. RefNodes/RefEdges are the reference statistics from the paper;
// the generator is calibrated so that at Scale=1 the generated graph
// approximates them.
type Preset struct {
	// Key is the lookup name ("facebook", "slashdot", "twitter", "dblp").
	Key string
	// Kind matches the Table I "Kind" column.
	Kind string
	// RefNodes and RefEdges are the paper's reported statistics.
	RefNodes int
	RefEdges int
	// factory builds the generator for a given (scaled) node count.
	factory func(n int) Generator
}

// Generator returns the calibrated generator at the given scale factor in
// (0, 1]. Scale shrinks the node count; densities are preserved so degree
// structure stays comparable.
func (p Preset) Generator(scale float64) (Generator, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("%w: scale %v not in (0, 1]", ErrBadParam, scale)
	}
	n := int(float64(p.RefNodes) * scale)
	if n < 64 {
		n = 64
	}
	return p.factory(n), nil
}

// presets is the registry of Table I stand-ins.
//
// Calibration notes (verified by TestPresetCalibration):
//   - facebook: 4k nodes / 88k edges, few extreme hubs, high clustering →
//     Holme–Kim with mAttach=22 gives mean degree ≈ 44 and strong triads.
//   - slashdot: 77k / 905k, heavy tail → erased power-law configuration
//     model, gamma 2.1, degrees in [5, 2500], mean ≈ 23.
//   - twitter: 81k / 1.77M, heavier tail and denser → gamma 2.0,
//     degrees in [7, 3000], mean ≈ 43.
//   - dblp: 317k / 1.05M collaboration graph, mean degree ≈ 6.6, strong
//     communities, many medium-degree "prolific author" nodes →
//     planted-community collaboration model.
var presets = map[string]Preset{
	"facebook": {
		Key: "facebook", Kind: "Social", RefNodes: 4039, RefEdges: 88234,
		factory: func(n int) Generator {
			return HolmeKim{N: n, MAttach: 22, PTriad: 0.8}
		},
	},
	"slashdot": {
		Key: "slashdot", Kind: "Social", RefNodes: 77360, RefEdges: 905468,
		factory: func(n int) Generator {
			return PowerLawConfig{N: n, MinDeg: 5, MaxDeg: maxDegFor(n, 2500), Gamma: 2.1}
		},
	},
	"twitter": {
		Key: "twitter", Kind: "Social", RefNodes: 81306, RefEdges: 1768149,
		factory: func(n int) Generator {
			return PowerLawConfig{N: n, MinDeg: 7, MaxDeg: maxDegFor(n, 3000), Gamma: 2.0}
		},
	},
	"dblp": {
		Key: "dblp", Kind: "Collaboration", RefNodes: 317080, RefEdges: 1049866,
		factory: func(n int) Generator {
			return Collaboration{N: n, MeanCommunity: 14, PIntra: 0.85, PBridge: 0.35}
		},
	},
}

// maxDegFor caps the configuration-model degree cutoff below the node
// count so that scaled-down presets remain generable.
func maxDegFor(n, want int) int {
	if want >= n {
		return n - 1
	}
	return want
}

// PresetByName looks up a Table I preset by key (case-insensitive).
func PresetByName(name string) (Preset, error) {
	p, ok := presets[strings.ToLower(name)]
	if !ok {
		return Preset{}, fmt.Errorf("gen: unknown preset %q (have %v)", name, PresetNames())
	}
	return p, nil
}

// PresetNames lists all preset keys in a stable order.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	//accu:allow maporder -- key collection only; sorted before return
	for k := range presets {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
