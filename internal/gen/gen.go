// Package gen provides synthetic social-network generators that stand in
// for the SNAP datasets used by the paper (the module is offline, so the
// real datasets cannot be fetched). Each generator is deterministic given
// a seed, and the presets in presets.go are calibrated to the node/edge
// counts of Table I together with the qualitative structure the paper's
// analysis leans on (heavy-tailed degrees, clustering, communities).
package gen

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/rng"
)

// ErrBadParam is returned by generators for invalid parameter values.
var ErrBadParam = errors.New("gen: invalid parameter")

// Generator produces a graph from a seed. Implementations must be
// deterministic: the same seed yields the same graph.
type Generator interface {
	// Generate builds one sample network.
	Generate(seed rng.Seed) (*graph.Graph, error)
	// Name identifies the generator for logs and experiment records.
	Name() string
}

// ErdosRenyi generates G(n, m): n nodes and exactly m distinct uniform
// random edges.
type ErdosRenyi struct {
	N int // number of nodes
	M int // number of edges
}

var _ Generator = ErdosRenyi{}

// Name implements Generator.
func (g ErdosRenyi) Name() string { return fmt.Sprintf("er(n=%d,m=%d)", g.N, g.M) }

// Generate implements Generator.
func (g ErdosRenyi) Generate(seed rng.Seed) (*graph.Graph, error) {
	maxM := g.N * (g.N - 1) / 2
	if g.N < 0 || g.M < 0 || g.M > maxM {
		return nil, fmt.Errorf("%w: er n=%d m=%d", ErrBadParam, g.N, g.M)
	}
	r := seed.Rand()
	b := graph.NewBuilder(g.N)
	for b.M() < g.M {
		u, v := r.IntN(g.N), r.IntN(g.N)
		if _, err := b.AddEdge(u, v); err != nil {
			return nil, err
		}
	}
	return b.Freeze(), nil
}

// BarabasiAlbert generates a preferential-attachment graph: starting from
// a small seed clique, each new node attaches to MAttach existing nodes
// chosen proportionally to degree. Degrees follow a power law with
// exponent ≈ 3.
type BarabasiAlbert struct {
	N       int // number of nodes
	MAttach int // edges added per new node
}

var _ Generator = BarabasiAlbert{}

// Name implements Generator.
func (g BarabasiAlbert) Name() string { return fmt.Sprintf("ba(n=%d,m=%d)", g.N, g.MAttach) }

// Generate implements Generator.
func (g BarabasiAlbert) Generate(seed rng.Seed) (*graph.Graph, error) {
	return generatePA(seed, g.N, g.MAttach, 0)
}

// HolmeKim generates a Barabási–Albert graph with triad formation: after
// each preferential attachment, with probability PTriad the next link
// closes a triangle with a neighbor of the previous target. This yields
// the high clustering of real friendship networks (used for the
// Facebook-like preset).
type HolmeKim struct {
	N       int     // number of nodes
	MAttach int     // edges added per new node
	PTriad  float64 // triad-formation probability
}

var _ Generator = HolmeKim{}

// Name implements Generator.
func (g HolmeKim) Name() string {
	return fmt.Sprintf("hk(n=%d,m=%d,pt=%.2f)", g.N, g.MAttach, g.PTriad)
}

// Generate implements Generator.
func (g HolmeKim) Generate(seed rng.Seed) (*graph.Graph, error) {
	if g.PTriad < 0 || g.PTriad > 1 {
		return nil, fmt.Errorf("%w: hk pTriad=%v", ErrBadParam, g.PTriad)
	}
	return generatePA(seed, g.N, g.MAttach, g.PTriad)
}

// generatePA is the shared preferential-attachment core: pTriad = 0 gives
// plain Barabási–Albert. The repeated-endpoint list gives O(1) sampling
// proportional to degree.
func generatePA(seed rng.Seed, n, mAttach int, pTriad float64) (*graph.Graph, error) {
	if n < 1 || mAttach < 1 || mAttach >= n {
		return nil, fmt.Errorf("%w: pa n=%d mAttach=%d", ErrBadParam, n, mAttach)
	}
	r := seed.Rand()
	b := graph.NewBuilder(n)
	adj := make([][]int32, n) // parallel adjacency for O(1) neighbor sampling

	addEdge := func(u, v int) (bool, error) {
		ok, err := b.AddEdge(u, v)
		if err != nil || !ok {
			return ok, err
		}
		adj[u] = append(adj[u], int32(v))
		adj[v] = append(adj[v], int32(u))
		return true, nil
	}

	// Seed clique of mAttach+1 nodes.
	seedSize := mAttach + 1
	endpoints := make([]int32, 0, 2*n*mAttach)
	for u := 0; u < seedSize; u++ {
		for v := u + 1; v < seedSize; v++ {
			if _, err := addEdge(u, v); err != nil {
				return nil, err
			}
			endpoints = append(endpoints, int32(u), int32(v))
		}
	}

	for u := seedSize; u < n; u++ {
		added := make(map[int32]bool, mAttach)
		lastTarget := int32(-1)
		for len(added) < mAttach {
			var target int32
			if lastTarget >= 0 && pTriad > 0 && r.Float64() < pTriad {
				// Triad step: connect to a random neighbor of the last
				// target that we are not already connected to.
				target = pickTriadTarget(adj, r, lastTarget, u, added)
				if target < 0 {
					target = endpoints[r.IntN(len(endpoints))]
				}
			} else {
				target = endpoints[r.IntN(len(endpoints))]
			}
			if int(target) == u || added[target] {
				continue
			}
			ok, err := addEdge(u, int(target))
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			added[target] = true
			lastTarget = target
			endpoints = append(endpoints, int32(u), target)
		}
	}
	return b.Freeze(), nil
}

// pickTriadTarget returns a random neighbor of lastTarget not yet linked
// to u, or -1 if a few tries fail (the caller falls back to preferential
// attachment, as in the Holme–Kim construction).
func pickTriadTarget(adj [][]int32, r *rand.Rand, lastTarget int32, u int, added map[int32]bool) int32 {
	nbrs := adj[lastTarget]
	if len(nbrs) == 0 {
		return -1
	}
	const tries = 4
	for i := 0; i < tries; i++ {
		cand := nbrs[r.IntN(len(nbrs))]
		if int(cand) != u && !added[cand] {
			return cand
		}
	}
	return -1
}
