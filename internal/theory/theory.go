// Package theory implements the analytical machinery of §III: exact
// expected marginal gains Δ(u|ω) by realization enumeration, the
// realization-specific adaptive submodular ratio (RASR, Definition 4) by
// exhaustive subset search, the closed forms of Lemma 4 and the upper
// bound of Lemma 5, the non-submodularity witness of Fig. 1, the
// unbounded-curvature example of §III-B, a brute-force optimal adaptive
// policy, and an exact greedy evaluator — together these verify the
// 1 − e^{−λ} guarantee of Theorem 1 on small instances.
//
// Everything here is exponential-time by design and intended for tiny
// instances (≤ ~12 users, ≤ ~16 random bits).
package theory

import (
	"errors"
	"fmt"
	"math"

	"github.com/accu-sim/accu/internal/osn"
)

// ErrTooLarge is returned when an instance is too big to enumerate.
var ErrTooLarge = errors.New("theory: instance too large for exhaustive analysis")

// ErrNotDeterministic is returned by the submodular-ratio machinery when
// cautious users follow the generalized (soft) acceptance model: the
// order-free set function underlying inequality (5) is only well defined
// for the paper's deterministic linear-threshold model. Use
// CurvatureDelta/CurvatureBound for the generalized model instead.
var ErrNotDeterministic = errors.New("theory: submodular ratio requires the deterministic cautious model")

// maxRandomBits bounds the enumeration 2^bits.
const maxRandomBits = 18

// WeightedRealization pairs a realization with its probability.
type WeightedRealization struct {
	R *osn.Realization
	P float64
}

// EnumerateRealizations expands every realization of the instance with
// non-zero probability. Deterministic coordinates (p ∈ {0, 1}, q ∈ {0, 1})
// consume no enumeration bits.
func EnumerateRealizations(inst *osn.Instance) ([]WeightedRealization, error) {
	g := inst.Graph()

	type coin struct {
		// kind: 0 = reckless acceptance, 1 = cautious low coin,
		// 2 = cautious high coin, 3 = edge.
		kind int
		user int
		u, v int
		p    float64
	}
	var coins []coin
	for u := 0; u < inst.N(); u++ {
		switch inst.Kind(u) {
		case osn.Reckless:
			if q := inst.AcceptProb(u); q > 0 && q < 1 {
				coins = append(coins, coin{kind: 0, user: u, p: q})
			}
		case osn.Cautious:
			if q := inst.QLow(u); q > 0 && q < 1 {
				coins = append(coins, coin{kind: 1, user: u, p: q})
			}
			if q := inst.QHigh(u); q > 0 && q < 1 {
				coins = append(coins, coin{kind: 2, user: u, p: q})
			}
		}
	}
	g.EachEdge(func(u, v int) bool {
		if p := inst.EdgeProbUV(u, v); p > 0 && p < 1 {
			coins = append(coins, coin{kind: 3, u: u, v: v, p: p})
		}
		return true
	})
	if len(coins) > maxRandomBits {
		return nil, fmt.Errorf("%w: %d random bits", ErrTooLarge, len(coins))
	}

	total := 1 << len(coins)
	out := make([]WeightedRealization, 0, total)
	for mask := 0; mask < total; mask++ {
		prob := 1.0
		acceptOverride := make(map[int]bool, len(coins))
		lowOverride := make(map[int]bool, len(coins))
		highOverride := make(map[int]bool, len(coins))
		edgeOverride := make(map[[2]int]bool, len(coins))
		for i, c := range coins {
			on := mask&(1<<i) != 0
			if on {
				prob *= c.p
			} else {
				prob *= 1 - c.p
			}
			switch c.kind {
			case 0:
				acceptOverride[c.user] = on
			case 1:
				lowOverride[c.user] = on
			case 2:
				highOverride[c.user] = on
			case 3:
				edgeOverride[[2]int{c.u, c.v}] = on
			}
		}
		re := inst.FixedRealizationCautious(
			func(u, v int) bool {
				if on, ok := edgeOverride[[2]int{u, v}]; ok {
					return on
				}
				return inst.EdgeProbUV(u, v) >= 1
			},
			func(u int) bool {
				if on, ok := acceptOverride[u]; ok {
					return on
				}
				return inst.AcceptProb(u) >= 1
			},
			func(u int) bool {
				if on, ok := lowOverride[u]; ok {
					return on
				}
				return inst.QLow(u) >= 1
			},
			func(u int) bool {
				if on, ok := highOverride[u]; ok {
					return on
				}
				return inst.QHigh(u) >= 1
			},
		)
		out = append(out, WeightedRealization{R: re, P: prob})
	}
	return out, nil
}

// CurvatureDelta computes δ = max over cautious users of QHigh/QLow, the
// adaptive total primal curvature bound of §III-B's generalized
// acceptance model. It returns +Inf when some cautious user has QLow = 0
// (the paper's deterministic model), where the curvature technique fails.
func CurvatureDelta(inst *osn.Instance) float64 {
	delta := 1.0
	for _, v := range inst.Cautious() {
		lo, hi := inst.QLow(v), inst.QHigh(v)
		if lo == 0 {
			if hi > 0 {
				return math.Inf(1)
			}
			continue
		}
		if r := hi / lo; r > delta {
			delta = r
		}
	}
	return delta
}

// CurvatureBound returns the §III-B greedy guarantee
// 1 − (1 − 1/(δk))^k for the generalized model. It returns 0 when δ is
// unbounded — the motivating failure that the adaptive submodular ratio
// repairs.
func CurvatureBound(delta float64, k int) float64 {
	if math.IsInf(delta, 1) || delta <= 0 || k <= 0 {
		return 0
	}
	return 1 - math.Pow(1-1/(delta*float64(k)), float64(k))
}

// simulate replays a request sequence against a realization and returns
// the final attack state.
func simulate(re *osn.Realization, seq []int) (*osn.State, error) {
	st := osn.NewState(re)
	for _, u := range seq {
		if _, err := st.Request(u); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// BenefitOf returns f(seq, φ): the benefit of sending the requests in
// order against realization φ.
func BenefitOf(re *osn.Realization, seq []int) (float64, error) {
	st, err := simulate(re, seq)
	if err != nil {
		return 0, err
	}
	return st.Benefit(), nil
}

// observationKey summarizes everything the attacker observed while
// executing seq against a realization: per-request accept bits and, for
// accepted users, the realized incident edge bits. Realizations with
// equal keys are indistinguishable to the attacker (φ ~ ω).
func observationKey(inst *osn.Instance, re *osn.Realization, seq []int) (string, error) {
	st := osn.NewState(re)
	g := inst.Graph()
	key := make([]byte, 0, 8*len(seq))
	for _, u := range seq {
		out, err := st.Request(u)
		if err != nil {
			return "", err
		}
		if !out.Accepted {
			key = append(key, '0')
			continue
		}
		key = append(key, '1', ':')
		base := g.AdjBase(u)
		for i := 0; i < g.Degree(u); i++ {
			if re.EdgeExistsSlot(base + i) {
				key = append(key, 'e')
			} else {
				key = append(key, '.')
			}
		}
	}
	return string(key), nil
}

// Delta computes the exact expected marginal gain Δ(u|ω) where ω is the
// partial realization produced by executing seq against the reference
// realization ref: the expectation of f(dom(ω)∪{u}) − f(dom(ω)) over all
// realizations consistent with ω.
func Delta(inst *osn.Instance, all []WeightedRealization, ref *osn.Realization, seq []int, u int) (float64, error) {
	refKey, err := observationKey(inst, ref, seq)
	if err != nil {
		return 0, err
	}
	var num, den float64
	ext := append(append([]int(nil), seq...), u)
	for _, wr := range all {
		if wr.P == 0 {
			continue
		}
		k, err := observationKey(inst, wr.R, seq)
		if err != nil {
			return 0, err
		}
		if k != refKey {
			continue
		}
		before, err := BenefitOf(wr.R, seq)
		if err != nil {
			return 0, err
		}
		after, err := BenefitOf(wr.R, ext)
		if err != nil {
			return 0, err
		}
		num += wr.P * (after - before)
		den += wr.P
	}
	if den == 0 {
		return 0, fmt.Errorf("theory: no realization consistent with observation %q", refKey)
	}
	return num / den, nil
}

// maxUsers bounds exhaustive subset enumeration (4^n pairs).
const maxUsers = 12

// BenefitSet evaluates the set function f(S, φ) used by the submodularity
// ratio: requests are sent in the order that maximizes acceptance —
// reckless users first, then cautious users repeatedly until no further
// threshold unlocks (the monotone closure). This matches the paper's
// treatment of a realization as a deterministic graph, where for greedy
// and optimal policies the request order is immaterial (Lemma 2).
func BenefitSet(inst *osn.Instance, re *osn.Realization, set []int) (float64, error) {
	if !inst.Deterministic() {
		return 0, ErrNotDeterministic
	}
	st := osn.NewState(re)
	var cautious []int
	for _, u := range set {
		if inst.Kind(u) == osn.Cautious {
			cautious = append(cautious, u)
			continue
		}
		if _, err := st.Request(u); err != nil {
			return 0, err
		}
	}
	// Fixpoint over cautious users: request any whose threshold holds.
	pending := append([]int(nil), cautious...)
	for {
		progressed := false
		next := pending[:0]
		for _, v := range pending {
			if st.Mutual(v) >= inst.Theta(v) {
				if _, err := st.Request(v); err != nil {
					return 0, err
				}
				progressed = true
				continue
			}
			next = append(next, v)
		}
		pending = next
		if !progressed || len(pending) == 0 {
			break
		}
	}
	// Unrequestable cautious users burn their request without effect —
	// consistent with rejection semantics; benefit unaffected.
	for _, v := range pending {
		if _, err := st.Request(v); err != nil {
			return 0, err
		}
	}
	return st.Benefit(), nil
}

// RASR computes the realization-specific adaptive submodular ratio λ_φ
// (Definition 4) by exhaustive enumeration of all subset pairs (S, T):
//
//	λ_φ = min over S,T with ρ_T(S) > 0 of Σ_{u∈T\S} ρ_{u}(S) / ρ_T(S)
//
// capped at 1 (a submodular realization attains 1).
func RASR(inst *osn.Instance, re *osn.Realization) (float64, error) {
	n := inst.N()
	if n > maxUsers {
		return 0, fmt.Errorf("%w: %d users", ErrTooLarge, n)
	}
	if !inst.Deterministic() {
		return 0, ErrNotDeterministic
	}
	// Precompute f for all subsets.
	f := make([]float64, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		set := maskToSet(mask, n)
		v, err := BenefitSet(inst, re, set)
		if err != nil {
			return 0, err
		}
		f[mask] = v
	}

	lambda := 1.0
	for s := 0; s < 1<<n; s++ {
		fs := f[s]
		for t := 1; t < 1<<n; t++ {
			rhoT := f[s|t] - fs
			if rhoT <= 1e-12 {
				continue
			}
			var lhs float64
			for u := 0; u < n; u++ {
				bit := 1 << u
				if t&bit != 0 && s&bit == 0 {
					lhs += f[s|bit] - fs
				}
			}
			if ratio := lhs / rhoT; ratio < lambda {
				lambda = ratio
			}
		}
	}
	return lambda, nil
}

func maskToSet(mask, n int) []int {
	set := make([]int, 0, n)
	for u := 0; u < n; u++ {
		if mask&(1<<u) != 0 {
			set = append(set, u)
		}
	}
	return set
}

// AdaptiveSubmodularRatio computes λ = min_φ λ_φ (Definition 5) by
// enumerating all realizations.
func AdaptiveSubmodularRatio(inst *osn.Instance) (float64, error) {
	all, err := EnumerateRealizations(inst)
	if err != nil {
		return 0, err
	}
	lambda := 1.0
	for _, wr := range all {
		if wr.P == 0 {
			continue
		}
		l, err := RASR(inst, wr.R)
		if err != nil {
			return 0, err
		}
		if l < lambda {
			lambda = l
		}
	}
	return lambda, nil
}

// Bound returns the Theorem 1 guarantee 1 − e^{−λ}.
func Bound(lambda float64) float64 { return 1 - math.Exp(-lambda) }
