package osn

import (
	"errors"
	"math"
	"testing"

	"github.com/accu-sim/accu/internal/rng"
)

func TestNewMultiStateValidation(t *testing.T) {
	inst := cautiousFixture(t)
	if _, err := NewMultiState(allIn(inst), 0); err == nil {
		t.Error("bots=0: want error")
	}
	ms, err := NewMultiState(allIn(inst), 3)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Bots() != 3 {
		t.Errorf("bots = %d", ms.Bots())
	}
}

func TestMultiUnionBenefit(t *testing.T) {
	// Bots 0 and 1 both befriend user 1: B_f(1) counted once.
	inst := cautiousFixture(t)
	ms, err := NewMultiState(allIn(inst), 2)
	if err != nil {
		t.Fatal(err)
	}
	out0, err := ms.Request(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out0.Accepted || out0.Gain != 5 { // B_f + 3 FOFs
		t.Fatalf("bot 0 outcome %+v", out0)
	}
	out1, err := ms.Request(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out1.Accepted {
		t.Fatal("bot 1 rejected by dispositionally accepting user")
	}
	if out1.Gain != 0 {
		t.Errorf("second befriending gained %v, want 0 (union semantics)", out1.Gain)
	}
	if ms.Benefit() != 5 || ms.Friends() != 1 {
		t.Errorf("benefit %v friends %d", ms.Benefit(), ms.Friends())
	}
}

func TestMultiPerBotMutualThreshold(t *testing.T) {
	// Cautious 3 (θ=1, neighbor 1): bot 0 befriends 1, so only bot 0
	// reaches the threshold — bot 1's request must be rejected.
	inst := cautiousFixture(t)
	ms, err := NewMultiState(allIn(inst), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Request(0, 1); err != nil {
		t.Fatal(err)
	}
	v0, err := ms.View(0)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := ms.View(1)
	if err != nil {
		t.Fatal(err)
	}
	if v0.Mutual(3) != 1 || v1.Mutual(3) != 0 {
		t.Fatalf("mutual counts: bot0=%d bot1=%d", v0.Mutual(3), v1.Mutual(3))
	}
	out, err := ms.Request(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Accepted {
		t.Error("cautious user accepted a bot without mutual friends")
	}
	out, err = ms.Request(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Error("cautious user rejected the bot meeting its threshold")
	}
}

func TestMultiSharedObservations(t *testing.T) {
	// Edge posteriors are shared: after bot 0 befriends 1, bot 1's view
	// must see edge (1,2) as observed.
	inst := cautiousFixture(t)
	re := inst.FixedRealization(func(u, v int) bool { return u == 0 && v == 1 }, nil)
	ms, err := NewMultiState(re, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Request(0, 1); err != nil {
		t.Fatal(err)
	}
	v1, err := ms.View(1)
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph()
	if got := v1.PosteriorEdgeProb(1, 2, g.IndexOf(1, 2)); got != 0 {
		t.Errorf("bot 1 posterior for observed-missing edge = %v", got)
	}
	if got := v1.PosteriorEdgeProb(0, 1, g.IndexOf(0, 1)); got != 1 {
		t.Errorf("bot 1 posterior for observed-present edge = %v", got)
	}
}

func TestMultiRequestErrors(t *testing.T) {
	inst := cautiousFixture(t)
	ms, err := NewMultiState(allIn(inst), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Request(5, 0); !errors.Is(err, ErrBadBot) {
		t.Errorf("bad bot: %v", err)
	}
	if _, err := ms.Request(0, 99); !errors.Is(err, ErrBadUser) {
		t.Errorf("bad user: %v", err)
	}
	if _, err := ms.Request(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ms.Request(0, 1); !errors.Is(err, ErrAlreadyRequested) {
		t.Errorf("duplicate per-bot request: %v", err)
	}
	// A different bot may still request the same user.
	if _, err := ms.Request(1, 1); err != nil {
		t.Errorf("cross-bot request: %v", err)
	}
	if _, err := ms.View(9); !errors.Is(err, ErrBadBot) {
		t.Errorf("bad view: %v", err)
	}
}

func TestMultiIncrementalMatchesRecompute(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 8
	inst, err := s.Build(g, rng.NewSeed(71, 72))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		re := inst.SampleRealization(rng.NewSeed(uint64(trial), 73))
		ms, err := NewMultiState(re, 3)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.NewSeed(uint64(trial), 74).Rand()
		users, err := rng.SampleWithoutReplacement(r, inst.N(), 45)
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range users {
			if _, err := ms.Request(i%3, u); err != nil {
				t.Fatal(err)
			}
			if inc, scratch := ms.Benefit(), ms.RecomputeBenefit(); math.Abs(inc-scratch) > 1e-9 {
				t.Fatalf("trial %d step %d: incremental %v != recomputed %v", trial, i, inc, scratch)
			}
		}
	}
}

func TestMultiSingleBotMatchesState(t *testing.T) {
	// A 1-bot MultiState must agree with State on the same request
	// sequence.
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 8
	inst, err := s.Build(g, rng.NewSeed(81, 82))
	if err != nil {
		t.Fatal(err)
	}
	re := inst.SampleRealization(rng.NewSeed(83, 84))
	ms, err := NewMultiState(re, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := NewState(re)
	r := rng.NewSeed(85, 86).Rand()
	users, err := rng.SampleWithoutReplacement(r, inst.N(), 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		outM, err := ms.Request(0, u)
		if err != nil {
			t.Fatal(err)
		}
		outS, err := st.Request(u)
		if err != nil {
			t.Fatal(err)
		}
		if outM != outS {
			t.Fatalf("user %d: multi %+v vs single %+v", u, outM, outS)
		}
	}
	if ms.Benefit() != st.Benefit() || ms.CautiousFriends() != st.CautiousFriends() {
		t.Errorf("final state differs: %v/%d vs %v/%d",
			ms.Benefit(), ms.CautiousFriends(), st.Benefit(), st.CautiousFriends())
	}
}
