package osn

import (
	"errors"
	"testing"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/rng"
)

func buildGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if _, err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Freeze()
}

// uniformParams builds all-reckless params with q=1, B_f=2, B_fof=1 and
// deterministic edges.
func uniformParams(n int) Params {
	p := Params{
		Kind:       make([]Kind, n),
		AcceptProb: make([]float64, n),
		Theta:      make([]int, n),
		BFriend:    make([]float64, n),
		BFof:       make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.Kind[i] = Reckless
		p.AcceptProb[i] = 1
		p.BFriend[i] = 2
		p.BFof[i] = 1
	}
	return p
}

func TestNewInstanceValid(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}})
	p := uniformParams(3)
	p.Kind[2] = Cautious
	p.Theta[2] = 1
	p.BFriend[2] = 50
	inst, err := NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if inst.N() != 3 {
		t.Errorf("N = %d", inst.N())
	}
	if inst.Kind(2) != Cautious || inst.Kind(0) != Reckless {
		t.Error("kinds wrong")
	}
	if inst.NumCautious() != 1 || inst.Cautious()[0] != 2 {
		t.Errorf("cautious list = %v", inst.Cautious())
	}
	if inst.BFriend(2) != 50 || inst.BFof(2) != 1 || inst.Theta(2) != 1 {
		t.Error("attributes wrong")
	}
	// nil EdgeProb defaults to 1 everywhere.
	if inst.EdgeProbUV(0, 1) != 1 {
		t.Errorf("default edge prob = %v", inst.EdgeProbUV(0, 1))
	}
	if inst.EdgeProbUV(0, 2) != 0 { // absent potential edge
		t.Errorf("absent edge prob = %v", inst.EdgeProbUV(0, 2))
	}
}

func TestNewInstanceShapeErrors(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}})
	p := uniformParams(2) // wrong length
	if _, err := NewInstance(g, p); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("err = %v, want ErrShapeMismatch", err)
	}
	p = uniformParams(3)
	p.EdgeProb = []float64{0.5} // wrong length (AdjSize is 2)
	if _, err := NewInstance(g, p); !errors.Is(err, ErrShapeMismatch) {
		t.Errorf("err = %v, want ErrShapeMismatch", err)
	}
}

func TestNewInstanceValueErrors(t *testing.T) {
	g := buildGraph(t, 2, [][2]int{{0, 1}})

	p := uniformParams(2)
	p.AcceptProb[0] = 1.5
	if _, err := NewInstance(g, p); !errors.Is(err, ErrBadProbability) {
		t.Errorf("bad q: %v", err)
	}

	p = uniformParams(2)
	p.Kind[0] = Cautious
	p.Theta[0] = 0
	if _, err := NewInstance(g, p); !errors.Is(err, ErrBadThreshold) {
		t.Errorf("bad theta: %v", err)
	}

	p = uniformParams(2)
	p.BFriend[0] = -1
	if _, err := NewInstance(g, p); !errors.Is(err, ErrBadBenefit) {
		t.Errorf("negative benefit: %v", err)
	}

	p = uniformParams(2)
	p.BFriend[0] = 0.5 // below B_fof = 1
	if _, err := NewInstance(g, p); !errors.Is(err, ErrBadBenefit) {
		t.Errorf("B_f < B_fof: %v", err)
	}

	p = uniformParams(2)
	p.Kind[0] = Kind(9)
	if _, err := NewInstance(g, p); err == nil {
		t.Error("invalid kind: want error")
	}

	p = uniformParams(2)
	p.EdgeProb = []float64{1.2, 1.2}
	if _, err := NewInstance(g, p); !errors.Is(err, ErrBadProbability) {
		t.Errorf("bad edge prob: %v", err)
	}

	p = uniformParams(2)
	p.EdgeProb = []float64{0.3, 0.7} // asymmetric
	if _, err := NewInstance(g, p); err == nil {
		t.Error("asymmetric edge prob: want error")
	}
}

func TestNewInstanceCopiesSlices(t *testing.T) {
	g := buildGraph(t, 2, [][2]int{{0, 1}})
	p := uniformParams(2)
	inst, err := NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	p.BFriend[0] = 99
	if inst.BFriend(0) == 99 {
		t.Error("instance aliases caller slice")
	}
}

func TestKindString(t *testing.T) {
	if Reckless.String() != "reckless" || Cautious.String() != "cautious" {
		t.Error("Kind.String wrong")
	}
	if Kind(0).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestSetupBuildProtocol(t *testing.T) {
	// A graph with a guaranteed band of degree-10..100 candidates:
	// ER with n=400, m=4000 gives mean degree 20.
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 10
	inst, err := s.Build(g, rng.NewSeed(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumCautious() != 10 {
		t.Fatalf("cautious = %d", inst.NumCautious())
	}
	// Cautious users form an independent set within the degree band,
	// with θ = round(0.3 deg) and B_f = 50.
	for _, u := range inst.Cautious() {
		d := g.Degree(u)
		if d < 10 || d > 100 {
			t.Errorf("cautious %d degree %d outside band", u, d)
		}
		if inst.Theta(u) < 1 || inst.Theta(u) > d {
			t.Errorf("cautious %d theta %d vs degree %d", u, inst.Theta(u), d)
		}
		if inst.BFriend(u) != 50 {
			t.Errorf("cautious %d B_f = %v", u, inst.BFriend(u))
		}
		for _, v := range inst.Cautious() {
			if u != v && g.HasEdge(u, v) {
				t.Errorf("cautious users %d and %d adjacent", u, v)
			}
		}
	}
	// Reckless attributes.
	reckless := 0
	for u := 0; u < inst.N(); u++ {
		if inst.Kind(u) != Reckless {
			continue
		}
		reckless++
		if q := inst.AcceptProb(u); q < 0 || q >= 1 {
			t.Errorf("q(%d) = %v outside [0,1)", u, q)
		}
		if inst.BFriend(u) != 2 || inst.BFof(u) != 1 {
			t.Errorf("reckless %d benefits %v/%v", u, inst.BFriend(u), inst.BFof(u))
		}
	}
	if reckless != inst.N()-10 {
		t.Errorf("reckless count %d", reckless)
	}
}

func gen400(t *testing.T) (*graph.Graph, error) {
	t.Helper()
	b := graph.NewBuilder(400)
	r := rng.NewSeed(77, 78).Rand()
	for b.M() < 4000 {
		if _, err := b.AddEdge(r.IntN(400), r.IntN(400)); err != nil {
			return nil, err
		}
	}
	return b.Freeze(), nil
}

func TestSetupBuildDeterministic(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 5
	a, err := s.Build(g, rng.NewSeed(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Build(g, rng.NewSeed(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range a.Cautious() {
		if b.Cautious()[i] != u {
			t.Fatal("cautious selection not deterministic")
		}
	}
	for u := 0; u < a.N(); u++ {
		if a.AcceptProb(u) != b.AcceptProb(u) {
			t.Fatal("acceptance probs not deterministic")
		}
	}
}

func TestSetupBuildErrors(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	s := DefaultSetup()
	// No node has degree in [10, 100].
	s.NumCautious = 1
	if _, err := s.Build(g, rng.NewSeed(1, 1)); !errors.Is(err, ErrNotEnoughCandidates) {
		t.Errorf("err = %v, want ErrNotEnoughCandidates", err)
	}
	s = DefaultSetup()
	s.NumCautious = -1
	if _, err := s.Build(g, rng.NewSeed(1, 1)); err == nil {
		t.Error("negative NumCautious: want error")
	}
	s = DefaultSetup()
	s.ThetaFraction = 0
	if _, err := s.Build(g, rng.NewSeed(1, 1)); err == nil {
		t.Error("zero ThetaFraction: want error")
	}
	s = DefaultSetup()
	s.BFriendCautious = 0.5 // below BFof
	if _, err := s.Build(g, rng.NewSeed(1, 1)); err == nil {
		t.Error("B_f(c) < B_fof: want error")
	}
}

func TestSetupZeroCautious(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 0
	inst, err := s.Build(g, rng.NewSeed(5, 6))
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumCautious() != 0 {
		t.Errorf("cautious = %d", inst.NumCautious())
	}
}

func TestThetaFor(t *testing.T) {
	cases := []struct {
		deg      int
		fraction float64
		want     int
	}{
		{10, 0.3, 3},
		{1, 0.3, 1},  // floor at 1
		{0, 0.3, 1},  // degenerate degree still gets threshold 1
		{15, 0.3, 5}, // 4.5 rounds to 5 (round half away from zero)
		{100, 0.3, 30},
	}
	for _, tc := range cases {
		if got := thetaFor(tc.deg, tc.fraction); got != tc.want {
			t.Errorf("thetaFor(%d, %v) = %d, want %d", tc.deg, tc.fraction, got, tc.want)
		}
	}
}
