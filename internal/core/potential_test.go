package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// rngSeed and sampleUsers are small aliases keeping property tests terse.
func rngSeed(hi, lo uint64) rng.Seed { return rng.NewSeed(hi, lo) }

func sampleUsers(r *rand.Rand, n, k int) ([]int, error) {
	return rng.SampleWithoutReplacement(r, n, k)
}

func buildGraph(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for _, e := range edges {
		if _, err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.Freeze()
}

func uniformParams(n int) osn.Params {
	p := osn.Params{
		Kind:       make([]osn.Kind, n),
		AcceptProb: make([]float64, n),
		Theta:      make([]int, n),
		BFriend:    make([]float64, n),
		BFof:       make([]float64, n),
	}
	for i := 0; i < n; i++ {
		p.Kind[i] = osn.Reckless
		p.AcceptProb[i] = 1
		p.BFriend[i] = 2
		p.BFof[i] = 1
	}
	return p
}

// potentialFixture: path 0-1-2 plus cautious 3 attached to 1, θ=2,
// B_f(3)=50. Edge probs 0.5 everywhere, q=0.8 everywhere.
func potentialFixture(t *testing.T) *osn.Instance {
	t.Helper()
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {1, 3}})
	p := uniformParams(4)
	for i := range p.AcceptProb {
		p.AcceptProb[i] = 0.8
	}
	p.Kind[3] = osn.Cautious
	p.AcceptProb[3] = 0
	p.Theta[3] = 2
	p.BFriend[3] = 50
	p.EdgeProb = make([]float64, g.AdjSize())
	for i := range p.EdgeProb {
		p.EdgeProb[i] = 0.5
	}
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPotentialInitial(t *testing.T) {
	inst := potentialFixture(t)
	st := osn.NewState(inst.FixedRealization(nil, nil))

	// Node 1: q=0.8; P_D = B_f(1) + Σ p·B_fof over neighbors 0,2,3 =
	// 2 + 3·0.5·1 = 3.5; P_I over cautious neighbor 3: 0.5·(50−1)/2 = 12.25.
	w := Weights{WD: 0.5, WI: 0.5}
	got := Potential(st, 1, w)
	want := 0.8 * (0.5*3.5 + 0.5*12.25)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P(1) = %v, want %v", got, want)
	}

	// Node 0: P_D = 2 + 0.5·1 (neighbor 1) = 2.5; no cautious neighbor.
	got = Potential(st, 0, w)
	want = 0.8 * 0.5 * 2.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P(0) = %v, want %v", got, want)
	}

	// Cautious node 3 below threshold scores 0.
	if got := Potential(st, 3, w); got != 0 {
		t.Errorf("P(3) = %v, want 0", got)
	}
}

func TestPotentialPureDirect(t *testing.T) {
	inst := potentialFixture(t)
	st := osn.NewState(inst.FixedRealization(nil, nil))
	w := Weights{WD: 1, WI: 0}
	got := Potential(st, 1, w)
	want := 0.8 * 3.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("pure-direct P(1) = %v, want %v", got, want)
	}
}

func TestPotentialAfterAcceptance(t *testing.T) {
	inst := potentialFixture(t)
	st := osn.NewState(inst.FixedRealization(nil, nil))
	w := Weights{WD: 0.5, WI: 0.5}

	if _, err := st.Request(0); err != nil {
		t.Fatal(err)
	}
	// Node 0 is now a friend: P(0) = 0.
	if got := Potential(st, 0, w); got != 0 {
		t.Errorf("P(friend) = %v", got)
	}
	// Node 1 is now FOF (edge (0,1) realized): P_D loses B_fof(1) from
	// the base but the edge (1,0) term drops (0 is a friend), and the
	// posterior for (1,2),(1,3) is still 0.5:
	// P_D = (2−1) + 0.5·1 [v=2] + 0.5·1 [v=3] = 2; P_I: mutual(3)=0 so
	// deficit 2: 0.5·49/2 = 12.25.
	got := Potential(st, 1, w)
	want := 0.8 * (0.5*2 + 0.5*12.25)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P(1) after friend 0 = %v, want %v", got, want)
	}
}

func TestPotentialObservedEdges(t *testing.T) {
	inst := potentialFixture(t)
	// Only (0,1) and (1,3) realized; (1,2) missing.
	re := inst.FixedRealization(func(u, v int) bool {
		return (u == 0 && v == 1) || (u == 1 && v == 3)
	}, nil)
	st := osn.NewState(re)
	w := Weights{WD: 1, WI: 0}

	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	// Node 2: its only potential neighbor 1 is a friend now, and (1,2)
	// is observed missing. P_D = B_f(2) = 2, no FOF deduction (2 is not
	// FOF since the edge does not exist).
	if st.IsFOF(2) {
		t.Fatal("2 must not be FOF over a missing edge")
	}
	got := Potential(st, 2, w)
	want := 0.8 * 2.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P(2) = %v, want %v", got, want)
	}
}

func TestPotentialCautiousAtThreshold(t *testing.T) {
	w := Weights{WD: 0.5, WI: 0.5}

	// In the standard fixture θ(3)=2 exceeds node 3's single potential
	// neighbor, so its potential stays 0 even after befriending that
	// neighbor.
	inst := potentialFixture(t)
	st := osn.NewState(inst.FixedRealization(nil, nil))
	if _, err := st.Request(1); err != nil {
		t.Fatal(err)
	}
	if got := Potential(st, 3, w); got != 0 {
		t.Errorf("unreachable-threshold cautious P = %v, want 0", got)
	}

	// Triangle with θ=1: the threshold unlocks after one friend.
	g := buildGraph(t, 3, [][2]int{{0, 1}, {0, 2}, {1, 2}})
	p := uniformParams(3)
	p.Kind[2] = osn.Cautious
	p.AcceptProb[2] = 0
	p.Theta[2] = 1
	p.BFriend[2] = 50
	inst2, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	st2 := osn.NewState(inst2.FixedRealization(nil, nil))
	if got := Potential(st2, 2, w); got != 0 {
		t.Errorf("below-threshold cautious P = %v", got)
	}
	if _, err := st2.Request(0); err != nil {
		t.Fatal(err)
	}
	// mutual(2)=1 ≥ θ=1: q̂=1. P_D = 50 − 1 (FOF) + p(2,1)·(1−FOF(1))... 1
	// is FOF already, so nothing: P_D = 49. P_I = 0 (no cautious
	// neighbors — instance has only one cautious user).
	got := Potential(st2, 2, w)
	want := 1.0 * 0.5 * 49
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("at-threshold cautious P = %v, want %v", got, want)
	}
}

func TestPotentialZeroQ(t *testing.T) {
	g := buildGraph(t, 2, [][2]int{{0, 1}})
	p := uniformParams(2)
	p.AcceptProb[0] = 0
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	st := osn.NewState(inst.FixedRealization(nil, nil))
	if got := Potential(st, 0, DefaultWeights()); got != 0 {
		t.Errorf("q=0 potential = %v", got)
	}
}

func TestPotentialRequestedScoresZero(t *testing.T) {
	inst := potentialFixture(t)
	re := inst.FixedRealization(nil, func(int) bool { return false })
	st := osn.NewState(re)
	if _, err := st.Request(0); err != nil {
		t.Fatal(err)
	}
	// 0 was rejected but already requested — never a candidate again.
	if got := Potential(st, 0, DefaultWeights()); got != 0 {
		t.Errorf("requested potential = %v", got)
	}
}

func TestWeightsValidate(t *testing.T) {
	valid := []Weights{{WD: 1, WI: 0}, {WD: 0, WI: 1}, {WD: 0.5, WI: 0.5}, {WD: 2, WI: 3}}
	for _, w := range valid {
		if err := w.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", w, err)
		}
	}
	invalid := []Weights{{WD: -1, WI: 0.5}, {WD: 0.5, WI: -1}, {}}
	for _, w := range invalid {
		if err := w.Validate(); err == nil {
			t.Errorf("%+v: want error", w)
		}
	}
}

func TestPotentialNonNegativeProperty(t *testing.T) {
	// P(u|ω) >= 0 for every user in every reachable state: benefits are
	// non-negative and B_f >= B_fof by instance validation.
	inst := randomInstance(t, 2000)
	re := inst.SampleRealization(rngSeed(20, 21))
	st := osn.NewState(re)
	w := DefaultWeights()
	check := func() {
		for u := 0; u < inst.N(); u += 7 {
			if p := Potential(st, u, w); p < 0 {
				t.Fatalf("negative potential %v for user %d after %d requests", p, u, st.Requests())
			}
		}
	}
	check()
	r := rngSeed(22, 23).Rand()
	order, err := sampleUsers(r, inst.N(), 60)
	if err != nil {
		t.Fatal(err)
	}
	for i, u := range order {
		if _, err := st.Request(u); err != nil {
			t.Fatal(err)
		}
		if i%15 == 0 {
			check()
		}
	}
	check()
}
