// Fixture: detrand in a timing-allowed package (type-checked as
// .../internal/sim). The clock is legal here — spans need it — but
// global randomness and environment reads remain forbidden.
package sim

import (
	"math/rand/v2"
	"os"
	"time"
)

func spanTiming() time.Duration {
	start := time.Now() // clock allowed in timing packages
	return time.Since(start)
}

func stillNoGlobalRand() int {
	return rand.IntN(4) // want `math/rand/v2\.IntN bypasses the internal/rng seed tree`
}

func stillNoEnv() string {
	return os.Getenv("ACCU_WORKERS") // want `os\.Getenv makes .* depend on the process environment`
}
