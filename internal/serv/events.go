package serv

import "sync"

// Event is one job notification, serialized as the SSE data payload.
// Type is "progress" (one collected record) or "state" (a lifecycle
// transition).
type Event struct {
	Type  string `json:"type"`
	JobID string `json:"jobId"`
	State State  `json:"state"`

	// Progress fields (Type == "progress"): grid-wide completion plus
	// the just-completed cell's coordinates.
	Done    int64  `json:"done,omitempty"`
	Resumed int64  `json:"resumed,omitempty"`
	Total   int64  `json:"total,omitempty"`
	Policy  string `json:"policy,omitempty"`
	Network int    `json:"network,omitempty"`
	Run     int    `json:"run,omitempty"`

	// Error carries the failure message of a failed transition.
	Error string `json:"error,omitempty"`
}

// hub fans a job's events out to its SSE subscribers. Publishing never
// blocks the job runner: a subscriber that cannot keep up loses
// intermediate progress events (they are monotonic, so the next one
// supersedes them), and the terminal transition is signalled by closing
// the hub — subscribers then re-read the job document for the final
// state, so a dropped terminal event cannot strand a client.
type hub struct {
	mu     sync.Mutex
	subs   map[chan Event]struct{}
	closed bool
}

func newHub() *hub {
	return &hub{subs: make(map[chan Event]struct{})}
}

// subscribe registers a listener. The returned cancel is idempotent and
// must be called when the listener goes away. On an already-closed hub
// the returned channel is closed immediately.
func (h *hub) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			h.mu.Lock()
			if _, ok := h.subs[ch]; ok {
				delete(h.subs, ch)
				close(ch)
			}
			h.mu.Unlock()
		})
	}
	return ch, cancel
}

// publish broadcasts one event, dropping it for subscribers whose buffer
// is full.
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop; progress is monotonic
		}
	}
}

// close ends the stream for every subscriber. Safe to call repeatedly.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
}
