// Fixture for the call-graph golden tests: one edge of every kind —
// direct, method, interface, recursive — plus go/defer context flags.
package sim

type store struct{ n int }

func (s *store) save() { s.flush() }

func (s *store) flush() { s.n++ }

type sink interface{ save() }

func direct() { helper() }

func helper() {}

func viaInterface(s sink) { s.save() }

func recurse(n int) {
	if n > 0 {
		recurse(n - 1)
	}
}

func spawn() {
	go helper()
	defer helper()
	direct()
}

func spawnOnly() { go helper() }
