// Package core is a minimal stub of internal/core for analyzer fixtures:
// just enough surface (Policy, Reusable, Runner) for scratchescape
// fixtures to type-check against the production import path.
package core

import "example.test/internal/rng"

// Policy mirrors the production attack-policy interface.
type Policy interface {
	Name() string
}

// Reusable mirrors the production per-worker reusable-policy contract;
// scratchescape resolves this interface by name to classify scratch.
type Reusable interface {
	Policy
	Reseed(seed rng.Seed)
}

// Runner mirrors the production pooled attack-state runner; it is a
// named scratch owner type for scratchescape.
type Runner struct {
	buf []int
}

// Run stands in for the production execution entry point.
func (r *Runner) Run(p Policy) int { return len(r.buf) }
