// Package dist distributes one Monte-Carlo grid across remote workers.
//
// The coordinator owns the grid: it partitions the (network, run) cell
// keyspace into contiguous ranges, leases them to workers over HTTP, and
// journals every uploaded cell into the same append-only JSONL cell
// journal the local engine uses (sim.CellJournal). Workers run the
// unmodified engine against a range-restricted Checkpointer, so a cell
// computed remotely is bit-identical to the same cell computed locally —
// every cell reseeds from its (network, run) coordinates alone — and the
// coordinator's aggregated digest matches a local `accurun -digest` of
// the same protocol by construction.
//
// Fault model: leases expire after a TTL without durable progress; an
// expired range is reassigned to the next worker that asks (straggler
// detection). Uploads are accepted from any lease holder, current or
// stale — the journal dedups by cell key, so the first durably committed
// copy of a cell wins and later duplicates are counted and dropped. The
// coordinator fsyncs each accepted cell before acking (SyncEvery(1)),
// which makes "first durable commit wins" literal: an acked cell can
// never be lost to a coordinator crash.
package dist

import "github.com/accu-sim/accu/internal/sim"

// Lease grants one worker the cell index range [Start, End) for TTLMS
// milliseconds. Cell index c maps to CellKey{Network: c / Runs,
// Run: c % Runs}. The deadline extends every time the coordinator
// accepts cells from this lease, so the TTL measures "no durable
// progress", not total range runtime.
//
//accu:wire
type Lease struct {
	ID    string `json:"id"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	TTLMS int64  `json:"ttlMs"`
}

// LeaseRequest asks for the next available range.
//
//accu:wire
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse answers a lease request: Done means every cell of the
// grid is durable and the worker should exit; a nil Lease with Done
// false means every remaining range is currently leased — poll again.
//
//accu:wire
type LeaseResponse struct {
	Done  bool   `json:"done"`
	Lease *Lease `json:"lease,omitempty"`
}

// UploadResponse acknowledges a cell upload. Accepted cells are durable
// (fsynced) when this response is written; Duplicate counts cells some
// other upload already committed; Rejected counts cells outside the
// grid. Done mirrors LeaseResponse.Done so an uploader learns about
// completion without an extra poll.
//
//accu:wire
type UploadResponse struct {
	Accepted  int  `json:"accepted"`
	Duplicate int  `json:"duplicate"`
	Rejected  int  `json:"rejected"`
	Done      bool `json:"done"`
}

// FailRequest reports a worker-side range failure so the coordinator can
// release the lease immediately instead of waiting out the TTL.
//
//accu:wire
type FailRequest struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Error  string `json:"error"`
}

// RangeStatus describes one range in a status snapshot.
//
//accu:wire
type RangeStatus struct {
	Start     int    `json:"start"`
	End       int    `json:"end"`
	Remaining int    `json:"remaining"`
	Worker    string `json:"worker,omitempty"`
	Lease     string `json:"lease,omitempty"`
}

// Status is the coordinator's poll snapshot.
//
//accu:wire
type Status struct {
	Total     int           `json:"total"`
	Committed int           `json:"committed"`
	Records   int           `json:"records"`
	Done      bool          `json:"done"`
	Workers   []string      `json:"workers,omitempty"`
	Ranges    []RangeStatus `json:"ranges"`
}

// cellOf maps a cell index to its journal key.
func cellOf(c, runs int) sim.CellKey {
	return sim.CellKey{Network: c / runs, Run: c % runs}
}

// indexOf maps a journal key to its cell index.
func indexOf(key sim.CellKey, runs int) int {
	return key.Network*runs + key.Run
}
