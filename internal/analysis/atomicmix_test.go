package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, analysis.AtomicMix(), analysistest.Fixture{
		Dir:        "testdata/src/atomicmix_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}
