// Fixture for the ctxflow analyzer: outgoing requests must carry a
// context, and pacing retry/poll loops must consult one when it is in
// scope.
package serv

import (
	"context"
	"net/http"
	"time"
)

func buildsWithoutContext(url string) (*http.Request, error) {
	return http.NewRequest("GET", url, nil) // want `http\.NewRequest builds a request without a context`
}

func buildsWithContext(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, "GET", url, nil)
}

func conveniences(c *http.Client, url string) {
	c.Post(url, "application/json", nil) // want `\(\*http\.Client\)\.Post sends a request without a context`
	http.Get(url)                        // want `http\.Get sends a request that cannot be cancelled`
}

func pollsWithoutCtx(ctx context.Context, ready func() bool) {
	for !ready() { // want `never consults its context`
		time.Sleep(10 * time.Millisecond)
	}
	<-ctx.Done()
}

func pollsWithCtx(ctx context.Context, ready func() bool) {
	for !ready() {
		if ctx.Err() != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func noCtxInScope(ready func() bool) {
	// No context reaches this function; adding one is the caller's
	// refactor, so the loop is not flagged.
	for !ready() {
		time.Sleep(time.Millisecond)
	}
}

func allowedPoll(ctx context.Context, ready func() bool) {
	//accu:allow ctxflow -- bounded warmup loop, caller enforces the deadline
	for !ready() {
		time.Sleep(time.Millisecond)
	}
}
