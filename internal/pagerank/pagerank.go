// Package pagerank implements power-iteration PageRank on undirected
// graphs, used as a baseline target-selection policy in the paper's
// experiments (§IV-A).
package pagerank

import (
	"fmt"
	"math"

	"github.com/accu-sim/accu/internal/graph"
)

// Options control the power iteration. The zero value is not valid;
// use DefaultOptions.
type Options struct {
	// Damping is the damping factor (the paper-standard 0.85).
	Damping float64
	// MaxIter bounds the number of iterations.
	MaxIter int
	// Tol is the L1 convergence tolerance.
	Tol float64
}

// DefaultOptions returns the conventional PageRank parameters.
func DefaultOptions() Options {
	return Options{Damping: 0.85, MaxIter: 100, Tol: 1e-9}
}

// Scores runs power iteration and returns the PageRank score of every
// node. On an undirected graph each edge is treated as two directed arcs.
// Dangling (isolated) nodes distribute their mass uniformly.
func Scores(g *graph.Graph, opts Options) ([]float64, error) {
	if opts.Damping <= 0 || opts.Damping >= 1 {
		return nil, fmt.Errorf("pagerank: damping %v not in (0, 1)", opts.Damping)
	}
	if opts.MaxIter <= 0 {
		return nil, fmt.Errorf("pagerank: MaxIter %d must be positive", opts.MaxIter)
	}
	if opts.Tol <= 0 {
		return nil, fmt.Errorf("pagerank: Tol %v must be positive", opts.Tol)
	}
	n := g.N()
	if n == 0 {
		return nil, nil
	}

	cur := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range cur {
		cur[i] = inv
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		var dangling float64
		for u := 0; u < n; u++ {
			if g.Degree(u) == 0 {
				dangling += cur[u]
			}
			next[u] = 0
		}
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		for u := 0; u < n; u++ {
			next[u] += base
			d := g.Degree(u)
			if d == 0 {
				continue
			}
			share := opts.Damping * cur[u] / float64(d)
			for _, v := range g.Neighbors(u) {
				next[v] += share
			}
		}
		var delta float64
		for i := range cur {
			delta += math.Abs(next[i] - cur[i])
		}
		cur, next = next, cur
		if delta < opts.Tol {
			break
		}
	}
	return cur, nil
}
