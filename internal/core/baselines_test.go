package core

import (
	"testing"

	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

func TestMaxDegreeOrder(t *testing.T) {
	// Degrees: 1 has 3, 0 has 2, others 1.
	g := buildGraph(t, 4, [][2]int{{1, 0}, {1, 2}, {1, 3}, {0, 2}})
	p := uniformParams(4)
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(NewMaxDegree(), inst.FixedRealization(nil, nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].User != 1 {
		t.Errorf("first pick = %d, want hub 1", res.Steps[0].User)
	}
	if res.Steps[1].User != 0 {
		t.Errorf("second pick = %d, want 0", res.Steps[1].User)
	}
	// Tie between 2 and 3 breaks toward lower id.
	if res.Steps[2].User != 2 || res.Steps[3].User != 3 {
		t.Errorf("tie order = %d,%d, want 2,3", res.Steps[2].User, res.Steps[3].User)
	}
}

func TestPageRankPicksHubFirst(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	p := uniformParams(5)
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(NewPageRank(), inst.FixedRealization(nil, nil), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps[0].User != 0 {
		t.Errorf("first pick = %d, want star center", res.Steps[0].User)
	}
	if got := NewPageRank().Name(); got != "pagerank" {
		t.Errorf("name = %q", got)
	}
	if got := NewMaxDegree().Name(); got != "maxdegree" {
		t.Errorf("name = %q", got)
	}
}

func TestRandomCoversAllUsers(t *testing.T) {
	inst := potentialFixture(t)
	r := NewRandom(rng.NewSeed(5, 5))
	if r.Name() != "random" {
		t.Errorf("name = %q", r.Name())
	}
	res, err := Run(r, inst.FixedRealization(nil, nil), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("steps = %d, want all 4 users", len(res.Steps))
	}
	seen := map[int]bool{}
	for _, s := range res.Steps {
		seen[s.User] = true
	}
	if len(seen) != 4 {
		t.Error("random policy repeated a user")
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	inst := randomInstance(t, 400)
	re := inst.SampleRealization(rng.NewSeed(3, 3))
	r1, err := Run(NewRandom(rng.NewSeed(9, 9)), re, 20)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(NewRandom(rng.NewSeed(9, 9)), re, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Steps {
		if r1.Steps[i].User != r2.Steps[i].User {
			t.Fatal("same seed produced different orders")
		}
	}
	r3, err := Run(NewRandom(rng.NewSeed(10, 10)), re, 20)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Steps {
		if r1.Steps[i].User != r3.Steps[i].User {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical orders (suspicious)")
	}
}

func TestABMDominatesBaselinesOnAverage(t *testing.T) {
	// Integration check of the paper's headline claim (Fig. 2 shape):
	// averaged over several realizations, ABM collects at least as much
	// benefit as every baseline.
	if testing.Short() {
		t.Skip("integration comparison")
	}
	inst := randomInstance(t, 500)
	const k, runs = 40, 12
	avg := func(mk func(i int) Policy) float64 {
		var total float64
		for i := 0; i < runs; i++ {
			re := inst.SampleRealization(rng.NewSeed(uint64(i), 77))
			res, err := Run(mk(i), re, k)
			if err != nil {
				t.Fatal(err)
			}
			total += res.Benefit
		}
		return total / runs
	}
	abmAvg := avg(func(int) Policy {
		a, err := NewABM(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		return a
	})
	maxdegAvg := avg(func(int) Policy { return NewMaxDegree() })
	prAvg := avg(func(int) Policy { return NewPageRank() })
	randAvg := avg(func(i int) Policy { return NewRandom(rng.NewSeed(uint64(i), 3)) })

	if abmAvg < maxdegAvg {
		t.Errorf("ABM %.1f below MaxDegree %.1f", abmAvg, maxdegAvg)
	}
	if abmAvg < prAvg {
		t.Errorf("ABM %.1f below PageRank %.1f", abmAvg, prAvg)
	}
	if abmAvg < randAvg {
		t.Errorf("ABM %.1f below Random %.1f", abmAvg, randAvg)
	}
}
