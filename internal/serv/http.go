package serv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST /api/v1/jobs              submit a job (SubmitRequest body)
//	GET  /api/v1/jobs              list jobs (?state=, ?tenant=)
//	GET  /api/v1/jobs/{id}         one job document with live progress
//	GET  /api/v1/jobs/{id}/result  the finished job's Result
//	GET  /api/v1/jobs/{id}/events  SSE stream of progress/state events
//	POST /api/v1/jobs/{id}/cancel  cancel a queued or running job
//	POST /api/v1/jobs/{id}/resume  requeue a failed/cancelled job
//	GET  /metrics                  merged metrics snapshot (?job=<id>)
//	GET  /healthz                  liveness (503 while draining)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /api/v1/jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// writeError maps service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrDuplicateJob), errors.Is(err, ErrConflict):
		status = http.StatusConflict
	case errors.Is(err, ErrQuotaExceeded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, fmt.Errorf("serv: parse submit request: %w", err))
		return
	}
	if req.Tenant == "" {
		req.Tenant = r.Header.Get("X-Accu-Tenant")
	}
	job, err := s.Submit(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, job)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.List(State(r.URL.Query().Get("state")), r.URL.Query().Get("tenant"))
	writeJSON(w, http.StatusOK, struct {
		Jobs []Job `json:"jobs"`
	}{Jobs: jobs})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if job.State != StateDone || job.Result == nil {
		writeError(w, fmt.Errorf("%w: job %s is %s, result requires done", ErrConflict, job.ID, job.State))
		return
	}
	writeJSON(w, http.StatusOK, job.Result)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	job, err := s.Resume(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap, err := s.Metrics(r.URL.Query().Get("job"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleEvents streams a job's events as server-sent events. The stream
// opens with a "state" snapshot of the current document, then relays hub
// events until the job reaches a terminal state, the client disconnects,
// or the server drains; the final document state is always re-read and
// emitted before the stream closes, so a subscriber that raced a
// transition (or whose buffer overflowed) still observes the outcome.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	e, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		writeError(w, fmt.Errorf("%w: %s", ErrNotFound, id))
		return
	}
	hub := e.hub
	job := s.view(e)
	s.mu.Unlock()

	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, errors.New("serv: response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	events, cancel := hub.subscribe()
	defer cancel()

	writeSSE(w, Event{Type: "state", JobID: job.ID, State: job.State, Done: job.Progress.Done,
		Resumed: job.Progress.Resumed, Total: job.Progress.Total, Error: job.Error})
	flusher.Flush()

	for {
		select {
		case ev, open := <-events:
			if !open {
				// Hub closed: terminal transition or drain. Emit the
				// authoritative final state and end the stream.
				if final, err := s.Get(id); err == nil {
					writeSSE(w, Event{Type: "state", JobID: final.ID, State: final.State,
						Done: final.Progress.Done, Resumed: final.Progress.Resumed,
						Total: final.Progress.Total, Error: final.Error})
					flusher.Flush()
				}
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE emits one SSE frame named by the event type.
func writeSSE(w http.ResponseWriter, ev Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
}
