package sim

import (
	"errors"
	"fmt"
)

// ErrCellTimeout is wrapped into a cell's attempt error when the attempt
// exceeds Protocol.CellTimeout; detect it with errors.Is.
var ErrCellTimeout = errors.New("sim: cell attempt timed out")

// errInstanceReleased guards an abandoned (timed-out) attempt that races
// the network slot's final release: its result is discarded anyway, so
// it fails fast instead of dereferencing a dropped instance.
var errInstanceReleased = errors.New("sim: network instance already released")

// CellError is one failed (network, run) cell: the coordinates, the
// failing policy when the failure is attributable to one factory, and
// the joined errors of every attempt. Without ContinueOnError it is the
// error Run returns; with it, failed cells are collected into the
// trailing *FailureSummary.
type CellError struct {
	// Policy names the factory whose execution failed; empty when the
	// failure happened before any policy ran (network generate/setup,
	// timeout of the whole attempt).
	Policy string
	// Network and Run locate the failed cell in the Monte-Carlo grid.
	Network, Run int
	// Err joins the errors of every attempt of the cell.
	Err error
}

// Error implements error.
func (e *CellError) Error() string {
	if e.Policy == "" {
		return fmt.Sprintf("sim: cell network %d run %d failed: %v", e.Network, e.Run, e.Err)
	}
	return fmt.Sprintf("sim: cell network %d run %d policy %s failed: %v", e.Network, e.Run, e.Policy, e.Err)
}

// Unwrap exposes the attempt errors to errors.Is/As.
func (e *CellError) Unwrap() error { return e.Err }

// FailureSummary is returned by Run when ContinueOnError is set and some
// cells failed: every surviving cell's records were delivered, and the
// summary carries the rest. Detect it with errors.As to distinguish a
// degraded-but-useful grid from a fatal engine error.
type FailureSummary struct {
	// Cells is the scheduled grid size (Networks × Runs).
	Cells int
	// Failures holds one CellError per failed cell.
	Failures []*CellError
}

// Error implements error.
func (s *FailureSummary) Error() string {
	return fmt.Sprintf("sim: %d of %d cells failed: %v",
		len(s.Failures), s.Cells, errors.Join(joinCellErrors(s.Failures)...))
}

// Unwrap exposes the individual cell errors to errors.Is/As traversal.
func (s *FailureSummary) Unwrap() []error { return joinCellErrors(s.Failures) }

// joinCellErrors widens a CellError slice for errors.Join.
func joinCellErrors(ces []*CellError) []error {
	errs := make([]error, len(ces))
	for i, ce := range ces {
		errs[i] = ce
	}
	return errs
}
