// Fixture: metricname (scope is module-wide; type-checked as
// .../internal/sim). Constant names reaching obs.Registry lookups must
// match the convention and keep one instrument kind per name; dynamic
// names are left to the runtime guard in internal/obs.
package sim

import "example.test/internal/obs"

const prefix = "sim."

func conformingNames(reg *obs.Registry) {
	reg.Counter("sim.cells").Inc()
	reg.Gauge("sim.workers").Set(4)
	reg.Histogram("sim.cell_ns").Observe(12)
	reg.StartSpan("sim.network_ns").End()
	reg.Time("sim.wall_ns", func() {})
	reg.Counter(prefix + "folded_constant").Inc()
}

func badShapes(reg *obs.Registry) {
	reg.Counter("CamelCase.cells").Inc()  // want `metric name "CamelCase\.cells" does not match`
	reg.Gauge("nodots").Set(1)            // want `metric name "nodots" does not match`
	reg.Histogram("sim.cell-ns").Observe(1) // want `metric name "sim\.cell-ns" does not match`
	reg.StartSpan("sim..double").End()    // want `metric name "sim\.\.double" does not match`
}

func kindCollision(reg *obs.Registry) {
	reg.Histogram("sim.queue_depth").Observe(3)
	reg.Counter("sim.queue_depth").Inc() // want `metric "sim\.queue_depth" used as counter here but registered as histogram`
}

func dynamicNameIsRuntimeChecked(reg *obs.Registry, policy string) {
	reg.Counter("sim.policy." + policy).Inc()
}

func allowedLegacyName(reg *obs.Registry) {
	//accu:allow metricname -- fixture: grandfathered dashboard name
	reg.Counter("legacy_total").Inc()
}
