// Package prof wires the standard Go profilers into the CLIs: CPU and
// heap profile files plus an optional net/http/pprof server, behind one
// Start/stop pair shared by accubench and accurun.
package prof

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"

	// Register the /debug/pprof handlers on the default mux used by the
	// -pprof listener.
	_ "net/http/pprof"
)

// Options selects which profilers to enable; zero values disable each.
type Options struct {
	// CPUProfile is the file to write a CPU profile to.
	CPUProfile string
	// MemProfile is the file to write a heap profile to at stop time.
	MemProfile string
	// PprofAddr is a listen address (e.g. "localhost:6060") to serve
	// net/http/pprof on for live inspection.
	PprofAddr string
}

// Start enables the configured profilers and returns a stop function to
// defer. The stop function finishes the CPU profile and writes the heap
// profile; errors there are reported to stderr since callers are already
// exiting. The pprof server runs until process exit.
func Start(o Options) (stop func(), err error) {
	var cpuFile *os.File
	if o.CPUProfile != "" {
		cpuFile, err = os.Create(o.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	if o.PprofAddr != "" {
		ln := o.PprofAddr
		go func() {
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "prof: pprof server on %s: %v\n", ln, err)
			}
		}()
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close cpu profile: %v\n", err)
			}
		}
		if o.MemProfile != "" {
			f, err := os.Create(o.MemProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "prof: create mem profile: %v\n", err)
				return
			}
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "prof: write mem profile: %v\n", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "prof: close mem profile: %v\n", err)
			}
		}
	}, nil
}
