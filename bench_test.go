package accu_test

// Benchmark harness: one benchmark per paper table/figure (regenerating
// the artifact at reduced scale each iteration) plus micro-benchmarks for
// the hot paths and the DESIGN.md ablations (lazy vs full ABM re-scoring,
// CSR merge vs brute-force mutual counting).
//
// Run with: go test -bench=. -benchmem

import (
	"context"
	"fmt"
	"testing"

	accu "github.com/accu-sim/accu"
)

// benchConfig is the reduced-scale experiment configuration used by the
// per-figure benchmarks.
func benchConfig() accu.ExperimentConfig {
	return accu.ExperimentConfig{
		Scale:       0.02,
		Networks:    1,
		Runs:        2,
		K:           40,
		NumCautious: 10,
		Datasets:    []string{"slashdot"},
		Seed:        accu.NewSeed(2019, 1243),
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := accu.RunExperiment(context.Background(), id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Rendered == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable1Datasets(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkFig2Benefit(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFig3Marginal(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFig4WeightSweep(b *testing.B) {
	cfg := benchConfig()
	cfg.K = 25
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := accu.RunExperiment(context.Background(), "fig4", cfg); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkFig5Timing(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6Heatmap(b *testing.B) {
	cfg := benchConfig()
	cfg.K = 15
	cfg.Runs = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := accu.RunExperiment(context.Background(), "fig6", cfg); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkFig7Heatmap(b *testing.B) {
	cfg := benchConfig()
	cfg.K = 15
	cfg.Runs = 1
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := accu.RunExperiment(context.Background(), "fig7", cfg); err != nil {
			b.Fatal(err)
		}
	}
}
func BenchmarkTheoremBound(b *testing.B) { benchExperiment(b, "thm1") }

// benchInstance builds a mid-size instance shared by the micro-benches.
func benchInstance(b *testing.B, scale float64) (*accu.Instance, *accu.Realization) {
	b.Helper()
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		b.Fatal(err)
	}
	generator, err := preset.Generator(scale)
	if err != nil {
		b.Fatal(err)
	}
	g, err := generator.Generate(accu.NewSeed(1, 2))
	if err != nil {
		b.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 20
	inst, err := setup.Build(g, accu.NewSeed(3, 4))
	if err != nil {
		b.Fatal(err)
	}
	return inst, inst.SampleRealization(accu.NewSeed(5, 6))
}

// BenchmarkABMLazyVsFull quantifies the lazy re-scoring ablation
// (DESIGN.md): identical selections, different work per acceptance.
func BenchmarkABMLazyVsFull(b *testing.B) {
	for _, mode := range []string{"lazy", "full"} {
		b.Run(mode, func(b *testing.B) {
			inst, re := benchInstance(b, 0.05)
			_ = inst
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var (
					pol *accu.ABM
					err error
				)
				if mode == "lazy" {
					pol, err = accu.NewABM(accu.DefaultWeights())
				} else {
					pol, err = accu.NewABM(accu.DefaultWeights(), accu.WithFullRescan())
				}
				if err != nil {
					b.Fatal(err)
				}
				if _, err := accu.Run(pol, re, 60); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead quantifies the metrics layer's cost on the
// end-to-end hot path: the same ABM attack with instrumentation disabled
// (nil registry — the default for every experiment and benchmark, so
// BenchmarkTable1Datasets and friends measure exactly this path) and
// with a live registry attached to both the environment and the policy.
func BenchmarkObsOverhead(b *testing.B) {
	for _, mode := range []string{"disabled", "enabled"} {
		b.Run(mode, func(b *testing.B) {
			inst, re := benchInstance(b, 0.05)
			var reg *accu.Metrics
			if mode == "enabled" {
				reg = accu.NewMetrics()
				inst.Instrument(reg)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol, err := accu.NewABM(accu.DefaultWeights(), accu.WithMetrics(reg))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := accu.Run(pol, re, 60); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPotentialEval measures single-candidate potential evaluation.
func BenchmarkPotentialEval(b *testing.B) {
	inst, re := benchInstance(b, 0.05)
	st := accu.NewAttack(re)
	// Warm the state with a few acceptances so posteriors mix.
	for u := 0; u < inst.N() && st.Friends() < 5; u++ {
		if _, err := st.Request(u); err != nil {
			b.Fatal(err)
		}
	}
	w := accu.DefaultWeights()
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += accu.Potential(st, (i%1000)+100, w)
	}
	_ = sink
}

// BenchmarkMutualCSRvsSet compares the CSR sorted-merge mutual-friend
// count against a map-based brute force (DESIGN.md ablation).
func BenchmarkMutualCSRvsSet(b *testing.B) {
	inst, _ := benchInstance(b, 0.05)
	g := inst.Graph()
	pairs := make([][2]int, 256)
	for i := range pairs {
		pairs[i] = [2]int{(i * 13) % g.N(), (i * 29) % g.N()}
	}
	b.Run("csr-merge", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			sink += g.MutualCount(p[0], p[1])
		}
		_ = sink
	})
	b.Run("set-intersect", func(b *testing.B) {
		b.ReportAllocs()
		var sink int
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			set := make(map[int32]bool, g.Degree(p[0]))
			for _, v := range g.Neighbors(p[0]) {
				set[v] = true
			}
			for _, v := range g.Neighbors(p[1]) {
				if set[v] {
					sink++
				}
			}
		}
		_ = sink
	})
}

// BenchmarkGenerators measures network-generation throughput per preset.
func BenchmarkGenerators(b *testing.B) {
	for _, name := range accu.PresetNames() {
		b.Run(name, func(b *testing.B) {
			preset, err := accu.PresetByName(name)
			if err != nil {
				b.Fatal(err)
			}
			generator, err := preset.Generator(0.02)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := generator.Generate(accu.NewSeed(uint64(i), 1))
				if err != nil {
					b.Fatal(err)
				}
				if g.N() == 0 {
					b.Fatal("empty graph")
				}
			}
		})
	}
}

// BenchmarkRealizationSample measures ground-truth sampling.
func BenchmarkRealizationSample(b *testing.B) {
	inst, _ := benchInstance(b, 0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re := inst.SampleRealization(accu.NewSeed(uint64(i), 7))
		if re == nil {
			b.Fatal("nil realization")
		}
	}
}

// BenchmarkPageRank measures the baseline ranking computation.
func BenchmarkPageRank(b *testing.B) {
	inst, _ := benchInstance(b, 0.05)
	g := inst.Graph()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scores, err := accu.PageRankScores(g)
		if err != nil {
			b.Fatal(err)
		}
		if len(scores) != g.N() {
			b.Fatal("bad scores")
		}
	}
}

// BenchmarkPolicies measures a full attack per policy on the same
// realization (Fig. 2's inner loop).
func BenchmarkPolicies(b *testing.B) {
	inst, re := benchInstance(b, 0.05)
	_ = inst
	mk := map[string]func() (accu.Policy, error){
		"abm": func() (accu.Policy, error) { return accu.NewABM(accu.DefaultWeights()) },
		"greedy": func() (accu.Policy, error) {
			return accu.NewPureGreedy(), nil
		},
		"maxdegree": func() (accu.Policy, error) { return accu.NewMaxDegree(), nil },
		"pagerank":  func() (accu.Policy, error) { return accu.NewPageRank(), nil },
		"random":    func() (accu.Policy, error) { return accu.NewRandom(accu.NewSeed(1, 1)), nil },
	}
	for _, name := range []string{"abm", "greedy", "maxdegree", "pagerank", "random"} {
		factory := mk[name]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pol, err := factory()
				if err != nil {
					b.Fatal(err)
				}
				if _, err := accu.Run(pol, re, 60); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMonteCarloWorkers measures runner scaling with worker count.
func BenchmarkMonteCarloWorkers(b *testing.B) {
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		b.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		b.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 10
	factories, err := accu.DefaultFactories(accu.DefaultWeights())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				protocol := accu.Protocol{
					Gen:      generator,
					Setup:    setup,
					Networks: 4,
					Runs:     1,
					K:        20,
					Seed:     accu.NewSeed(9, 9),
					Workers:  workers,
				}
				n := 0
				err := accu.MonteCarlo(context.Background(), protocol, factories, func(accu.Record) { n++ })
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
