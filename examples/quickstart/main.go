// Quickstart: build a small synthetic social network, mount an adaptive
// crawling attack with ABM, and print what the attacker harvested.
package main

import (
	"fmt"
	"log"

	accu "github.com/accu-sim/accu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. A 5%-scale stand-in for the paper's Facebook dataset.
	preset, err := accu.PresetByName("facebook")
	if err != nil {
		log.Fatal(err)
	}
	generator, err := preset.Generator(0.05)
	if err != nil {
		log.Fatal(err)
	}
	g, err := generator.Generate(accu.NewSeed(1, 2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d potential friendships\n", g.N(), g.M())

	// 2. Dress it with the paper's §IV-A protocol: uniform edge and
	// acceptance probabilities, 10 cautious users from the degree band
	// [10, 100] with θ = 30% of their degree.
	setup := accu.DefaultSetup()
	setup.NumCautious = 10
	inst, err := setup.Build(g, accu.NewSeed(3, 4))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Draw the ground truth the attacker will discover adaptively.
	re := inst.SampleRealization(accu.NewSeed(5, 6))

	// 4. Attack with ABM (balanced direct/indirect weights) for 100
	// friend requests.
	abm, err := accu.NewABM(accu.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	res, err := accu.Run(abm, re, 100)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("policy:  %s\n", res.Policy)
	fmt.Printf("benefit: %.1f after %d requests\n", res.Benefit, len(res.Steps))
	fmt.Printf("friends: %d total, %d cautious (high-value)\n", res.Friends, res.CautiousFriends)

	// When did the attacker first crack a cautious user?
	for i, s := range res.Steps {
		if s.Cautious && s.Accepted {
			fmt.Printf("first cautious friend at request #%d (gain %.1f)\n", i+1, s.Gain)
			break
		}
	}
}
