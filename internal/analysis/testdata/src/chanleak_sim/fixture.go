// Fixture for the chanleak analyzer: goroutines blocked forever on an
// unbuffered send when the spawner can exit without receiving — the
// timed-handoff shape — against the sanctioned fixes (buffering, select
// guards, escape to a real consumer).
package sim

import "time"

func compute() int { return 1 }

func timeoutLeak(timeout time.Duration) int {
	ch := make(chan int)
	go func() { ch <- compute() }() // want `goroutine sends on unbuffered channel ch but the spawning function can return without receiving`
	select {
	case v := <-ch:
		return v
	case <-time.After(timeout):
		return -1
	}
}

func earlyReturnLeak(cond bool) int {
	ch := make(chan int)
	go func() { ch <- compute() }() // want `goroutine sends on unbuffered channel ch but the spawning function can return without receiving`
	if cond {
		return 0
	}
	return <-ch
}

// a buffer of one lets the sender complete regardless: clean.
func bufferedHandoff(timeout time.Duration) int {
	ch := make(chan int, 1)
	go func() { ch <- compute() }()
	select {
	case v := <-ch:
		return v
	case <-time.After(timeout):
		return -1
	}
}

// a select with an escape arm lets the sender bail: clean.
func guardedSend(done chan struct{}) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- compute():
		case <-done:
		}
	}()
	<-ch
}

// receives on every path discharge the sender: clean.
func receiveAlways() int {
	ch := make(chan int)
	go func() { ch <- compute() }()
	v := <-ch
	return v
}

// the consumer lives in another goroutine (worker pool): out of scope,
// clean.
func workerPool() {
	ch := make(chan int)
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	for i := 0; i < 3; i++ {
		ch <- i
	}
	close(ch)
}

func deliver(ch chan int) { go func() { ch <- compute() }() }

// an escaping channel may have a receiver anywhere: clean.
func escapes(cond bool) int {
	ch := make(chan int)
	deliver(ch)
	if cond {
		return 0
	}
	return <-ch
}

// fire-and-forget with an audited reason.
func allowedHandoff(cond bool) int {
	ch := make(chan int)
	//accu:allow chanleak -- prototype shape kept for the fixture; production uses a buffer
	go func() { ch <- compute() }()
	if cond {
		return 0
	}
	return <-ch
}
