package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestScratchEscape(t *testing.T) {
	analysistest.Run(t, analysis.ScratchEscape(), analysistest.Fixture{
		Dir:        "testdata/src/scratchescape_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}

// TestScratchEscapeOutOfScope re-types the fixture outside the scratch
// packages: the ownership discipline only holds inside internal/sim and
// internal/core, so nothing may fire elsewhere.
func TestScratchEscapeOutOfScope(t *testing.T) {
	_, _, diags := analysistest.Diagnostics(t, analysis.ScratchEscape(), analysistest.Fixture{
		Dir:        "testdata/src/scratchescape_sim",
		ImportPath: "example.test/internal/exp",
		Deps:       stubDeps,
	})
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0", len(diags))
	}
}
