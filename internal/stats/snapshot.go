package stats

// WelfordSnapshot is the JSON-marshalable view of one accumulator: the
// derived statistics a results API returns without exposing the mutable
// accumulator itself. Every derived field — Mean, Variance, Std,
// StdErr and CI95 alike — carries the full float64 precision, so two
// snapshots of accumulators in identical states marshal to identical
// bytes. (Note the claim is over accumulator states: Welford merges
// folded in a different order can differ from a single-stream
// accumulation in the last few bits. The Sketch snapshot, by contrast,
// is byte-stable under any merge order.)
//
//accu:wire
type WelfordSnapshot struct {
	Count    int64   `json:"count"`
	Mean     float64 `json:"mean"`
	Variance float64 `json:"variance"`
	Std      float64 `json:"std"`
	StdErr   float64 `json:"stdErr"`
	CI95     float64 `json:"ci95"`
}

// Snapshot captures the accumulator's derived statistics.
func (w *Welford) Snapshot() WelfordSnapshot {
	return WelfordSnapshot{
		Count:    w.Count(),
		Mean:     w.Mean(),
		Variance: w.Variance(),
		Std:      w.Std(),
		StdErr:   w.StdErr(),
		CI95:     w.CI95(),
	}
}

// SeriesSnapshot is the JSON-marshalable view of a Series: one point
// snapshot per x position, in axis order. Sketches is present (same
// length and order as Points) only for series built with
// NewSeriesSketched.
type SeriesSnapshot struct {
	Label    string            `json:"label"`
	Xs       []float64         `json:"xs"`
	Points   []WelfordSnapshot `json:"points"`
	Sketches []SketchSnapshot  `json:"sketches,omitempty"`
}

// Snapshot captures the series' per-position statistics.
func (s *Series) Snapshot() SeriesSnapshot {
	out := SeriesSnapshot{
		Label:  s.Label,
		Xs:     append([]float64(nil), s.xs...),
		Points: make([]WelfordSnapshot, len(s.accs)),
	}
	for i := range s.accs {
		out.Points[i] = s.accs[i].Snapshot()
	}
	if s.sketches != nil {
		out.Sketches = make([]SketchSnapshot, len(s.sketches))
		for i := range s.sketches {
			out.Sketches[i] = s.sketches[i].Snapshot()
		}
	}
	return out
}
