package analysis

// dataflow.go is the forward dataflow engine the path-sensitive
// analyzers run over a CFG. The lattice is a reaching-facts set: a fact
// is any comparable key (a lock expression, a cancel-func object, ...)
// mapped to the position that generated it, the join is set union
// ("may reach"), and the transfer function is supplied per analysis as
// a gen/kill mutation over one block node.
//
// With union join and gen/kill transfers the analysis is monotone over
// a finite domain (facts originate at fixed program points), so the
// round-robin iteration below terminates; a hard sweep cap guards
// against a non-monotone transfer misbehaving.

import (
	"go/ast"
	"go/token"
)

// Facts is one dataflow state: each live fact keyed by an arbitrary
// comparable value, carrying the position that generated it (used to
// report at the origin when the fact reaches function exit).
type Facts map[any]token.Pos

func (f Facts) clone() Facts {
	c := make(Facts, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

func factsEqual(a, b Facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if w, ok := b[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// A BranchRefine sharpens facts along one conditional edge. When a
// block with two or more successors ends in an expression (an `if` or
// `for` condition, a switch tag, a range operand), refine is called once
// per outgoing edge with that expression, the successor ordinal (the
// builder orders the true/body edge first, so branch 0 means "condition
// held" for if/for heads) and a private copy of the facts crossing the
// edge, which it may mutate. Refiners must check the condition's shape —
// not every multi-successor block ends in a boolean guard — and, like
// transfer functions, must be deterministic kill-only mutations.
//
// The canonical use is nil-guard refinement: `resp, err := client.Do(req)`
// followed by `if err != nil { return err }` — the error branch carries
// no live response (Do's contract), so an analyzer tracking resp kills
// the fact on branch 0 of the `err != nil` condition instead of falsely
// reporting the early return as a leak.
type BranchRefine func(cond ast.Expr, branch int, facts Facts)

// ForwardMay propagates facts forward through the graph with union join
// until fixpoint. transfer is applied to every node of a block in order
// and mutates the fact set (add to gen, delete to kill). It must be
// deterministic and gen/kill-shaped; it runs multiple times per node
// across sweeps, so it must not have side effects such as reporting —
// report from the returned sets instead.
//
// ForwardMay returns the facts flowing INTO each block and, for
// convenience, the facts reaching the synthetic exit — i.e. facts that
// survive on at least one path from entry to a return (or terminal
// call). Blocks unreachable from the entry keep empty in-sets.
func (g *CFG) ForwardMay(transfer func(n ast.Node, facts Facts)) (in map[*Block]Facts, exit Facts) {
	return g.ForwardMayRefined(transfer, nil)
}

// ForwardMayRefined is ForwardMay with an optional per-edge refinement:
// facts crossing a conditional edge pass through refine before joining
// the successor's in-set. A nil refine is exactly ForwardMay.
func (g *CFG) ForwardMayRefined(transfer func(n ast.Node, facts Facts), refine BranchRefine) (in map[*Block]Facts, exit Facts) {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	in = make(map[*Block]Facts, len(g.Blocks))
	out := make(map[*Block]Facts, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = Facts{}
		out[b] = Facts{}
	}

	// edgeFacts returns the facts flowing from p into b, applying the
	// branch refinement when p ends in a condition with several
	// successors. The ordinal is b's first position in p.Succs (the
	// builder never emits duplicate conditional edges to one block with
	// different meanings).
	edgeFacts := func(p, b *Block) Facts {
		if refine == nil || len(p.Succs) < 2 || len(p.Nodes) == 0 {
			return out[p]
		}
		cond, ok := p.Nodes[len(p.Nodes)-1].(ast.Expr)
		if !ok {
			return out[p]
		}
		branch := -1
		for i, s := range p.Succs {
			if s == b {
				branch = i
				break
			}
		}
		if branch < 0 {
			return out[p]
		}
		f := out[p].clone()
		refine(cond, branch, f)
		return f
	}

	// Round-robin over blocks in index order (approximately reverse
	// post-order for the structured graphs the builder emits). The
	// sweep cap bounds a misbehaving transfer; well-formed gen/kill
	// transfers stabilize in O(loop nesting depth) sweeps.
	maxSweeps := 8*len(g.Blocks) + 32
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		for _, b := range g.Blocks {
			newIn := Facts{}
			for _, p := range preds[b] {
				for k, v := range edgeFacts(p, b) {
					if _, ok := newIn[k]; !ok {
						newIn[k] = v
					}
				}
			}
			in[b] = newIn
			f := newIn.clone()
			for _, n := range b.Nodes {
				transfer(n, f)
			}
			if !factsEqual(out[b], f) {
				out[b] = f
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in, in[g.Exit()]
}

// walkBlockNode walks one CFG block node, pruning nested function
// literals (their bodies execute under their own CFG, not here). When
// skipDefers is set, defer statements are pruned too: their calls run
// at function exit, not at the defer site. fn returns whether to
// descend into the node's children.
func walkBlockNode(n ast.Node, skipDefers bool, fn func(n ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if skipDefers {
			if _, ok := n.(*ast.DeferStmt); ok {
				return false
			}
		}
		return fn(n)
	})
}

// funcBodies visits every function body in the files: declarations and
// nested literals alike, each exactly once. fn receives the body; the
// enclosing node (FuncDecl or FuncLit) is passed for position context.
func funcBodies(files []*ast.File, fn func(enclosing ast.Node, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn(n, n.Body)
				}
			case *ast.FuncLit:
				fn(n, n.Body)
			}
			return true
		})
	}
}
