package core

import (
	"testing"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// randomInstance builds a moderately sized random instance with cautious
// users for integration-style tests.
func randomInstance(t *testing.T, seed uint64) *osn.Instance {
	t.Helper()
	b := graph.NewBuilder(300)
	r := rng.NewSeed(seed, seed+1).Rand()
	for b.M() < 3000 {
		if _, err := b.AddEdge(r.IntN(300), r.IntN(300)); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Freeze()
	s := osn.DefaultSetup()
	s.NumCautious = 8
	inst, err := s.Build(g, rng.NewSeed(seed+2, seed+3))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewABMValidation(t *testing.T) {
	if _, err := NewABM(Weights{WD: -1, WI: 1}); err == nil {
		t.Error("negative weight: want error")
	}
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if a.Weights() != DefaultWeights() {
		t.Error("weights not stored")
	}
}

func TestABMName(t *testing.T) {
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "abm(wD=0.50,wI=0.50)" {
		t.Errorf("name = %q", a.Name())
	}
	if NewPureGreedy().Name() != "greedy" {
		t.Errorf("pure greedy name = %q", NewPureGreedy().Name())
	}
}

func TestABMSelectsHighestPotential(t *testing.T) {
	inst := potentialFixture(t)
	re := inst.FixedRealization(nil, nil)
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	st := osn.NewState(re)
	if err := a.Init(st); err != nil {
		t.Fatal(err)
	}
	u, ok := a.SelectNext(st)
	if !ok {
		t.Fatal("no candidate")
	}
	// Node 1 has by far the highest potential (hub next to the cautious
	// user).
	if u != 1 {
		t.Errorf("first pick = %d, want 1", u)
	}
}

func TestABMRunTrace(t *testing.T) {
	inst := potentialFixture(t)
	re := inst.FixedRealization(nil, nil)
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, re, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	// All four users requested exactly once.
	seen := map[int]bool{}
	for _, s := range res.Steps {
		if seen[s.User] {
			t.Fatalf("user %d requested twice", s.User)
		}
		seen[s.User] = true
	}
	// Cumulative accounting is monotone and consistent.
	prev := 0.0
	for i, s := range res.Steps {
		if s.BenefitAfter < prev {
			t.Errorf("step %d: benefit decreased %v -> %v", i, prev, s.BenefitAfter)
		}
		prev = s.BenefitAfter
	}
	if res.Benefit != res.Steps[len(res.Steps)-1].BenefitAfter {
		t.Error("final benefit mismatch")
	}
	// With everything accepted and θ(3)=2 but deg(3)=1, the cautious
	// user can never be befriended; ABM must still befriend 0,1,2.
	if res.Friends != 3 || res.CautiousFriends != 0 {
		t.Errorf("friends=%d cautious=%d", res.Friends, res.CautiousFriends)
	}
}

func TestABMBefriendsCautiousViaThreshold(t *testing.T) {
	// Star of reckless users around a cautious hub with θ=2: ABM must
	// first befriend two reckless neighbors, then the cautious user.
	g := buildGraph(t, 4, [][2]int{{3, 0}, {3, 1}, {3, 2}, {0, 1}})
	p := uniformParams(4)
	p.Kind[3] = osn.Cautious
	p.AcceptProb[3] = 0
	p.Theta[3] = 2
	p.BFriend[3] = 50
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(a, inst.FixedRealization(nil, nil), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.CautiousFriends != 1 {
		t.Fatalf("cautious friends = %d; steps %+v", res.CautiousFriends, res.Steps)
	}
	// The cautious user must be requested only after the threshold held.
	for i, s := range res.Steps {
		if s.User == 3 {
			if !s.Accepted {
				t.Errorf("cautious request at step %d rejected — wasted request", i)
			}
			if i < 2 {
				t.Errorf("cautious requested too early (step %d)", i)
			}
		}
	}
}

func TestABMLazyMatchesFullRescan(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		inst := randomInstance(t, 100+seed*10)
		re := inst.SampleRealization(rng.NewSeed(seed, 42))

		lazy, err := NewABM(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		full, err := NewABM(DefaultWeights(), WithFullRescan())
		if err != nil {
			t.Fatal(err)
		}
		const k = 60
		resLazy, err := Run(lazy, re, k)
		if err != nil {
			t.Fatal(err)
		}
		resFull, err := Run(full, re, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(resLazy.Steps) != len(resFull.Steps) {
			t.Fatalf("seed %d: step counts differ: %d vs %d", seed, len(resLazy.Steps), len(resFull.Steps))
		}
		for i := range resLazy.Steps {
			if resLazy.Steps[i].User != resFull.Steps[i].User {
				t.Fatalf("seed %d: step %d differs: lazy=%d full=%d",
					seed, i, resLazy.Steps[i].User, resFull.Steps[i].User)
			}
		}
		if resLazy.Benefit != resFull.Benefit {
			t.Fatalf("seed %d: benefits differ: %v vs %v", seed, resLazy.Benefit, resFull.Benefit)
		}
	}
}

func TestABMDeterministic(t *testing.T) {
	inst := randomInstance(t, 200)
	re := inst.SampleRealization(rng.NewSeed(7, 7))
	run := func() *Result {
		a, err := NewABM(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(a, re, 50)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	for i := range r1.Steps {
		if r1.Steps[i].User != r2.Steps[i].User {
			t.Fatalf("step %d: %d vs %d", i, r1.Steps[i].User, r2.Steps[i].User)
		}
	}
}

func TestABMPolicyReusableAcrossRuns(t *testing.T) {
	// The same policy value must be re-initializable for a new attack.
	inst := randomInstance(t, 300)
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	re1 := inst.SampleRealization(rng.NewSeed(1, 1))
	re2 := inst.SampleRealization(rng.NewSeed(2, 2))
	res1, err := Run(a, re1, 30)
	if err != nil {
		t.Fatal(err)
	}
	res1b, err := Run(a, re1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Benefit != res1b.Benefit {
		t.Error("re-running the same realization changed the result")
	}
	if _, err := Run(a, re2, 30); err != nil {
		t.Fatal(err)
	}
}

// TestABMHeapCompactionBoundsGrowth pins the O(N) heap bound: a long,
// high-churn attack (full rescan pushes a fresh entry for nearly every
// candidate after every acceptance) must never grow the potential heap
// past the compaction threshold, and compaction must actually fire.
func TestABMHeapCompactionBoundsGrowth(t *testing.T) {
	inst := randomInstance(t, 400)
	n := inst.N()
	re := inst.SampleRealization(rng.NewSeed(11, 12))
	reg := obs.New()
	a, err := NewABM(DefaultWeights(), WithFullRescan(), WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	st := osn.NewState(re)
	if err := a.Init(st); err != nil {
		t.Fatal(err)
	}
	bound := 3*n + compactSlack
	for i := 0; i < n; i++ {
		u, ok := a.SelectNext(st)
		if !ok {
			break
		}
		out, err := st.Request(u)
		if err != nil {
			t.Fatal(err)
		}
		a.Observe(st, out)
		if got := a.pq.Len(); got > bound {
			t.Fatalf("after request %d: heap length %d exceeds O(N) bound %d", i, got, bound)
		}
	}
	if got := reg.Counter("abm.heap_compactions").Value(); got == 0 {
		t.Fatal("no compaction fired — the growth bound was never stressed")
	}
}

// TestReusableReseedMatchesFresh pins the Reusable contract the cell
// scheduler relies on: Reseed(seed) + Init must reproduce a freshly
// constructed policy with that seed, bit for bit, for every shipped
// policy — including the seed-dependent Random baseline.
func TestReusableReseedMatchesFresh(t *testing.T) {
	inst := randomInstance(t, 500)
	re1 := inst.SampleRealization(rng.NewSeed(21, 22))
	re2 := inst.SampleRealization(rng.NewSeed(23, 24))
	s1, s2 := rng.NewSeed(31, 32), rng.NewSeed(33, 34)
	mk := map[string]func(seed rng.Seed) Reusable{
		"abm": func(rng.Seed) Reusable {
			a, err := NewABM(DefaultWeights())
			if err != nil {
				t.Fatal(err)
			}
			return a
		},
		"maxdegree": func(rng.Seed) Reusable { return NewMaxDegree() },
		"pagerank":  func(rng.Seed) Reusable { return NewPageRank() },
		"random":    func(seed rng.Seed) Reusable { return NewRandom(seed) },
	}
	for name, factory := range mk {
		fresh, err := Run(factory(s2), re2, 40)
		if err != nil {
			t.Fatalf("%s fresh: %v", name, err)
		}
		reused := factory(s1)
		if _, err := Run(reused, re1, 40); err != nil {
			t.Fatalf("%s warmup: %v", name, err)
		}
		reused.Reseed(s2)
		got, err := Run(reused, re2, 40)
		if err != nil {
			t.Fatalf("%s reused: %v", name, err)
		}
		if len(got.Steps) != len(fresh.Steps) {
			t.Fatalf("%s: %d steps reused vs %d fresh", name, len(got.Steps), len(fresh.Steps))
		}
		for i := range got.Steps {
			if got.Steps[i] != fresh.Steps[i] {
				t.Fatalf("%s step %d: reused %+v vs fresh %+v", name, i, got.Steps[i], fresh.Steps[i])
			}
		}
		if got.Benefit != fresh.Benefit {
			t.Fatalf("%s: benefit %v reused vs %v fresh", name, got.Benefit, fresh.Benefit)
		}
	}
}

// TestRunnerPoolsStateAcrossRuns checks a Runner's pooled state yields
// the same results as independent Run calls.
func TestRunnerPoolsStateAcrossRuns(t *testing.T) {
	inst := randomInstance(t, 600)
	var r Runner
	for i := 0; i < 3; i++ {
		re := inst.SampleRealization(rng.NewSeed(uint64(40+i), uint64(50+i)))
		a, err := NewABM(DefaultWeights())
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := r.Run(a, re, 30)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Run(a, re, 30)
		if err != nil {
			t.Fatal(err)
		}
		if pooled.Benefit != plain.Benefit || pooled.Friends != plain.Friends {
			t.Fatalf("run %d: pooled (%v, %d) vs plain (%v, %d)",
				i, pooled.Benefit, pooled.Friends, plain.Benefit, plain.Friends)
		}
	}
}

func TestRunBudgetValidation(t *testing.T) {
	inst := potentialFixture(t)
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(a, inst.FixedRealization(nil, nil), 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := Run(a, inst.FixedRealization(nil, nil), -3); err == nil {
		t.Error("k<0: want error")
	}
}

func TestRunExhaustsCandidates(t *testing.T) {
	inst := potentialFixture(t)
	a, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	// Budget exceeds the user count: the run stops after 4 requests.
	res, err := Run(a, inst.FixedRealization(nil, nil), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Errorf("steps = %d, want 4", len(res.Steps))
	}
}
