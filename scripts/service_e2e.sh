#!/usr/bin/env bash
# service_e2e.sh — end-to-end crash/resume test of the accuserv job service.
#
# The contract under test is the service's headline guarantee: a job's
# result is bit-identical to a local uninterrupted run of the same
# protocol, even when the serving process is SIGKILLed mid-grid and a new
# process resumes the job from its checkpoint journal.
#
#   1. compute the reference digest with `accurun -digest` (no service)
#   2. start accuserv, submit the same protocol as a job over HTTP
#   3. stream progress over SSE, wait until a few cells are durable
#   4. kill -9 the server mid-grid
#   5. restart it on the same data dir; the job resumes automatically
#   6. assert the finished job's digest equals the reference digest
#   7. drain the server with SIGTERM and require a clean exit
#
# Requires: curl, jq. Runs from anywhere inside the repo.
set -euo pipefail

cd "$(git rev-parse --show-toplevel 2>/dev/null || dirname "$0")/"

# Protocol parameters — must stay in lockstep between the accurun
# reference invocation and the submitted job spec.
PRESET=slashdot
SCALE=0.02
CAUTIOUS=10
POLICY=abm
K=30
SEED=7
RUNS=150           # wide enough that the kill lands mid-grid
KILL_AFTER_CELLS=5 # durable cells required before the kill

ADDR=127.0.0.1:8470
BASE="http://$ADDR"
WORK=$(mktemp -d)
DATA="$WORK/data"
JOB=e2e_resume
SERVER_PID=

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

log() { echo "service_e2e: $*"; }
fail() {
    log "FAIL: $*"
    exit 1
}

log "building binaries"
go build -o "$WORK/accuserv" ./cmd/accuserv
go build -o "$WORK/accurun" ./cmd/accurun

log "computing reference digest with accurun (uninterrupted local run)"
"$WORK/accurun" -preset "$PRESET" -scale "$SCALE" -cautious "$CAUTIOUS" \
    -policy "$POLICY" -k "$K" -seed "$SEED" -runs "$RUNS" -digest \
    >"$WORK/reference.txt"
REF_DIGEST=$(awk '/^digest:/ {print $2}' "$WORK/reference.txt")
[ -n "$REF_DIGEST" ] || fail "no digest in accurun output"
log "reference digest: $REF_DIGEST"

start_server() {
    "$WORK/accuserv" -addr "$ADDR" -data "$DATA" -drain-timeout 60s \
        >>"$WORK/server.log" 2>&1 &
    SERVER_PID=$!
    for _ in $(seq 1 100); do
        if curl -sf "$BASE/healthz" >/dev/null 2>&1; then
            return 0
        fi
        kill -0 "$SERVER_PID" 2>/dev/null || {
            cat "$WORK/server.log" >&2
            fail "server exited during startup"
        }
        sleep 0.1
    done
    fail "server did not become healthy"
}

job_field() { # job_field <jq-expr>
    curl -sf "$BASE/api/v1/jobs/$JOB" | jq -r "$1"
}

log "starting accuserv (pid will be SIGKILLed mid-grid)"
start_server

log "submitting job over HTTP"
SUBMIT_STATUS=$(curl -s -o "$WORK/submit.json" -w '%{http_code}' \
    -X POST "$BASE/api/v1/jobs" -H 'Content-Type: application/json' -d @- <<EOF
{
  "id": "$JOB",
  "spec": {
    "preset": "$PRESET",
    "scale": $SCALE,
    "cautious": $CAUTIOUS,
    "policies": [{"name": "$POLICY"}],
    "networks": 1,
    "runs": $RUNS,
    "k": $K,
    "seed": $SEED
  }
}
EOF
)
[ "$SUBMIT_STATUS" = 201 ] || {
    cat "$WORK/submit.json" >&2
    fail "submit returned HTTP $SUBMIT_STATUS"
}

log "streaming progress over SSE"
curl -sN "$BASE/api/v1/jobs/$JOB/events" >"$WORK/sse.log" 2>/dev/null &
SSE_PID=$!

log "waiting for $KILL_AFTER_CELLS durable cells, then SIGKILL"
KILLED=0
for _ in $(seq 1 600); do
    STATE=$(job_field .state)
    DONE=$(job_field .progress.done)
    if [ "$STATE" = done ]; then
        break # grid outran the poll loop; fall through to the check below
    fi
    if [ "${DONE:-0}" -ge "$KILL_AFTER_CELLS" ]; then
        kill -9 "$SERVER_PID"
        wait "$SERVER_PID" 2>/dev/null || true
        SERVER_PID=
        KILLED=1
        log "killed server after $DONE/$RUNS cells"
        break
    fi
    sleep 0.05
done
[ "$KILLED" = 1 ] || fail "never reached $KILL_AFTER_CELLS cells before completion (state $STATE); grid too small for the kill window"
wait "$SSE_PID" 2>/dev/null || true
grep -q 'event: progress' "$WORK/sse.log" || fail "SSE stream carried no progress events"

log "restarting server on the same data dir"
start_server

log "waiting for the recovered job to finish"
for _ in $(seq 1 1200); do
    STATE=$(job_field .state)
    case "$STATE" in
    done) break ;;
    failed | cancelled) fail "recovered job ended $STATE: $(job_field .error)" ;;
    esac
    sleep 0.1
done
[ "$STATE" = done ] || fail "recovered job stuck in state $STATE"

RESUMED=$(job_field .progress.resumed)
[ "${RESUMED:-0}" -gt 0 ] || fail "job finished with progress.resumed=$RESUMED; it did not resume from the checkpoint"

JOB_DIGEST=$(curl -sf "$BASE/api/v1/jobs/$JOB/result" | jq -r .digest)
RECORDS=$(curl -sf "$BASE/api/v1/jobs/$JOB/result" | jq -r .records)
log "job digest:       $JOB_DIGEST ($RECORDS records, $RESUMED resumed)"
[ "$RECORDS" = "$RUNS" ] || fail "records=$RECORDS, want $RUNS"
[ "$JOB_DIGEST" = "$REF_DIGEST" ] || fail "digest mismatch: job $JOB_DIGEST != reference $REF_DIGEST — resumed result is not bit-identical"

log "graceful drain via SIGTERM"
kill -TERM "$SERVER_PID"
DRAIN_OK=0
for _ in $(seq 1 600); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        DRAIN_OK=1
        break
    fi
    sleep 0.1
done
[ "$DRAIN_OK" = 1 ] || fail "server did not exit within 60s of SIGTERM"
wait "$SERVER_PID" 2>/dev/null && RC=0 || RC=$?
SERVER_PID=
[ "$RC" = 0 ] || fail "server exited with code $RC after SIGTERM"

log "PASS: resumed service result is bit-identical to the uninterrupted local run"
