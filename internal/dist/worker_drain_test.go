package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

type trackedBody struct {
	*bytes.Reader
	closed bool
}

func (b *trackedBody) Close() error { b.closed = true; return nil }

func TestDrainCloseConsumesAndCloses(t *testing.T) {
	b := &trackedBody{Reader: bytes.NewReader(make([]byte, 4096))}
	drainClose(b)
	if b.Len() != 0 {
		t.Errorf("drainClose left %d unread bytes", b.Len())
	}
	if !b.closed {
		t.Error("drainClose did not close the body")
	}
}

// TestWorkerReusesConnections pins the drain fix behaviorally: a JSON
// decoder stops at the end of the value and leaves the encoder's
// trailing newline unread, and a body closed with unread bytes makes the
// transport discard the connection. With drainClose in Worker.do, every
// sequential postJSON must arrive over the same keep-alive connection.
func TestWorkerReusesConnections(t *testing.T) {
	var mu sync.Mutex
	conns := make(map[string]int)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns[r.RemoteAddr]++
		mu.Unlock()
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	}))
	defer srv.Close()

	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	w := &Worker{Coordinator: srv.URL, Client: &http.Client{Transport: tr}}
	for i := 0; i < 3; i++ {
		var out map[string]string
		if err := w.postJSON(context.Background(), "/ack", map[string]int{"attempt": i}, &out); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(conns) != 1 {
		t.Fatalf("sequential uploads used %d connections (want 1 reused keep-alive): %v", len(conns), conns)
	}
}
