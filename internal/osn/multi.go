package osn

import (
	"errors"
	"fmt"
)

// View is the read side of an attacker's knowledge that scoring functions
// (e.g. the ABM potential) consume. *State implements it for the
// single-bot attack; BotView implements it per bot in the collaborative
// multi-bot attack (paper reference [5]).
type View interface {
	// Instance returns the problem instance.
	Instance() *Instance
	// Requested reports whether this attacker already requested u.
	Requested(u int) bool
	// IsFriend reports whether u accepted this attacker's request.
	IsFriend(u int) bool
	// IsFOF reports whether u is a friend-of-friend of this attacker.
	IsFOF(u int) bool
	// Mutual returns this attacker's mutual-friend count with u.
	Mutual(u int) int
	// AcceptChance estimates the probability u accepts a request now.
	AcceptChance(u int) float64
	// PosteriorEdgeProb returns the attacker's belief in edge
	// (u, Neighbors(u)[i]) at CSR slot.
	PosteriorEdgeProb(u, v, slot int) float64
}

var _ View = (*State)(nil)

// ErrBadBot is returned for an out-of-range bot index.
var ErrBadBot = errors.New("osn: bot index out of range")

// MultiState is the collaborative multi-socialbot attack state: m bots
// share every observation (revealed neighborhoods, acceptance results)
// but maintain separate friend sets — a cautious user counts mutual
// friends with the requesting bot only. Benefit follows union semantics:
// B_f(u) once if any bot befriends u, B_fof(u) once if u is adjacent to
// some bot's friend and no bot's friend itself.
type MultiState struct {
	inst *Instance
	real *Realization
	bots int

	requested [][]bool  // [bot][user]
	friend    [][]bool  // [bot][user]
	mutual    [][]int32 // [bot][user]

	friendAny []bool // u accepted some bot
	fofAny    []bool // u currently counted as FOF of the collective

	benefit         float64
	requests        int
	friendsTotal    int
	cautiousFriends int
}

// NewMultiState starts a collaborative attack with the given number of
// bots against one realization.
func NewMultiState(re *Realization, bots int) (*MultiState, error) {
	if bots < 1 {
		return nil, fmt.Errorf("osn: bots = %d, must be >= 1", bots)
	}
	n := re.inst.N()
	ms := &MultiState{
		inst:      re.inst,
		real:      re,
		bots:      bots,
		requested: make([][]bool, bots),
		friend:    make([][]bool, bots),
		mutual:    make([][]int32, bots),
		friendAny: make([]bool, n),
		fofAny:    make([]bool, n),
	}
	for b := 0; b < bots; b++ {
		ms.requested[b] = make([]bool, n)
		ms.friend[b] = make([]bool, n)
		ms.mutual[b] = make([]int32, n)
	}
	return ms, nil
}

// Bots returns the number of bots.
func (ms *MultiState) Bots() int { return ms.bots }

// Request sends bot b's friend request to u. Each (bot, user) pair gets
// at most one request; a user may be befriended by several bots (only the
// first acceptance yields the friend benefit).
func (ms *MultiState) Request(b, u int) (Outcome, error) {
	if b < 0 || b >= ms.bots {
		return Outcome{}, fmt.Errorf("%w: %d", ErrBadBot, b)
	}
	if u < 0 || u >= ms.inst.N() {
		return Outcome{}, fmt.Errorf("%w: %d", ErrBadUser, u)
	}
	if ms.requested[b][u] {
		return Outcome{}, fmt.Errorf("%w: bot %d user %d", ErrAlreadyRequested, b, u)
	}
	ms.requested[b][u] = true
	ms.requests++

	out := Outcome{User: u, Cautious: ms.inst.kind[u] == Cautious}
	switch ms.inst.kind[u] {
	case Reckless:
		out.Accepted = ms.real.accepts[u]
	case Cautious:
		out.Accepted = ms.real.AcceptsCautious(u, int(ms.mutual[b][u]) >= ms.inst.theta[u])
	}
	if !out.Accepted {
		return out, nil
	}

	var gain float64
	if !ms.friendAny[u] {
		gain = ms.inst.bFriend[u]
		if ms.fofAny[u] {
			gain -= ms.inst.bFof[u]
			ms.fofAny[u] = false
		}
		ms.friendAny[u] = true
		ms.friendsTotal++
		if out.Cautious {
			ms.cautiousFriends++
		}
	}
	ms.friend[b][u] = true

	// Reveal N(u) to the collective; bot b's mutual counters advance.
	base := ms.inst.g.AdjBase(u)
	for i, v := range ms.inst.g.Neighbors(u) {
		if !ms.real.edgeExists[base+i] {
			continue
		}
		if !ms.friendAny[v] && !ms.fofAny[v] {
			gain += ms.inst.bFof[v]
			ms.fofAny[v] = true
		}
		ms.mutual[b][v]++
	}
	ms.benefit += gain
	out.Gain = gain
	return out, nil
}

// Benefit returns the collective benefit.
func (ms *MultiState) Benefit() float64 { return ms.benefit }

// Requests returns the total number of requests sent by all bots.
func (ms *MultiState) Requests() int { return ms.requests }

// Friends returns the number of users befriended by at least one bot.
func (ms *MultiState) Friends() int { return ms.friendsTotal }

// FriendOfAny reports whether u is already a friend of some bot (its
// friend benefit is spent).
func (ms *MultiState) FriendOfAny(u int) bool { return ms.friendAny[u] }

// CautiousFriends returns the cautious users befriended by at least one
// bot.
func (ms *MultiState) CautiousFriends() int { return ms.cautiousFriends }

// RecomputeBenefit recomputes the union benefit from scratch for
// validating the incremental accounting in tests.
func (ms *MultiState) RecomputeBenefit() float64 {
	var total float64
	for u := 0; u < ms.inst.N(); u++ {
		if ms.friendAny[u] {
			total += ms.inst.bFriend[u]
			continue
		}
		base := ms.inst.g.AdjBase(u)
		for i, w := range ms.inst.g.Neighbors(u) {
			if ms.friendAny[w] && ms.real.edgeExists[base+i] {
				total += ms.inst.bFof[u]
				break
			}
		}
	}
	return total
}

// View returns bot b's read view for scoring. The view reflects the
// shared observations but bot-local friendship and mutual counts.
func (ms *MultiState) View(b int) (*BotView, error) {
	if b < 0 || b >= ms.bots {
		return nil, fmt.Errorf("%w: %d", ErrBadBot, b)
	}
	return &BotView{ms: ms, bot: b}, nil
}

// BotView adapts one bot's perspective of a MultiState to the View
// interface.
type BotView struct {
	ms  *MultiState
	bot int
}

var _ View = (*BotView)(nil)

// Instance implements View.
func (v *BotView) Instance() *Instance { return v.ms.inst }

// Requested implements View (this bot's requests only).
func (v *BotView) Requested(u int) bool { return v.ms.requested[v.bot][u] }

// IsFriend implements View (friendship with this bot).
func (v *BotView) IsFriend(u int) bool { return v.ms.friend[v.bot][u] }

// IsFOF implements View: u is adjacent to one of this bot's friends.
func (v *BotView) IsFOF(u int) bool {
	return !v.ms.friend[v.bot][u] && v.ms.mutual[v.bot][u] > 0
}

// Mutual implements View (this bot's mutual-friend count).
func (v *BotView) Mutual(u int) int { return int(v.ms.mutual[v.bot][u]) }

// AcceptChance implements View.
func (v *BotView) AcceptChance(u int) float64 {
	if v.ms.inst.kind[u] == Cautious {
		if int(v.ms.mutual[v.bot][u]) >= v.ms.inst.theta[u] {
			return v.ms.inst.qHigh[u]
		}
		return v.ms.inst.qLow[u]
	}
	return v.ms.inst.acceptProb[u]
}

// PosteriorEdgeProb implements View: observations are shared — an edge
// incident to ANY bot's friend is revealed to all bots.
func (v *BotView) PosteriorEdgeProb(u, w, slot int) float64 {
	if v.ms.friendAny[u] || v.ms.friendAny[w] {
		if v.ms.real.edgeExists[slot] {
			return 1
		}
		return 0
	}
	return v.ms.inst.edgeProb[slot]
}
