package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix returns the mixed-atomic-access analyzer: a variable (a
// struct field or a package-level var) whose address is passed to a
// sync/atomic function in one place must be accessed through sync/atomic
// everywhere. A plain load or store of the same variable — even in a
// different function — is a data race the race detector only catches if
// the two sites actually collide during a test run; statically, mixing
// the two access modes is always wrong.
//
// The typed atomics (atomic.Int64, atomic.Pointer[T], ...) make this
// mistake unrepresentable and are the preferred fix — the engine's
// netSlot.inst / netSlot.remaining discipline in internal/sim is the
// in-tree model.
func AtomicMix() *Analyzer {
	a := &Analyzer{
		Name: "atomicmix",
		Doc: "flag variables accessed both through sync/atomic and by plain " +
			"load/store; every access must be atomic (prefer the typed atomics)",
	}
	a.Run = func(pass *Pass) error {
		// Pass 1: collect every variable whose address feeds a
		// sync/atomic call, and the exact operand nodes used there.
		atomicAt := make(map[*types.Var]token.Pos) // first atomic site per var
		atomicOperands := make(map[ast.Expr]bool)  // &x operands inside atomic calls
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if !isAtomicFuncCall(pass, call) {
					return true
				}
				ue, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || ue.Op != token.AND {
					return true
				}
				operand := ast.Unparen(ue.X)
				v := referredVar(pass, operand)
				if v == nil {
					return true
				}
				atomicOperands[operand] = true
				if _, ok := atomicAt[v]; !ok || call.Pos() < atomicAt[v] {
					atomicAt[v] = call.Pos()
				}
				return true
			})
		}
		if len(atomicAt) == 0 {
			return nil
		}

		// Pass 2: every other appearance of those variables is a plain
		// access. (Taking the address for a later atomic call was
		// recorded in pass 1; taking it for anything else is already a
		// leak of the raw word and counts as plain.)
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				operand := ast.Unparen(e)
				if atomicOperands[operand] {
					return false // the sanctioned &x inside an atomic call
				}
				v := referredVar(pass, operand)
				if v == nil {
					return true
				}
				if at, ok := atomicAt[v]; ok {
					pass.Reportf(operand.Pos(),
						"%s is accessed with sync/atomic at %s but plainly here; use sync/atomic for every access (or a typed atomic.%s)",
						v.Name(), pass.Fset.Position(at), typedAtomicFor(v.Type()))
					return false
				}
				return true
			})
		}
		return nil
	}
	return a
}

// isAtomicFuncCall reports whether the call invokes a top-level
// sync/atomic function (LoadInt64, StorePointer, AddUint32, CompareAnd
// SwapInt32, ...). Methods of the typed atomics are race-free by
// construction and are not matched.
func isAtomicFuncCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// referredVar resolves an expression to the struct field or
// package-level variable it denotes, or nil for locals and everything
// else. Locals are excluded: a goroutine cannot see another goroutine's
// locals, so mixing access modes on one is dubious style, not a race.
func referredVar(pass *Pass, e ast.Expr) *types.Var {
	var v *types.Var
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := pass.Info.Selections[e]; ok {
			v, _ = s.Obj().(*types.Var)
		} else {
			v, _ = pass.Info.Uses[e.Sel].(*types.Var)
		}
	case *ast.Ident:
		// Uses only: a defining occurrence (the var or field
		// declaration itself) is not an access.
		v, _ = pass.Info.Uses[e].(*types.Var)
	}
	if v == nil {
		return nil
	}
	if v.IsField() {
		return v
	}
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return v // package-level variable
	}
	return nil
}

// typedAtomicFor names the typed atomic matching a raw word type, for
// the diagnostic's suggestion.
func typedAtomicFor(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64, types.Int:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64, types.Uint:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	if _, ok := t.Underlying().(*types.Pointer); ok {
		return "Pointer[T]"
	}
	return "Value"
}
