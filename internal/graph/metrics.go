package graph

import (
	"math"
	"sort"
)

// DegreeStats summarizes the degree distribution of a graph.
type DegreeStats struct {
	Min    int
	Max    int
	Mean   float64
	Median float64
	// P90 and P99 are the 90th and 99th percentile degrees.
	P90 int
	P99 int
	// InBand counts nodes with degree within [BandLo, BandHi], the band
	// the paper draws cautious users from.
	InBand         int
	BandLo, BandHi int
}

// Degrees returns the degree of every node.
func (g *Graph) Degrees() []int {
	out := make([]int, g.n)
	for u := range out {
		out[u] = g.Degree(u)
	}
	return out
}

// ComputeDegreeStats computes summary statistics of the degree
// distribution, counting nodes within the degree band [bandLo, bandHi].
func (g *Graph) ComputeDegreeStats(bandLo, bandHi int) DegreeStats {
	st := DegreeStats{BandLo: bandLo, BandHi: bandHi}
	if g.n == 0 {
		return st
	}
	degs := g.Degrees()
	sort.Ints(degs)
	st.Min = degs[0]
	st.Max = degs[len(degs)-1]
	var sum int64
	for _, d := range degs {
		sum += int64(d)
		if d >= bandLo && d <= bandHi {
			st.InBand++
		}
	}
	st.Mean = float64(sum) / float64(len(degs))
	st.Median = percentileSorted(degs, 0.5)
	st.P90 = int(percentileSorted(degs, 0.9))
	st.P99 = int(percentileSorted(degs, 0.99))
	return st
}

func percentileSorted(sorted []int, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return float64(sorted[len(sorted)-1])
	}
	frac := pos - float64(lo)
	return float64(sorted[lo])*(1-frac) + float64(sorted[lo+1])*frac
}

// LocalClustering returns the local clustering coefficient of u: the
// fraction of pairs of u's neighbors that are themselves connected.
// Nodes with degree < 2 have coefficient 0.
func (g *Graph) LocalClustering(u int) float64 {
	row := g.Neighbors(u)
	d := len(row)
	if d < 2 {
		return 0
	}
	closed := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(int(row[i]), int(row[j])) {
				closed++
			}
		}
	}
	return float64(closed) / float64(d*(d-1)/2)
}

// AverageClustering returns the mean local clustering coefficient over a
// uniform sample of up to maxSample nodes (all nodes if maxSample <= 0 or
// >= N). Sampling keeps the metric affordable on large graphs; the node
// subset is deterministic (stride sampling) so results are reproducible.
func (g *Graph) AverageClustering(maxSample int) float64 {
	if g.n == 0 {
		return 0
	}
	step := 1
	count := g.n
	if maxSample > 0 && maxSample < g.n {
		step = g.n / maxSample
		count = maxSample
	}
	var sum float64
	taken := 0
	for u := 0; u < g.n && taken < count; u += step {
		sum += g.LocalClustering(u)
		taken++
	}
	if taken == 0 {
		return 0
	}
	return sum / float64(taken)
}

// DegreeHistogram returns counts[d] = number of nodes of degree d, up to
// the maximum degree.
func (g *Graph) DegreeHistogram() []int {
	maxDeg := 0
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	counts := make([]int, maxDeg+1)
	for u := 0; u < g.n; u++ {
		counts[g.Degree(u)]++
	}
	return counts
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman 2002): positive when high-degree nodes attach to each
// other (social networks), negative for hub-and-spoke structures. Returns
// 0 for graphs with no edges or zero degree variance.
func (g *Graph) DegreeAssortativity() float64 {
	if g.m == 0 {
		return 0
	}
	// Sums over directed edges (each undirected edge counted twice,
	// which symmetrizes the correlation).
	var sx, sy, sxy, sxx, syy float64
	n := 0
	for u := 0; u < g.n; u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			dv := float64(g.Degree(int(v)))
			sx += du
			sy += dv
			sxy += du * dv
			sxx += du * du
			syy += dv * dv
			n++
		}
	}
	fn := float64(n)
	num := sxy/fn - (sx/fn)*(sy/fn)
	denX := sxx/fn - (sx/fn)*(sx/fn)
	denY := syy/fn - (sy/fn)*(sy/fn)
	if denX <= 0 || denY <= 0 {
		return 0
	}
	return num / math.Sqrt(denX*denY)
}

// NodesInDegreeBand returns all nodes with degree in [lo, hi], ascending.
func (g *Graph) NodesInDegreeBand(lo, hi int) []int {
	var out []int
	for u := 0; u < g.n; u++ {
		if d := g.Degree(u); d >= lo && d <= hi {
			out = append(out, u)
		}
	}
	return out
}
