// Fixture for the wiretag analyzer: //accu:wire structs must carry
// explicit unique json tags and be built with keyed literals.
package sim

// CellKey is flattened into CellLine on the wire.
//
//accu:wire
type CellKey struct {
	Network int `json:"network"`
	Run     int `json:"run"`
}

// CellLine is the journal/wire line format.
//
//accu:wire
type CellLine struct {
	CellKey
	Records int    `json:"records"`
	Payload string // want `exported field Payload has no explicit json tag`
	note    string // unexported: not serialized, clean
}

//accu:wire
type Dup struct {
	A int `json:"x"`
	B int `json:"x"` // want `json tag "x" on field B duplicates field A`
}

//accu:wire
type EmptyName struct {
	C int `json:","` // want `field C has a json tag with an empty name`
}

//accu:wire
type Tagged struct {
	D int `db:"d"` // want `exported field D has no explicit json tag`
}

//accu:wire
type Skipped struct {
	Visible int `json:"visible"`
	Hidden  int `json:"-"` // explicitly excluded: clean
}

// Free is unmarked: wire discipline does not apply.
type Free struct {
	Whatever int
}

func positional() CellLine {
	return CellLine{CellKey{1, 2}, 3, "p", ""} // want `unkeyed composite literal of wire struct CellLine` `unkeyed composite literal of wire struct CellKey`
}

func keyed() CellLine {
	return CellLine{CellKey: CellKey{Network: 1, Run: 2}, Records: 3}
}

func freePositional() Free {
	return Free{1}
}

func allowedPositional() CellKey {
	//accu:allow wiretag -- constructor-local literal, field order pinned by the adjacent test
	return CellKey{1, 2}
}
