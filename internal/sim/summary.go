package sim

import (
	"fmt"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/stats"
)

// Summary aggregates Monte-Carlo records per policy: the final benefit
// and cautious-friend distributions (mean/variance via Welford plus a
// mergeable quantile sketch each), and optionally a benefit-vs-k curve
// sampled at fixed request checkpoints with a per-checkpoint sketch.
// Use its Collect method as the collect callback of Run. Not safe for
// concurrent use (Run invokes collect serially). Memory is O(policies ×
// checkpoints × sketch centroids), independent of the grid size.
type Summary struct {
	checkpoints []int
	order       []string
	final       map[string]*stats.Welford
	cautious    map[string]*stats.Welford
	finalSk     map[string]*stats.Sketch
	cautiousSk  map[string]*stats.Sketch
	curves      map[string]*stats.Series
}

// NewSummary creates a summary; checkpoints may be nil to skip curves.
func NewSummary(checkpoints []int) *Summary {
	return &Summary{
		checkpoints: append([]int(nil), checkpoints...),
		final:       make(map[string]*stats.Welford),
		cautious:    make(map[string]*stats.Welford),
		finalSk:     make(map[string]*stats.Sketch),
		cautiousSk:  make(map[string]*stats.Sketch),
		curves:      make(map[string]*stats.Series),
	}
}

// adopt registers a policy on first sight, preserving first-seen order.
func (s *Summary) adopt(policy string) {
	s.order = append(s.order, policy)
	s.final[policy] = &stats.Welford{}
	s.cautious[policy] = &stats.Welford{}
	s.finalSk[policy] = stats.NewSketch()
	s.cautiousSk[policy] = stats.NewSketch()
	if len(s.checkpoints) > 0 {
		xs := make([]float64, len(s.checkpoints))
		for i, c := range s.checkpoints {
			xs[i] = float64(c)
		}
		s.curves[policy] = stats.NewSeriesSketched(policy, xs)
	}
}

// Collect folds one record into the summary.
func (s *Summary) Collect(rec Record) {
	if _, ok := s.final[rec.Policy]; !ok {
		s.adopt(rec.Policy)
	}
	s.final[rec.Policy].Add(rec.Result.Benefit)
	s.cautious[rec.Policy].Add(float64(rec.Result.CautiousFriends))
	s.finalSk[rec.Policy].Add(rec.Result.Benefit)
	s.cautiousSk[rec.Policy].Add(float64(rec.Result.CautiousFriends))
	if curve := s.curves[rec.Policy]; curve != nil {
		for i, c := range s.checkpoints {
			curve.Add(i, benefitAtStep(rec.Result.Steps, c))
		}
	}
}

// benefitAtStep reads the cumulative benefit after the first c requests
// (short traces hold their final value; empty traces read 0). A
// checkpoint at or before request 0 reads 0 — no requests have been
// sent yet — rather than indexing steps[-1].
func benefitAtStep(steps []core.Step, c int) float64 {
	if len(steps) == 0 || c <= 0 {
		return 0
	}
	if c > len(steps) {
		c = len(steps)
	}
	return steps[c-1].BenefitAfter
}

// Merge folds another summary into this one — the distributed/parallel
// reduction used by the internal/dist coordinator, where each upload
// batch aggregates into a partial summary before merging into the
// master. Accumulators merge through the stats merge machinery
// (stats.Welford.Merge, stats.Series.Merge), so benefit-curve axis
// mismatches fail loudly with stats.ErrMismatchedAxes instead of
// misattributing observations. Policies the receiver has not seen are
// adopted in the other side's first-seen order; their curves are built
// from the receiver's own checkpoints, so both sides must agree on
// curve presence and axes. The other summary is not modified; on error
// the receiver may have partially merged.
func (s *Summary) Merge(o *Summary) error {
	for _, p := range o.order {
		if _, ok := s.final[p]; !ok {
			s.adopt(p)
		}
		s.final[p].Merge(*o.final[p])
		s.cautious[p].Merge(*o.cautious[p])
		if err := s.finalSk[p].Merge(o.finalSk[p]); err != nil {
			return fmt.Errorf("sim: merge summary policy %s: final-benefit sketch: %w", p, err)
		}
		if err := s.cautiousSk[p].Merge(o.cautiousSk[p]); err != nil {
			return fmt.Errorf("sim: merge summary policy %s: cautious-friends sketch: %w", p, err)
		}
		oc, sc := o.curves[p], s.curves[p]
		switch {
		case oc == nil && sc == nil:
		case oc != nil && sc != nil:
			if err := sc.Merge(oc); err != nil {
				return fmt.Errorf("sim: merge summary policy %s: %w", p, err)
			}
		default:
			return fmt.Errorf("sim: merge summary policy %s: benefit curve present on one side only", p)
		}
	}
	return nil
}

// Policies returns the policy names in first-seen order.
func (s *Summary) Policies() []string { return s.order }

// FinalBenefit returns the final-benefit accumulator for a policy (nil if
// the policy produced no records).
func (s *Summary) FinalBenefit(policy string) *stats.Welford { return s.final[policy] }

// CautiousFriends returns the cautious-friend accumulator for a policy.
func (s *Summary) CautiousFriends(policy string) *stats.Welford { return s.cautious[policy] }

// FinalBenefitSketch returns the final-benefit quantile sketch for a
// policy (nil if the policy produced no records). The sketch snapshot is
// byte-identical across any merge order or grid partition of the same
// record set — the property the distributed e2e check relies on.
func (s *Summary) FinalBenefitSketch(policy string) *stats.Sketch { return s.finalSk[policy] }

// CautiousFriendsSketch returns the cautious-friend quantile sketch for
// a policy.
func (s *Summary) CautiousFriendsSketch(policy string) *stats.Sketch { return s.cautiousSk[policy] }

// Curve returns the benefit-vs-k series for a policy, or nil when the
// summary was built without checkpoints.
func (s *Summary) Curve(policy string) *stats.Series { return s.curves[policy] }

// Curves returns all benefit curves in first-seen policy order.
func (s *Summary) Curves() []*stats.Series {
	out := make([]*stats.Series, 0, len(s.order))
	for _, p := range s.order {
		if c := s.curves[p]; c != nil {
			out = append(out, c)
		}
	}
	return out
}
