package stats

import (
	"fmt"
	"strings"
)

// Table is a structured result table: what an experiment reports, in a
// form that renders to fixed-width text and marshals to JSON for external
// plotting.
type Table struct {
	// Name optionally labels the table (e.g. the dataset of one section).
	Name string `json:"name,omitempty"`
	// Header holds the column names.
	Header []string `json:"header"`
	// Rows holds the data cells, pre-formatted.
	Rows [][]string `json:"rows"`
}

// Render renders the table as fixed-width text, prefixed with its name
// when set.
func (t Table) Render() string {
	body := RenderTable(t.Header, t.Rows)
	if t.Name == "" {
		return body
	}
	return "[" + t.Name + "]\n" + body
}

// SeriesTable converts aligned series into a Table: first column is the
// x position, then one "mean ± ci" column per series. All series must
// accumulate over identical x positions: iterating series[0]'s axis
// over a shorter series would panic at At(i) and a longer one would
// silently drop its tail points, so any mismatch fails loudly with
// ErrMismatchedAxes, like Series.Merge.
func SeriesTable(name, xName string, series []*Series) (Table, error) {
	t := Table{Name: name, Header: []string{xName}}
	if len(series) == 0 {
		return t, nil
	}
	for _, s := range series[1:] {
		if err := matchAxis("x", series[0].xs, s.xs); err != nil {
			return Table{}, fmt.Errorf("%w: series %q vs %q: %v", ErrMismatchedAxes, series[0].Label, s.Label, err)
		}
	}
	for _, s := range series {
		t.Header = append(t.Header, s.Label)
	}
	for i := 0; i < series[0].Len(); i++ {
		row := make([]string, 0, len(t.Header))
		row = append(row, trimFloat(series[0].X(i)))
		for _, s := range series {
			acc := s.At(i)
			row = append(row, formatMeanCI(acc.Mean(), acc.CI95()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// GridTable converts a heat-map grid into a Table of cell means.
func GridTable(name string, g *Grid) Table {
	t := Table{Name: name, Header: []string{g.RowLabel + " \\ " + g.ColLabel}}
	for _, c := range g.Cols() {
		t.Header = append(t.Header, trimFloat(c))
	}
	for i, r := range g.Rows() {
		row := make([]string, 0, len(t.Header))
		row = append(row, trimFloat(r))
		for j := range g.Cols() {
			row = append(row, fmt.Sprintf("%.1f", g.At(i, j).Mean()))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RenderTable renders rows as a fixed-width plain-text table with a
// header row, suitable for terminal output of experiment results.
func RenderTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			// A ragged row can carry more cells than the header; the
			// width table only covers header columns, so the surplus
			// cells render unpadded instead of indexing past widths.
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s", w, cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// RenderSeries renders one or more series sharing x positions as a
// table: the first column is x, then one "mean ± ci" column per series.
// Like SeriesTable, mismatched axes fail loudly with ErrMismatchedAxes.
func RenderSeries(xName string, series []*Series) (string, error) {
	if len(series) == 0 {
		return "", nil
	}
	t, err := SeriesTable("", xName, series)
	if err != nil {
		return "", err
	}
	return RenderTable(t.Header, t.Rows), nil
}

// RenderGrid renders a heat-map grid as a table of cell means: rows ×
// columns, with axis labels.
func RenderGrid(g *Grid) string {
	header := make([]string, 0, len(g.Cols())+1)
	header = append(header, fmt.Sprintf("%s \\ %s", g.RowLabel, g.ColLabel))
	for _, c := range g.Cols() {
		header = append(header, trimFloat(c))
	}
	rows := make([][]string, 0, len(g.Rows()))
	for i, r := range g.Rows() {
		row := make([]string, 0, len(header))
		row = append(row, trimFloat(r))
		for j := range g.Cols() {
			row = append(row, fmt.Sprintf("%.1f", g.At(i, j).Mean()))
		}
		rows = append(rows, row)
	}
	return RenderTable(header, rows)
}

// formatMeanCI renders "mean ± ci" with the precision of each part
// adapted to its own magnitude, so small fractions (e.g. Fig. 5's
// request shares) stay visible. Precision used to follow the mean
// alone, which rendered a mean of 5.0 with ci 0.04 as "5.0 ±0.0" —
// indistinguishable from zero uncertainty.
func formatMeanCI(mean, ci float64) string {
	return formatMagnitude(mean) + " ±" + formatMagnitude(ci)
}

// formatMagnitude formats one statistic: three decimals for nonzero
// sub-1 magnitudes, one decimal otherwise.
func formatMagnitude(x float64) string {
	if x != 0 && x < 1 && x > -1 {
		return fmt.Sprintf("%.3f", x)
	}
	return fmt.Sprintf("%.1f", x)
}

// trimFloat formats a float compactly (integers without decimals).
func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}
