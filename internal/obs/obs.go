// Package obs is a lightweight, allocation-conscious metrics layer for
// the simulator's hot paths: counters, gauges and histograms with atomic
// updates, plus a Span phase timer. It exists so the Monte-Carlo engine
// can report what the dirty-set optimisation and the worker fan-out are
// actually doing at scale.
//
// Every instrument is nil-safe: methods on a nil *Registry, *Counter,
// *Gauge, *Histogram or zero Span are no-ops, so instrumented code pays
// only a nil check when metrics are disabled. Lookup (Registry.Counter
// and friends) takes a mutex and may allocate; callers are expected to
// resolve instruments once — at construction or Init time — and hold the
// pointer across the hot loop.
package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 value that can move both ways.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add offsets the gauge by d via a CAS loop. No-op on a nil gauge.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value; 0 on a nil gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bitlen(v) == i, i.e. v in [2^(i-1), 2^i).
// 64 buckets cover the full non-negative int64 range.
const histBuckets = 65

// Histogram aggregates non-negative int64 observations (values or
// nanosecond durations) into power-of-two buckets with exact count, sum,
// min and max. All updates are lock-free and safe for concurrent use.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	// minP1 stores min+1 so the zero value means "no observations yet".
	minP1   atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation. Negative values are clamped to 0.
// No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(uint64(v))].Add(1)
	for {
		old := h.minP1.Load()
		if old != 0 && old-1 <= v {
			break
		}
		if h.minP1.CompareAndSwap(old, v+1) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= v {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// Min returns the smallest observation; 0 with no observations.
func (h *Histogram) Min() int64 {
	if h == nil {
		return 0
	}
	p1 := h.minP1.Load()
	if p1 == 0 {
		return 0
	}
	return p1 - 1
}

// Max returns the largest observation; 0 with no observations.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Count returns the number of observations; 0 on a nil histogram.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; 0 on a nil histogram.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation; 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile estimates the q-quantile (q in [0, 1]) from the power-of-two
// buckets: the answer is exact to within a factor of two. Returns 0 with
// no observations.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i == 0 {
				return 0
			}
			// Bucket i holds values in [2^(i-1), 2^i); report the
			// midpoint, clamped to the observed range so estimates never
			// fall outside [Min, Max].
			lo := int64(1) << (i - 1)
			return min(max(lo+lo/2, h.Min()), h.max.Load())
		}
	}
	return h.max.Load()
}

// Registry is a named collection of instruments. The zero value is not
// usable; call New. A nil *Registry is the disabled state: every lookup
// returns a nil instrument and every recording is a no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (the no-op instrument) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// sortedKeys returns map keys in stable order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
