// Fixture for the atomicmix analyzer: a variable whose address feeds
// sync/atomic must be accessed through sync/atomic everywhere.
package sim

import "sync/atomic"

// mixed is accessed atomically in bump and plainly in snapshot.
var mixed int64

// consistent is only ever accessed atomically.
var consistent int64

// typed uses the typed atomics; methods are race-free by construction.
var typed atomic.Int64

// slot mixes access modes on a struct field across methods.
type slot struct {
	remaining int32
	plain     int32
}

func bump() {
	atomic.AddInt64(&mixed, 1)
	atomic.AddInt64(&consistent, 1)
	typed.Add(1)
}

func snapshot() int64 {
	return mixed // want `mixed is accessed with sync/atomic at .* but plainly here`
}

func consistentLoad() int64 {
	return atomic.LoadInt64(&consistent)
}

func (s *slot) release() int32 {
	return atomic.AddInt32(&s.remaining, -1)
}

func (s *slot) drained() bool {
	return s.remaining == 0 // want `remaining is accessed with sync/atomic at .* but plainly here`
}

func (s *slot) plainOnly() int32 {
	s.plain++
	return s.plain
}

func allowedMix() int64 {
	//accu:allow atomicmix -- fixture: read under external synchronization the analyzer cannot see
	return mixed
}

// localMix mixes modes on a local; locals are invisible to other
// goroutines, so this is style, not a race.
func localMix() int64 {
	var n int64
	atomic.AddInt64(&n, 1)
	return n
}
