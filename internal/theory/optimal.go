package theory

import (
	"fmt"
	"math"

	"github.com/accu-sim/accu/internal/osn"
)

// policyValue computes the exact expected benefit of an adaptive policy
// by recursion over the attacker's belief tree. At each node the belief
// is the weighted set of realizations consistent with the observations of
// the request sequence so far; requesting u partitions the belief by
// observation outcome. choose picks the next request from the belief
// node, or -1 to stop.
type beliefNode struct {
	seq     []int
	members []WeightedRealization
	weight  float64
}

// OptimalValue computes the value of the optimal adaptive policy with
// budget k by exhaustive search over the belief tree (§II-B, the
// benchmark π* of Theorem 1). Exponential in both users and realizations;
// use only on tiny instances.
func OptimalValue(inst *osn.Instance, k int) (float64, error) {
	return searchValue(inst, k, true)
}

// GreedyValue computes the exact value of the adaptive greedy that
// maximizes the true expected marginal gain Δ(u|ω) at every step — the
// w_I = 0 policy analysed by Theorem 1 (the ABM potential is an efficient
// surrogate for this quantity; here we use the exact Δ).
func GreedyValue(inst *osn.Instance, k int) (float64, error) {
	return searchValue(inst, k, false)
}

func searchValue(inst *osn.Instance, k int, optimal bool) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("theory: budget %d must be positive", k)
	}
	all, err := EnumerateRealizations(inst)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, wr := range all {
		total += wr.P
	}
	root := beliefNode{members: all, weight: total}
	return searchNode(inst, root, k, optimal)
}

// searchNode returns the expected *additional* benefit obtainable from
// this belief node with the remaining budget.
func searchNode(inst *osn.Instance, node beliefNode, budget int, optimal bool) (float64, error) {
	if budget == 0 || node.weight == 0 {
		return 0, nil
	}
	requested := make(map[int]bool, len(node.seq))
	for _, u := range node.seq {
		requested[u] = true
	}

	best := math.Inf(-1)
	chosen := -1
	// For the optimal policy we take the max over candidates of the full
	// look-ahead value. For the greedy policy we first pick the candidate
	// with the best one-step Δ, then recurse only on it.
	if !optimal {
		bestDelta := math.Inf(-1)
		for u := 0; u < inst.N(); u++ {
			if requested[u] {
				continue
			}
			d, err := nodeDelta(inst, node, u)
			if err != nil {
				return 0, err
			}
			if d > bestDelta+1e-12 {
				bestDelta = d
				chosen = u
			}
		}
		if chosen < 0 {
			return 0, nil
		}
		v, err := candidateValue(inst, node, chosen, budget, optimal)
		if err != nil {
			return 0, err
		}
		return v, nil
	}

	for u := 0; u < inst.N(); u++ {
		if requested[u] {
			continue
		}
		v, err := candidateValue(inst, node, u, budget, optimal)
		if err != nil {
			return 0, err
		}
		if v > best {
			best = v
			chosen = u
		}
	}
	if chosen < 0 {
		return 0, nil
	}
	return best, nil
}

// candidateValue computes E[gain of requesting u + future value] at the
// belief node.
func candidateValue(inst *osn.Instance, node beliefNode, u, budget int, optimal bool) (float64, error) {
	ext := append(append([]int(nil), node.seq...), u)
	groups := make(map[string]*beliefNode)
	var order []string
	for _, wr := range node.members {
		key, err := observationKey(inst, wr.R, ext)
		if err != nil {
			return 0, err
		}
		g, ok := groups[key]
		if !ok {
			g = &beliefNode{seq: ext}
			groups[key] = g
			order = append(order, key)
		}
		g.members = append(g.members, wr)
		g.weight += wr.P
	}
	var value float64
	for _, key := range order {
		g := groups[key]
		rep := g.members[0].R
		before, err := BenefitOf(rep, node.seq)
		if err != nil {
			return 0, err
		}
		after, err := BenefitOf(rep, ext)
		if err != nil {
			return 0, err
		}
		future, err := searchNode(inst, *g, budget-1, optimal)
		if err != nil {
			return 0, err
		}
		value += (g.weight / node.weight) * (after - before + future)
	}
	return value, nil
}

// nodeDelta computes Δ(u|ω) at a belief node directly from its members.
func nodeDelta(inst *osn.Instance, node beliefNode, u int) (float64, error) {
	ext := append(append([]int(nil), node.seq...), u)
	var num float64
	for _, wr := range node.members {
		before, err := BenefitOf(wr.R, node.seq)
		if err != nil {
			return 0, err
		}
		after, err := BenefitOf(wr.R, ext)
		if err != nil {
			return 0, err
		}
		num += wr.P * (after - before)
	}
	return num / node.weight, nil
}
