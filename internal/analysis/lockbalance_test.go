package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestLockBalance(t *testing.T) {
	analysistest.Run(t, analysis.LockBalance(), analysistest.Fixture{
		Dir:        "testdata/src/lockbalance_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}
