// Fixture for the scratchescape analyzer, typed as internal/sim: pooled
// per-worker scratch must not cross goroutine, channel or shared-variable
// boundaries.
package sim

import (
	"example.test/internal/core"
	"example.test/internal/report"
	"example.test/internal/rng"
)

// scratch mirrors the engine's per-worker pool: a Runner plus cached
// Reusable policies. It classifies as scratch transitively.
type scratch struct {
	runner core.Runner
	pols   []core.Reusable
}

// reusablePolicy is a concrete core.Reusable implementation.
type reusablePolicy struct{ buf []float64 }

func (p *reusablePolicy) Name() string        { return "reusable" }
func (p *reusablePolicy) Reseed(_ rng.Seed)   {}
func (p *reusablePolicy) attack(n int) []byte { return make([]byte, n) }

// record is plain result data: no Runner, no Reusable — freely shareable.
type record struct {
	policy  string
	benefit float64
}

// leaked parks scratch where any goroutine can reach it.
var leaked *scratch

func captureInGoroutine(sc *scratch, done chan struct{}) {
	go func() {
		sc.runner.Run(nil) // want `goroutine captures per-worker scratch sc`
		close(done)
	}()
}

func passToGoroutine(sc *scratch) {
	go workWith(sc) // want `passed to a goroutine`
}

func workWith(*scratch) {}

func sendOnChannel(sc *scratch, ch chan *scratch) {
	ch <- sc // want `sent on a channel`
}

func sendReusable(p core.Reusable, ch chan core.Reusable) {
	ch <- p // want `sent on a channel`
}

func storePackageLevel(sc *scratch) {
	leaked = sc // want `stored in package-level variable leaked`
}

func storeForeignField(sc *scratch, s *report.Sink) {
	s.Payload = sc // want `stored in field Payload`
}

func allowedHandoff(sc *scratch, ch chan *scratch) {
	//accu:allow scratchescape -- fixture: ownership transfer, the sender re-arms with fresh scratch
	ch <- sc
}

// ownScratch declares its scratch inside the goroutine: each goroutine
// owns its own pool, which is the engine's worker idiom.
func ownScratch(done chan struct{}) {
	go func() {
		sc := &scratch{pols: make([]core.Reusable, 4)}
		sc.runner.Run(nil)
		close(done)
	}()
}

// shareRecords sends plain result data; records are not scratch.
func shareRecords(ch chan record, done chan struct{}) {
	go func() {
		ch <- record{policy: "p", benefit: 1}
		close(done)
	}()
}
