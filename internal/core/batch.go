package core

import (
	"fmt"
	"slices"

	"github.com/accu-sim/accu/internal/osn"
)

// BatchSelector is implemented by policies that can propose several
// distinct targets without intermediate observations, enabling the
// parallel-batching attack model (paper reference [4]).
type BatchSelector interface {
	Policy
	// SelectBatch returns up to b distinct unrequested users, scored on
	// the current (pre-batch) state. Fewer (or zero) users may be
	// returned when candidates run out.
	SelectBatch(st *osn.State, b int) []int
}

// SelectBatch implements BatchSelector for ABM: it pops the b freshest
// highest-potential candidates; all are scored against the pre-batch
// state, exactly the information available to a batching attacker.
//
// The returned slice itself is the dedup structure — an
// insertion-ordered set probed linearly. Batches are small (b ≪ n), so
// the scan beats a map allocation on the hot path, and unlike a map it
// can never leak iteration order into selection.
func (a *ABM) SelectBatch(st *osn.State, b int) []int {
	out := make([]int, 0, b)
	for len(out) < b && a.pq.Len() > 0 {
		e := a.pq.pop()
		u := int(e.user)
		if st.Requested(u) || e.version != a.version[u] {
			continue
		}
		if slices.Contains(out, u) {
			continue
		}
		out = append(out, u)
	}
	return out
}

// SelectBatch implements BatchSelector for StaticRank.
func (s *StaticRank) SelectBatch(st *osn.State, b int) []int {
	out := make([]int, 0, b)
	for len(out) < b {
		u, ok := s.SelectNext(st)
		if !ok {
			break
		}
		out = append(out, u)
	}
	return out
}

// SelectBatch implements BatchSelector for Random.
func (r *Random) SelectBatch(st *osn.State, b int) []int {
	out := make([]int, 0, b)
	for len(out) < b {
		u, ok := r.SelectNext(st)
		if !ok {
			break
		}
		out = append(out, u)
	}
	return out
}

// Interface compliance for all shipped policies.
var (
	_ BatchSelector = (*ABM)(nil)
	_ BatchSelector = (*StaticRank)(nil)
	_ BatchSelector = (*Random)(nil)
)

// RunBatched executes a batching attack: requests go out in batches of
// batchSize with no observations inside a batch, up to k requests total
// (the final batch may be smaller). batchSize = 1 reproduces Run exactly.
func RunBatched(p BatchSelector, re *osn.Realization, k, batchSize int) (*Result, error) {
	return (*Runner)(nil).RunBatched(p, re, k, batchSize)
}

// RunBatched executes one batching attack, reusing the runner's pooled
// state.
func (r *Runner) RunBatched(p BatchSelector, re *osn.Realization, k, batchSize int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("%w: k=%d", ErrNoBudget, k)
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("core: batch size %d must be positive", batchSize)
	}
	st := r.state(re)
	if err := p.Init(st); err != nil {
		return nil, fmt.Errorf("core: init %s: %w", p.Name(), err)
	}
	res := &Result{Policy: p.Name(), Steps: make([]Step, 0, k), Journal: &osn.Journal{}}
	for sent := 0; sent < k; {
		want := batchSize
		if rem := k - sent; rem < want {
			want = rem
		}
		batch := p.SelectBatch(st, want)
		if len(batch) == 0 {
			break
		}
		outs, err := st.RequestBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("core: %s batch: %w", p.Name(), err)
		}
		res.Journal.RecordBatch(batch)
		sent += len(batch)
		// Reconstruct the running benefit inside the batch so the trace
		// stays cumulative (the state already holds the post-batch sum).
		running := st.Benefit()
		for _, out := range outs {
			running -= out.Gain
		}
		for _, out := range outs {
			p.Observe(st, out)
			running += out.Gain
			res.Steps = append(res.Steps, Step{
				User:                 out.User,
				Accepted:             out.Accepted,
				Cautious:             out.Cautious,
				Gain:                 out.Gain,
				BenefitAfter:         running,
				CautiousFriendsAfter: st.CautiousFriends(),
			})
		}
	}
	res.Benefit = st.Benefit()
	res.Friends = st.Friends()
	res.CautiousFriends = st.CautiousFriends()
	return res, nil
}
