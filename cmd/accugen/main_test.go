package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	accu "github.com/accu-sim/accu"
)

func TestGenerateStats(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-preset", "slashdot", "-scale", "0.02", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"slashdot", "77360 nodes", "degree:", "band[10,100]", "components:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestGenerateEdgeListFile(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "edges.txt")
	var buf bytes.Buffer
	err := run([]string{"-preset", "dblp", "-scale", "0.01", "-out", tmp}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(tmp)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := accu.ReadEdgeList(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() == 0 || g.M() == 0 {
		t.Errorf("written graph empty: N=%d M=%d", g.N(), g.M())
	}
}

func TestUnknownPreset(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-preset", "orkut"}, &buf); err == nil {
		t.Error("unknown preset: want error")
	}
}

func TestBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "5"}, &buf); err == nil {
		t.Error("scale > 1: want error")
	}
}

func TestBadOutPath(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-preset", "facebook", "-scale", "0.02", "-out", "/nonexistent-dir/x/edges.txt"}, &buf)
	if err == nil {
		t.Error("unwritable path: want error")
	}
}

func TestInspectEdgeListFile(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "in.txt")
	if err := os.WriteFile(tmp, []byte("0 1\n1 2\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-in", tmp}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"loaded:      3 nodes, 3 edges", "assortativity", "degeneracy"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestInspectMissingFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-in", "/no/such/file"}, &buf); err == nil {
		t.Error("missing input: want error")
	}
}
