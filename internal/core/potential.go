package core

import (
	"fmt"

	"github.com/accu-sim/accu/internal/osn"
)

// Weights are the tunable importance of direct vs indirect gains in the
// ABM potential function P(u|ω) = q(u)·(WD·P_D + WI·P_I).
type Weights struct {
	// WD weighs the direct expected benefit P_D.
	WD float64
	// WI weighs the indirect benefit P_I of moving cautious users toward
	// their thresholds.
	WI float64
}

// DefaultWeights returns the paper's balanced setting w_D = w_I = 0.5.
func DefaultWeights() Weights { return Weights{WD: 0.5, WI: 0.5} }

// PolicyName returns the name an ABM policy with these weights reports:
// "greedy" for the pure w_I=0 greedy, "abm(wD=…,wI=…)" otherwise. It lets
// factories label records without constructing a probe policy.
func (w Weights) PolicyName() string {
	if w.WI == 0 {
		return "greedy"
	}
	return fmt.Sprintf("abm(wD=%.2f,wI=%.2f)", w.WD, w.WI)
}

// Validate checks the weights are usable.
func (w Weights) Validate() error {
	if w.WD < 0 || w.WI < 0 {
		return fmt.Errorf("core: weights must be non-negative, got %+v", w)
	}
	if w.WD == 0 && w.WI == 0 {
		return fmt.Errorf("core: at least one weight must be positive")
	}
	return nil
}

// Potential evaluates P(u|ω) for candidate u under the current attack
// state, per §III-A:
//
//	P(u|ω)  = q̂(u)·(w_D·P_D + w_I·P_I)
//	P_D     = B_f(u) − 1_FOF(u)·B_fof(u)
//	          + Σ_{v ∈ N(u)\N(s)} p̂_uv·(1 − 1_FOF(v))·B_fof(v)
//	P_I     = Σ_{v ∈ N(u)∩V_C, θ_v > |N(s)∩N(v)|}
//	          p̂_uv·(B_f(v) − B_fof(v)) / (θ_v − |N(s)∩N(v)|)
//
// where q̂(u) is q(u) for reckless users and, for cautious users, the
// deterministic acceptance indicator (1 iff the threshold is already
// met — any policy knows a below-threshold request would be rejected);
// p̂ is the attacker's posterior edge belief (1/0 once observed, the
// prior otherwise). Friends and already-requested users score 0.
func Potential(st osn.View, u int, w Weights) float64 {
	if st.Requested(u) || st.IsFriend(u) {
		return 0
	}
	inst := st.Instance()

	// q̂(u): q(u) for reckless users; the condition-matched QLow/QHigh
	// for cautious users (exactly the deterministic indicator under the
	// paper's model).
	q := st.AcceptChance(u)
	if q == 0 {
		return 0
	}

	direct := inst.BFriend(u)
	if st.IsFOF(u) {
		direct -= inst.BFof(u)
	}
	var indirect float64

	g := inst.Graph()
	base := g.AdjBase(u)
	for i, v32 := range g.Neighbors(u) {
		v := int(v32)
		if st.IsFriend(v) {
			continue
		}
		p := st.PosteriorEdgeProb(u, v, base+i)
		if p == 0 {
			continue
		}
		if w.WD > 0 && !st.IsFOF(v) {
			direct += p * inst.BFof(v)
		}
		if w.WI > 0 && inst.Kind(v) == osn.Cautious {
			if deficit := inst.Theta(v) - st.Mutual(v); deficit > 0 {
				indirect += p * (inst.BFriend(v) - inst.BFof(v)) / float64(deficit)
			}
		}
	}
	return q * (w.WD*direct + w.WI*indirect)
}
