package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabledIsNoOp(t *testing.T) {
	stop, err := Start(Options{})
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := Start(Options{CPUProfile: cpu, MemProfile: mem})
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile %s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(Options{CPUProfile: filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out")}); err == nil {
		t.Fatal("want error for uncreatable cpu profile path")
	}
}
