package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/serv"
	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/sim/fault"
)

// testSpec is a small grid: 2 networks × 3 runs = 6 cells, two policies.
func testSpec() serv.Spec {
	cautious := 5
	return serv.Spec{
		Preset:   "slashdot",
		Scale:    0.02,
		Cautious: &cautious,
		Policies: []serv.PolicySpec{{Name: "random"}, {Name: "greedy"}},
		Networks: 2,
		Runs:     3,
		K:        8,
		Seed:     7,
		Workers:  1,
	}
}

// localReference runs the spec's grid locally, uninterrupted, and
// returns the canonical digest, record count and summary — the contract
// every distributed execution must reproduce bit for bit.
func localReference(t *testing.T, spec serv.Spec) (string, int, *sim.Summary) {
	t.Helper()
	protocol, factories, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	dig := sim.NewRecordDigest()
	sum := sim.NewSummary(nil)
	records := 0
	if err := sim.Run(context.Background(), protocol, factories, func(rec sim.Record) {
		dig.Collect(rec)
		sum.Collect(rec)
		records++
	}); err != nil {
		t.Fatal(err)
	}
	return dig.Sum(), records, sum
}

// newTestCoordinator builds a coordinator over t.TempDir with a short
// lease TTL and its HTTP server.
func newTestCoordinator(t *testing.T, spec serv.Spec, rangeSize int, ttl time.Duration, reg *obs.Registry) (*Coordinator, *httptest.Server) {
	t.Helper()
	coord, err := New(Config{
		Spec:      spec,
		Dir:       t.TempDir(),
		RangeSize: rangeSize,
		LeaseTTL:  ttl,
		Metrics:   reg,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord.Handler())
	t.Cleanup(func() {
		srv.Close()
		coord.Close()
	})
	return coord, srv
}

func counterValue(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

// TestDistributedDigestMatchesLocal is the package's core contract: a
// grid executed by two workers over HTTP aggregates to the same record
// digest as one uninterrupted local run.
func TestDistributedDigestMatchesLocal(t *testing.T) {
	spec := testSpec()
	wantDigest, wantRecords, wantSummary := localReference(t, spec)

	reg := obs.New()
	coord, srv := newTestCoordinator(t, spec, 2, 30*time.Second, reg)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Coordinator:  srv.URL,
				ID:           []string{"wa", "wb"}[i],
				PollInterval: 10 * time.Millisecond,
				Logf:         t.Logf,
			}
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}

	select {
	case <-coord.Done():
	default:
		t.Fatal("workers returned but grid not done")
	}
	res, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != wantDigest {
		t.Errorf("distributed digest %s, want %s", res.Digest, wantDigest)
	}
	if res.Records != wantRecords {
		t.Errorf("distributed records %d, want %d", res.Records, wantRecords)
	}
	if got := counterValue(reg, "dist.cells_accepted"); got != int64(spec.Networks*spec.Runs) {
		t.Errorf("cells_accepted = %d, want %d", got, spec.Networks*spec.Runs)
	}
	// Both policy aggregates must be populated with one observation per
	// (network, run, policy) record.
	if len(res.Policies) != len(spec.Policies) {
		t.Fatalf("policies = %d, want %d", len(res.Policies), len(spec.Policies))
	}
	for _, pr := range res.Policies {
		if pr.FinalBenefit.Count != int64(spec.Networks*spec.Runs) {
			t.Errorf("%s: final count %d", pr.Policy, pr.FinalBenefit.Count)
		}
		// The quantile sketches must be BYTE-identical to the local
		// uninterrupted run — the reproducibility contract the sketch's
		// canonical coarsening provides and the dist e2e script checks.
		want, err := json.Marshal(wantSummary.FinalBenefitSketch(pr.Policy).Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(pr.FinalBenefitSketch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s: distributed final-benefit sketch diverged from local:\n got %s\nwant %s", pr.Policy, got, want)
		}
	}
	// The status endpoint agrees.
	st := coord.Status()
	if !st.Done || st.Committed != spec.Networks*spec.Runs {
		t.Errorf("status = %+v", st)
	}
}

// TestAbandonedLeaseReassigned pins straggler recovery: a worker that
// leases a range and dies silently must lose it after the TTL, and the
// range must reassign to the next worker.
func TestAbandonedLeaseReassigned(t *testing.T) {
	spec := testSpec()
	reg := obs.New()
	coord, srv := newTestCoordinator(t, spec, 3, 80*time.Millisecond, reg)

	// The doomed worker takes a lease and vanishes without uploading.
	lease, done := coord.Lease("doomed")
	if done || lease == nil {
		t.Fatalf("lease = %v, done = %v", lease, done)
	}

	// A live worker drains the whole grid; it must eventually receive the
	// abandoned range once the lease expires.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &Worker{Coordinator: srv.URL, ID: "live", PollInterval: 20 * time.Millisecond, Logf: t.Logf}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-coord.Done():
	default:
		t.Fatal("grid not done after live worker drained it")
	}
	if got := counterValue(reg, "dist.ranges_reassigned"); got < 1 {
		t.Errorf("ranges_reassigned = %d, want >= 1", got)
	}
	if got := counterValue(reg, "dist.leases_expired"); got < 1 {
		t.Errorf("leases_expired = %d, want >= 1", got)
	}
}

// TestDuplicateCommitRace pins exactly-once aggregation when two workers
// upload the same cells concurrently (the lease-expiry race: a straggler
// finishes just as its reassigned replacement does). Runs under -race in
// CI; the assertions are scheduling-independent: however the two uploads
// interleave, each cell aggregates exactly once and the loser is counted
// as a duplicate.
func TestDuplicateCommitRace(t *testing.T) {
	spec := testSpec()
	wantDigest, wantRecords, _ := localReference(t, spec)
	reg := obs.New()
	_, srv := newTestCoordinator(t, spec, spec.Networks*spec.Runs, time.Minute, reg)

	// Compute every cell's records once, locally, to use as both upload
	// payloads.
	protocol, factories, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[sim.CellKey][]sim.Record)
	if err := sim.Run(context.Background(), protocol, factories, func(rec sim.Record) {
		key := sim.CellKey{Network: rec.Network, Run: rec.Run}
		byCell[key] = append(byCell[key], rec)
	}); err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	enc := json.NewEncoder(&body)
	for key, recs := range byCell {
		if err := enc.Encode(sim.CellLine{CellKey: key, Records: recs}); err != nil {
			t.Fatal(err)
		}
	}

	upload := func(worker string) (UploadResponse, error) {
		resp, err := http.Post(srv.URL+"/api/v1/dist/cells?lease=r0-a1&worker="+worker,
			"application/jsonl", bytes.NewReader(body.Bytes()))
		if err != nil {
			return UploadResponse{}, err
		}
		defer resp.Body.Close()
		var ur UploadResponse
		if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
			return UploadResponse{}, err
		}
		return ur, nil
	}

	var wg sync.WaitGroup
	results := make([]UploadResponse, 2)
	uploadErrs := make([]error, 2)
	for i, worker := range []string{"racer_a", "racer_b"} {
		wg.Add(1)
		go func(i int, worker string) {
			defer wg.Done()
			results[i], uploadErrs[i] = upload(worker)
		}(i, worker)
	}
	wg.Wait()
	for i, err := range uploadErrs {
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}

	cells := spec.Networks * spec.Runs
	gotAccepted := results[0].Accepted + results[1].Accepted
	gotDuplicate := results[0].Duplicate + results[1].Duplicate
	if gotAccepted != cells {
		t.Errorf("accepted %d cells across both uploads, want exactly %d", gotAccepted, cells)
	}
	if gotDuplicate != cells {
		t.Errorf("duplicate %d cells across both uploads, want %d", gotDuplicate, cells)
	}
	if got := counterValue(reg, "dist.cells_duplicate"); got != int64(cells) {
		t.Errorf("dist.cells_duplicate = %d, want %d", got, cells)
	}

	// Exactly-once aggregation: the result matches the local reference
	// even though every cell was uploaded twice.
	var res serv.Result
	hres, err := http.Get(srv.URL + "/api/v1/dist/result")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if err := json.NewDecoder(hres.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Digest != wantDigest {
		t.Errorf("digest %s, want %s", res.Digest, wantDigest)
	}
	if res.Records != wantRecords {
		t.Errorf("records %d, want %d (exactly-once violated)", res.Records, wantRecords)
	}
}

// TestChaosStallDigestStable runs a worker whose generator randomly
// stalls (Stall-only chaos: injected failures with retries would
// legitimately change retried cells' records via the retry seed split)
// and checks the digest still matches the local reference.
func TestChaosStallDigestStable(t *testing.T) {
	spec := testSpec()
	wantDigest, _, _ := localReference(t, spec)
	coord, srv := newTestCoordinator(t, spec, 2, 30*time.Second, obs.New())

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &Worker{
		Coordinator:  srv.URL,
		ID:           "chaotic",
		PollInterval: 10 * time.Millisecond,
		Logf:         t.Logf,
		Mutate: func(p *sim.Protocol) {
			p.Gen = fault.Generator{Inner: p.Gen, Rates: fault.Rates{Stall: 0.5, StallFor: 5 * time.Millisecond}}
		},
	}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := coord.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != wantDigest {
		t.Errorf("chaos digest %s, want %s", res.Digest, wantDigest)
	}
}

// TestCoordinatorResume kills a coordinator after a partial upload and
// resumes from its journal: only the missing cells are handed out, and
// the final digest matches the local reference.
func TestCoordinatorResume(t *testing.T) {
	spec := testSpec()
	wantDigest, wantRecords, _ := localReference(t, spec)
	dir := t.TempDir()

	coord, err := New(Config{Spec: spec, Dir: dir, RangeSize: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	// Upload the first three cells directly, then "crash".
	protocol, factories, err := spec.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	byCell := make(map[sim.CellKey][]sim.Record)
	if err := sim.Run(context.Background(), protocol, factories, func(rec sim.Record) {
		key := sim.CellKey{Network: rec.Network, Run: rec.Run}
		byCell[key] = append(byCell[key], rec)
	}); err != nil {
		t.Fatal(err)
	}
	var partial []sim.CellLine
	for _, key := range []sim.CellKey{{Network: 0, Run: 0}, {Network: 0, Run: 2}, {Network: 1, Run: 1}} {
		partial = append(partial, sim.CellLine{CellKey: key, Records: byCell[key]})
	}
	if _, err := coord.Upload("r0-a1", "w1", partial); err != nil {
		t.Fatal(err)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: three cells are already durable, three remain.
	coord2, err := New(Config{Spec: spec, Dir: dir, Resume: true, RangeSize: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord2.Handler())
	defer srv.Close()
	defer coord2.Close()
	if st := coord2.Status(); st.Committed != 3 {
		t.Fatalf("resumed with %d committed cells, want 3", st.Committed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w := &Worker{Coordinator: srv.URL, ID: "finisher", PollInterval: 10 * time.Millisecond, Logf: t.Logf}
	if err := w.Run(ctx); err != nil {
		t.Fatal(err)
	}
	res, err := coord2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Digest != wantDigest {
		t.Errorf("resumed digest %s, want %s", res.Digest, wantDigest)
	}
	if res.Records != wantRecords {
		t.Errorf("resumed records %d, want %d", res.Records, wantRecords)
	}
}

// TestWorkerFailReleasesLease pins the fast path around the TTL: a
// worker that reports a range failure releases the lease immediately so
// another worker picks it up without waiting for expiry.
func TestWorkerFailReleasesLease(t *testing.T) {
	spec := testSpec()
	coord, _ := newTestCoordinator(t, spec, 3, time.Hour, obs.New())

	lease, done := coord.Lease("flaky")
	if done || lease == nil {
		t.Fatalf("lease = %v, done = %v", lease, done)
	}
	// With an hour-long TTL nothing would expire; the explicit fail must
	// release it.
	coord.Fail(FailRequest{Worker: "flaky", Lease: lease.ID, Error: "injected"})
	lease2, done := coord.Lease("other")
	if done || lease2 == nil {
		t.Fatalf("lease after fail = %v, done = %v", lease2, done)
	}
	if lease2.Start != lease.Start || lease2.End != lease.End {
		t.Errorf("reassigned range [%d,%d), want [%d,%d)", lease2.Start, lease2.End, lease.Start, lease.End)
	}
}
