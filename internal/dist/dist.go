package dist

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/accu-sim/accu/internal/obs"
	"github.com/accu-sim/accu/internal/serv"
	"github.com/accu-sim/accu/internal/sim"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Spec describes the grid to distribute (validated by New).
	Spec serv.Spec
	// Dir holds the coordinator's durable state: Dir/cells.jsonl is the
	// cell journal, interchangeable with a local run's checkpoint file.
	Dir string
	// Resume reopens an existing journal instead of requiring a fresh
	// one, exactly like `accurun -resume`.
	Resume bool
	// RangeSize is the number of cells per lease (default 16).
	RangeSize int
	// LeaseTTL bounds how long a lease may go without durable progress
	// before its range is reassigned (default 30s).
	LeaseTTL time.Duration
	// Metrics receives the dist.* instruments (nil disables).
	Metrics *obs.Registry
	// Logf logs coordinator events (nil disables).
	Logf func(format string, args ...any)
}

const (
	defaultRangeSize = 16
	defaultLeaseTTL  = 30 * time.Second
)

// metrics bundles the coordinator's instruments; every field is nil-safe
// because obs instruments no-op on nil receivers.
type metrics struct {
	rangesAssigned   *obs.Counter
	rangesReassigned *obs.Counter
	leasesExpired    *obs.Counter
	cellsAccepted    *obs.Counter
	cellsDuplicate   *obs.Counter
	cellsRejected    *obs.Counter
	uploads          *obs.Counter
	workersLive      *obs.Gauge
	rangeNS          *obs.Histogram
}

func newMetrics(reg *obs.Registry) metrics {
	return metrics{
		rangesAssigned:   reg.Counter("dist.ranges_assigned"),
		rangesReassigned: reg.Counter("dist.ranges_reassigned"),
		leasesExpired:    reg.Counter("dist.leases_expired"),
		cellsAccepted:    reg.Counter("dist.cells_accepted"),
		cellsDuplicate:   reg.Counter("dist.cells_duplicate"),
		cellsRejected:    reg.Counter("dist.cells_rejected"),
		uploads:          reg.Counter("dist.uploads"),
		workersLive:      reg.Gauge("dist.workers_live"),
		rangeNS:          reg.Histogram("dist.range_ns"),
	}
}

// cellRange is one contiguous slice of the cell keyspace and its lease
// state. A range with remaining == 0 is finished regardless of who
// uploaded its cells.
type cellRange struct {
	start, end  int
	remaining   int
	leaseID     string
	worker      string
	deadline    time.Time
	leasedAt    time.Time
	assignments int
}

// Coordinator owns one distributed grid run: the durable cell journal,
// the lease table, and the running aggregation (digest + summary).
type Coordinator struct {
	cfg     Config
	total   int
	ttl     time.Duration
	journal *sim.CellJournal
	logf    func(string, ...any)
	met     metrics
	// now is the clock, swappable in tests.
	now func() time.Time

	mu       sync.Mutex
	ranges   []*cellRange
	workers  map[string]time.Time // worker ID -> last contact
	summary  *sim.Summary
	digest   *sim.RecordDigest
	records  int
	finished bool
	done     chan struct{} // closed once every cell is durable
	failures []string

	reaperStop chan struct{}
	reaperDone chan struct{}
}

// New opens (or resumes) the journal under cfg.Dir and builds the lease
// table. Already-durable cells are replayed into the aggregation and
// excluded from their ranges' remaining counts, so resuming a killed
// coordinator hands out only the missing work.
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("dist: spec: %w", err)
	}
	if cfg.RangeSize <= 0 {
		cfg.RangeSize = defaultRangeSize
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = defaultLeaseTTL
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	journal, err := sim.OpenCellJournal(filepath.Join(cfg.Dir, "cells.jsonl"), cfg.Resume)
	if err != nil {
		return nil, err
	}
	// Acked cells must survive a coordinator crash: fsync every commit.
	journal.SyncEvery(1)
	if d := journal.Dropped(); d > 0 {
		logf("dist: warning: corrupt journal line discarded %d valid completed cell(s); they will be reassigned", d)
	}

	c := &Coordinator{
		cfg:        cfg,
		total:      cfg.Spec.Networks * cfg.Spec.Runs,
		ttl:        cfg.LeaseTTL,
		journal:    journal,
		logf:       logf,
		met:        newMetrics(cfg.Metrics),
		now:        time.Now,
		workers:    make(map[string]time.Time),
		summary:    sim.NewSummary(nil),
		digest:     sim.NewRecordDigest(),
		done:       make(chan struct{}),
		reaperStop: make(chan struct{}),
		reaperDone: make(chan struct{}),
	}
	journal.Replay(func(rec sim.Record) {
		c.summary.Collect(rec)
		c.digest.Collect(rec)
		c.records++
	})
	for start := 0; start < c.total; start += cfg.RangeSize {
		end := start + cfg.RangeSize
		if end > c.total {
			end = c.total
		}
		r := &cellRange{start: start, end: end}
		for i := start; i < end; i++ {
			if !journal.Done(cellOf(i, cfg.Spec.Runs)) {
				r.remaining++
			}
		}
		c.ranges = append(c.ranges, r)
	}
	if journal.Cells() == c.total {
		c.finished = true
		close(c.done)
	}
	go c.reaper()
	return c, nil
}

// Done returns a channel closed once every cell of the grid is durable.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// reaper expires leases that have gone a full TTL without durable
// progress, releasing their ranges for reassignment.
func (c *Coordinator) reaper() {
	defer close(c.reaperDone)
	tick := time.NewTicker(c.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.reaperStop:
			return
		case <-tick.C:
			c.expireLeases()
		}
	}
}

func (c *Coordinator) expireLeases() {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.ranges {
		if r.leaseID != "" && r.remaining > 0 && now.After(r.deadline) {
			c.logf("dist: lease %s on range [%d,%d) expired (worker %s); reassigning",
				r.leaseID, r.start, r.end, r.worker)
			r.leaseID, r.worker = "", ""
			c.met.leasesExpired.Inc()
		}
	}
	c.updateWorkersLive(now)
}

// updateWorkersLive recomputes the liveness gauge: workers heard from
// within one TTL. Callers hold c.mu.
func (c *Coordinator) updateWorkersLive(now time.Time) {
	live := 0
	for _, last := range c.workers {
		if now.Sub(last) <= c.ttl {
			live++
		}
	}
	c.met.workersLive.Set(float64(live))
}

// Lease hands the next available range to worker. done=true means the
// grid is complete; a nil lease with done=false means everything left is
// currently leased out — poll again.
func (c *Coordinator) Lease(worker string) (lease *Lease, done bool) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[worker] = now
	c.updateWorkersLive(now)
	if c.finished {
		return nil, true
	}
	for i, r := range c.ranges {
		if r.remaining == 0 {
			continue
		}
		if r.leaseID != "" && !now.After(r.deadline) {
			continue
		}
		if r.leaseID != "" {
			// Deadline passed but the reaper has not ticked yet.
			c.met.leasesExpired.Inc()
		}
		r.assignments++
		r.leaseID = fmt.Sprintf("r%d-a%d", i, r.assignments)
		r.worker = worker
		r.deadline = now.Add(c.ttl)
		r.leasedAt = now
		c.met.rangesAssigned.Inc()
		if r.assignments > 1 {
			c.met.rangesReassigned.Inc()
			c.logf("dist: range [%d,%d) reassigned to %s (lease %s, attempt %d)",
				r.start, r.end, worker, r.leaseID, r.assignments)
		}
		return &Lease{
			ID:    r.leaseID,
			Start: r.start,
			End:   r.end,
			TTLMS: c.ttl.Milliseconds(),
		}, false
	}
	return nil, false
}

// Upload commits a batch of cells. Cells are accepted from any
// uploader — current lease holder, expired lease holder, or nobody in
// particular — because the journal dedups by key and the first durable
// commit wins. Accepted cells are fsynced before this returns (the
// journal runs SyncEvery(1)), and the matching lease's deadline is
// extended, so durable progress keeps a slow worker's lease alive.
func (c *Coordinator) Upload(leaseID, worker string, lines []sim.CellLine) (UploadResponse, error) {
	now := c.now()
	runs := c.cfg.Spec.Runs
	var resp UploadResponse
	batch := sim.NewSummary(nil)
	batchRecords := 0

	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[worker] = now
	c.updateWorkersLive(now)
	c.met.uploads.Inc()
	for _, cl := range lines {
		if cl.Network < 0 || cl.Network >= c.cfg.Spec.Networks || cl.Run < 0 || cl.Run >= runs {
			resp.Rejected++
			continue
		}
		if c.journal.Done(cl.CellKey) {
			resp.Duplicate++
			continue
		}
		if err := c.journal.Commit(cl.CellKey, cl.Records); err != nil { //accu:allow lockedio -- fsync-before-ack: the cell must be durable before the upload response acks it
			// The cell is not durable; the worker must not treat it as
			// committed. Abort the whole batch.
			c.met.cellsAccepted.Add(int64(resp.Accepted))
			c.met.cellsDuplicate.Add(int64(resp.Duplicate))
			c.met.cellsRejected.Add(int64(resp.Rejected))
			return resp, fmt.Errorf("dist: commit cell (%d,%d): %w", cl.Network, cl.Run, err)
		}
		resp.Accepted++
		for _, rec := range cl.Records {
			batch.Collect(rec)
			c.digest.Collect(rec)
			batchRecords++
		}
		r := c.ranges[c.rangeIndex(indexOf(cl.CellKey, runs))]
		r.remaining--
		if r.remaining == 0 && r.leaseID != "" {
			c.met.rangeNS.Observe(now.Sub(r.leasedAt).Nanoseconds())
			r.leaseID, r.worker = "", ""
		}
	}
	// Fold the batch into the master through the merge machinery — the
	// same reduction a tree of coordinators would use.
	if batchRecords > 0 {
		if err := c.summary.Merge(batch); err != nil {
			return resp, fmt.Errorf("dist: merge upload batch: %w", err)
		}
		c.records += batchRecords
	}
	c.met.cellsAccepted.Add(int64(resp.Accepted))
	c.met.cellsDuplicate.Add(int64(resp.Duplicate))
	c.met.cellsRejected.Add(int64(resp.Rejected))
	if resp.Duplicate > 0 {
		c.logf("dist: upload from %s (lease %s): %d duplicate cell(s) dropped", worker, leaseID, resp.Duplicate)
	}
	// Durable progress is the heartbeat: extend the matching lease.
	if resp.Accepted > 0 {
		for _, r := range c.ranges {
			if r.leaseID == leaseID {
				r.deadline = now.Add(c.ttl)
				break
			}
		}
	}
	if !c.finished && c.journal.Cells() == c.total {
		c.finished = true
		close(c.done)
		c.logf("dist: grid complete: %d cells, %d records", c.total, c.records)
	}
	resp.Done = c.finished
	return resp, nil
}

// rangeIndex locates the range containing cell index ci.
func (c *Coordinator) rangeIndex(ci int) int { return ci / c.cfg.RangeSize }

// Fail releases a lease a worker reports it cannot finish, so the range
// reassigns immediately instead of waiting out the TTL.
func (c *Coordinator) Fail(req FailRequest) {
	now := c.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workers[req.Worker] = now
	c.updateWorkersLive(now)
	c.failures = append(c.failures, fmt.Sprintf("worker %s lease %s: %s", req.Worker, req.Lease, req.Error))
	for _, r := range c.ranges {
		if r.leaseID == req.Lease {
			c.logf("dist: worker %s failed lease %s on range [%d,%d): %s",
				req.Worker, req.Lease, r.start, r.end, req.Error)
			r.leaseID, r.worker = "", ""
			return
		}
	}
}

// Status snapshots coordinator state for polling.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Total:     c.total,
		Committed: c.journal.Cells(),
		Records:   c.records,
		Done:      c.finished,
	}
	for w := range c.workers {
		st.Workers = append(st.Workers, w)
	}
	sort.Strings(st.Workers)
	for _, r := range c.ranges {
		st.Ranges = append(st.Ranges, RangeStatus{
			Start:     r.start,
			End:       r.end,
			Remaining: r.remaining,
			Worker:    r.worker,
			Lease:     r.leaseID,
		})
	}
	return st
}

// Result assembles the final payload once the grid is complete —
// structurally identical to a job-service Result, with the digest
// bit-identical to a local run of the same spec.
func (c *Coordinator) Result() (*serv.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finished {
		return nil, fmt.Errorf("dist: grid incomplete: %d/%d cells", c.journal.Cells(), c.total)
	}
	res := serv.BuildResult(c.records, c.digest, c.summary)
	if len(c.failures) > 0 {
		res.Warning = fmt.Sprintf("%d worker failure(s) before completion; last: %s",
			len(c.failures), c.failures[len(c.failures)-1])
	}
	return res, nil
}

// Spec returns the grid description workers build their protocol from.
func (c *Coordinator) Spec() serv.Spec { return c.cfg.Spec }

// Close stops the reaper and closes the journal. The coordinator must
// not serve requests after Close.
func (c *Coordinator) Close() error {
	close(c.reaperStop)
	<-c.reaperDone
	return c.journal.Close()
}
