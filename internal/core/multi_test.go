package core

import (
	"testing"

	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

func TestRunMultiSingleBotMatchesFullRescanABM(t *testing.T) {
	// One bot with the O(N)-scan runner must reproduce the sequential
	// ABM (both are exact greedy maximizers of the same potential).
	inst := randomInstance(t, 1100)
	re := inst.SampleRealization(rng.NewSeed(11, 11))
	const k = 40
	multi, err := RunMulti(re, 1, k, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	abm, err := NewABM(DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run(abm, re, k)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Benefit != single.Benefit {
		t.Errorf("benefits differ: multi %v vs single %v", multi.Benefit, single.Benefit)
	}
	for i := range single.Steps {
		if multi.Steps[i].User != single.Steps[i].User {
			t.Fatalf("step %d: multi picked %d, single picked %d",
				i, multi.Steps[i].User, single.Steps[i].User)
		}
	}
}

func TestRunMultiBudgetSplit(t *testing.T) {
	inst := randomInstance(t, 1200)
	re := inst.SampleRealization(rng.NewSeed(12, 12))
	res, err := RunMulti(re, 4, 40, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 40 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	counts := map[int]int{}
	for _, s := range res.Steps {
		counts[s.Bot]++
	}
	for b := 0; b < 4; b++ {
		if counts[b] != 10 {
			t.Errorf("bot %d sent %d requests, want 10", b, counts[b])
		}
	}
	if res.Bots != 4 || res.Benefit <= 0 {
		t.Errorf("result: %+v", res)
	}
}

func TestRunMultiNoDuplicateFriendSpending(t *testing.T) {
	inst := randomInstance(t, 1300)
	re := inst.SampleRealization(rng.NewSeed(13, 13))
	res, err := RunMulti(re, 3, 45, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	// No user is requested after the collective already befriended it.
	friends := map[int]bool{}
	for _, s := range res.Steps {
		if friends[s.User] {
			t.Fatalf("user %d requested after being befriended", s.User)
		}
		if s.Accepted {
			friends[s.User] = true
		}
	}
}

func TestRunMultiValidation(t *testing.T) {
	inst := potentialFixture(t)
	re := inst.FixedRealization(nil, nil)
	if _, err := RunMulti(re, 2, 0, DefaultWeights()); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := RunMulti(re, 0, 5, DefaultWeights()); err == nil {
		t.Error("bots=0: want error")
	}
	if _, err := RunMulti(re, 2, 5, Weights{WD: -1}); err == nil {
		t.Error("bad weights: want error")
	}
}

func TestRunMultiMoreBotsCrackCautiousSlower(t *testing.T) {
	// Star of reckless users around a cautious hub with θ=3: one bot
	// cracks it with budget 4; four bots sharing the same budget cannot
	// (each bot has at most 1 mutual friend).
	inst := thresholdStar(t, 9, 3)
	re := inst.FixedRealization(nil, nil)
	one, err := RunMulti(re, 1, 4, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunMulti(re, 4, 4, DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	if one.CautiousFriends != 1 {
		t.Errorf("single bot cautious friends = %d, want 1", one.CautiousFriends)
	}
	if four.CautiousFriends != 0 {
		t.Errorf("four bots cautious friends = %d, want 0 (thresholds are per-bot)", four.CautiousFriends)
	}
}

// thresholdStar builds n-1 reckless users all adjacent to cautious hub
// n-1 with threshold theta.
func thresholdStar(t *testing.T, n, theta int) *osn.Instance {
	t.Helper()
	edges := make([][2]int, 0, n-1)
	hub := n - 1
	for u := 0; u < hub; u++ {
		edges = append(edges, [2]int{u, hub})
	}
	g := buildGraph(t, n, edges)
	p := uniformParams(n)
	p.Kind[hub] = osn.Cautious
	p.AcceptProb[hub] = 0
	p.Theta[hub] = theta
	p.BFriend[hub] = 50
	inst, err := osn.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}
