package sim

import (
	"context"
	"fmt"
	"testing"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/gen"
	"github.com/accu-sim/accu/internal/osn"
	"github.com/accu-sim/accu/internal/rng"
)

// benchProtocol is a small but non-trivial grid: enough cells to exercise
// the queue, small enough for -benchtime to converge quickly.
func benchProtocol(networks, runs, workers int) Protocol {
	s := osn.DefaultSetup()
	s.NumCautious = 5
	return Protocol{
		Gen:      gen.ErdosRenyi{N: 300, M: 3000},
		Setup:    s,
		Networks: networks,
		Runs:     runs,
		K:        20,
		Seed:     rng.NewSeed(7, 11),
		Workers:  workers,
	}
}

// BenchmarkCellScheduler measures scheduler throughput on the two
// interesting grid shapes — single-network (which the old per-network
// fan-out serialized) and wide — across worker counts. The metric that
// matters is ns/op scaling down as workers go up, on both shapes.
func BenchmarkCellScheduler(b *testing.B) {
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		b.Fatal(err)
	}
	for _, shape := range []struct{ networks, runs int }{{1, 8}, {4, 2}} {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("networks-%d/workers-%d", shape.networks, workers)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				p := benchProtocol(shape.networks, shape.runs, workers)
				for i := 0; i < b.N; i++ {
					cells := 0
					if err := Run(context.Background(), p, factories, func(Record) { cells++ }); err != nil {
						b.Fatal(err)
					}
					if want := p.Networks * p.Runs * len(factories); cells != want {
						b.Fatalf("cells = %d, want %d", cells, want)
					}
				}
			})
		}
	}
}

// BenchmarkCellSchedulerAllocs isolates the per-cell allocation cost the
// worker-scratch pooling (core.Runner + Reusable policies) removes: one
// network instance, many cells, single worker so the numbers are stable.
func BenchmarkCellSchedulerAllocs(b *testing.B) {
	factories, err := DefaultFactories(core.DefaultWeights())
	if err != nil {
		b.Fatal(err)
	}
	p := benchProtocol(1, 16, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Run(context.Background(), p, factories, func(Record) {}); err != nil {
			b.Fatal(err)
		}
	}
}
