package gen

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/rng"
)

// Fixed wraps a pre-built graph as a Generator: every sample is the same
// network. Use it to run the experiment harness against real data (e.g.
// an actual SNAP edge list) instead of the synthetic stand-ins — the
// §IV protocol still re-randomizes edge probabilities, acceptance
// probabilities and cautious selection per network index via the setup
// seed.
type Fixed struct {
	// G is the graph returned by every Generate call.
	G *graph.Graph
	// Label names the source for logs (e.g. the file path).
	Label string
}

var _ Generator = Fixed{}

// Name implements Generator.
func (f Fixed) Name() string {
	if f.Label != "" {
		return fmt.Sprintf("fixed(%s)", f.Label)
	}
	return fmt.Sprintf("fixed(n=%d,m=%d)", f.G.N(), f.G.M())
}

// Generate implements Generator.
func (f Fixed) Generate(rng.Seed) (*graph.Graph, error) {
	if f.G == nil {
		return nil, fmt.Errorf("%w: fixed generator with nil graph", ErrBadParam)
	}
	return f.G, nil
}

// LoadEdgeList reads a SNAP-style edge-list file into a Fixed generator.
func LoadEdgeList(path string) (Fixed, error) {
	f, err := os.Open(path)
	if err != nil {
		return Fixed{}, fmt.Errorf("gen: open edge list: %w", err)
	}
	defer func() { _ = f.Close() }() // read-only close error is harmless
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return Fixed{}, fmt.Errorf("gen: parse %s: %w", path, err)
	}
	return Fixed{G: g, Label: filepath.Base(path)}, nil
}
