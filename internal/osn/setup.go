package osn

import (
	"errors"
	"fmt"
	"math"

	"github.com/accu-sim/accu/internal/graph"
	"github.com/accu-sim/accu/internal/rng"
)

// ErrNotEnoughCandidates is returned when the degree band does not contain
// enough independent nodes for the requested cautious-user count.
var ErrNotEnoughCandidates = errors.New("osn: not enough cautious-user candidates")

// Setup describes the experiment-protocol parameters of §IV-A used to
// dress a bare graph into an ACCU instance.
type Setup struct {
	// NumCautious is the number of cautious users to select (paper: 100).
	NumCautious int
	// DegreeLo and DegreeHi bound the degree band cautious users are
	// drawn from (paper: [10, 100]).
	DegreeLo, DegreeHi int
	// ThetaFraction sets θ(v) = max(1, round(ThetaFraction·deg(v)))
	// (paper: 0.3).
	ThetaFraction float64
	// BFriendReckless is B_f(u) for reckless users (paper: 2).
	BFriendReckless float64
	// BFriendCautious is B_f(v) for cautious users (paper: 50 default).
	BFriendCautious float64
	// BFof is B_fof(u) for all users (paper: 1).
	BFof float64
	// QLowCautious and QHighCautious select the generalized §III-B
	// acceptance model for cautious users: accept with QLowCautious
	// below threshold and QHighCautious at/above. Both zero selects the
	// paper's deterministic model (QLow=0, QHigh=1).
	QLowCautious, QHighCautious float64
}

// DefaultSetup returns the §IV-A parameters.
func DefaultSetup() Setup {
	return Setup{
		NumCautious:     100,
		DegreeLo:        10,
		DegreeHi:        100,
		ThetaFraction:   0.3,
		BFriendReckless: 2,
		BFriendCautious: 50,
		BFof:            1,
	}
}

// Build dresses the graph into an Instance following the experiment
// protocol: edge-existence probabilities and reckless acceptance
// probabilities are drawn uniformly from [0, 1); cautious users are drawn
// from the degree band, iteratively, skipping any node adjacent to an
// already-selected cautious user so that V_C is an independent set.
func (s Setup) Build(g *graph.Graph, seed rng.Seed) (*Instance, error) {
	if s.NumCautious < 0 {
		return nil, fmt.Errorf("osn: NumCautious %d must be >= 0", s.NumCautious)
	}
	if s.ThetaFraction <= 0 || s.ThetaFraction > 1 {
		return nil, fmt.Errorf("osn: ThetaFraction %v not in (0, 1]", s.ThetaFraction)
	}
	if s.BFriendReckless < s.BFof || s.BFriendCautious < s.BFof {
		return nil, fmt.Errorf("%w: B_f (%v, %v) below B_fof %v",
			ErrBadBenefit, s.BFriendReckless, s.BFriendCautious, s.BFof)
	}
	n := g.N()
	r := seed.Split("osn-setup").Rand()

	// Cautious selection: shuffle the degree band, greedily take
	// non-adjacent nodes.
	band := g.NodesInDegreeBand(s.DegreeLo, s.DegreeHi)
	rng.Shuffle(r, band)
	isCautious := make([]bool, n)
	blocked := make([]bool, n)
	selected := 0
	for _, u := range band {
		if selected == s.NumCautious {
			break
		}
		if blocked[u] {
			continue
		}
		isCautious[u] = true
		selected++
		for _, v := range g.Neighbors(u) {
			blocked[v] = true
		}
		blocked[u] = true
	}
	if selected < s.NumCautious {
		return nil, fmt.Errorf("%w: want %d, found %d in degree band [%d, %d]",
			ErrNotEnoughCandidates, s.NumCautious, selected, s.DegreeLo, s.DegreeHi)
	}

	qLow, qHigh := s.QLowCautious, s.QHighCautious
	if qLow == 0 && qHigh == 0 {
		qHigh = 1 // the paper's deterministic model
	}
	if qLow < 0 || qHigh > 1 || qLow > qHigh {
		return nil, fmt.Errorf("%w: QLowCautious=%v QHighCautious=%v", ErrBadProbability, qLow, qHigh)
	}
	p := Params{
		Kind:       make([]Kind, n),
		AcceptProb: make([]float64, n),
		Theta:      make([]int, n),
		BFriend:    make([]float64, n),
		BFof:       make([]float64, n),
		EdgeProb:   make([]float64, g.AdjSize()),
		QLow:       make([]float64, n),
		QHigh:      make([]float64, n),
	}
	for u := 0; u < n; u++ {
		p.BFof[u] = s.BFof
		p.QHigh[u] = 1
		if isCautious[u] {
			p.Kind[u] = Cautious
			p.Theta[u] = thetaFor(g.Degree(u), s.ThetaFraction)
			p.BFriend[u] = s.BFriendCautious
			p.QLow[u] = qLow
			p.QHigh[u] = qHigh
			continue
		}
		p.Kind[u] = Reckless
		p.AcceptProb[u] = r.Float64()
		p.BFriend[u] = s.BFriendReckless
	}
	// Symmetric uniform edge probabilities.
	g.EachEdge(func(u, v int) bool {
		pe := r.Float64()
		p.EdgeProb[g.IndexOf(u, v)] = pe
		p.EdgeProb[g.IndexOf(v, u)] = pe
		return true
	})
	return NewInstance(g, p)
}

// thetaFor computes the cautious threshold for a node of the given degree.
func thetaFor(degree int, fraction float64) int {
	th := int(math.Round(fraction * float64(degree)))
	if th < 1 {
		th = 1
	}
	return th
}
