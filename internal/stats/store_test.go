package stats

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeRows creates a store at path holding rows, with small blocks so
// multi-block paths are exercised.
func writeRows(t *testing.T, path string, meta map[string]string, rows []StoreRecord, blockRows int) {
	t.Helper()
	w, err := CreateStore(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	if blockRows > 0 {
		w.BlockRows = blockRows
	}
	for _, r := range rows {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// readRows scans every row back.
func readRows(t *testing.T, path string) ([]StoreRecord, *StoreReader) {
	t.Helper()
	r, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	var out []StoreRecord
	if err := r.Scan(func(rec StoreRecord) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	return out, r
}

func testRows(n int) []StoreRecord {
	rng := rand.New(rand.NewSource(31))
	policies := []string{"abm", "greedy", "random"}
	rows := make([]StoreRecord, n)
	for i := range rows {
		rows[i] = StoreRecord{
			Policy:          policies[i%len(policies)],
			Network:         i % 7,
			Run:             i / 7,
			Benefit:         math.Trunc(rng.Float64()*1e6) / 100,
			CautiousFriends: rng.Intn(12),
		}
	}
	return rows
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.acs")
	rows := testRows(1000)
	meta := map[string]string{"preset": "slashdot", "k": "20"}
	writeRows(t, path, meta, rows, 64) // ~16 blocks

	got, r := readRows(t, path)
	if len(got) != len(rows) {
		t.Fatalf("rows = %d, want %d", len(got), len(rows))
	}
	for i := range rows {
		if got[i] != rows[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], rows[i])
		}
	}
	if r.Truncated() {
		t.Error("clean store reported truncated")
	}
	if r.Meta()["preset"] != "slashdot" || r.Meta()["k"] != "20" {
		t.Errorf("meta = %v", r.Meta())
	}
}

func TestStoreEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.acs")
	writeRows(t, path, nil, nil, 0)
	got, r := readRows(t, path)
	if len(got) != 0 || r.Truncated() {
		t.Errorf("rows=%d truncated=%v", len(got), r.Truncated())
	}
}

func TestStoreNoClobber(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.acs")
	writeRows(t, path, nil, testRows(3), 0)
	if _, err := CreateStore(path, nil); err == nil {
		t.Error("overwriting an existing store should fail")
	}
}

func TestStoreAppendAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.acs")
	w, err := CreateStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(StoreRecord{Policy: "abm"}); err == nil {
		t.Error("append after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestStoreTornTail simulates a writer killed mid-block: the truncated
// final block must be dropped cleanly, all earlier blocks delivered,
// and the loss surfaced via Truncated.
func TestStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.acs")
	rows := testRows(300)
	writeRows(t, path, nil, rows, 100) // 3 full blocks

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Truncating into the header is not a torn tail — the file never
	// finished being created — and fails at open.
	headless := filepath.Join(dir, "headless.acs")
	if err := os.WriteFile(headless, data[:2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(headless); err == nil {
		t.Error("header-truncated store accepted")
	}

	for _, cut := range []int{1, 7, len(data)/2 + 3} {
		torn := filepath.Join(dir, "cut.acs")
		os.Remove(torn)
		if cut >= len(data) {
			continue
		}
		if err := os.WriteFile(torn, data[:len(data)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := OpenStore(torn)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		n := 0
		if err := r.Scan(func(StoreRecord) error { n++; return nil }); err != nil {
			t.Fatalf("cut %d: scan: %v", cut, err)
		}
		if !r.Truncated() {
			t.Errorf("cut %d: torn tail not reported", cut)
		}
		if n%100 != 0 || n >= 300 {
			t.Errorf("cut %d: %d rows survived; want a whole-block prefix", cut, n)
		}
		r.Close()
	}
}

// TestStoreCorruptBlock flips a payload byte: the CRC must catch it and
// end the scan at the last good block.
func TestStoreCorruptBlock(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.acs")
	writeRows(t, path, nil, testRows(200), 100)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)-5] ^= 0xff // inside the final block's payload
	badPath := filepath.Join(dir, "bad.acs")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenStore(badPath)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := r.Scan(func(StoreRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 100 || !r.Truncated() {
		t.Errorf("rows=%d truncated=%v; want 100 rows and truncated", n, r.Truncated())
	}
	r.Close()
}

func TestStoreBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.acs")
	if err := os.WriteFile(path, []byte("hello world"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(path); err == nil {
		t.Error("non-store file accepted")
	}
}

// TestStoreScanFnError pins that a callback error aborts the scan and
// propagates verbatim.
func TestStoreScanFnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.acs")
	writeRows(t, path, nil, testRows(10), 4)
	r, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want := os.ErrInvalid
	n := 0
	err = r.Scan(func(StoreRecord) error {
		n++
		if n == 3 {
			return want
		}
		return nil
	})
	if err != want || n != 3 {
		t.Errorf("err=%v n=%d", err, n)
	}
}

// TestStoreSketchFromScan ties store and sketch together: quantiles
// computed by streaming the store must be byte-identical to quantiles
// sketched live during collection — the query path's core contract.
func TestStoreSketchFromScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.acs")
	rows := testRows(2000)
	live := NewSketch()
	for _, r := range rows {
		live.Add(r.Benefit)
	}
	writeRows(t, path, nil, rows, 256)
	r, err := OpenStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	replayed := NewSketch()
	if err := r.Scan(func(rec StoreRecord) error {
		replayed.Add(rec.Benefit)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got, want := sketchBytes(t, replayed), sketchBytes(t, live); got != want {
		t.Errorf("replayed sketch differs from live sketch")
	}
}
