package exp

import (
	"context"
	"fmt"

	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
)

// Fig3 reproduces Fig. 3: the average marginal benefit of each friend
// request under ABM, broken down into gains from cautious-targeted and
// reckless-targeted requests. Request indices are bucketed to ten groups
// (the paper plots per-request curves; buckets keep the table readable
// while preserving the shape — the cautious-gain concentration region).
func Fig3(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	abm, err := sim.ABMFactory(cfg.Weights, cfg.abmOptions()...)
	if err != nil {
		return nil, err
	}
	cps := checkpoints(cfg.K)
	xs := make([]float64, len(cps))
	for i, c := range cps {
		xs[i] = float64(c)
	}

	var tables []stats.Table
	var notes []string
	for _, name := range cfg.Datasets {
		g, _, err := cfg.generator(name)
		if err != nil {
			return nil, err
		}
		total := stats.NewSeries("avg-gain", xs)
		cautious := stats.NewSeries("from-cautious", xs)
		reckless := stats.NewSeries("from-reckless", xs)
		protocol := cfg.protocol(g, cfg.setup(), cfg.Seed.Split("fig3-"+name))
		err = cfg.run(ctx, "fig3-"+name, protocol, []sim.PolicyFactory{abm}, func(rec sim.Record) {
			lo := 0
			for i, hi := range cps {
				var sumT, sumC, sumR float64
				n := 0
				for s := lo; s < hi && s < len(rec.Result.Steps); s++ {
					step := rec.Result.Steps[s]
					sumT += step.Gain
					if step.Cautious {
						sumC += step.Gain
					} else {
						sumR += step.Gain
					}
					n++
				}
				if n > 0 {
					total.Add(i, sumT/float64(n))
					cautious.Add(i, sumC/float64(n))
					reckless.Add(i, sumR/float64(n))
				}
				lo = hi
			}
		})
		if err != nil {
			return nil, fmt.Errorf("exp: fig3 %s: %w", name, err)
		}
		tab, err := stats.SeriesTable(name, "k", []*stats.Series{total, cautious, reckless})
		if err != nil {
			return nil, fmt.Errorf("exp: fig3 %s: %w", name, err)
		}
		tables = append(tables, tab)

		// Shape note: does a later bucket beat an earlier one (the
		// non-concave segment caused by courting cautious users)?
		means := total.Means()
		for i := 1; i < len(means)-1; i++ {
			if means[i] > 0 && means[i+1] > means[i]*1.05 {
				notes = append(notes, fmt.Sprintf("%s: marginal gain rises again after bucket %d (non-concave segment)", name, i+1))
				break
			}
		}
	}
	return newReport("fig3", "Average marginal benefit per request, cautious vs reckless", tables, notes), nil
}
