package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

// stubDeps maps the production import paths the analyzers key on to the
// fixture stub packages.
var stubDeps = map[string]string{
	"example.test/internal/rng":    "testdata/src/rng_stub",
	"example.test/internal/obs":    "testdata/src/obs_stub",
	"example.test/internal/core":   "testdata/src/core_stub",
	"example.test/internal/report": "testdata/src/report_stub",
}

func TestDetrandStrictPackage(t *testing.T) {
	analysistest.Run(t, analysis.Detrand(), analysistest.Fixture{
		Dir:        "testdata/src/detrand_core",
		ImportPath: "example.test/internal/core",
		Deps:       stubDeps,
	})
}

func TestDetrandTimingPackage(t *testing.T) {
	analysistest.Run(t, analysis.Detrand(), analysistest.Fixture{
		Dir:        "testdata/src/detrand_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}

// TestDetrandOutOfScope re-types the timing fixture under an unscoped
// import path: the analyzer must stay silent there, global rand and all.
func TestDetrandOutOfScope(t *testing.T) {
	_, _, diags := analysistest.Diagnostics(t, analysis.Detrand(), analysistest.Fixture{
		Dir:        "testdata/src/detrand_sim",
		ImportPath: "example.test/internal/exp",
		Deps:       stubDeps,
	})
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0", len(diags))
	}
}
