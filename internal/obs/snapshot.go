package obs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/accu-sim/accu/internal/stats"
)

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeValue is one gauge in a snapshot.
type GaugeValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramValue is one histogram in a snapshot: count, sum and the
// derived shape statistics. P50/P90/P99 are power-of-two bucket
// estimates (exact within 2×).
type HistogramValue struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// sorted by name — what experiment reports embed and the CLIs render.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters,omitempty"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered instrument.
// Returns nil on a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{}
	for _, name := range sortedKeys(r.counters) {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: r.counters[name].Value()})
	}
	for _, name := range sortedKeys(r.gauges) {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: r.gauges[name].Value()})
	}
	for _, name := range sortedKeys(r.histograms) {
		h := r.histograms[name]
		s.Histograms = append(s.Histograms, HistogramValue{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			Min:   h.Min(),
			Max:   h.Max(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		})
	}
	return s
}

// Empty reports whether the snapshot holds no instruments.
func (s *Snapshot) Empty() bool {
	return s == nil || (len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0)
}

// Prefixed returns a copy of the snapshot with prefix prepended to every
// instrument name. It is how a multi-registry process (one registry per
// job, say) scopes each registry's instruments before merging them into
// one dump: reg.Snapshot().Prefixed("job.j42."). The prefix should keep
// the combined names valid under NamePattern. Returns nil on a nil
// snapshot.
func (s *Snapshot) Prefixed(prefix string) *Snapshot {
	if s == nil {
		return nil
	}
	out := &Snapshot{
		Counters:   append([]CounterValue(nil), s.Counters...),
		Gauges:     append([]GaugeValue(nil), s.Gauges...),
		Histograms: append([]HistogramValue(nil), s.Histograms...),
	}
	for i := range out.Counters {
		out.Counters[i].Name = prefix + out.Counters[i].Name
	}
	for i := range out.Gauges {
		out.Gauges[i].Name = prefix + out.Gauges[i].Name
	}
	for i := range out.Histograms {
		out.Histograms[i].Name = prefix + out.Histograms[i].Name
	}
	return out
}

// Merge returns a new snapshot holding both sides' instruments, sorted by
// name. Either side may be nil. Names are expected to be disjoint (scope
// them with Prefixed first); duplicates are kept as-is, side by side.
func (s *Snapshot) Merge(o *Snapshot) *Snapshot {
	if s.Empty() {
		return o.Prefixed("") // copy
	}
	if o.Empty() {
		return s.Prefixed("")
	}
	out := &Snapshot{
		Counters:   append(append([]CounterValue(nil), s.Counters...), o.Counters...),
		Gauges:     append(append([]GaugeValue(nil), s.Gauges...), o.Gauges...),
		Histograms: append(append([]HistogramValue(nil), s.Histograms...), o.Histograms...),
	}
	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}

// Tables renders the snapshot as fixed-width result tables (one per
// instrument kind), ready for stats.Table.Render.
func (s *Snapshot) Tables() []stats.Table {
	if s.Empty() {
		return nil
	}
	var out []stats.Table
	if len(s.Counters) > 0 {
		t := stats.Table{Name: "counters", Header: []string{"name", "value"}}
		for _, c := range s.Counters {
			t.Rows = append(t.Rows, []string{c.Name, fmt.Sprintf("%d", c.Value)})
		}
		out = append(out, t)
	}
	if len(s.Gauges) > 0 {
		t := stats.Table{Name: "gauges", Header: []string{"name", "value"}}
		for _, g := range s.Gauges {
			t.Rows = append(t.Rows, []string{g.Name, fmt.Sprintf("%.3f", g.Value)})
		}
		out = append(out, t)
	}
	if len(s.Histograms) > 0 {
		t := stats.Table{Name: "histograms", Header: []string{"name", "count", "mean", "min", "p50", "p90", "p99", "max", "sum"}}
		for _, h := range s.Histograms {
			isTime := strings.HasSuffix(h.Name, "_ns")
			t.Rows = append(t.Rows, []string{
				h.Name,
				fmt.Sprintf("%d", h.Count),
				formatVal(h.Mean, isTime),
				formatVal(float64(h.Min), isTime),
				formatVal(float64(h.P50), isTime),
				formatVal(float64(h.P90), isTime),
				formatVal(float64(h.P99), isTime),
				formatVal(float64(h.Max), isTime),
				formatVal(float64(h.Sum), isTime),
			})
		}
		out = append(out, t)
	}
	return out
}

// Render renders every snapshot table as plain text.
func (s *Snapshot) Render() string {
	var sb strings.Builder
	for i, t := range s.Tables() {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(t.Render())
	}
	return sb.String()
}

// formatVal renders a histogram statistic: nanosecond-named series
// ("*_ns") as human durations, everything else as a plain number.
func formatVal(v float64, isTime bool) string {
	if isTime {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}
