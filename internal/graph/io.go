package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes the graph as a plain-text edge list compatible
// with the SNAP format: a header comment with node/edge counts followed by
// one "u<TAB>v" line per edge (u < v).
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# Nodes: %d Edges: %d\n", g.N(), g.M()); err != nil {
		return fmt.Errorf("graph: write header: %w", err)
	}
	var writeErr error
	g.EachEdge(func(u, v int) bool {
		if _, err := bw.WriteString(strconv.Itoa(u)); err != nil {
			writeErr = err
			return false
		}
		if err := bw.WriteByte('\t'); err != nil {
			writeErr = err
			return false
		}
		if _, err := bw.WriteString(strconv.Itoa(v)); err != nil {
			writeErr = err
			return false
		}
		if err := bw.WriteByte('\n'); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return fmt.Errorf("graph: write edge: %w", writeErr)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flush: %w", err)
	}
	return nil
}

// ReadEdgeList parses a SNAP-style edge list: lines of "u v" or "u<TAB>v",
// '#' comments ignored. Node ids may be sparse; they are compacted to a
// dense [0, N) range in first-appearance order. Directed duplicates
// (both "u v" and "v u") collapse to one undirected edge, matching how
// the paper treats the SNAP social graphs as undirected.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	type rawEdge struct{ u, v int }
	var edges []rawEdge
	remap := make(map[int]int)
	nextID := 0
	mapID := func(raw int) int {
		if id, ok := remap[raw]; ok {
			return id
		}
		remap[raw] = nextID
		nextID++
		return nextID - 1
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: parse %q: %w", lineNo, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: parse %q: %w", lineNo, fields[1], err)
		}
		edges = append(edges, rawEdge{u: mapID(u), v: mapID(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scan: %w", err)
	}

	b := NewBuilder(nextID)
	for _, e := range edges {
		if _, err := b.AddEdge(e.u, e.v); err != nil {
			return nil, err
		}
	}
	return b.Freeze(), nil
}
