// Package graph provides the undirected-graph substrate used throughout the
// ACCU reproduction: a mutable builder for generators and a frozen,
// cache-friendly CSR (compressed sparse row) form for the attack loops.
//
// Nodes are dense integers in [0, N). Self-loops and parallel edges are
// rejected at build time, matching the simple-graph assumption of the
// paper's network model.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNodeRange is returned when a node id is outside [0, N).
var ErrNodeRange = errors.New("graph: node id out of range")

// Builder accumulates edges for an undirected simple graph. The zero value
// is not usable; construct with NewBuilder.
type Builder struct {
	n   int
	adj []map[int32]struct{}
	m   int
}

// NewBuilder returns a builder for a graph with n nodes and no edges.
func NewBuilder(n int) *Builder {
	if n < 0 {
		n = 0
	}
	return &Builder{n: n, adj: make([]map[int32]struct{}, n)}
}

// N reports the number of nodes.
func (b *Builder) N() int { return b.n }

// M reports the number of (undirected) edges added so far.
func (b *Builder) M() int { return b.m }

// AddEdge inserts the undirected edge (u, v). It reports whether the edge
// was newly added; self-loops and duplicates are ignored with ok=false.
// It returns ErrNodeRange if either endpoint is out of range.
func (b *Builder) AddEdge(u, v int) (ok bool, err error) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return false, fmt.Errorf("%w: (%d, %d) with n=%d", ErrNodeRange, u, v, b.n)
	}
	if u == v {
		return false, nil
	}
	if b.adj[u] == nil {
		b.adj[u] = make(map[int32]struct{})
	}
	if _, dup := b.adj[u][int32(v)]; dup {
		return false, nil
	}
	if b.adj[v] == nil {
		b.adj[v] = make(map[int32]struct{})
	}
	b.adj[u][int32(v)] = struct{}{}
	b.adj[v][int32(u)] = struct{}{}
	b.m++
	return true, nil
}

// HasEdge reports whether the edge (u, v) exists. Out-of-range endpoints
// report false.
func (b *Builder) HasEdge(u, v int) bool {
	if u < 0 || u >= b.n || v < 0 || v >= b.n || b.adj[u] == nil {
		return false
	}
	_, ok := b.adj[u][int32(v)]
	return ok
}

// Degree reports the degree of u, or 0 if out of range.
func (b *Builder) Degree(u int) int {
	if u < 0 || u >= b.n {
		return 0
	}
	return len(b.adj[u])
}

// Freeze converts the builder into an immutable CSR graph. The builder
// remains usable afterwards.
func (b *Builder) Freeze() *Graph {
	offsets := make([]int64, b.n+1)
	for u := 0; u < b.n; u++ {
		offsets[u+1] = offsets[u] + int64(len(b.adj[u]))
	}
	neighbors := make([]int32, offsets[b.n])
	for u := 0; u < b.n; u++ {
		row := neighbors[offsets[u]:offsets[u+1]]
		i := 0
		for v := range b.adj[u] {
			row[i] = v
			i++
		}
		sort.Slice(row, func(a, c int) bool { return row[a] < row[c] })
	}
	return &Graph{n: b.n, m: b.m, offsets: offsets, neighbors: neighbors}
}

// Graph is an immutable undirected simple graph in CSR form. Adjacency
// rows are sorted ascending, enabling O(d_u + d_v) mutual-neighbor
// counting by merge. A Graph is safe for concurrent use.
type Graph struct {
	n         int
	m         int
	offsets   []int64
	neighbors []int32
}

// N reports the number of nodes.
func (g *Graph) N() int { return g.n }

// M reports the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Degree reports the degree of u, or 0 if out of range.
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return int(g.offsets[u+1] - g.offsets[u])
}

// Neighbors returns the sorted adjacency row of u. The returned slice
// aliases internal storage and must not be modified. Out-of-range u
// returns nil.
func (g *Graph) Neighbors(u int) []int32 {
	if u < 0 || u >= g.n {
		return nil
	}
	return g.neighbors[g.offsets[u]:g.offsets[u+1]]
}

// HasEdge reports whether (u, v) exists, by binary search in the shorter
// row: O(log min(d_u, d_v)).
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	return i < len(row) && row[i] == int32(v)
}

// MutualCount reports |N(u) ∩ N(v)| by merging the two sorted rows.
func (g *Graph) MutualCount(u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	count, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// AdjBase returns the starting index of u's adjacency row in the global
// CSR neighbor array. Together with Degree it lets callers maintain
// per-directed-edge parallel arrays (e.g. edge probabilities) of length
// AdjSize aligned with Neighbors: the attribute of edge (u, Neighbors(u)[i])
// lives at AdjBase(u)+i.
func (g *Graph) AdjBase(u int) int {
	if u < 0 || u >= g.n {
		return -1
	}
	return int(g.offsets[u])
}

// AdjSize returns the total number of directed adjacency slots (2M).
func (g *Graph) AdjSize() int { return len(g.neighbors) }

// IndexOf returns the global CSR index of neighbor v within u's row, or
// -1 when the edge does not exist.
func (g *Graph) IndexOf(u, v int) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return -1
	}
	row := g.Neighbors(u)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	if i < len(row) && row[i] == int32(v) {
		return int(g.offsets[u]) + i
	}
	return -1
}

// EachEdge calls fn(u, v) once per undirected edge with u < v. Iteration
// stops early if fn returns false.
func (g *Graph) EachEdge(fn func(u, v int) bool) {
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int(v) > u {
				if !fn(u, int(v)) {
					return
				}
			}
		}
	}
}

// Edges returns all undirected edges with U < V. The slice is freshly
// allocated.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.m)
	g.EachEdge(func(u, v int) bool {
		out = append(out, Edge{U: u, V: v})
		return true
	})
	return out
}

// Edge is an undirected edge with U < V by convention.
type Edge struct {
	U, V int
}

// Canonical returns the edge with endpoints ordered U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}
