package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, analysis.MapOrder(), analysistest.Fixture{
		Dir:        "testdata/src/maporder_core",
		ImportPath: "example.test/internal/core",
		Deps:       stubDeps,
	})
}

// TestMapOrderOutOfScope: the same hazards outside the deterministic
// packages are not maporder's business.
func TestMapOrderOutOfScope(t *testing.T) {
	_, _, diags := analysistest.Diagnostics(t, analysis.MapOrder(), analysistest.Fixture{
		Dir:        "testdata/src/maporder_core",
		ImportPath: "example.test/internal/stats",
		Deps:       stubDeps,
	})
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, want 0", len(diags))
	}
}
