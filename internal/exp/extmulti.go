package exp

import (
	"context"
	"fmt"

	"github.com/accu-sim/accu/internal/core"
	"github.com/accu-sim/accu/internal/stats"
)

// botCounts is the collaborative-attack sweep of the ext-multi experiment.
var botCounts = []int{1, 2, 4, 8}

// ExtMulti is an extension experiment inspired by the paper's reference
// [5] (collaborative attacks with multiple socialbots): m bots share all
// observations and a single budget of k requests. Because a cautious
// user's threshold counts mutual friends with the *requesting bot*,
// splitting the budget makes cautious users strictly harder to crack —
// the experiment quantifies that trade-off against the union benefit of
// exploring with several identities.
func ExtMulti(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	dataset := fig45Dataset(cfg)
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, err
	}

	header := []string{"bots", "benefit", "cautious-friends"}
	var rows [][]string
	runs := cfg.Networks * cfg.Runs
	var oneBotCautious, manyBotCautious float64
	for _, bots := range botCounts {
		var benefit, cautious stats.Welford
		for i := 0; i < runs; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runSeed := cfg.Seed.Split("extmulti").SplitN("run", i)
			sample, err := g.Generate(runSeed.Split("network"))
			if err != nil {
				return nil, fmt.Errorf("exp: extmulti: %w", err)
			}
			inst, err := cfg.setup().Build(sample, runSeed.Split("setup"))
			if err != nil {
				return nil, fmt.Errorf("exp: extmulti: %w", err)
			}
			re := inst.SampleRealization(runSeed.Split("realization"))
			res, err := core.RunMulti(re, bots, cfg.K, cfg.Weights)
			if err != nil {
				return nil, fmt.Errorf("exp: extmulti bots=%d: %w", bots, err)
			}
			benefit.Add(res.Benefit)
			cautious.Add(float64(res.CautiousFriends))
		}
		if bots == botCounts[0] {
			oneBotCautious = cautious.Mean()
		}
		if bots == botCounts[len(botCounts)-1] {
			manyBotCautious = cautious.Mean()
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", bots),
			fmt.Sprintf("%.1f ±%.1f", benefit.Mean(), benefit.CI95()),
			fmt.Sprintf("%.2f ±%.2f", cautious.Mean(), cautious.CI95()),
		})
	}

	notes := []string{
		fmt.Sprintf("dataset %s, shared budget k=%d split round-robin", dataset, cfg.K),
	}
	if manyBotCautious <= oneBotCautious {
		notes = append(notes, "splitting the budget across bots cracks fewer cautious users — thresholds are per-identity")
	}
	tables := []stats.Table{{Header: header, Rows: rows}}
	return newReport("ext-multi", fmt.Sprintf("Extension: collaborative multi-bot attack (%s)", dataset), tables, notes), nil
}
