package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := New()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if r.Counter("x") != c {
		t.Fatal("same name must return same counter")
	}
	if r.Counter("y") == c {
		t.Fatal("different names must not share a counter")
	}
}

func TestGaugeBasics(t *testing.T) {
	g := New().Gauge("g")
	g.Set(1.5)
	g.Add(2.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %v, want 4", got)
	}
	g.Add(-5)
	if got := g.Value(); got != -1 {
		t.Fatalf("Value = %v, want -1", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := New().Histogram("h")
	for _, v := range []int64{5, 1, 100, 7, -3} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	if got := h.Sum(); got != 113 { // -3 clamps to 0
		t.Fatalf("Sum = %d, want 113", got)
	}
	if got := h.Min(); got != 0 {
		t.Fatalf("Min = %d, want 0", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("Max = %d, want 100", got)
	}
	if got := h.Mean(); got != 113.0/5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogramQuantileWithinFactorOfTwo(t *testing.T) {
	h := New().Histogram("h")
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct {
		q     float64
		exact int64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}} {
		got := h.Quantile(tc.q)
		if got < tc.exact/2 || got > tc.exact*2 {
			t.Errorf("Quantile(%v) = %d, want within 2x of %d", tc.q, got, tc.exact)
		}
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

// TestNilRegistryNoOp pins the disabled fast path: every instrument and
// span obtained from a nil registry must be inert and crash-free.
func TestNilRegistryNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if got := c.Value(); got != 0 {
		t.Fatalf("nil counter Value = %d", got)
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(1)
	if got := g.Value(); got != 0 {
		t.Fatalf("nil gauge Value = %v", got)
	}
	h := r.Histogram("h")
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read as zero")
	}
	sp := r.StartSpan("phase")
	if !sp.start.IsZero() {
		t.Fatal("nil-registry span must not read the clock")
	}
	sp.End()
	StartSpan(nil).End()
	ran := false
	r.Time("phase", func() { ran = true })
	if !ran {
		t.Fatal("Time must still invoke fn when disabled")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry Snapshot must be nil")
	}
	var s *Snapshot
	if !s.Empty() {
		t.Fatal("nil snapshot must be Empty")
	}
}

// TestConcurrentInstruments hammers one counter, gauge and histogram
// from many goroutines; run under -race this doubles as the data-race
// proof, and the totals pin lock-free correctness.
func TestConcurrentInstruments(t *testing.T) {
	r := New()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Lookup under concurrency must converge on one instrument.
			c := r.Counter("shared")
			h := r.Histogram("hist")
			g := r.Gauge("gauge")
			for j := 0; j < perG; j++ {
				c.Inc()
				h.Observe(int64(j % 64))
				g.Set(float64(id))
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("hist")
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("hist count = %d, want %d", got, goroutines*perG)
	}
	var perGSum int64
	for j := 0; j < perG; j++ {
		perGSum += int64(j % 64)
	}
	wantSum := int64(goroutines) * perGSum
	if got := h.Sum(); got != wantSum {
		t.Fatalf("hist sum = %d, want %d", got, wantSum)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("hist min/max = %d/%d, want 0/63", h.Min(), h.Max())
	}
}

func TestSpanRecordsDuration(t *testing.T) {
	r := New()
	sp := r.StartSpan("phase_ns")
	time.Sleep(time.Millisecond)
	sp.End()
	h := r.Histogram("phase_ns")
	if h.Count() != 1 {
		t.Fatalf("span count = %d, want 1", h.Count())
	}
	if h.Sum() < int64(time.Millisecond/2) {
		t.Fatalf("span recorded %dns, want >= ~1ms", h.Sum())
	}
}

func TestSnapshotStableAndRenderable(t *testing.T) {
	r := New()
	r.Counter("b_counter").Add(2)
	r.Counter("a_counter").Add(1)
	r.Gauge("util").Set(0.75)
	r.Histogram("lat_ns").Observe(1500)
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a_counter" || s.Counters[1].Name != "b_counter" {
		t.Fatalf("counters not sorted: %+v", s.Counters)
	}
	if s.Empty() {
		t.Fatal("snapshot should not be empty")
	}
	text := s.Render()
	for _, want := range []string{"a_counter", "util", "0.750", "lat_ns"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered snapshot missing %q:\n%s", want, text)
		}
	}
	// Snapshots marshal for -json report embedding.
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if got := New().Snapshot(); !got.Empty() {
		t.Fatal("fresh registry snapshot must be Empty")
	}
}

// BenchmarkCounter measures the enabled and disabled (nil) hot paths.
func BenchmarkCounter(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		c := New().Counter("c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var c *Counter
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
}

// BenchmarkHistogramObserve measures both histogram hot paths.
func BenchmarkHistogramObserve(b *testing.B) {
	b.Run("enabled", func(b *testing.B) {
		h := New().Histogram("h")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i % 4096))
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var h *Histogram
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i % 4096))
		}
	})
}
