module github.com/accu-sim/accu

go 1.22
