// Fixture for the detflow analyzer: clock/env/global-rand/map-order
// values tracked through the taint engine to digest/summary sinks —
// directly, through locals, through in-package helpers (Returns and
// ParamFlows summaries), and through method calls on tainted receivers.
package sim

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// RecordDigest mirrors the production sink: its Collect input is pinned
// by the bit-identity invariants.
type RecordDigest struct{}

func (d *RecordDigest) Collect(vals ...float64) {}

// Summary mirrors the production mergeable-summary sink.
type Summary struct{}

func (s *Summary) Collect(v float64) {}

func directClock(d *RecordDigest) {
	d.Collect(float64(time.Now().UnixNano())) // want `clock-tainted value reaches deterministic sink \(RecordDigest\)\.Collect`
}

func throughLocal(d *RecordDigest, start time.Time) {
	elapsed := time.Since(start)
	d.Collect(elapsed.Seconds()) // want `clock-tainted value reaches deterministic sink \(RecordDigest\)\.Collect`
}

// jitter is the in-package hop the Returns summary propagates through.
func jitter() float64 {
	return float64(time.Now().UnixNano())
}

func throughHelper(s *Summary) {
	v := jitter()
	s.Collect(v) // want `clock-tainted value reaches deterministic sink \(Summary\)\.Collect \(flow: v ← jitter`
}

// scale is the hop the ParamFlows summary threads an argument through.
func scale(x float64) float64 { return x * 2 }

func throughParam(s *Summary) {
	s.Collect(scale(rand.Float64())) // want `global-rand-tainted value reaches deterministic sink \(Summary\)\.Collect`
}

func envRead(s *Summary) {
	mode := os.Getenv("ACCU_MODE")
	s.Collect(float64(len(mode))) // want `env-tainted value reaches deterministic sink \(Summary\)\.Collect`
}

func mapOrder(s *Summary, weights map[int]float64) {
	for _, w := range weights {
		s.Collect(w) // want `map-order-tainted value reaches deterministic sink \(Summary\)\.Collect`
	}
}

// sortedFirst is the audited pattern: iteration order is discharged by
// sorting before the sink sees anything.
func sortedFirst(s *Summary, weights map[int]float64) {
	keys := make([]int, 0, len(weights))
	for k := range weights {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		//accu:allow detflow -- keys are sorted above; order is deterministic
		s.Collect(weights[k])
	}
}

// seeded values never touch a source: clean.
func seeded(d *RecordDigest, seedDerived float64) {
	d.Collect(seedDerived)
}

// spans may read the clock in the timing packages as long as the value
// stays out of the sinks: clean.
func spanOnly(d *RecordDigest, seedDerived float64) time.Duration {
	t0 := time.Now()
	d.Collect(seedDerived)
	return time.Since(t0)
}
