package analysis_test

import (
	"testing"

	"github.com/accu-sim/accu/internal/analysis"
	"github.com/accu-sim/accu/internal/analysis/analysistest"
)

func TestErrCmp(t *testing.T) {
	analysistest.Run(t, analysis.ErrCmp(), analysistest.Fixture{
		Dir:        "testdata/src/errcmp_sim",
		ImportPath: "example.test/internal/sim",
		Deps:       stubDeps,
	})
}
