package accu_test

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"

	accu "github.com/accu-sim/accu"
)

// TestEndToEndQuickstart mirrors the README quick start: preset →
// network → instance → realization → ABM attack.
func TestEndToEndQuickstart(t *testing.T) {
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		t.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		t.Fatal(err)
	}
	g, err := generator.Generate(accu.NewSeed(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 10
	inst, err := setup.Build(g, accu.NewSeed(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	re := inst.SampleRealization(accu.NewSeed(5, 6))
	abm, err := accu.NewABM(accu.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	res, err := accu.Run(abm, re, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Benefit <= 0 {
		t.Errorf("benefit = %v", res.Benefit)
	}
	if len(res.Steps) != 50 {
		t.Errorf("steps = %d", len(res.Steps))
	}
}

func TestPublicPolicies(t *testing.T) {
	b := accu.NewGraphBuilder(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}} {
		if _, err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Freeze()
	p := accu.Params{
		Kind:       make([]accu.Kind, 6),
		AcceptProb: make([]float64, 6),
		Theta:      make([]int, 6),
		BFriend:    make([]float64, 6),
		BFof:       make([]float64, 6),
	}
	for i := 0; i < 6; i++ {
		p.Kind[i] = accu.Reckless
		p.AcceptProb[i] = 1
		p.BFriend[i] = 2
		p.BFof[i] = 1
	}
	inst, err := accu.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	policies := []accu.Policy{
		accu.NewMaxDegree(),
		accu.NewPageRank(),
		accu.NewRandom(accu.NewSeed(9, 9)),
		accu.NewPureGreedy(),
	}
	for _, pol := range policies {
		re := inst.SampleRealization(accu.NewSeed(1, 1))
		res, err := accu.Run(pol, re, 3)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		if res.Benefit <= 0 {
			t.Errorf("%s: benefit %v", pol.Name(), res.Benefit)
		}
	}
}

func TestPublicAttackStateAndPotential(t *testing.T) {
	b := accu.NewGraphBuilder(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if _, err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.Freeze()
	p := accu.Params{
		Kind:       []accu.Kind{accu.Reckless, accu.Reckless, accu.Reckless},
		AcceptProb: []float64{1, 1, 1},
		Theta:      []int{0, 0, 0},
		BFriend:    []float64{2, 2, 2},
		BFof:       []float64{1, 1, 1},
	}
	inst, err := accu.NewInstance(g, p)
	if err != nil {
		t.Fatal(err)
	}
	st := accu.NewAttack(inst.SampleRealization(accu.NewSeed(2, 2)))
	if accu.Potential(st, 1, accu.DefaultWeights()) <= 0 {
		t.Error("potential of hub must be positive")
	}
	out, err := st.Request(1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted || st.Friends() != 1 {
		t.Errorf("outcome %+v friends %d", out, st.Friends())
	}
}

func TestPublicEdgeListRoundTrip(t *testing.T) {
	b := accu.NewGraphBuilder(3)
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	g := b.Freeze()
	var buf bytes.Buffer
	if err := accu.WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := accu.ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != 1 {
		t.Errorf("M = %d", g2.M())
	}
}

func TestPublicPageRank(t *testing.T) {
	b := accu.NewGraphBuilder(3)
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddEdge(0, 2); err != nil {
		t.Fatal(err)
	}
	scores, err := accu.PageRankScores(b.Freeze())
	if err != nil {
		t.Fatal(err)
	}
	if scores[0] <= scores[1] {
		t.Error("hub score not highest")
	}
}

func TestRunExperimentRegistry(t *testing.T) {
	if len(accu.Experiments()) != 13 {
		t.Errorf("experiments = %v", accu.Experiments())
	}
	cfg := accu.ExperimentConfig{
		Scale:       0.02,
		Networks:    1,
		Runs:        1,
		K:           15,
		NumCautious: 5,
		Datasets:    []string{"slashdot"},
		Seed:        accu.NewSeed(11, 12),
	}
	rep, err := accu.RunExperiment(context.Background(), "table1", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Rendered, "slashdot") {
		t.Errorf("rendered:\n%s", rep.Rendered)
	}
	if _, err := accu.RunExperiment(context.Background(), "nope", cfg); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestPublicTheoryHelpers(t *testing.T) {
	// Fig. 1 instance: cautious 0 (θ=1) — reckless 1.
	b := accu.NewGraphBuilder(2)
	if _, err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	inst, err := accu.NewInstance(b.Freeze(), accu.Params{
		Kind:       []accu.Kind{accu.Cautious, accu.Reckless},
		AcceptProb: []float64{0, 1},
		Theta:      []int{1, 0},
		BFriend:    []float64{50, 2},
		BFof:       []float64{1, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := accu.AdaptiveSubmodularRatio(inst)
	if err != nil {
		t.Fatal(err)
	}
	if lambda <= 0 || lambda > 1 {
		t.Errorf("λ = %v", lambda)
	}
	opt, err := accu.OptimalValue(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	gre, err := accu.GreedyValue(inst, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gre+1e-9 < accu.TheoremBound(lambda)*opt {
		t.Errorf("Theorem 1 violated: greedy %v < bound %v · opt %v", gre, accu.TheoremBound(lambda), opt)
	}
}

func TestMonteCarloPublic(t *testing.T) {
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		t.Fatal(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		t.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 5
	factories, err := accu.DefaultFactories(accu.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	protocol := accu.Protocol{
		Gen:      generator,
		Setup:    setup,
		Networks: 1,
		Runs:     1,
		K:        10,
		Seed:     accu.NewSeed(20, 21),
	}
	count := 0
	err = accu.MonteCarlo(context.Background(), protocol, factories, func(accu.Record) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	if count != len(factories) {
		t.Errorf("records = %d", count)
	}
}

func TestPublicLoadEdgeList(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/edges.txt"
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fixed, err := accu.LoadEdgeList(path)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fixed.Generate(accu.NewSeed(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("loaded N=%d M=%d", g.N(), g.M())
	}
	// The fixed generator slots straight into the §IV-A setup (degree
	// band relaxed for the toy graph).
	setup := accu.DefaultSetup()
	setup.NumCautious = 1
	setup.DegreeLo, setup.DegreeHi = 1, 10
	if _, err := setup.Build(g, accu.NewSeed(2, 2)); err != nil {
		t.Fatal(err)
	}
}
