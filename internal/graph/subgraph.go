package graph

import "fmt"

// InducedSubgraph extracts the subgraph induced by the node set. The
// returned graph has dense ids [0, len(nodes)); the second return value
// maps new ids back to the original ids, in the order given (duplicates
// are an error).
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int, error) {
	remap := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, u := range nodes {
		if u < 0 || u >= g.n {
			return nil, nil, fmt.Errorf("%w: %d with n=%d", ErrNodeRange, u, g.n)
		}
		if _, dup := remap[u]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d in subgraph set", u)
		}
		remap[u] = i
		orig[i] = u
	}
	b := NewBuilder(len(nodes))
	for i, u := range orig {
		for _, v := range g.Neighbors(u) {
			j, ok := remap[int(v)]
			if !ok || j <= i {
				continue
			}
			if _, err := b.AddEdge(i, j); err != nil {
				return nil, nil, err
			}
		}
	}
	return b.Freeze(), orig, nil
}

// Clone returns a mutable Builder with the same nodes and edges as g,
// useful for generators that post-process a frozen graph.
func (g *Graph) Clone() *Builder {
	b := NewBuilder(g.n)
	g.EachEdge(func(u, v int) bool {
		_, _ = b.AddEdge(u, v) // endpoints known in range
		return true
	})
	return b
}
