// Command accurun executes a single adaptive attack with a chosen policy
// and prints the request-by-request trace — useful for inspecting how ABM
// courts cautious users.
//
// Usage:
//
//	accurun -preset slashdot -scale 0.02 -policy abm -k 50 [-wd 0.5 -wi 0.5]
//
// Policies: abm, greedy, maxdegree, pagerank, random.
//
// With -runs N (N > 1) accurun instead runs the Monte-Carlo engine on the
// single-network protocol — N independent realizations of one network,
// fanned out over -workers — and prints summary statistics. This is the
// "one dataset, many repetitions" shape the cell-level scheduler
// parallelizes.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	accu "github.com/accu-sim/accu"
	"github.com/accu-sim/accu/internal/prof"
)

// writeJournal saves the replayable request journal of a run.
func writeJournal(path string, res *accu.Result) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("create journal: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if _, err := res.Journal.WriteTo(f); err != nil {
		return fmt.Errorf("write journal: %w", err)
	}
	return nil
}

// traceJSON is the machine-readable attack trace emitted by -json.
type traceJSON struct {
	Preset          string      `json:"preset"`
	Scale           float64     `json:"scale"`
	Nodes           int         `json:"nodes"`
	Edges           int         `json:"edges"`
	Cautious        int         `json:"cautious"`
	Policy          string      `json:"policy"`
	Budget          int         `json:"budget"`
	Benefit         float64     `json:"benefit"`
	Friends         int         `json:"friends"`
	CautiousFriends int         `json:"cautiousFriends"`
	Steps           []accu.Step `json:"steps"`

	// Metrics is the policy/environment metrics snapshot (-metrics).
	Metrics *accu.MetricsSnapshot `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accurun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("accurun", flag.ContinueOnError)
	var (
		preset   = fs.String("preset", "slashdot", "dataset preset")
		scale    = fs.Float64("scale", 0.02, "scale factor in (0, 1]")
		policy   = fs.String("policy", "abm", "policy: abm|greedy|maxdegree|pagerank|random")
		k        = fs.Int("k", 50, "friend-request budget")
		wd       = fs.Float64("wd", 0.5, "ABM w_D")
		wi       = fs.Float64("wi", 0.5, "ABM w_I")
		cautious = fs.Int("cautious", 10, "number of cautious users")
		seed     = fs.Uint64("seed", 1, "random seed")
		verbose  = fs.Bool("v", false, "print every request (default: accepted only)")
		asJSON   = fs.Bool("json", false, "emit the full trace as JSON instead of text")
		journal  = fs.String("journal", "", "write the replayable request journal to this file")
		runs     = fs.Int("runs", 1, "repeat the attack over N realizations and print summary stats")
		workers  = fs.Int("workers", 0, "worker pool for -runs > 1 (0 = GOMAXPROCS)")

		checkpoint = fs.String("checkpoint", "", "journal completed cells to this JSONL file (-runs > 1 only)")
		resume     = fs.Bool("resume", false, "resume from an existing -checkpoint journal")
		keepGoing  = fs.Bool("keep-going", false, "continue past failed cells and report them as warnings (-runs > 1 only)")
		digest     = fs.Bool("digest", false, "print the canonical SHA-256 record-set digest (-runs > 1 only)")

		metrics    = fs.Bool("metrics", false, "print policy/environment metrics after the trace")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		pprofAddr  = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start(prof.Options{CPUProfile: *cpuprofile, MemProfile: *memprofile, PprofAddr: *pprofAddr})
	if err != nil {
		return err
	}
	defer stopProf()
	var reg *accu.Metrics
	if *metrics {
		reg = accu.NewMetrics()
	}

	p, err := accu.PresetByName(*preset)
	if err != nil {
		return err
	}
	generator, err := p.Generator(*scale)
	if err != nil {
		return err
	}
	root := accu.NewSeed(*seed, *seed*2+1)
	setup := accu.DefaultSetup()
	setup.NumCautious = *cautious
	if *runs < 1 {
		return fmt.Errorf("-runs %d must be >= 1", *runs)
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if *runs > 1 {
		if *asJSON || *journal != "" {
			return fmt.Errorf("-runs > 1 prints summary statistics; -json and -journal apply to single runs only")
		}
		factory, err := policyFactory(*policy, *wd, *wi, reg)
		if err != nil {
			return err
		}
		return runRepeated(out, generator, setup, factory, *k, *runs, *workers, root, reg,
			*checkpoint, *resume, *keepGoing, *digest)
	}
	if *checkpoint != "" || *keepGoing || *digest {
		return fmt.Errorf("-checkpoint, -keep-going and -digest apply to the -runs > 1 Monte-Carlo mode only")
	}
	g, err := generator.Generate(root.Split("network"))
	if err != nil {
		return err
	}
	inst, err := setup.Build(g, root.Split("setup"))
	if err != nil {
		return err
	}
	inst.Instrument(reg)
	re := inst.SampleRealization(root.Split("realization"))

	var pol accu.Policy
	switch *policy {
	case "abm":
		pol, err = accu.NewABM(accu.Weights{WD: *wd, WI: *wi}, accu.WithMetrics(reg))
		if err != nil {
			return err
		}
	case "greedy":
		pol = accu.NewPureGreedy()
	case "maxdegree":
		pol = accu.NewMaxDegree()
	case "pagerank":
		pol = accu.NewPageRank()
	case "random":
		pol = accu.NewRandom(root.Split("random-policy"))
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}

	res, err := accu.Run(pol, re, *k)
	if err != nil {
		return err
	}
	if *journal != "" {
		if err := writeJournal(*journal, res); err != nil {
			return err
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(traceJSON{
			Preset:          p.Key,
			Scale:           *scale,
			Nodes:           g.N(),
			Edges:           g.M(),
			Cautious:        inst.NumCautious(),
			Policy:          res.Policy,
			Budget:          *k,
			Benefit:         res.Benefit,
			Friends:         res.Friends,
			CautiousFriends: res.CautiousFriends,
			Steps:           res.Steps,
			Metrics:         reg.Snapshot(),
		})
	}

	fmt.Fprintf(out, "network: %s scale %.3f — %d nodes, %d edges, %d cautious\n",
		p.Key, *scale, g.N(), g.M(), inst.NumCautious())
	fmt.Fprintf(out, "policy:  %s, budget %d\n\n", res.Policy, *k)
	for i, s := range res.Steps {
		if !s.Accepted && !*verbose {
			continue
		}
		kind := "reckless"
		if s.Cautious {
			kind = "CAUTIOUS"
		}
		status := "accepted"
		if !s.Accepted {
			status = "rejected"
		}
		fmt.Fprintf(out, "#%-4d user %-6d %-8s %-8s gain %7.1f  total %8.1f  cautious friends %d\n",
			i+1, s.User, kind, status, s.Gain, s.BenefitAfter, s.CautiousFriendsAfter)
	}
	fmt.Fprintf(out, "\nfinal: benefit %.1f, friends %d (%d cautious), %d requests sent\n",
		res.Benefit, res.Friends, res.CautiousFriends, len(res.Steps))
	if snap := reg.Snapshot(); !snap.Empty() {
		fmt.Fprintf(out, "\n-- metrics --\n%s", snap.Render())
	}
	return nil
}

// policyFactory builds the Monte-Carlo factory for one named policy. The
// random baseline derives its stream from the per-cell factory seed, so
// repeated runs stay independent yet reproducible.
func policyFactory(name string, wd, wi float64, reg *accu.Metrics) (accu.PolicyFactory, error) {
	switch name {
	case "abm":
		w := accu.Weights{WD: wd, WI: wi}
		return accu.PolicyFactory{Name: "abm", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewABM(w, accu.WithMetrics(reg))
		}}, nil
	case "greedy":
		return accu.PolicyFactory{Name: "greedy", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewPureGreedy(), nil
		}}, nil
	case "maxdegree":
		return accu.PolicyFactory{Name: "maxdegree", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewMaxDegree(), nil
		}}, nil
	case "pagerank":
		return accu.PolicyFactory{Name: "pagerank", New: func(accu.Seed) (accu.Policy, error) {
			return accu.NewPageRank(), nil
		}}, nil
	case "random":
		return accu.PolicyFactory{Name: "random", New: func(s accu.Seed) (accu.Policy, error) {
			return accu.NewRandom(s), nil
		}}, nil
	default:
		return accu.PolicyFactory{}, fmt.Errorf("unknown policy %q", name)
	}
}

// runRepeated executes the -runs > 1 mode: one network, many realizations,
// fanned out over the cell-level scheduler, summarized as distribution
// statistics rather than a per-request trace. With checkpoint set,
// completed cells journal to that file and a resumed invocation replays
// them into the statistics before computing only what is missing.
func runRepeated(out io.Writer, generator accu.Generator, setup accu.Setup, factory accu.PolicyFactory, k, runs, workers int, root accu.Seed, reg *accu.Metrics, checkpoint string, resume, keepGoing, digest bool) error {
	protocol := accu.Protocol{
		Gen:             generator,
		Setup:           setup,
		Networks:        1,
		Runs:            runs,
		K:               k,
		Seed:            root,
		Workers:         workers,
		Metrics:         reg,
		ContinueOnError: keepGoing,
	}
	resolved, clamped := protocol.ResolveWorkers()
	if clamped {
		fmt.Fprintf(os.Stderr, "accurun: -workers %d exceeds the %d-cell run grid; running with %d workers\n",
			workers, runs, resolved)
	}

	var (
		n                  int
		sum, sumSq         float64
		minB, maxB         = math.Inf(1), math.Inf(-1)
		sumFriends         int
		sumCautiousFriends int
	)
	var dig *accu.RecordDigest
	if digest {
		dig = accu.NewRecordDigest()
	}
	collect := func(r accu.Record) {
		if dig != nil {
			dig.Collect(r)
		}
		n++
		b := r.Result.Benefit
		sum += b
		sumSq += b * b
		minB = math.Min(minB, b)
		maxB = math.Max(maxB, b)
		sumFriends += r.Result.Friends
		sumCautiousFriends += r.Result.CautiousFriends
	}

	var cells *accu.CellJournal
	if checkpoint != "" {
		j, err := accu.OpenCellJournal(checkpoint, resume)
		if err != nil {
			return err
		}
		cells = j
		if replayed := cells.Cells(); replayed > 0 {
			fmt.Fprintf(os.Stderr, "accurun: resuming %d completed cell(s) from %s\n", replayed, checkpoint)
		}
		if d := cells.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "accurun: warning: %s: corrupt journal line discarded %d valid completed cell(s) after it; they will re-run\n", checkpoint, d)
		}
		cells.Replay(collect)
		protocol.Checkpoint = cells
	}

	start := time.Now()
	err := accu.MonteCarlo(context.Background(), protocol, []accu.PolicyFactory{factory}, collect)
	if cells != nil {
		if cerr := cells.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("close checkpoint journal: %w", cerr)
		}
	}
	var fsum *accu.FailureSummary
	if keepGoing && errors.As(err, &fsum) {
		fmt.Fprintf(os.Stderr, "accurun: warning: %v\n", fsum)
		err = nil
	}
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("no cells completed")
	}
	wall := time.Since(start)

	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	fmt.Fprintf(out, "policy:  %s, budget %d, %d realizations, %d workers\n",
		factory.Name, k, n, resolved)
	fmt.Fprintf(out, "benefit: mean %.1f  std %.1f  min %.1f  max %.1f\n",
		mean, math.Sqrt(variance), minB, maxB)
	fmt.Fprintf(out, "friends: mean %.1f (%.1f cautious)\n",
		float64(sumFriends)/float64(n), float64(sumCautiousFriends)/float64(n))
	fmt.Fprintf(out, "timing:  %v wall, %.1f runs/sec\n",
		wall.Round(time.Millisecond), float64(n)/wall.Seconds())
	if dig != nil {
		fmt.Fprintf(out, "digest:  %s\n", dig.Sum())
	}
	if snap := reg.Snapshot(); !snap.Empty() {
		fmt.Fprintf(out, "\n-- metrics --\n%s", snap.Render())
	}
	return nil
}
