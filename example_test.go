package accu_test

import (
	"fmt"

	accu "github.com/accu-sim/accu"
)

// Example runs the paper's headline pipeline end to end: synthesize a
// network, dress it with the §IV-A protocol, attack with ABM.
func Example() {
	preset, err := accu.PresetByName("slashdot")
	if err != nil {
		panic(err)
	}
	generator, err := preset.Generator(0.02)
	if err != nil {
		panic(err)
	}
	g, err := generator.Generate(accu.NewSeed(1, 2))
	if err != nil {
		panic(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 10
	inst, err := setup.Build(g, accu.NewSeed(3, 4))
	if err != nil {
		panic(err)
	}
	re := inst.SampleRealization(accu.NewSeed(5, 6))
	abm, err := accu.NewABM(accu.DefaultWeights())
	if err != nil {
		panic(err)
	}
	res, err := accu.Run(abm, re, 50)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Steps), "requests sent")
	// Output: 50 requests sent
}

// ExampleNewInstance builds the paper's Fig. 1 counterexample by hand: a
// cautious user that only accepts once it shares a mutual friend with
// the attacker.
func ExampleNewInstance() {
	b := accu.NewGraphBuilder(2)
	if _, err := b.AddEdge(0, 1); err != nil {
		panic(err)
	}
	inst, err := accu.NewInstance(b.Freeze(), accu.Params{
		Kind:       []accu.Kind{accu.Cautious, accu.Reckless},
		AcceptProb: []float64{0, 1},
		Theta:      []int{1, 0},
		BFriend:    []float64{50, 2},
		BFof:       []float64{1, 1},
	})
	if err != nil {
		panic(err)
	}

	st := accu.NewAttack(inst.SampleRealization(accu.NewSeed(1, 1)))
	// Below threshold: the cautious user rejects.
	out, err := st.Request(0)
	if err != nil {
		panic(err)
	}
	fmt.Println("cautious before threshold:", out.Accepted)
	// Befriend the reckless mutual friend; now the threshold holds.
	if _, err := st.Request(1); err != nil {
		panic(err)
	}
	fmt.Println("mutual friends with cautious user:", st.Mutual(0))
	// Output:
	// cautious before threshold: false
	// mutual friends with cautious user: 1
}

// ExampleTheoremBound evaluates the Theorem 1 guarantee for a given
// adaptive submodular ratio.
func ExampleTheoremBound() {
	fmt.Printf("%.4f\n", accu.TheoremBound(1)) // submodular case: 1 - 1/e
	// Output: 0.6321
}

// ExampleCurvatureBound reproduces the paper's §III-B numeric example:
// δ = 10, k = 20 gives a ratio just under 0.1.
func ExampleCurvatureBound() {
	fmt.Printf("%.3f\n", accu.CurvatureBound(10, 20))
	// Output: 0.095
}
