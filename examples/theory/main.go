// Theory: the analytical side of the paper on enumerable instances —
// the Fig. 1 non-submodularity witness, the exhaustive adaptive
// submodular ratio λ, and a live check of Theorem 1's 1 − e^{−λ}
// guarantee against the brute-force optimal adaptive policy.
package main

import (
	"fmt"
	"log"

	accu "github.com/accu-sim/accu"
)

// buildThresholdStar builds the running example: reckless users 0, 1, 2
// (q = 1) around a cautious hub 3 with θ = 2 and B_f = 50.
func buildThresholdStar() (*accu.Instance, error) {
	b := accu.NewGraphBuilder(4)
	for _, e := range [][2]int{{0, 3}, {1, 3}, {0, 1}, {1, 2}} {
		if _, err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return accu.NewInstance(b.Freeze(), accu.Params{
		Kind:       []accu.Kind{accu.Reckless, accu.Reckless, accu.Reckless, accu.Cautious},
		AcceptProb: []float64{1, 1, 1, 0},
		Theta:      []int{0, 0, 0, 2},
		BFriend:    []float64{2, 2, 2, 50},
		BFof:       []float64{1, 1, 1, 1},
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("theory: ")

	inst, err := buildThresholdStar()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("instance: 3 reckless users + cautious hub (θ=2, B_f=50)")
	fmt.Println()

	// The adaptive submodular ratio of Definition 5, by exhaustive
	// enumeration of realizations and subset pairs.
	lambda, err := accu.AdaptiveSubmodularRatio(inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adaptive submodular ratio λ  = %.4f\n", lambda)
	fmt.Printf("Theorem 1 bound (1 − e^−λ)   = %.4f\n\n", accu.TheoremBound(lambda))

	// Brute-force optimal vs exact adaptive greedy (w_I = 0).
	for k := 1; k <= 4; k++ {
		opt, err := accu.OptimalValue(inst, k)
		if err != nil {
			log.Fatal(err)
		}
		gre, err := accu.GreedyValue(inst, k)
		if err != nil {
			log.Fatal(err)
		}
		holds := gre+1e-9 >= accu.TheoremBound(lambda)*opt
		fmt.Printf("k=%d: greedy %7.3f  optimal %7.3f  greedy/opt %.3f  bound holds: %v\n",
			k, gre, opt, gre/opt, holds)
	}
	fmt.Println()

	// Why the classical (1 − 1/e) machinery does not apply: the ACCU
	// benefit function is not adaptive submodular. ABM with w_I > 0
	// courts the cautious hub anyway.
	abm, err := accu.NewABM(accu.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	res, err := accu.Run(abm, inst.SampleRealization(accu.NewSeed(1, 1)), 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ABM attack: benefit %.1f, cautious friends %d\n", res.Benefit, res.CautiousFriends)
	for i, s := range res.Steps {
		fmt.Printf("  request %d → user %d (cautious=%v, accepted=%v, gain %.1f)\n",
			i+1, s.User, s.Cautious, s.Accepted, s.Gain)
	}
}
