package osn

import (
	"errors"
	"math"
	"testing"

	"github.com/accu-sim/accu/internal/rng"
)

func TestRequestBatchCautiousDecidesPreBatch(t *testing.T) {
	// Batch {1, 3} where 1 unlocks cautious 3's threshold: in a batch, 3
	// decides on the PRE-batch mutual count (0 < θ=1) and rejects, even
	// though applying 1 first would have unlocked it sequentially.
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	outs, err := st.RequestBatch([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !outs[0].Accepted {
		t.Fatal("reckless 1 rejected")
	}
	if outs[1].Accepted {
		t.Error("cautious 3 accepted in the same batch as its unlocking friend")
	}
	// Sequential control: the same two requests one at a time accept both.
	st2 := NewState(allIn(inst))
	if _, err := st2.Request(1); err != nil {
		t.Fatal(err)
	}
	out, err := st2.Request(3)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Accepted {
		t.Error("sequential control: cautious 3 rejected")
	}
	if st.Benefit() >= st2.Benefit() {
		t.Errorf("batching must cost benefit here: batch %v vs sequential %v", st.Benefit(), st2.Benefit())
	}
}

func TestRequestBatchTotalMatchesRecompute(t *testing.T) {
	g, err := gen400(t)
	if err != nil {
		t.Fatal(err)
	}
	s := DefaultSetup()
	s.NumCautious = 10
	inst, err := s.Build(g, rng.NewSeed(61, 62))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		re := inst.SampleRealization(rng.NewSeed(uint64(trial), 63))
		st := NewState(re)
		r := rng.NewSeed(uint64(trial), 64).Rand()
		users, err := rng.SampleWithoutReplacement(r, inst.N(), 40)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(users); i += 8 {
			if _, err := st.RequestBatch(users[i : i+8]); err != nil {
				t.Fatal(err)
			}
			if inc, scratch := st.Benefit(), st.RecomputeBenefit(); math.Abs(inc-scratch) > 1e-9 {
				t.Fatalf("trial %d: incremental %v != recomputed %v", trial, inc, scratch)
			}
		}
	}
}

func TestRequestBatchGainsSumToTotal(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	outs, err := st.RequestBatch([]int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, o := range outs {
		sum += o.Gain
	}
	if math.Abs(sum-st.Benefit()) > 1e-12 {
		t.Errorf("gain sum %v != benefit %v", sum, st.Benefit())
	}
}

func TestRequestBatchErrors(t *testing.T) {
	inst := cautiousFixture(t)
	st := NewState(allIn(inst))
	if _, err := st.RequestBatch([]int{0, 0}); !errors.Is(err, ErrDuplicateInBatch) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := st.RequestBatch([]int{-1}); !errors.Is(err, ErrBadUser) {
		t.Errorf("bad user: %v", err)
	}
	if _, err := st.Request(0); err != nil {
		t.Fatal(err)
	}
	if _, err := st.RequestBatch([]int{0, 1}); !errors.Is(err, ErrAlreadyRequested) {
		t.Errorf("already requested: %v", err)
	}
	// A failed batch must not consume requests.
	if st.Requests() != 1 {
		t.Errorf("requests = %d after failed batches", st.Requests())
	}
}

func TestRequestBatchSizeOneMatchesRequest(t *testing.T) {
	inst := cautiousFixture(t)
	a := NewState(allIn(inst))
	b := NewState(allIn(inst))
	for _, u := range []int{1, 0, 3, 2} {
		outA, err := a.Request(u)
		if err != nil {
			t.Fatal(err)
		}
		outsB, err := b.RequestBatch([]int{u})
		if err != nil {
			t.Fatal(err)
		}
		if outA != outsB[0] {
			t.Fatalf("user %d: single %+v vs batch-1 %+v", u, outA, outsB[0])
		}
	}
	if a.Benefit() != b.Benefit() {
		t.Errorf("benefits diverged: %v vs %v", a.Benefit(), b.Benefit())
	}
}
