// Fixture for the fsyncack analyzer: HTTP handler paths that write the
// response before the durable commit — directly, through an in-package
// writeJSON-shaped helper, and through a summarized durable helper.
package serv

import (
	"net/http"
	"os"

	"example.test/internal/sim"
)

type api struct {
	j    *sim.CellJournal
	tmp  string
	path string
}

// writeJSON is the success-envelope helper ParamSummary marks.
func writeJSON(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// writeError is the error envelope: failure acks carry no durability
// promise, so the analyzer exempts it by name.
func writeError(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

func (a *api) handleAckFirst(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK)
	a.j.Commit("cell") // want `durable commit \(CellJournal\)\.Commit runs after the response was already written`
}

func (a *api) handleDirectWrite(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	os.Rename(a.tmp, a.path) // want `durable commit os\.Rename runs after the response was already written`
}

// persist is the in-package durable hop the summary resolves.
func (a *api) persist() error {
	return a.j.Commit("cell")
}

func (a *api) handleViaHelper(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK)
	a.persist() // want `durable commit \(\*api\)\.persist → \(CellJournal\)\.Commit runs after the response was already written`
}

// commit-then-ack is the contract: clean.
func (a *api) handleDurableFirst(w http.ResponseWriter, r *http.Request) {
	if err := a.j.Commit("cell"); err != nil {
		writeError(w, http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK)
}

// an error envelope before cleanup persistence is not a success ack:
// clean.
func (a *api) handleErrorPath(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusBadRequest)
	a.j.Commit("abort-marker")
}

// async post-ack work does not hold up this response: clean (chanleak
// and errdrop own the goroutine's own discipline).
func (a *api) handleAsyncAfterAck(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK)
	go a.persist()
}

// post-ack best-effort persistence is the audited exception.
func (a *api) handleAllowedCacheWrite(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK)
	//accu:allow fsyncack -- best-effort cache refresh; the ack covers the journal commit above
	os.WriteFile(a.path, nil, 0o600)
}
