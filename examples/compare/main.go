// Compare: Fig. 2 in miniature — run ABM against the MaxDegree, PageRank
// and Random baselines on one dataset and print the benefit-vs-k table
// with confidence intervals.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	accu "github.com/accu-sim/accu"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("compare: ")

	preset := flag.String("preset", "slashdot", "dataset preset")
	scale := flag.Float64("scale", 0.02, "network scale")
	k := flag.Int("k", 80, "request budget")
	flag.Parse()

	p, err := accu.PresetByName(*preset)
	if err != nil {
		log.Fatal(err)
	}
	generator, err := p.Generator(*scale)
	if err != nil {
		log.Fatal(err)
	}
	setup := accu.DefaultSetup()
	setup.NumCautious = 10

	factories, err := accu.DefaultFactories(accu.DefaultWeights())
	if err != nil {
		log.Fatal(err)
	}
	protocol := accu.Protocol{
		Gen:      generator,
		Setup:    setup,
		Networks: 3,
		Runs:     5,
		K:        *k,
		Seed:     accu.NewSeed(2019, 1243),
	}

	// Aggregate final benefit and cautious friends per policy.
	type agg struct {
		n               int
		benefit         float64
		cautiousFriends int
	}
	totals := map[string]*agg{}
	err = accu.MonteCarlo(context.Background(), protocol, factories, func(rec accu.Record) {
		a, ok := totals[rec.Policy]
		if !ok {
			a = &agg{}
			totals[rec.Policy] = a
		}
		a.n++
		a.benefit += rec.Result.Benefit
		a.cautiousFriends += rec.Result.CautiousFriends
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset %s (scale %.2f), k=%d, %d networks × %d runs\n\n",
		*preset, *scale, *k, protocol.Networks, protocol.Runs)
	fmt.Printf("%-22s  %12s  %18s\n", "policy", "avg benefit", "avg cautious friends")
	for _, f := range factories {
		a := totals[f.Name]
		if a == nil || a.n == 0 {
			continue
		}
		fmt.Printf("%-22s  %12.1f  %18.2f\n",
			f.Name, a.benefit/float64(a.n), float64(a.cautiousFriends)/float64(a.n))
	}
	fmt.Println("\nexpected shape (paper Fig. 2): ABM > PageRank >= MaxDegree >> Random")
}
