package exp

import (
	"context"
	"fmt"

	"github.com/accu-sim/accu/internal/sim"
	"github.com/accu-sim/accu/internal/stats"
)

// Sensitivity grids of Fig. 6/7: cautious friend benefit × acceptance
// threshold fraction.
var (
	heatBenefits = []float64{20, 40, 60, 80, 100}
	heatThetas   = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
)

// heatmap runs the Fig. 6/7 sweep and aggregates the chosen metric.
func heatmap(ctx context.Context, cfg Config, metric func(rec sim.Record) float64) (*stats.Grid, string, error) {
	cfg, err := cfg.normalize()
	if err != nil {
		return nil, "", err
	}
	dataset := fig45Dataset(cfg)
	g, _, err := cfg.generator(dataset)
	if err != nil {
		return nil, "", err
	}
	abm, err := sim.ABMFactory(cfg.Weights, cfg.abmOptions()...)
	if err != nil {
		return nil, "", err
	}

	grid := stats.NewGrid("theta", heatThetas, "Bf(c)", heatBenefits)
	for i, tf := range heatThetas {
		for j, bf := range heatBenefits {
			if err := ctx.Err(); err != nil {
				return nil, "", err
			}
			setup := cfg.setup()
			setup.ThetaFraction = tf
			setup.BFriendCautious = bf
			name := fmt.Sprintf("heat-%s-%v-%v", dataset, tf, bf)
			protocol := cfg.protocol(g, setup, cfg.Seed.Split(name))
			err := cfg.run(ctx, name, protocol, []sim.PolicyFactory{abm}, func(rec sim.Record) {
				grid.Add(i, j, metric(rec))
			})
			if err != nil {
				return nil, "", fmt.Errorf("exp: heatmap cell (θ=%v, Bf=%v): %w", tf, bf, err)
			}
		}
	}
	return grid, dataset, nil
}

// heatNotes derives the qualitative observations the paper reports on the
// sensitivity grids.
func heatNotes(grid *stats.Grid, dataset, what string) []string {
	rows, cols := grid.Rows(), grid.Cols()
	// Corner comparison: easiest corner (low θ, high Bf) vs hardest.
	easy := grid.At(0, len(cols)-1).Mean()
	hard := grid.At(len(rows)-1, 0).Mean()
	notes := []string{fmt.Sprintf("%s: %s easiest corner %.1f vs hardest corner %.1f", dataset, what, easy, hard)}
	// The paper's exception: at the lowest cautious benefit, increasing
	// θ can help total benefit.
	lowCol := 0
	first, last := grid.At(0, lowCol).Mean(), grid.At(len(rows)-1, lowCol).Mean()
	if last > first {
		notes = append(notes, fmt.Sprintf("%s: at Bf(c)=%.0f, raising θ increases %s (%.1f → %.1f) — the paper's exception", dataset, cols[lowCol], what, first, last))
	}
	return notes
}

// Fig6 reproduces Fig. 6: the total-benefit heat map over cautious-user
// benefit and threshold fraction.
func Fig6(ctx context.Context, cfg Config) (*Report, error) {
	grid, dataset, err := heatmap(ctx, cfg, func(rec sim.Record) float64 {
		return rec.Result.Benefit
	})
	if err != nil {
		return nil, err
	}
	tables := []stats.Table{stats.GridTable(dataset, grid)}
	return newReport("fig6", fmt.Sprintf("Benefit heat map: θ fraction × B_f(cautious) (%s)", dataset), tables, heatNotes(grid, dataset, "benefit")), nil
}

// Fig7 reproduces Fig. 7: the cautious-friend-count heat map over the
// same grid.
func Fig7(ctx context.Context, cfg Config) (*Report, error) {
	grid, dataset, err := heatmap(ctx, cfg, func(rec sim.Record) float64 {
		return float64(rec.Result.CautiousFriends)
	})
	if err != nil {
		return nil, err
	}
	tables := []stats.Table{stats.GridTable(dataset, grid)}
	return newReport("fig7", fmt.Sprintf("Cautious-friends heat map: θ fraction × B_f(cautious) (%s)", dataset), tables, heatNotes(grid, dataset, "cautious friends")), nil
}
